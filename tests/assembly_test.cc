#include "core/assembly.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

ElementStore MaterializeSet(Fixture* f, const std::vector<ElementId>& set) {
  ElementComputer computer(f->shape, &f->cube);
  auto store = computer.Materialize(set);
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

TEST(AssemblyTest, StoredElementIsFree) {
  Fixture f = MakeFixture({4, 4}, 1);
  ElementStore store = MaterializeSet(&f, CubeOnlySet(f.shape));
  AssemblyEngine engine(&store);
  EXPECT_EQ(engine.PlanCost(ElementId::Root(2)), 0u);
  OpCounter ops;
  auto out = engine.Assemble(ElementId::Root(2), &ops);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(ops.adds, 0u);
  EXPECT_TRUE(out->ApproxEquals(f.cube, 0.0));
}

TEST(AssemblyTest, AggregateFromRoot) {
  Fixture f = MakeFixture({8, 4}, 2);
  ElementStore store = MaterializeSet(&f, CubeOnlySet(f.shape));
  AssemblyEngine engine(&store);
  auto view = ElementId::AggregatedView(0b01, f.shape);
  // Direct computation for reference.
  ElementComputer computer(f.shape, &f.cube);
  auto expected = computer.Compute(*view);

  OpCounter ops;
  auto out = engine.Assemble(*view, &ops);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(*expected, 0.0));
  // Aggregation cascade costs Vol(root) - Vol(view).
  EXPECT_EQ(ops.adds, 32u - 4u);
  EXPECT_EQ(engine.PlanCost(*view), 28u);
}

TEST(AssemblyTest, MeasuredOpsEqualPlanCost) {
  Fixture f = MakeFixture({4, 4}, 3);
  // A non-trivial basis: split dim 0, split the residual along dim 1.
  const ElementId root = ElementId::Root(2);
  auto p = root.Child(0, StepKind::kPartial, f.shape);
  auto r = root.Child(0, StepKind::kResidual, f.shape);
  auto rp = r->Child(1, StepKind::kPartial, f.shape);
  auto rr = r->Child(1, StepKind::kResidual, f.shape);
  ElementStore store = MaterializeSet(&f, {*p, *rp, *rr});
  AssemblyEngine engine(&store);

  ViewElementGraph graph(f.shape);
  std::vector<ElementId> all;
  graph.ForEachElement([&](const ElementId& id) { all.push_back(id); });
  for (const ElementId& target : all) {
    const uint64_t plan = engine.PlanCost(target);
    ASSERT_NE(plan, kInfiniteCost) << target.ToString();
    OpCounter ops;
    auto out = engine.Assemble(target, &ops);
    ASSERT_TRUE(out.ok()) << target.ToString();
    EXPECT_EQ(ops.adds, plan) << target.ToString();
  }
}

TEST(AssemblyTest, EveryElementAssemblesFromWaveletBasis) {
  Fixture f = MakeFixture({4, 4}, 4);
  ElementStore store = MaterializeSet(&f, WaveletBasisSet(f.shape));
  AssemblyEngine engine(&store);
  ElementComputer computer(f.shape, &f.cube);

  ViewElementGraph graph(f.shape);
  graph.ForEachElement([&](const ElementId& id) {
    auto expected = computer.Compute(id);
    auto out = engine.Assemble(id);
    ASSERT_TRUE(out.ok()) << id.ToString();
    EXPECT_TRUE(out->ApproxEquals(*expected, 1e-9)) << id.ToString();
  });
}

TEST(AssemblyTest, SynthesisReconstructsRootFromSiblings) {
  Fixture f = MakeFixture({8, 2}, 5);
  const ElementId root = ElementId::Root(2);
  auto p = root.Child(0, StepKind::kPartial, f.shape);
  auto r = root.Child(0, StepKind::kResidual, f.shape);
  ElementStore store = MaterializeSet(&f, {*p, *r});
  AssemblyEngine engine(&store);
  OpCounter ops;
  auto out = engine.Assemble(root, &ops);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(f.cube, 0.0));
  // One synthesis stage: Vol(root) ops.
  EXPECT_EQ(ops.adds, 16u);
}

TEST(AssemblyTest, IncompleteStoreReportsIncomplete) {
  Fixture f = MakeFixture({4, 4}, 6);
  const ElementId root = ElementId::Root(2);
  auto p = root.Child(0, StepKind::kPartial, f.shape);
  ElementStore store = MaterializeSet(&f, {*p});  // missing the residual half
  AssemblyEngine engine(&store);
  EXPECT_EQ(engine.PlanCost(root), kInfiniteCost);
  auto out = engine.Assemble(root);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsIncomplete());
  // Targets inside the stored element still work.
  auto pp = p->Child(0, StepKind::kPartial, f.shape);
  EXPECT_TRUE(engine.Assemble(*pp).ok());
}

TEST(AssemblyTest, PrefersCheaperOfAggregationAndSynthesis) {
  Fixture f = MakeFixture({8}, 7);
  const ElementId root = ElementId::Root(1);
  auto p = root.Child(0, StepKind::kPartial, f.shape);
  auto r = root.Child(0, StepKind::kResidual, f.shape);
  // Store the root AND both children redundantly: querying P must cost 0
  // (stored), querying root must cost 0 (stored), not synthesized.
  ElementStore store = MaterializeSet(&f, {root, *p, *r});
  AssemblyEngine engine(&store);
  EXPECT_EQ(engine.PlanCost(root), 0u);
  EXPECT_EQ(engine.PlanCost(*p), 0u);
  // PP: aggregate from stored P (cost 2) beats root cascade (cost 6).
  auto pp = p->Child(0, StepKind::kPartial, f.shape);
  EXPECT_EQ(engine.PlanCost(*pp), 2u);
}

TEST(AssemblyTest, AssembleViewByMask) {
  Fixture f = MakeFixture({4, 4}, 8);
  ElementStore store = MaterializeSet(&f, CubeOnlySet(f.shape));
  AssemblyEngine engine(&store);
  auto total = engine.AssembleView(0b11);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], f.cube.Total());
}

TEST(AssemblyTest, InvalidateAfterStoreMutation) {
  Fixture f = MakeFixture({4, 4}, 9);
  ElementStore store = MaterializeSet(&f, CubeOnlySet(f.shape));
  AssemblyEngine engine(&store);
  auto view = ElementId::AggregatedView(0b01, f.shape);
  const uint64_t before = engine.PlanCost(*view);
  EXPECT_GT(before, 0u);
  // Materialize the view itself into the store.
  ElementComputer computer(f.shape, &f.cube);
  ASSERT_TRUE(store.Put(*view, *computer.Compute(*view)).ok());
  engine.Invalidate();
  EXPECT_EQ(engine.PlanCost(*view), 0u);
}

TEST(AssemblyTest, ArityMismatchRejected) {
  Fixture f = MakeFixture({4, 4}, 10);
  ElementStore store = MaterializeSet(&f, CubeOnlySet(f.shape));
  AssemblyEngine engine(&store);
  EXPECT_TRUE(
      engine.Assemble(ElementId::Root(3)).status().IsInvalidArgument());
}

TEST(AssemblyTest, ExactValuesThroughDeepSynthesis) {
  // Integer data must reconstruct exactly through multi-stage synthesis.
  Fixture f = MakeFixture({8, 8}, 11);
  ElementStore store = MaterializeSet(&f, WaveletBasisSet(f.shape));
  AssemblyEngine engine(&store);
  auto out = engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(f.cube, 0.0));
}

}  // namespace
}  // namespace vecube
