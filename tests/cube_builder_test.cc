#include "cube/cube_builder.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

Relation SmallRelation() {
  auto r = Relation::Make({"x", "y"}, {"v"});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r->Append({0, 0}, {1.0}).ok());
  EXPECT_TRUE(r->Append({0, 0}, {2.0}).ok());  // same cell: accumulates
  EXPECT_TRUE(r->Append({1, 3}, {5.0}).ok());
  EXPECT_TRUE(r->Append({3, 2}, {-1.0}).ok());
  return std::move(r).value();
}

TEST(CubeBuilderTest, SumAggregation) {
  const Relation r = SmallRelation();
  auto shape = CubeShape::Make({4, 4});
  auto built = CubeBuilder::Build(r, *shape);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->cube.At({0, 0}), 3.0);
  EXPECT_EQ(built->cube.At({1, 3}), 5.0);
  EXPECT_EQ(built->cube.At({3, 2}), -1.0);
  EXPECT_EQ(built->cube.At({2, 2}), 0.0);
  EXPECT_EQ(built->cube.Total(), 7.0);
}

TEST(CubeBuilderTest, CountCube) {
  const Relation r = SmallRelation();
  auto shape = CubeShape::Make({4, 4});
  CubeBuildOptions options;
  options.count_instead_of_sum = true;
  auto built = CubeBuilder::Build(r, *shape, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->cube.At({0, 0}), 2.0);
  EXPECT_EQ(built->cube.Total(), 4.0);
}

TEST(CubeBuilderTest, DirectMappingRejectsOutOfRangeKey) {
  auto r = Relation::Make({"x"}, {"v"});
  ASSERT_TRUE(r->Append({9}, {1.0}).ok());
  auto shape = CubeShape::Make({8});
  auto built = CubeBuilder::Build(*r, *shape);
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsOutOfRange());
}

TEST(CubeBuilderTest, DirectMappingRejectsNegativeKey) {
  auto r = Relation::Make({"x"}, {"v"});
  ASSERT_TRUE(r->Append({-1}, {1.0}).ok());
  auto shape = CubeShape::Make({8});
  EXPECT_FALSE(CubeBuilder::Build(*r, *shape).ok());
}

TEST(CubeBuilderTest, DictionaryMappingEncodesArbitraryKeys) {
  auto r = Relation::Make({"sku"}, {"v"});
  ASSERT_TRUE(r->Append({900001}, {2.0}).ok());
  ASSERT_TRUE(r->Append({-5}, {3.0}).ok());
  ASSERT_TRUE(r->Append({900001}, {4.0}).ok());
  auto shape = CubeShape::Make({4});
  CubeBuildOptions options;
  options.mapping = KeyMapping::kDictionary;
  auto built = CubeBuilder::Build(*r, *shape, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->cube.At({0}), 6.0);  // 900001 -> index 0
  EXPECT_EQ(built->cube.At({1}), 3.0);  // -5 -> index 1
  ASSERT_EQ(built->dictionaries.size(), 1u);
  EXPECT_EQ(built->dictionaries[0].Decode(0), 900001);
}

TEST(CubeBuilderTest, DictionaryOverflowIsError) {
  auto r = Relation::Make({"k"}, {"v"});
  for (int64_t k = 0; k < 3; ++k) {
    ASSERT_TRUE(r->Append({k * 100}, {1.0}).ok());
  }
  auto shape = CubeShape::Make({2});
  CubeBuildOptions options;
  options.mapping = KeyMapping::kDictionary;
  EXPECT_TRUE(CubeBuilder::Build(*r, *shape, options).status().IsOutOfRange());
}

TEST(CubeBuilderTest, ArityMismatchIsError) {
  const Relation r = SmallRelation();
  auto shape = CubeShape::Make({4});
  EXPECT_TRUE(CubeBuilder::Build(r, *shape).status().IsInvalidArgument());
}

TEST(CubeBuilderTest, MeasureColumnSelection) {
  auto r = Relation::Make({"x"}, {"a", "b"});
  ASSERT_TRUE(r->Append({1}, {10.0, 20.0}).ok());
  auto shape = CubeShape::Make({2});
  CubeBuildOptions options;
  options.measure_column = 1;
  auto built = CubeBuilder::Build(*r, *shape, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->cube.At({1}), 20.0);
}

TEST(CubeBuilderTest, BadMeasureColumnIsError) {
  auto r = Relation::Make({"x"}, {"a"});
  auto shape = CubeShape::Make({2});
  CubeBuildOptions options;
  options.measure_column = 3;
  EXPECT_FALSE(CubeBuilder::Build(*r, *shape, options).ok());
}

TEST(CubeBuilderTest, EmptyRelationGivesZeroCube) {
  auto r = Relation::Make({"x"}, {"v"});
  auto shape = CubeShape::Make({4});
  auto built = CubeBuilder::Build(*r, *shape);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->cube.Total(), 0.0);
}

}  // namespace
}  // namespace vecube
