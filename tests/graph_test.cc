#include "core/graph.h"

#include <gtest/gtest.h>

#include <set>

#include "core/counts.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(GraphTest, PaperTable1ClosedForms) {
  // Table 1 of the paper, all five columns.
  struct Row {
    uint32_t d, n;
    uint64_t av, iv, rv, ve;
  };
  const Row rows[] = {
      {2, 256, 4, 81, 261040, 261121},
      {3, 32, 8, 216, 249831, 250047},
      {4, 16, 16, 625, 922896, 923521},
      {5, 8, 32, 1024, 758351, 759375},
      {8, 4, 256, 6561, 5758240, 5764801},
  };
  for (const Row& row : rows) {
    const CubeShape shape =
        Shape(std::vector<uint32_t>(row.d, row.n));
    ViewElementGraph graph(shape);
    EXPECT_EQ(graph.NumAggregatedViews(), row.av) << "d=" << row.d;
    EXPECT_EQ(graph.NumIntermediate(), row.iv) << "d=" << row.d;
    EXPECT_EQ(graph.NumResidual(), row.rv) << "d=" << row.d;
    EXPECT_EQ(graph.NumElements(), row.ve) << "d=" << row.d;
  }
}

TEST(GraphTest, CensusEnumerationMatchesClosedForm) {
  for (const auto& extents :
       {std::vector<uint32_t>{4}, std::vector<uint32_t>{8},
        std::vector<uint32_t>{2, 2}, std::vector<uint32_t>{4, 8},
        std::vector<uint32_t>{4, 4, 4}, std::vector<uint32_t>{2, 4, 2, 4}}) {
    const CubeShape shape = Shape(extents);
    EXPECT_EQ(CensusClosedForm(shape), CensusByEnumeration(shape))
        << shape.ToString();
  }
}

TEST(GraphTest, ForEachElementVisitsDistinctIds) {
  const CubeShape shape = Shape({4, 4});
  ViewElementGraph graph(shape);
  std::set<ElementId> seen;
  graph.ForEachElement([&](const ElementId& id) { seen.insert(id); });
  EXPECT_EQ(seen.size(), graph.NumElements());
}

TEST(GraphTest, AggregatedViewsCount) {
  const CubeShape shape = Shape({4, 8, 2});
  ViewElementGraph graph(shape);
  const auto views = graph.AggregatedViews();
  EXPECT_EQ(views.size(), 8u);
  for (const ElementId& v : views) {
    EXPECT_TRUE(v.IsAggregatedView(shape));
  }
}

TEST(GraphTest, IntermediateElementsCount) {
  const CubeShape shape = Shape({4, 8});
  ViewElementGraph graph(shape);
  const auto elements = graph.IntermediateElements();
  EXPECT_EQ(elements.size(), graph.NumIntermediate());
  for (const ElementId& id : elements) {
    EXPECT_TRUE(id.IsIntermediate());
  }
}

TEST(GraphTest, ChildrenPair) {
  const CubeShape shape = Shape({4, 4});
  ViewElementGraph graph(shape);
  auto children = graph.Children(ElementId::Root(2), 1);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ((*children)[0].dim(1), (DimCode{1, 0}));
  EXPECT_EQ((*children)[1].dim(1), (DimCode{1, 1}));
}

TEST(GraphTest, AncestorsOfLeaf) {
  const CubeShape shape = Shape({4});
  ViewElementGraph graph(shape);
  auto leaf = ElementId::Make({{2, 3}}, shape);
  const auto ancestors = graph.Ancestors(*leaf);
  // Prefixes: (0,0), (1,1) — the leaf itself excluded.
  EXPECT_EQ(ancestors.size(), 2u);
}

TEST(GraphTest, DescendantsOfRoot1D) {
  const CubeShape shape = Shape({4});
  ViewElementGraph graph(shape);
  const auto descendants = graph.Descendants(ElementId::Root(1));
  EXPECT_EQ(descendants.size(), graph.NumElements() - 1);
}

TEST(GraphTest, AncestorsDescendantsAreInverse) {
  const CubeShape shape = Shape({4, 2});
  ViewElementGraph graph(shape);
  std::vector<ElementId> all;
  graph.ForEachElement([&](const ElementId& id) { all.push_back(id); });
  for (const ElementId& a : all) {
    for (const ElementId& b : graph.Descendants(a)) {
      const auto ancestors = graph.Ancestors(b);
      EXPECT_NE(std::find(ancestors.begin(), ancestors.end(), a),
                ancestors.end());
    }
  }
}

TEST(GraphTest, NumBlocksMatchesIntermediate) {
  const CubeShape shape = Shape({16, 16});
  ViewElementGraph graph(shape);
  EXPECT_EQ(graph.NumBlocks(), 25u);
}

TEST(IndexerTest, RoundTripAllElements) {
  const CubeShape shape = Shape({4, 8});
  ElementIndexer indexer(shape);
  ViewElementGraph graph(shape);
  EXPECT_EQ(indexer.size(), graph.NumElements());
  std::set<uint64_t> seen;
  graph.ForEachElement([&](const ElementId& id) {
    const uint64_t index = indexer.Encode(id);
    EXPECT_LT(index, indexer.size());
    EXPECT_TRUE(seen.insert(index).second) << id.ToString();
    EXPECT_EQ(indexer.Decode(index), id);
  });
  EXPECT_EQ(seen.size(), indexer.size());
}

TEST(IndexerTest, RootEncodesDeterministically) {
  const CubeShape shape = Shape({4, 4});
  ElementIndexer indexer(shape);
  const uint64_t root_index = indexer.Encode(ElementId::Root(2));
  EXPECT_EQ(indexer.Decode(root_index), ElementId::Root(2));
}

}  // namespace
}  // namespace vecube
