#include "cube/relation.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

TEST(RelationTest, MakeRequiresAttributes) {
  EXPECT_FALSE(Relation::Make({}, {"m"}).ok());
  EXPECT_FALSE(Relation::Make({"a"}, {}).ok());
  EXPECT_TRUE(Relation::Make({"a"}, {"m"}).ok());
}

TEST(RelationTest, AppendAndRead) {
  auto r = Relation::Make({"product", "store"}, {"sales"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Append({3, 1}, {9.5}).ok());
  ASSERT_TRUE(r->Append({2, 0}, {1.5}).ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->key(0, 0), 3);
  EXPECT_EQ(r->key(1, 1), 0);
  EXPECT_EQ(r->measure(0, 0), 9.5);
  EXPECT_EQ(r->measure(0, 1), 1.5);
}

TEST(RelationTest, AppendValidatesArity) {
  auto r = Relation::Make({"a", "b"}, {"m"});
  EXPECT_FALSE(r->Append({1}, {2.0}).ok());
  EXPECT_FALSE(r->Append({1, 2}, {}).ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(RelationTest, Names) {
  auto r = Relation::Make({"a", "b"}, {"m1", "m2"});
  EXPECT_EQ(r->functional_name(1), "b");
  EXPECT_EQ(r->measure_name(1), "m2");
  EXPECT_EQ(r->num_functional(), 2u);
  EXPECT_EQ(r->num_measures(), 2u);
}

TEST(RelationTest, MultipleMeasures) {
  auto r = Relation::Make({"a"}, {"sum", "count"});
  ASSERT_TRUE(r->Append({0}, {5.0, 1.0}).ok());
  EXPECT_EQ(r->measure(1, 0), 1.0);
}

TEST(DictionaryTest, EncodesFirstSeenOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.Encode(100), 0u);
  EXPECT_EQ(dict.Encode(-7), 1u);
  EXPECT_EQ(dict.Encode(100), 0u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, DecodeInverse) {
  Dictionary dict;
  dict.Encode(42);
  dict.Encode(7);
  EXPECT_EQ(dict.Decode(0), 42);
  EXPECT_EQ(dict.Decode(1), 7);
}

TEST(DictionaryTest, LookupMissing) {
  Dictionary dict;
  dict.Encode(1);
  auto hit = dict.Lookup(1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 0u);
  EXPECT_TRUE(dict.Lookup(2).status().IsNotFound());
}

}  // namespace
}  // namespace vecube
