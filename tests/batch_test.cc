#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
  ElementStore store;
};

Fixture MakeFixture(const std::vector<ElementId>& set, uint64_t seed) {
  auto shape = CubeShape::Make({8, 8});
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  EXPECT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(set);
  EXPECT_TRUE(store.ok());
  return Fixture{*shape, std::move(cube).value(), std::move(store).value()};
}

TEST(BatchAssemblyTest, MatchesIndividualAssemblies) {
  auto shape = CubeShape::Make({8, 8});
  Fixture f = MakeFixture(WaveletBasisSet(*shape), 1);
  AssemblyEngine engine(&f.store);
  const auto views = ViewElementGraph(f.shape).AggregatedViews();
  auto batch = engine.AssembleBatch(views);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    auto single = engine.Assemble(views[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE((*batch)[i].ApproxEquals(*single, 0.0)) << i;
  }
}

TEST(BatchAssemblyTest, SharingNeverCostsMore) {
  auto shape = CubeShape::Make({8, 8});
  Fixture f = MakeFixture(WaveletBasisSet(*shape), 2);
  AssemblyEngine engine(&f.store);
  const auto views = ViewElementGraph(f.shape).AggregatedViews();

  OpCounter individual;
  for (const ElementId& view : views) {
    ASSERT_TRUE(engine.Assemble(view, &individual).ok());
  }
  OpCounter batched;
  ASSERT_TRUE(engine.AssembleBatch(views, &batched).ok());
  EXPECT_LE(batched.adds, individual.adds);
}

TEST(BatchAssemblyTest, SharingSavesWorkOnOverlappingTargets) {
  // From the wavelet basis, views along each dimension all pass through
  // the same coarse intermediates; batching must reuse them. Use the
  // root as both a target and an implied sub-result.
  auto shape = CubeShape::Make({8, 8});
  Fixture f = MakeFixture(WaveletBasisSet(*shape), 3);
  AssemblyEngine engine(&f.store);
  const ElementId root = ElementId::Root(2);
  auto v1 = ElementId::AggregatedView(0b01, f.shape);
  auto v2 = ElementId::AggregatedView(0b10, f.shape);

  OpCounter individual;
  ASSERT_TRUE(engine.Assemble(root, &individual).ok());
  ASSERT_TRUE(engine.Assemble(*v1, &individual).ok());
  ASSERT_TRUE(engine.Assemble(*v2, &individual).ok());

  OpCounter batched;
  ASSERT_TRUE(engine.AssembleBatch({root, *v1, *v2}, &batched).ok());
  EXPECT_LT(batched.adds, individual.adds);
}

TEST(BatchAssemblyTest, DuplicateTargetsAreFreeSecondTime) {
  auto shape = CubeShape::Make({8, 8});
  const ElementId root = ElementId::Root(2);
  auto p = root.Child(0, StepKind::kPartial, *shape);
  auto r = root.Child(0, StepKind::kResidual, *shape);
  Fixture f = MakeFixture({*p, *r}, 4);
  AssemblyEngine engine(&f.store);
  OpCounter once, twice;
  ASSERT_TRUE(engine.AssembleBatch({root}, &once).ok());
  ASSERT_TRUE(engine.AssembleBatch({root, root}, &twice).ok());
  EXPECT_EQ(once.adds, twice.adds);
}

TEST(BatchAssemblyTest, ErrorsPropagate) {
  auto shape = CubeShape::Make({8, 8});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, *shape);
  Fixture f = MakeFixture({*p}, 5);  // incomplete store
  AssemblyEngine engine(&f.store);
  auto batch = engine.AssembleBatch({*p, ElementId::Root(2)});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsIncomplete());
  EXPECT_FALSE(engine.AssembleBatch({ElementId::Root(3)}).ok());
}

}  // namespace
}  // namespace vecube
