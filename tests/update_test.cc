#include "core/update.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(ProjectPointTest, RootIsIdentity) {
  const CubeShape shape = Shape({4, 4});
  auto p = ProjectPoint(ElementId::Root(2), {2, 3}, shape);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->flat_index, shape.FlatIndex({2, 3}));
  EXPECT_EQ(p->sign, +1);
}

TEST(ProjectPointTest, PartialChainAlwaysPositive) {
  const CubeShape shape = Shape({8});
  auto p2 = ElementId::Intermediate({2}, shape);
  for (uint32_t x = 0; x < 8; ++x) {
    auto p = ProjectPoint(*p2, {x}, shape);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->flat_index, x / 4u);
    EXPECT_EQ(p->sign, +1);
  }
}

TEST(ProjectPointTest, FirstResidualSignFollowsLsb) {
  // R1 takes even - odd: coordinate LSB 1 contributes with sign -1.
  const CubeShape shape = Shape({8});
  auto r = ElementId::Root(1).Child(0, StepKind::kResidual, shape);
  for (uint32_t x = 0; x < 8; ++x) {
    auto p = ProjectPoint(*r, {x}, shape);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->flat_index, x / 2u);
    EXPECT_EQ(p->sign, (x % 2 == 0) ? +1 : -1) << "x=" << x;
  }
}

TEST(ProjectPointTest, MatchesRecomputationForEveryElementAndCell) {
  // Ground truth: recompute the element from a delta-impulse cube and
  // compare the single non-zero coefficient.
  const CubeShape shape = Shape({4, 4});
  ViewElementGraph graph(shape);
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      auto impulse = Tensor::Zeros({4, 4});
      impulse->Set({x, y}, 1.0);
      ElementComputer computer(shape, &*impulse);
      graph.ForEachElement([&](const ElementId& id) {
        auto data = computer.Compute(id);
        ASSERT_TRUE(data.ok());
        auto projection = ProjectPoint(id, {x, y}, shape);
        ASSERT_TRUE(projection.ok());
        for (uint64_t i = 0; i < data->size(); ++i) {
          const double expected =
              (i == projection->flat_index) ? projection->sign : 0.0;
          ASSERT_DOUBLE_EQ((*data)[i], expected)
              << id.ToString() << " cell " << i << " impulse (" << x << ","
              << y << ")";
        }
      });
    }
  }
}

TEST(ProjectPointTest, Validation) {
  const CubeShape shape = Shape({4, 4});
  EXPECT_FALSE(ProjectPoint(ElementId::Root(2), {5, 0}, shape).ok());
  EXPECT_FALSE(ProjectPoint(ElementId::Root(3), {0, 0}, shape).ok());
  EXPECT_FALSE(ProjectPoint(ElementId::Root(2), {0}, shape).ok());
}

TEST(ApplyPointDeltaTest, StoreStaysConsistentWithRecomputation) {
  const CubeShape shape = Shape({8, 4});
  Rng rng(1);
  auto cube = UniformIntegerCube(shape, &rng, 0, 9);
  ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(WaveletBasisSet(shape));
  ASSERT_TRUE(store.ok());

  // Apply a handful of random point updates to both cube and store.
  for (int i = 0; i < 20; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.UniformU64(8));
    const uint32_t y = static_cast<uint32_t>(rng.UniformU64(4));
    const double delta =
        static_cast<double>(rng.UniformU64(21)) - 10.0;
    (*cube)[shape.FlatIndex({x, y})] += delta;
    ASSERT_TRUE(ApplyPointDelta(&*store, {x, y}, delta).ok());
  }

  // Every stored element must equal a fresh recomputation.
  ElementComputer fresh(shape, &*cube);
  for (const ElementId& id : store->Ids()) {
    auto expected = fresh.Compute(id);
    auto got = store->Get(id);
    ASSERT_TRUE(expected.ok() && got.ok());
    EXPECT_TRUE((*got)->ApproxEquals(*expected, 1e-9)) << id.ToString();
  }
}

TEST(ApplyPointDeltaTest, WorksAcrossMixedStores) {
  const CubeShape shape = Shape({4, 4, 4});
  Rng rng(2);
  auto cube = UniformIntegerCube(shape, &rng, 0, 5);
  ElementComputer computer(shape, &*cube);
  // A store mixing the cube, views, and a pyramid level.
  std::vector<ElementId> set = ViewHierarchySet(shape);
  set.push_back(*ElementId::Intermediate({1, 1, 1}, shape));
  auto store = computer.Materialize(set);
  ASSERT_TRUE(store.ok());

  (*cube)[shape.FlatIndex({1, 2, 3})] += 7.5;
  ASSERT_TRUE(ApplyPointDelta(&*store, {1, 2, 3}, 7.5).ok());

  ElementComputer fresh(shape, &*cube);
  for (const ElementId& id : store->Ids()) {
    auto expected = fresh.Compute(id);
    auto got = store->Get(id);
    EXPECT_TRUE((*got)->ApproxEquals(*expected, 1e-9)) << id.ToString();
  }
}

TEST(ApplyDeltasTest, BatchEqualsSequential) {
  const CubeShape shape = Shape({8, 8});
  Rng rng(3);
  auto cube = UniformIntegerCube(shape, &rng, 0, 9);
  ElementComputer computer(shape, &*cube);
  auto a = computer.Materialize(GaussianPyramidSet(shape));
  auto b = computer.Materialize(GaussianPyramidSet(shape));
  ASSERT_TRUE(a.ok() && b.ok());

  std::vector<CellDelta> deltas = {
      {{0, 0}, 1.0}, {{7, 7}, -2.0}, {{3, 4}, 0.5}, {{0, 0}, 2.0}};
  ASSERT_TRUE(ApplyDeltas(&*a, deltas).ok());
  for (const CellDelta& d : deltas) {
    ASSERT_TRUE(ApplyPointDelta(&*b, d.coords, d.delta).ok());
  }
  for (const ElementId& id : a->Ids()) {
    EXPECT_TRUE((*a->Get(id))->ApproxEquals(**b->Get(id), 0.0));
  }
}

TEST(ApplyPointDeltaTest, OutOfRangeRejectedAtomically) {
  // A failed delta must leave every element untouched — ApplyPointDelta
  // validates all projections before mutating anything, so a mid-loop
  // failure cannot leave the store inconsistent with the base cube.
  const CubeShape shape = Shape({4, 4});
  Rng rng(3);
  auto cube = UniformIntegerCube(shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(WaveletBasisSet(shape));
  ASSERT_TRUE(store.ok());

  std::vector<TensorBuffer> before;
  for (const ElementId& id : store->Ids()) {
    before.push_back((*store->Get(id))->data());
  }
  EXPECT_FALSE(ApplyPointDelta(&*store, {9, 0}, 1.0).ok());
  EXPECT_FALSE(ApplyPointDelta(&*store, {0, 9}, 1.0).ok());
  EXPECT_FALSE(ApplyPointDelta(nullptr, {0, 0}, 1.0).ok());
  size_t i = 0;
  for (const ElementId& id : store->Ids()) {
    EXPECT_EQ((*store->Get(id))->data(), before[i++]) << id.ToString();
  }
}

}  // namespace
}  // namespace vecube
