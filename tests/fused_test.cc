// Fused cascade kernels (haar/fused.h): bit-exactness against the
// step-at-a-time path across dims, levels, thread counts, dispatch
// tables, and scratch budgets; op-count pinning for every kernel; grain
// selection for degenerate geometries; ScratchArena safety.

#include "haar/fused.h"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "haar/cascade.h"
#include "haar/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vecube {
namespace {

// The seed execution model the fused engine must match bit for bit: one
// materialized tensor per P1/R1 step.
Result<Tensor> UnfusedCascade(const Tensor& input,
                              const std::vector<CascadeStep>& steps,
                              OpCounter* ops = nullptr) {
  Tensor current = input;
  for (const CascadeStep& step : steps) {
    Tensor next;
    if (step.kind == StepKind::kPartial) {
      VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, step.dim, ops));
    } else {
      VECUBE_ASSIGN_OR_RETURN(next, PartialResidual(current, step.dim, ops));
    }
    current = std::move(next);
  }
  return current;
}

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.extents() != b.extents()) {
    return ::testing::AssertionFailure()
           << "extents differ: " << a.ShapeString() << " vs "
           << b.ShapeString();
  }
  if (std::memcmp(a.raw(), b.raw(), a.size() * sizeof(double)) != 0) {
    for (uint64_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a.raw()[i], &b.raw()[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "cell " << i << " differs: " << a.raw()[i] << " vs "
               << b.raw()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct BudgetOverride {
  explicit BudgetOverride(uint64_t cells) {
    internal::SetFusedBudgetForTesting(cells);
  }
  ~BudgetOverride() { internal::SetFusedBudgetForTesting(0); }
};

struct ForceScalar {
  ForceScalar() {
    internal::OverrideVecOpsForTesting(&internal::ScalarVecOps());
  }
  ~ForceScalar() { internal::OverrideVecOpsForTesting(nullptr); }
};

// --- Tentpole: exhaustive fused-vs-unfused bit-exactness sweep ----------

TEST(FusedSweep, AllDimLevelPairsAcrossThreadsDispatchAndBudget) {
  auto shape = CubeShape::Make({8, 4, 2, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(11);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  const uint32_t depth[4] = {3, 2, 1, 3};
  for (uint32_t dim = 0; dim < 4; ++dim) {
    for (uint32_t levels = 1; levels <= depth[dim]; ++levels) {
      const std::vector<CascadeStep> steps(
          levels, CascadeStep{dim, StepKind::kPartial});
      OpCounter ref_ops;
      Tensor ref;
      {
        ForceScalar scalar;
        auto r = UnfusedCascade(*cube, steps, &ref_ops);
        ASSERT_TRUE(r.ok());
        ref = *r;
      }
      for (uint32_t threads : {1u, 4u, 8u}) {
        ThreadPool pool(threads);
        ScratchArena arena;
        for (const bool force_scalar : {true, false}) {
          std::optional<ForceScalar> forced;
          if (force_scalar) forced.emplace();
          for (const uint64_t budget : {uint64_t{0}, uint64_t{4},
                                        uint64_t{64}}) {
            BudgetOverride b(budget);
            OpCounter ops;
            auto fused = CascadeSum(*cube, dim, levels, &ops, &pool, &arena);
            ASSERT_TRUE(fused.ok());
            EXPECT_TRUE(BitIdentical(ref, *fused))
                << "dim=" << dim << " levels=" << levels
                << " threads=" << threads << " scalar=" << force_scalar
                << " budget=" << budget;
            EXPECT_EQ(ops.adds, ref_ops.adds);
            EXPECT_EQ(ops.muls, ref_ops.muls);
          }
        }
        EXPECT_EQ(arena.outstanding(), 0u);
      }
    }
  }
}

TEST(FusedSweep, MixedPartialResidualStepListsMatchUnfused) {
  auto shape = CubeShape::Make({8, 8, 4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(23);
  auto cube = UniformIntegerCube(*shape, &rng, -50, 50);
  ASSERT_TRUE(cube.ok());

  ThreadPool pool(4);
  ScratchArena arena;
  for (uint32_t trial = 0; trial < 24; ++trial) {
    // A random valid step list over the evolving extents, mixing P and R.
    std::vector<uint32_t> extents = cube->extents();
    std::vector<CascadeStep> steps;
    const uint64_t length = 1 + rng.NextU64() % 9;
    for (uint64_t s = 0; s < length; ++s) {
      std::vector<uint32_t> eligible;
      for (uint32_t m = 0; m < extents.size(); ++m) {
        if (extents[m] >= 2) eligible.push_back(m);
      }
      if (eligible.empty()) break;
      const uint32_t dim =
          eligible[static_cast<size_t>(rng.NextU64() % eligible.size())];
      const StepKind kind =
          rng.NextU64() % 2 == 0 ? StepKind::kPartial : StepKind::kResidual;
      steps.push_back(CascadeStep{dim, kind});
      extents[dim] /= 2;
    }

    OpCounter ref_ops;
    Tensor ref;
    {
      ForceScalar scalar;
      auto r = UnfusedCascade(*cube, steps, &ref_ops);
      ASSERT_TRUE(r.ok());
      ref = *r;
    }
    for (const uint64_t budget : {uint64_t{0}, uint64_t{8}}) {
      BudgetOverride b(budget);
      OpCounter ops;
      auto fused = CascadeAnalysis(*cube, steps, &ops, &pool, &arena);
      ASSERT_TRUE(fused.ok());
      EXPECT_TRUE(BitIdentical(ref, *fused))
          << "trial=" << trial << " budget=" << budget;
      EXPECT_EQ(ops.adds, ref_ops.adds);
    }
  }
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(FusedSweep, AggregateDimsMatchesUnfusedForEveryDimSubset) {
  auto shape = CubeShape::Make({8, 4, 2, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(31);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  for (uint32_t mask = 1; mask < 16; ++mask) {
    std::vector<uint32_t> dims;
    std::vector<CascadeStep> steps;
    for (uint32_t m = 0; m < 4; ++m) {
      if ((mask & (1u << m)) == 0) continue;
      dims.push_back(m);
      for (uint32_t e = cube->extent(m); e > 1; e /= 2) {
        steps.push_back(CascadeStep{m, StepKind::kPartial});
      }
    }
    OpCounter ref_ops;
    Tensor ref;
    {
      ForceScalar scalar;
      auto r = UnfusedCascade(*cube, steps, &ref_ops);
      ASSERT_TRUE(r.ok());
      ref = *r;
    }
    for (uint32_t threads : {1u, 8u}) {
      ThreadPool pool(threads);
      ScratchArena arena;
      OpCounter ops;
      auto fused = AggregateDims(*cube, dims, &ops, &pool, &arena);
      ASSERT_TRUE(fused.ok());
      EXPECT_TRUE(BitIdentical(ref, *fused))
          << "mask=" << mask << " threads=" << threads;
      EXPECT_EQ(ops.adds, ref_ops.adds);
      EXPECT_EQ(arena.outstanding(), 0u);
    }
  }
}

TEST(FusedSweep, GrandTotalExactOnIntegerCube) {
  auto shape = CubeShape::Make({16, 16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(7);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  double expected = 0;
  for (uint64_t i = 0; i < cube->size(); ++i) expected += cube->raw()[i];

  ScratchArena arena;
  OpCounter ops;
  auto total = GrandTotal(*cube, &ops, nullptr, &arena);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, expected);
  EXPECT_EQ(ops.adds, cube->size() - 1);  // Eq. 26: n - 1 adds for a total
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_GT(arena.pooled(), 0u);
}

// --- Error semantics: fused statuses match the step-at-a-time kernels ---

TEST(FusedErrors, StatusesMatchUnfusedKernels) {
  auto in = Tensor::FromData(
      {4, 6}, std::vector<double>{1,  2,  3,  4,  5,  6,  7,  8,
                                  9,  10, 11, 12, 13, 14, 15, 16,
                                  17, 18, 19, 20, 21, 22, 23, 24});
  ASSERT_TRUE(in.ok());

  auto bad_dim =
      CascadeAnalysis(*in, {CascadeStep{7, StepKind::kPartial}});
  auto kernel_bad_dim = PartialSum(*in, 7);
  ASSERT_TRUE(bad_dim.status().IsInvalidArgument());
  EXPECT_EQ(bad_dim.status().message(), kernel_bad_dim.status().message());

  // Odd extent reached mid-cascade: the second P1 along dim 1 sees 3.
  const std::vector<CascadeStep> odd_steps{
      CascadeStep{1, StepKind::kPartial}, CascadeStep{1, StepKind::kPartial}};
  auto odd = CascadeAnalysis(*in, odd_steps);
  auto odd_ref = UnfusedCascade(*in, odd_steps);
  ASSERT_TRUE(odd.status().IsFailedPrecondition());
  EXPECT_EQ(odd.status().message(), odd_ref.status().message());

  // TotalAggregate along a non-power-of-two extent fails identically.
  EXPECT_TRUE(TotalAggregate(*in, 1).status().IsFailedPrecondition());
  EXPECT_TRUE(TotalAggregate(*in, 9).status().IsInvalidArgument());

  // An empty step list is the identity.
  auto same = CascadeAnalysis(*in, {});
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(BitIdentical(*in, *same));

  // A failed cascade never leaks scratch.
  ScratchArena arena;
  EXPECT_FALSE(CascadeAnalysis(*in, odd_steps, nullptr, nullptr, &arena).ok());
  EXPECT_EQ(arena.outstanding(), 0u);
}

// --- Satellite: op accounting pinned for every kernel -------------------

TEST(OpAccounting, EveryKernelPinsItsCounts) {
  Rng rng(5);
  auto shape = CubeShape::Make({4, 8});
  ASSERT_TRUE(shape.ok());
  auto in = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(in.ok());

  OpCounter ops;
  auto p = PartialSum(*in, 0, &ops);  // 16 output cells
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ops.adds, 16u);
  EXPECT_EQ(ops.muls, 0u);

  ops.Reset();
  auto r = PartialResidual(*in, 0, &ops);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ops.adds, 16u);
  EXPECT_EQ(ops.muls, 0u);

  ops.Reset();
  Tensor pp, rr;
  ASSERT_TRUE(PartialPair(*in, 1, &pp, &rr, &ops).ok());
  EXPECT_EQ(ops.adds, 32u);  // both 16-cell children
  EXPECT_EQ(ops.muls, 0u);

  // Synthesis: one add/subtract AND one halving per output cell (Eqs.
  // 3-4). The halvings are booked in muls, never adds, so measured adds
  // stay equal to Procedure-3 plan costs.
  ops.Reset();
  auto parent = SynthesizePair(*p, *r, 0, &ops);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(ops.adds, 32u);
  EXPECT_EQ(ops.muls, 32u);
  EXPECT_TRUE(BitIdentical(*in, *parent));  // integer cube: exact round trip

  // Cascades book the sum of per-step output volumes, fused or not.
  ops.Reset();
  auto agg = AggregateDims(*in, {0, 1}, &ops);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(ops.adds, 31u);  // 16+8+4 (dim 0) + 2+1 (dim 1) = n - 1
  EXPECT_EQ(ops.muls, 0u);
}

// --- Satellite: RunRows grain selection ---------------------------------

TEST(KernelGrain, GrainIsCeilOfTargetCellsOverRowCells) {
  using internal::KernelRowGrain;
  EXPECT_EQ(KernelRowGrain(0), kParallelKernelCells);
  EXPECT_EQ(KernelRowGrain(1), kParallelKernelCells);
  EXPECT_EQ(KernelRowGrain(2), kParallelKernelCells / 2);
  EXPECT_EQ(KernelRowGrain(kParallelKernelCells), 1u);
  // The seed's truncating division undershot the cell target for any
  // inner that did not divide it — a chunk of one 16383-cell row is
  // below the fan-out threshold. Ceiling division never undershoots.
  EXPECT_EQ(KernelRowGrain(kParallelKernelCells - 1), 2u);
  EXPECT_EQ(KernelRowGrain(kParallelKernelCells + 1), 1u);
  EXPECT_EQ(KernelRowGrain(100000), 1u);
}

TEST(KernelGrain, DegenerateGeometryBitExactUnderPool) {
  // Few enormous rows: inner far above kParallelKernelCells, so each
  // chunk is a single row.
  Rng rng(13);
  std::vector<double> cells(4 * 40000);
  for (double& c : cells) {
    c = static_cast<double>(static_cast<int64_t>(rng.NextU64() % 19) - 9);
  }
  auto in = Tensor::FromData({4, 40000}, std::move(cells));
  ASSERT_TRUE(in.ok());

  OpCounter serial_ops;
  auto serial = PartialSum(*in, 0, &serial_ops);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(8);
  OpCounter pooled_ops;
  auto pooled = PartialSum(*in, 0, &pooled_ops, &pool);
  ASSERT_TRUE(pooled.ok());
  EXPECT_TRUE(BitIdentical(*serial, *pooled));
  EXPECT_EQ(serial_ops.adds, pooled_ops.adds);
}

// --- Satellite: VECUBE_DISABLE_AVX2 hook and dispatch tables ------------

TEST(SimdDispatch, ParseDisableAvx2Semantics) {
  using internal::ParseDisableAvx2;
  EXPECT_FALSE(ParseDisableAvx2(nullptr));  // unset
  EXPECT_FALSE(ParseDisableAvx2(""));       // set but empty
  EXPECT_FALSE(ParseDisableAvx2("0"));      // explicit off
  EXPECT_TRUE(ParseDisableAvx2("1"));
  EXPECT_TRUE(ParseDisableAvx2("true"));
  EXPECT_TRUE(ParseDisableAvx2("yes"));
}

TEST(SimdDispatch, SelectedTableIsCoherent) {
  const HaarVecOps& ops = VecOps();
  const std::string name = ops.name;
  EXPECT_TRUE(name == "scalar" || name == "avx2") << name;
  EXPECT_EQ(VecOpsAreAvx2(), name == "avx2");
}

TEST(SimdDispatch, Avx2TableBitIdenticalToScalar) {
  const HaarVecOps* avx2 = internal::Avx2VecOpsOrNull();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "binary or CPU lacks AVX2";
  }
  const HaarVecOps& scalar = internal::ScalarVecOps();
  Rng rng(17);
  // Lengths straddling vector widths and tails, plus an offset start so
  // unaligned loads are exercised.
  for (const uint64_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 64u,
                           1000u}) {
    std::vector<double> a(2 * n + 1), b(2 * n + 1);
    for (double& v : a) v = static_cast<double>(rng.NextU64() % 1000) / 7.0;
    for (double& v : b) v = static_cast<double>(rng.NextU64() % 1000) / 7.0;
    std::vector<double> out_s(2 * n), out_v(2 * n), aux_s(2 * n),
        aux_v(2 * n);
    const double* pa = a.data() + 1;  // unaligned
    const double* pb = b.data() + 1;

    auto same = [&](const char* what) {
      ASSERT_EQ(std::memcmp(out_s.data(), out_v.data(),
                            out_s.size() * sizeof(double)),
                0)
          << what << " n=" << n;
      ASSERT_EQ(std::memcmp(aux_s.data(), aux_v.data(),
                            aux_s.size() * sizeof(double)),
                0)
          << what << " n=" << n;
    };

    scalar.add_rows(pa, pb, out_s.data(), n);
    avx2->add_rows(pa, pb, out_v.data(), n);
    same("add_rows");
    scalar.sub_rows(pa, pb, out_s.data(), n);
    avx2->sub_rows(pa, pb, out_v.data(), n);
    same("sub_rows");
    scalar.addsub_rows(pa, pb, out_s.data(), aux_s.data(), n);
    avx2->addsub_rows(pa, pb, out_v.data(), aux_v.data(), n);
    same("addsub_rows");
    scalar.synth_rows(pa, pb, out_s.data(), aux_s.data(), n);
    avx2->synth_rows(pa, pb, out_v.data(), aux_v.data(), n);
    same("synth_rows");
    scalar.pair_sum(pa, out_s.data(), n);
    avx2->pair_sum(pa, out_v.data(), n);
    same("pair_sum");
    scalar.pair_diff(pa, out_s.data(), n);
    avx2->pair_diff(pa, out_v.data(), n);
    same("pair_diff");
    scalar.pair_both(pa, out_s.data(), aux_s.data(), n);
    avx2->pair_both(pa, out_v.data(), aux_v.data(), n);
    same("pair_both");
    scalar.pair_synth(pa, pb, out_s.data(), n);
    avx2->pair_synth(pa, pb, out_v.data(), n);
    same("pair_synth");
  }
}

// --- Satellite: ScratchArena safety -------------------------------------

TEST(ScratchArenaTest, ReusesPooledAllocations) {
  ScratchArena arena;
  const double* first;
  {
    auto buf = arena.Acquire(128);
    ASSERT_NE(buf.data(), nullptr);
    EXPECT_EQ(buf.size(), 128u);
    first = buf.data();
    EXPECT_EQ(arena.outstanding(), 1u);
  }
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_EQ(arena.pooled(), 1u);
  auto again = arena.Acquire(64);  // best fit: reuses the 128-cell block
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(arena.reuse_count(), 1u);
}

TEST(ScratchArenaTest, HandOutsNeverAlias) {
  ScratchArena arena;
  auto a = arena.Acquire(64);
  auto b = arena.Acquire(64);
  EXPECT_NE(a.data(), b.data());
  EXPECT_FALSE(arena.DisjointFromOutstanding(a.data(), 64));
  EXPECT_FALSE(arena.DisjointFromOutstanding(a.data() + 63, 1));
  EXPECT_FALSE(arena.DisjointFromOutstanding(b.data(), 1));
  std::vector<double> unrelated(64);
  EXPECT_TRUE(arena.DisjointFromOutstanding(unrelated.data(), 64));
  a.Release();
  EXPECT_EQ(arena.outstanding(), 1u);
  b.Release();
  EXPECT_TRUE(arena.DisjointFromOutstanding(unrelated.data(), 64));
}

TEST(ScratchArenaTest, PoolByteCapDropsOverflow) {
  ScratchArena arena(/*max_pooled_bytes=*/1024);
  arena.Acquire(64).Release();  // 512 bytes: pooled
  EXPECT_EQ(arena.pooled(), 1u);
  arena.Acquire(4096).Release();  // 32 KiB: over cap, freed
  EXPECT_EQ(arena.pooled(), 1u);
  EXPECT_LE(arena.pooled_bytes(), 1024u);
}

TEST(ScratchArenaTest, FusedCascadesNeverAliasLiveTensors) {
  auto shape = CubeShape::Make({16, 16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(3);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  ScratchArena arena;
  std::vector<uint32_t> dims{0, 1, 2};
  auto first = AggregateDims(*cube, dims, nullptr, nullptr, &arena);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(arena.outstanding(), 0u);
  // Results and inputs live outside the arena: an acquired buffer must be
  // disjoint from both.
  auto buf = arena.Acquire(256);
  EXPECT_TRUE(arena.DisjointFromOutstanding(cube->raw(), cube->size()));
  EXPECT_TRUE(arena.DisjointFromOutstanding(first->raw(), first->size()));
  EXPECT_FALSE(arena.DisjointFromOutstanding(buf.data(), buf.size()));
  buf.Release();
  // A second identical run reuses the pooled scratch.
  const uint64_t reuse_before = arena.reuse_count();
  auto second = AggregateDims(*cube, dims, nullptr, nullptr, &arena);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(arena.reuse_count(), reuse_before);
  EXPECT_TRUE(BitIdentical(*first, *second));
}

// Runs under the TSan CI job (suite name matches its -R filter):
// concurrent sessions hammering one shared arena.
TEST(FusedStress, ConcurrentCascadesShareOneArena) {
  auto shape = CubeShape::Make({16, 16, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(29);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  std::vector<CascadeStep> steps;
  for (uint32_t m = 0; m < 3; ++m) {
    for (uint32_t e = cube->extent(m); e > 1; e /= 2) {
      steps.push_back(CascadeStep{m, StepKind::kPartial});
    }
  }
  Tensor ref;
  {
    auto r = UnfusedCascade(*cube, steps);
    ASSERT_TRUE(r.ok());
    ref = *r;
  }

  ScratchArena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 16;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      BudgetOverride budget(t % 2 == 0 ? 0 : 32);  // mixed tiling shapes
      for (int i = 0; i < kIters; ++i) {
        auto out = CascadeAnalysis(*cube, steps, nullptr, nullptr, &arena);
        if (!out.ok() || !BitIdentical(ref, *out)) ++failures[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_EQ(arena.outstanding(), 0u);
}

}  // namespace
}  // namespace vecube
