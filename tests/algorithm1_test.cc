#include "select/algorithm1.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/basis.h"
#include "core/graph.h"
#include "select/pair_cost.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

// Exhaustively enumerates every basis reachable by Procedure 2 (recursive
// guillotine splitting) — independent of the DP implementation.
void EnumerateTilings(const ElementId& id, const CubeShape& shape,
                      std::vector<std::vector<ElementId>>* out) {
  out->push_back({id});
  for (uint32_t m = 0; m < id.ndim(); ++m) {
    if (!id.CanSplit(m, shape)) continue;
    auto p = id.Child(m, StepKind::kPartial, shape);
    auto r = id.Child(m, StepKind::kResidual, shape);
    std::vector<std::vector<ElementId>> left, right;
    EnumerateTilings(*p, shape, &left);
    EnumerateTilings(*r, shape, &right);
    for (const auto& l : left) {
      for (const auto& t : right) {
        std::vector<ElementId> combined = l;
        combined.insert(combined.end(), t.begin(), t.end());
        out->push_back(std::move(combined));
      }
    }
  }
}

TEST(Algorithm1Test, ReturnsNonRedundantBasis) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(1);
  auto pop = RandomViewPopulation(shape, &rng);
  auto selection = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(IsNonRedundantBasis(selection->basis, shape));
}

TEST(Algorithm1Test, PredictedCostMatchesPairModel) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(2);
  auto pop = RandomViewPopulation(shape, &rng);
  auto selection = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(selection.ok());
  EXPECT_NEAR(selection->predicted_cost,
              PopulationPairCost(selection->basis, *pop, shape), 1e-9);
}

TEST(Algorithm1Test, OptimalOverAllGuillotineTilings) {
  for (const auto& extents :
       {std::vector<uint32_t>{4}, std::vector<uint32_t>{8},
        std::vector<uint32_t>{2, 2}, std::vector<uint32_t>{4, 2}}) {
    const CubeShape shape = Shape(extents);
    for (uint64_t seed : {11u, 12u, 13u}) {
      Rng rng(seed);
      auto pop = RandomViewPopulation(shape, &rng);
      auto selection = SelectMinCostBasis(shape, *pop);
      ASSERT_TRUE(selection.ok());

      std::vector<std::vector<ElementId>> tilings;
      EnumerateTilings(ElementId::Root(shape.ndim()), shape, &tilings);
      double best = std::numeric_limits<double>::infinity();
      for (const auto& tiling : tilings) {
        best = std::min(best, PopulationPairCost(tiling, *pop, shape));
      }
      EXPECT_NEAR(selection->predicted_cost, best, 1e-9)
          << shape.ToString() << " seed " << seed;
    }
  }
}

TEST(Algorithm1Test, NeverWorseThanCubeOrWavelet) {
  // "the view element method is guaranteed [to] have a lower processing
  // cost than these methods since the view element graph is a superset".
  const CubeShape shape = Shape({4, 4, 4});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto pop = RandomViewPopulation(shape, &rng);
    auto selection = SelectMinCostBasis(shape, *pop);
    ASSERT_TRUE(selection.ok());
    const double cube_cost =
        PopulationPairCost(CubeOnlySet(shape), *pop, shape);
    const double wavelet_cost =
        PopulationPairCost(WaveletBasisSet(shape), *pop, shape);
    EXPECT_LE(selection->predicted_cost, cube_cost + 1e-9);
    EXPECT_LE(selection->predicted_cost, wavelet_cost + 1e-9);
  }
}

TEST(Algorithm1Test, SingleHotViewGetsMaterialized) {
  // If one aggregated view takes all the traffic, the optimal basis makes
  // it free (the view is in the selected set).
  const CubeShape shape = Shape({8, 8});
  auto hot = ElementId::AggregatedView(0b01, shape);
  auto pop = FixedPopulation({{*hot, 1.0}}, shape);
  auto selection = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(selection.ok());
  EXPECT_NE(std::find(selection->basis.begin(), selection->basis.end(), *hot),
            selection->basis.end());
  EXPECT_DOUBLE_EQ(selection->predicted_cost, 0.0);
}

TEST(Algorithm1Test, RootOnlyWorkloadKeepsCube) {
  const CubeShape shape = Shape({4, 4});
  auto pop = FixedPopulation({{ElementId::Root(2), 1.0}}, shape);
  auto selection = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(selection.ok());
  ASSERT_EQ(selection->basis.size(), 1u);
  EXPECT_TRUE(selection->basis[0].IsRoot());
  EXPECT_DOUBLE_EQ(selection->predicted_cost, 0.0);
}

TEST(Algorithm1Test, GeneralElementQueriesSupported) {
  // The population may contain arbitrary view elements, not only views.
  const CubeShape shape = Shape({4, 4});
  auto intermediate = ElementId::Intermediate({1, 1}, shape);
  auto residual = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto pop = FixedPopulation({{*intermediate, 0.7}, {*residual, 0.3}}, shape);
  auto selection = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(IsNonRedundantBasis(selection->basis, shape));
}

TEST(Algorithm1Test, RejectsOversizedGraphs) {
  // d=8, n=16 has 31^8 ~ 8.5e11 elements: far beyond the dense DP.
  const CubeShape shape = Shape(std::vector<uint32_t>(8, 16));
  Rng rng(5);
  auto pop = RandomViewPopulation(shape, &rng);
  EXPECT_FALSE(SelectMinCostBasis(shape, *pop).ok());
}

TEST(Algorithm1Test, DeterministicForSamePopulation) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(9);
  auto pop = RandomViewPopulation(shape, &rng);
  auto a = SelectMinCostBasis(shape, *pop);
  auto b = SelectMinCostBasis(shape, *pop);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->basis, b->basis);
  EXPECT_DOUBLE_EQ(a->predicted_cost, b->predicted_cost);
}

}  // namespace
}  // namespace vecube
