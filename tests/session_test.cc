#include "api/session.h"

#include <gtest/gtest.h>

#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 20);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

TEST(SessionTest, FromCubeValidates) {
  Fixture f = MakeFixture({4, 4}, 1);
  EXPECT_TRUE(OlapSession::FromCube(f.shape, f.cube).ok());
  auto other = CubeShape::Make({8, 8});
  EXPECT_FALSE(OlapSession::FromCube(*other, f.cube).ok());
  OlapSession::Options bad;
  bad.access_decay = 0.0;
  EXPECT_FALSE(OlapSession::FromCube(f.shape, f.cube, bad).ok());
}

TEST(SessionTest, ServesViewsBeforeOptimize) {
  Fixture f = MakeFixture({4, 4}, 2);
  auto session = OlapSession::FromCube(f.shape, f.cube);
  ASSERT_TRUE(session.ok());
  ElementComputer computer(f.shape, &f.cube);
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto got = (*session)->ViewByMask(mask);
    auto expected = computer.Compute(*ElementId::AggregatedView(mask, f.shape));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9));
  }
  EXPECT_EQ((*session)->stats().queries, 4u);
}

TEST(SessionTest, OptimizeNeedsWorkloadInfo) {
  Fixture f = MakeFixture({4, 4}, 3);
  OlapSession::Options options;
  options.track_accesses = false;
  auto session = OlapSession::FromCube(f.shape, f.cube, options);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->Optimize().IsFailedPrecondition());
}

TEST(SessionTest, DeclaredWorkloadDrivesOptimize) {
  Fixture f = MakeFixture({8, 8}, 4);
  auto session = OlapSession::FromCube(f.shape, f.cube);
  ASSERT_TRUE(session.ok());
  auto hot = ElementId::AggregatedView(0b01, f.shape);
  auto pop = FixedPopulation({{*hot, 1.0}}, f.shape);
  ASSERT_TRUE((*session)->DeclareWorkload(*pop).ok());
  ASSERT_TRUE((*session)->Optimize().ok());
  EXPECT_EQ((*session)->stats().optimizations, 1u);
  // The hot view must now be free.
  const uint64_t ops_before = (*session)->stats().assembly_ops;
  ASSERT_TRUE((*session)->ViewByMask(0b01).ok());
  EXPECT_EQ((*session)->stats().assembly_ops, ops_before);
  // Non-expansive: storage stayed at the cube volume.
  EXPECT_EQ((*session)->store().StorageCells(), f.shape.volume());
}

TEST(SessionTest, ObservedTrafficDrivesOptimize) {
  Fixture f = MakeFixture({8, 8}, 5);
  auto session = OlapSession::FromCube(f.shape, f.cube);
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*session)->ViewByMask(0b10).ok());
  }
  ASSERT_TRUE((*session)->Optimize().ok());
  const uint64_t ops_before = (*session)->stats().assembly_ops;
  ASSERT_TRUE((*session)->ViewByMask(0b10).ok());
  EXPECT_EQ((*session)->stats().assembly_ops, ops_before);
}

TEST(SessionTest, RedundancyBudgetZerosMultipleViews) {
  Fixture f = MakeFixture({8, 8}, 6);
  OlapSession::Options options;
  options.redundancy_budget_cells = f.shape.volume();
  auto session = OlapSession::FromCube(f.shape, f.cube, options);
  ASSERT_TRUE(session.ok());
  auto a = ElementId::AggregatedView(0b01, f.shape);
  auto b = ElementId::AggregatedView(0b10, f.shape);
  auto pop = FixedPopulation({{*a, 0.5}, {*b, 0.5}}, f.shape);
  ASSERT_TRUE((*session)->DeclareWorkload(*pop).ok());
  ASSERT_TRUE((*session)->Optimize().ok());
  const uint64_t ops_before = (*session)->stats().assembly_ops;
  ASSERT_TRUE((*session)->ViewByMask(0b01).ok());
  ASSERT_TRUE((*session)->ViewByMask(0b10).ok());
  EXPECT_EQ((*session)->stats().assembly_ops, ops_before);
  EXPECT_LE((*session)->store().StorageCells(),
            f.shape.volume() + options.redundancy_budget_cells);
}

TEST(SessionTest, RangeSumMatchesNaiveAfterOptimize) {
  Fixture f = MakeFixture({16, 16}, 7);
  auto session = OlapSession::FromCube(f.shape, f.cube);
  ASSERT_TRUE(session.ok());
  auto pop = FixedPopulation(
      {{*ElementId::AggregatedView(0b11, f.shape), 1.0}}, f.shape);
  ASSERT_TRUE((*session)->DeclareWorkload(*pop).ok());
  ASSERT_TRUE((*session)->Optimize().ok());

  auto range = RangeSpec::Make({3, 5}, {9, 7}, f.shape);
  auto fast = (*session)->RangeSum(*range);
  ASSERT_TRUE(fast.ok());
  double expected = 0.0;
  for (uint32_t x = 3; x < 12; ++x) {
    for (uint32_t y = 5; y < 12; ++y) {
      expected += f.cube.At({x, y});
    }
  }
  EXPECT_DOUBLE_EQ(*fast, expected);
  EXPECT_EQ((*session)->stats().range_queries, 1u);
  EXPECT_GT((*session)->stats().range_cell_reads, 0u);
}

TEST(SessionTest, FromRelationPipeline) {
  auto shape = CubeShape::Make({4, 4});
  auto relation = Relation::Make({"x", "y"}, {"v"});
  ASSERT_TRUE(relation->Append({1, 2}, {5.0}).ok());
  ASSERT_TRUE(relation->Append({1, 2}, {3.0}).ok());
  auto session = OlapSession::FromRelation(*relation, *shape);
  ASSERT_TRUE(session.ok());
  auto total = (*session)->ViewByMask(0b11);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], 8.0);
}

TEST(SessionTest, ElementQueriesWork) {
  Fixture f = MakeFixture({8}, 8);
  auto session = OlapSession::FromCube(f.shape, f.cube);
  ASSERT_TRUE(session.ok());
  auto p2 = ElementId::Intermediate({2}, f.shape);
  auto got = (*session)->Element(*p2);
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got->Total(), f.cube.Total());
}

}  // namespace
}  // namespace vecube
