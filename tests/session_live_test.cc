// Live-session tests: incremental fact appends, AVG queries over the
// parallel COUNT store, and padded (non-power-of-two) domains — the
// operational surface a deployment actually touches.

#include <gtest/gtest.h>

#include "api/session.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

TEST(SessionLiveTest, AddFactUpdatesViewsWithoutRematerialization) {
  auto shape = CubeShape::Make({8, 8});
  Rng rng(1);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  auto session = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(session.ok());

  // Tune the store for the grand total, so AddFact must maintain a
  // non-trivial element (the total aggregation).
  auto pop = FixedPopulation(
      {{*ElementId::AggregatedView(0b11, *shape), 1.0}}, *shape);
  ASSERT_TRUE((*session)->DeclareWorkload(*pop).ok());
  ASSERT_TRUE((*session)->Optimize().ok());

  auto before = (*session)->ViewByMask(0b11);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE((*session)->AddFact({3, 5}, 42.0).ok());
  ASSERT_TRUE((*session)->AddFact({0, 0}, -2.0).ok());

  auto after = (*session)->ViewByMask(0b11);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ((*after)[0], (*before)[0] + 40.0);

  // The session's base cube stayed consistent too.
  EXPECT_DOUBLE_EQ((*session)->cube().At({3, 5}), cube->At({3, 5}) + 42.0);
}

TEST(SessionLiveTest, AddFactValidates) {
  auto shape = CubeShape::Make({4, 4});
  auto session = OlapSession::FromCube(*shape, *Tensor::Zeros({4, 4}));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->AddFact({4, 0}, 1.0).IsOutOfRange());
  EXPECT_TRUE((*session)->AddFact({0}, 1.0).IsInvalidArgument());
}

TEST(SessionLiveTest, AvgRequiresCountCube) {
  auto shape = CubeShape::Make({4, 4});
  auto session = OlapSession::FromCube(*shape, *Tensor::Zeros({4, 4}));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->AvgByMask(0b11).status().IsFailedPrecondition());
}

TEST(SessionLiveTest, AvgFromRelation) {
  auto shape = CubeShape::Make({4, 4});
  auto relation = Relation::Make({"x", "y"}, {"v"});
  ASSERT_TRUE(relation->Append({1, 1}, {10.0}).ok());
  ASSERT_TRUE(relation->Append({1, 1}, {20.0}).ok());
  ASSERT_TRUE(relation->Append({1, 2}, {6.0}).ok());
  ASSERT_TRUE(relation->Append({3, 0}, {8.0}).ok());

  OlapSession::Options options;
  options.maintain_count_cube = true;
  auto session =
      OlapSession::FromRelation(*relation, *shape, CubeBuildOptions{}, options);
  ASSERT_TRUE(session.ok());

  // AVG per x over all y: x=1 -> 36/3 = 12; x=3 -> 8/1; x=0 -> 0 records.
  auto avg = (*session)->AvgByMask(0b10);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->At({1, 0}), 12.0);
  EXPECT_DOUBLE_EQ(avg->At({3, 0}), 8.0);
  EXPECT_DOUBLE_EQ(avg->At({0, 0}), 0.0);  // zero-count cell
}

TEST(SessionLiveTest, AvgStaysCorrectThroughAddFactAndOptimize) {
  auto shape = CubeShape::Make({4, 4});
  auto relation = Relation::Make({"x", "y"}, {"v"});
  ASSERT_TRUE(relation->Append({0, 0}, {4.0}).ok());
  OlapSession::Options options;
  options.maintain_count_cube = true;
  auto session =
      OlapSession::FromRelation(*relation, *shape, CubeBuildOptions{}, options);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE((*session)->AddFact({0, 0}, 10.0).ok());  // now 2 records
  auto avg = (*session)->AvgByMask(0b11);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ((*avg)[0], 7.0);

  // After re-optimization both sides rematerialize consistently.
  ASSERT_TRUE((*session)->Optimize().ok());
  ASSERT_TRUE((*session)->AddFact({2, 2}, 1.0).ok());
  auto avg2 = (*session)->AvgByMask(0b11);
  ASSERT_TRUE(avg2.ok());
  EXPECT_DOUBLE_EQ((*avg2)[0], 15.0 / 3.0);
}

TEST(SessionLiveTest, PaddedShapeHandlesRaggedDomains) {
  // 5 products x 13 weeks pads to 8 x 16; padding cells hold zero and do
  // not perturb SUM aggregates.
  auto shape = CubeShape::MakePadded({5, 13});
  ASSERT_TRUE(shape.ok());
  EXPECT_EQ(shape->extents(), (std::vector<uint32_t>{8, 16}));

  auto relation = Relation::Make({"product", "week"}, {"sales"});
  ASSERT_TRUE(relation->Append({4, 12}, {100.0}).ok());
  ASSERT_TRUE(relation->Append({0, 0}, {50.0}).ok());
  auto session = OlapSession::FromRelation(*relation, *shape);
  ASSERT_TRUE(session.ok());

  auto total = (*session)->ViewByMask(0b11);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], 150.0);

  auto by_product = (*session)->ViewByMask(0b10);
  ASSERT_TRUE(by_product.ok());
  EXPECT_DOUBLE_EQ(by_product->At({4, 0}), 100.0);
  EXPECT_DOUBLE_EQ(by_product->At({5, 0}), 0.0);  // padding row
}

TEST(SessionLiveTest, PaddedShapeValidation) {
  EXPECT_FALSE(CubeShape::MakePadded({0, 4}).ok());
  auto already = CubeShape::MakePadded({8, 16});
  ASSERT_TRUE(already.ok());
  EXPECT_EQ(already->extents(), (std::vector<uint32_t>{8, 16}));
}

}  // namespace
}  // namespace vecube
