// Write-ahead log: append/scan round trips, lsn continuity across reopen
// and reset, torn-tail detection and truncation, rollback of failed
// appends, corruption rejection, and append serialization under
// concurrent writers.

#include "core/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cube/shape.h"
#include "util/failpoint.h"

namespace vecube {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

CubeShape TestShape() {
  auto shape = CubeShape::Make({8, 4});
  EXPECT_TRUE(shape.ok());
  return *shape;
}

CellDelta Delta(uint32_t x, uint32_t y, double amount) {
  CellDelta delta;
  delta.coords = {x, y};
  delta.delta = amount;
  return delta;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(
        (std::string(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name()) +
         "_wal.log")
            .c_str());
    std::remove(path_.c_str());
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(WalTest, AppendScanRoundTrip) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->last_lsn(), 0u);
  auto lsn1 = (*wal)->Append(Delta(1, 2, 5.0));
  auto lsn2 = (*wal)->Append(Delta(7, 0, -3.5));
  ASSERT_TRUE(lsn1.ok() && lsn2.ok());
  EXPECT_EQ(*lsn1, 1u);
  EXPECT_EQ(*lsn2, 2u);

  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].lsn, 1u);
  EXPECT_EQ(scan->records[0].delta.coords, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(scan->records[0].delta.delta, 5.0);
  EXPECT_EQ(scan->records[1].lsn, 2u);
  EXPECT_EQ(scan->records[1].delta.delta, -3.5);
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  const CubeShape shape = TestShape();
  {
    auto wal = WriteAheadLog::Open(path_, shape);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Delta(0, 0, 1.0)).ok());
  }
  WalScan scan;
  auto wal = WriteAheadLog::Open(path_, shape, &scan);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(scan.records.size(), 1u);
  auto lsn = (*wal)->Append(Delta(0, 1, 2.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST_F(WalTest, ShapeMismatchRejected) {
  const CubeShape shape = TestShape();
  {
    auto wal = WriteAheadLog::Open(path_, shape);
    ASSERT_TRUE(wal.ok());
  }
  auto other = CubeShape::Make({4, 4});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(WriteAheadLog::Scan(path_, *other).ok());
  EXPECT_FALSE(WriteAheadLog::Open(path_, *other).ok());
}

TEST_F(WalTest, TornTailDetectedAndTruncatedOnOpen) {
  const CubeShape shape = TestShape();
  {
    auto wal = WriteAheadLog::Open(path_, shape);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Delta(1, 1, 1.0)).ok());
    ASSERT_TRUE((*wal)->Append(Delta(2, 2, 2.0)).ok());
  }
  {
    // A crash mid-append leaves a torn record: simulate with raw garbage.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("\x20\x00\x00\x00garbage", 11);
  }
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records.size(), 2u) << "committed prefix survives";

  // Open truncates the tail; a fresh append lands cleanly after it.
  WalScan reopened;
  auto wal = WriteAheadLog::Open(path_, shape, &reopened);
  ASSERT_TRUE(wal.ok());
  auto lsn = (*wal)->Append(Delta(3, 3, 3.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  auto rescan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->torn_tail);
  EXPECT_EQ(rescan->records.size(), 3u);
}

TEST_F(WalTest, BitFlipInRecordStopsScanAtPriorRecord) {
  const CubeShape shape = TestShape();
  uint64_t record_start = 0;
  {
    auto wal = WriteAheadLog::Open(path_, shape);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Delta(1, 1, 1.0)).ok());
    auto size = FileSize(path_);
    ASSERT_TRUE(size.ok());
    record_start = *size;
    ASSERT_TRUE((*wal)->Append(Delta(2, 2, 2.0)).ok());
  }
  {
    // Flip one bit inside the second record's payload.
    std::fstream file(path_,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(record_start) + 8 + 2);
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(record_start) + 8 + 2);
    byte = static_cast<char>(byte ^ 0x10);
    file.write(&byte, 1);
  }
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].delta.delta, 1.0);
}

TEST_F(WalTest, HeaderCorruptionRejectsWholeLog) {
  const CubeShape shape = TestShape();
  {
    auto wal = WriteAheadLog::Open(path_, shape);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Delta(0, 0, 1.0)).ok());
  }
  {
    // Corrupt the base_lsn field (covered by the header CRC).
    std::fstream file(path_,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(8 + 4 + 4 + 2 * 4);
    const char byte = 0x7F;
    file.write(&byte, 1);
  }
  EXPECT_FALSE(WriteAheadLog::Scan(path_, shape).ok());
}

TEST_F(WalTest, FailedAppendRollsBackAndLogStaysClean) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Delta(1, 1, 1.0)).ok());

  FailpointAction torn;
  torn.kind = FailpointAction::Kind::kShortWrite;
  torn.short_bytes = 5;
  Failpoints::Arm("wal.append", torn);
  EXPECT_FALSE((*wal)->Append(Delta(2, 2, 2.0)).ok());

  // The torn bytes were truncated away; the log scans clean and the next
  // append reuses the rolled-back lsn.
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->records.size(), 1u);
  auto lsn = (*wal)->Append(Delta(3, 3, 3.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST_F(WalTest, ResetContinuesSequenceAndSurvivesFailure) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Delta(1, 1, 1.0)).ok());
  ASSERT_TRUE((*wal)->Append(Delta(2, 2, 2.0)).ok());

  // A failed reset keeps the old log intact and appendable.
  Failpoints::Arm("wal.reset", FailpointAction{});
  EXPECT_FALSE((*wal)->Reset().ok());
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u) << "old log still complete";

  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->records_in_log(), 0u);
  auto lsn = (*wal)->Append(Delta(3, 3, 3.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u) << "lsn sequence continues across reset";
  auto rescan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->base_lsn, 3u);
  EXPECT_EQ(rescan->records.size(), 1u);
}

TEST_F(WalTest, OutOfRangeDeltaRejectedBeforeWrite) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->Append(Delta(8, 0, 1.0)).ok()) << "coord out of extent";
  CellDelta bad;
  bad.coords = {1};
  EXPECT_FALSE((*wal)->Append(bad).ok()) << "arity mismatch";
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->torn_tail);
}

TEST_F(WalTest, CreateAtExplicitBaseLsn) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape, nullptr,
                                 /*sync_each_append=*/true,
                                 /*create_base_lsn=*/42);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->last_lsn(), 41u);
  auto lsn = (*wal)->Append(Delta(0, 0, 1.0));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 42u);
}

// Regression (concurrency contracts PR): WriteAheadLog is internally
// synchronized — concurrent Append calls must hand out unique, gap-free
// lsns and leave every record durable and well-formed. Before the
// internal mutex, concurrent appends could interleave the write and the
// lsn bump, tearing records and duplicating lsns.
TEST_F(WalTest, ConcurrentAppendsSerializeCleanly) {
  const CubeShape shape = TestShape();
  auto wal = WriteAheadLog::Open(path_, shape, nullptr,
                                 /*sync_each_append=*/false);
  ASSERT_TRUE(wal.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  std::vector<std::vector<uint64_t>> lsns(kThreads);
  {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto lsn = (*wal)->Append(
              Delta(static_cast<uint32_t>(t), 0, static_cast<double>(i)));
          ASSERT_TRUE(lsn.ok());
          lsns[t].push_back(*lsn);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }

  // Every lsn handed out exactly once, covering [1, kThreads*kPerThread].
  std::vector<uint64_t> all;
  for (const auto& per_thread : lsns) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i + 1);
  EXPECT_EQ((*wal)->last_lsn(), all.size());

  // Close the log (flushing the append buffer) before scanning.
  (*wal).reset();

  // The file scans clean: no torn interleavings, lsns dense.
  auto scan = WriteAheadLog::Scan(path_, shape);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), all.size());
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, i + 1);
  }
}

}  // namespace
}  // namespace vecube
