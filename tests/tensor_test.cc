#include "cube/tensor.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

TEST(TensorTest, ZerosInitializes) {
  auto t = Tensor::Zeros({2, 3});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 6u);
  for (uint64_t i = 0; i < t->size(); ++i) EXPECT_EQ((*t)[i], 0.0);
}

TEST(TensorTest, NonPowerOfTwoExtentsAllowed) {
  // View element data arrays can have extent 1, 3, etc. along aggregated
  // dimensions; Tensor does not impose the cube's power-of-two rule.
  EXPECT_TRUE(Tensor::Zeros({3, 5}).ok());
  EXPECT_TRUE(Tensor::Zeros({1, 1, 1}).ok());
}

TEST(TensorTest, ZeroExtentRejected) {
  EXPECT_FALSE(Tensor::Zeros({2, 0}).ok());
  EXPECT_FALSE(Tensor::Zeros({}).ok());
}

TEST(TensorTest, FromDataValidatesSize) {
  EXPECT_TRUE(Tensor::FromData({2, 2}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(Tensor::FromData({2, 2}, {1, 2, 3}).ok());
}

TEST(TensorTest, RowMajorLayout) {
  auto t = Tensor::FromData({2, 3}, {0, 1, 2, 10, 11, 12});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->At({0, 0}), 0.0);
  EXPECT_EQ(t->At({0, 2}), 2.0);
  EXPECT_EQ(t->At({1, 0}), 10.0);
  EXPECT_EQ(t->At({1, 2}), 12.0);
}

TEST(TensorTest, SetAndAt) {
  auto t = Tensor::Zeros({4, 4});
  t->Set({2, 3}, 7.5);
  EXPECT_EQ(t->At({2, 3}), 7.5);
  EXPECT_EQ(t->At({3, 2}), 0.0);
}

TEST(TensorTest, FlatIndexMatchesStrides) {
  auto t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t->FlatIndex({0, 0, 0}), 0u);
  EXPECT_EQ(t->FlatIndex({0, 0, 3}), 3u);
  EXPECT_EQ(t->FlatIndex({0, 1, 0}), 4u);
  EXPECT_EQ(t->FlatIndex({1, 0, 0}), 12u);
  EXPECT_EQ(t->FlatIndex({1, 2, 3}), 23u);
}

TEST(TensorTest, Total) {
  auto t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t->Total(), 10.0);
}

TEST(TensorTest, ApproxEquals) {
  auto a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto b = Tensor::FromData({2, 2}, {1, 2, 3, 4 + 1e-12});
  auto c = Tensor::FromData({2, 2}, {1, 2, 3, 5});
  auto d = Tensor::FromData({4}, {1, 2, 3, 4});
  EXPECT_TRUE(a->ApproxEquals(*b));
  EXPECT_FALSE(a->ApproxEquals(*c));
  EXPECT_FALSE(a->ApproxEquals(*d));  // different shape
}

TEST(TensorTest, ShapeString) {
  auto t = Tensor::Zeros({2, 8});
  EXPECT_EQ(t->ShapeString(), "[2, 8]");
}

TEST(TensorTest, CopyIsDeep) {
  auto t = Tensor::FromData({2}, {1, 2});
  Tensor copy = *t;
  copy[0] = 99;
  EXPECT_EQ((*t)[0], 1.0);
}

}  // namespace
}  // namespace vecube
