// Durability subsystem: v2 snapshot integrity (exhaustive truncation and
// bit-flip sweeps — every corruption is detected, never a clean wrong
// load), degraded loads with per-element quarantine, self-healing repair,
// and OlapSession checkpoint / WAL-replay recovery.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/io.h"
#include "core/repair.h"
#include "core/wal.h"
#include "cube/synthetic.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace vecube {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string TestName() {
  return ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size);
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipBitOnDisk(const std::string& path, uint64_t byte_offset,
                   uint8_t mask) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(byte_offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(byte_offset));
  byte = static_cast<char>(byte ^ mask);
  file.write(&byte, 1);
}

ElementStore MakeBasisStore(const CubeShape& shape, uint64_t seed) {
  Rng rng(seed);
  auto cube = UniformIntegerCube(shape, &rng, -50, 50);
  ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(WaveletBasisSet(shape));
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

class DurabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(DurabilityTest, V2SaveLoadRoundTripWithMeta) {
  const std::string path = TempPath(TestName() + ".vecube");
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  const ElementStore store = MakeBasisStore(*shape, 1);
  SnapshotMeta meta;
  meta.wal_seq = 1234;
  meta.flags = kSnapshotRootIsCube;
  ASSERT_TRUE(SaveStoreV2(store, path, meta).ok());

  SnapshotReport report;
  auto loaded = LoadStoreV2(path, &report);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.version, 2);
  EXPECT_EQ(report.meta.wal_seq, 1234u);
  EXPECT_EQ(report.meta.flags, kSnapshotRootIsCube);
  EXPECT_EQ(loaded->size(), store.size());
  for (const ElementId& id : store.Ids()) {
    auto original = store.Get(id);
    auto restored = loaded->Get(id);
    ASSERT_TRUE(original.ok() && restored.ok()) << id.ToString();
    EXPECT_TRUE((*restored)->ApproxEquals(**original, 0.0));
  }

  // The strict auto-detecting loader accepts a clean v2 file too.
  auto strict = LoadStore(path);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->size(), store.size());
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, ExhaustiveBitFlipSweepAlwaysDetected) {
  // Flip every bit of every byte of a small v2 snapshot. Each corruption
  // must surface as a load error or a quarantined element — NEVER as a
  // clean load (a clean wrong load is silent data corruption).
  const std::string path = TempPath(TestName() + ".vecube");
  auto shape = CubeShape::Make({4, 2});
  ASSERT_TRUE(shape.ok());
  const ElementStore store = MakeBasisStore(*shape, 2);
  ASSERT_TRUE(SaveStoreV2(store, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> corrupt = pristine;
      corrupt[offset] =
          static_cast<char>(corrupt[offset] ^ (1 << bit));
      WriteAll(path, corrupt);
      SnapshotReport report;
      auto loaded = LoadStoreV2(path, &report);
      EXPECT_FALSE(loaded.ok() && report.clean())
          << "undetected flip at byte " << offset << " bit " << bit;
      // The strict loader must reject every corruption outright.
      EXPECT_FALSE(LoadStore(path).ok())
          << "strict load survived flip at byte " << offset << " bit "
          << bit;
    }
  }
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, ExhaustiveTruncationSweepAlwaysDetected) {
  const std::string path = TempPath(TestName() + ".vecube");
  auto shape = CubeShape::Make({4, 2});
  ASSERT_TRUE(shape.ok());
  const ElementStore store = MakeBasisStore(*shape, 3);
  ASSERT_TRUE(SaveStoreV2(store, path).ok());
  const std::vector<char> pristine = ReadAll(path);

  for (size_t cut = 0; cut < pristine.size(); ++cut) {
    WriteAll(path, std::vector<char>(pristine.begin(),
                                     pristine.begin() +
                                         static_cast<ptrdiff_t>(cut)));
    SnapshotReport report;
    auto loaded = LoadStoreV2(path, &report);
    EXPECT_FALSE(loaded.ok() && report.clean()) << "cut at " << cut;
    EXPECT_FALSE(LoadStore(path).ok()) << "strict load at cut " << cut;
  }
  // Trailing garbage is equally rejected.
  std::vector<char> padded = pristine;
  padded.push_back('x');
  WriteAll(path, padded);
  SnapshotReport report;
  EXPECT_FALSE(LoadStoreV2(path, &report).ok() && report.clean());
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, CorruptElementQuarantinedServedAroundAndRepaired) {
  const std::string path = TempPath(TestName() + ".vecube");
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(4);
  auto cube = UniformIntegerCube(*shape, &rng, -50, 50);
  ASSERT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto view = ElementId::AggregatedView(0b10, *shape);
  ASSERT_TRUE(view.ok());
  auto built =
      computer.Materialize({ElementId::Root(2), *view});
  ASSERT_TRUE(built.ok());
  const ElementStore& store = *built;
  ASSERT_TRUE(SaveStoreV2(store, path).ok());

  // The last payload byte on disk belongs to the last directory entry;
  // sorted order puts the root (all-zero codes) first, so the damaged
  // element is the view — which the surviving root can re-derive.
  const auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  FlipBitOnDisk(path, *size - 1, 0x04);

  SnapshotReport report;
  auto loaded = LoadStoreV2(path, &report);
  ASSERT_TRUE(loaded.ok()) << "per-element damage must not fail the load";
  EXPECT_EQ(report.corrupt_elements, 1u);
  ASSERT_EQ(loaded->quarantined_count(), 1u);
  const ElementId damaged = loaded->QuarantinedIds()[0];
  ASSERT_NE(damaged, ElementId::Root(2));
  EXPECT_FALSE(loaded->Contains(damaged)) << "untrusted data is not served";
  EXPECT_FALSE(loaded->Get(damaged).ok());

  // Degraded service: queries not needing the damaged element — and even
  // the damaged view itself, via assembly from the root — still answer.
  AssemblyEngine degraded(&*loaded);
  auto root_again = degraded.Assemble(ElementId::Root(2));
  ASSERT_TRUE(root_again.ok());
  EXPECT_TRUE(root_again->ApproxEquals(*cube, 0.0));

  // Self-healing: repair re-derives the element bit-exactly.
  auto repair = RepairStore(&*loaded);
  ASSERT_TRUE(repair.ok());
  EXPECT_TRUE(repair->complete());
  ASSERT_EQ(repair->repaired.size(), 1u);
  EXPECT_EQ(repair->repaired[0], damaged);
  EXPECT_EQ(loaded->quarantined_count(), 0u);
  auto healed = loaded->Get(damaged);
  auto original = store.Get(damaged);
  ASSERT_TRUE(healed.ok() && original.ok());
  EXPECT_TRUE((*healed)->ApproxEquals(**original, 0.0)) << "bit-exact";
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, UnreconstructibleCorruptionReportedNeverZeroed) {
  const std::string path = TempPath(TestName() + ".vecube");
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(5);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto view = ElementId::AggregatedView(0b01, *shape);
  ASSERT_TRUE(view.ok());
  auto built = computer.Materialize({*view});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(SaveStoreV2(*built, path).ok());
  const auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  FlipBitOnDisk(path, *size - 1, 0x01);

  SnapshotReport report;
  auto loaded = LoadStoreV2(path, &report);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->quarantined_count(), 1u);

  // The lone element has no surviving reconstruction path: repair must
  // say so, and the element must stay quarantined — not silently zeroed.
  auto repair = RepairStore(&*loaded);
  ASSERT_TRUE(repair.ok());
  EXPECT_FALSE(repair->complete());
  ASSERT_EQ(repair->unrepaired.size(), 1u);
  EXPECT_EQ(repair->unrepaired[0], *view);
  EXPECT_TRUE(loaded->IsQuarantined(*view));
  EXPECT_FALSE(loaded->Get(*view).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Session-level durability.

OlapSessionOptions DurableOptions(const std::string& dir) {
  OlapSessionOptions options;
  options.durability.enabled = true;
  options.durability.directory = dir;
  options.verify_invariants = true;
  options.num_threads = 1;
  return options;
}

std::string MakeSessionDir() {
  const std::string dir = TempPath(TestName() + "_dur");
  ::mkdir(dir.c_str(), 0755);
  for (const char* file :
       {"store.vecube", "cube.vecube", "store.count.vecube",
        "cube.count.vecube", "wal.log"}) {
    std::remove((dir + "/" + file).c_str());
  }
  return dir;
}

Tensor MakeIntegerCube(const CubeShape& shape, uint64_t seed) {
  Rng rng(seed);
  auto cube = UniformIntegerCube(shape, &rng, -20, 20);
  EXPECT_TRUE(cube.ok());
  return std::move(cube).value();
}

void ExpectCubesBitExact(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.size(), want.size());
  for (uint64_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "cell " << i;
  }
}

TEST_F(DurabilityTest, SessionCheckpointReopenIsBitExact) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 6);
  auto session = OlapSession::FromCube(*shape, expected, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->durable());

  auto add = [&](std::vector<uint32_t> coords, double amount) {
    ASSERT_TRUE((*session)->AddFact(coords, amount).ok());
    expected[expected.FlatIndex(coords)] += amount;
  };
  add({1, 2}, 5.0);
  add({7, 3}, -2.0);
  ASSERT_TRUE((*session)->Checkpoint().ok());
  add({0, 0}, 11.0);
  add({1, 2}, 3.0);
  EXPECT_EQ((*session)->stats().wal_appends, 4u);
  session->reset();  // "crash": nothing flushed beyond the WAL

  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectCubesBitExact((*reopened)->cube(), expected);
  EXPECT_EQ((*reopened)->stats().wal_replayed, 2u)
      << "only post-checkpoint records replay";

  // Served answers come from the recovered store, not just the cube.
  auto total = (*reopened)->ViewByMask(0b11);
  ASSERT_TRUE(total.ok());
  double want = 0.0;
  for (uint64_t i = 0; i < expected.size(); ++i) want += expected[i];
  EXPECT_EQ((*total)[0], want);
}

TEST_F(DurabilityTest, CrashBetweenCheckpointRenamesReplaysIdempotently) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 7);
  auto session = OlapSession::FromCube(*shape, expected, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AddFact({2, 1}, 4.0).ok());
  expected[expected.FlatIndex({2, 1})] += 4.0;
  ASSERT_TRUE((*session)->AddFact({5, 0}, 9.0).ok());
  expected[expected.FlatIndex({5, 0})] += 9.0;

  // The checkpoint's first rename (the cube snapshot) lands; the second
  // (the store snapshot) "crashes". Components now disagree on wal_seq.
  Failpoints::Arm("snapshot.rename", FailpointAction{}, /*skip=*/1);
  EXPECT_FALSE((*session)->Checkpoint().ok());
  session->reset();
  Failpoints::DisarmAll();

  // Replay must apply records 1-2 to the stale store but skip them for
  // the fresh cube — applying them twice would double the deltas.
  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectCubesBitExact((*reopened)->cube(), expected);
  auto total = (*reopened)->ViewByMask(0b11);
  ASSERT_TRUE(total.ok());
  double want = 0.0;
  for (uint64_t i = 0; i < expected.size(); ++i) want += expected[i];
  EXPECT_EQ((*total)[0], want) << "store-derived answer matches too";
}

TEST_F(DurabilityTest, TornWalTailTruncatedOnReopen) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 8);
  auto session = OlapSession::FromCube(*shape, expected, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AddFact({3, 3}, 7.0).ok());
  expected[expected.FlatIndex({3, 3})] += 7.0;
  session->reset();

  {
    // A crash mid-append leaves torn bytes after the committed record.
    std::ofstream out(dir + "/wal.log", std::ios::binary | std::ios::app);
    out.write("\x20\x00\x00\x00torn", 8);
  }
  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectCubesBitExact((*reopened)->cube(), expected);
  EXPECT_EQ((*reopened)->stats().wal_replayed, 1u);
  // The truncated log accepts new facts cleanly.
  ASSERT_TRUE((*reopened)->AddFact({0, 1}, 1.0).ok());
}

TEST_F(DurabilityTest, CorruptCubeSnapshotSelfHealsFromStore) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 9);
  auto session = OlapSession::FromCube(*shape, expected, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AddFact({4, 2}, 6.0).ok());
  expected[expected.FlatIndex({4, 2})] += 6.0;
  session->reset();

  // Rot the base-cube snapshot's payload; the element store still holds
  // the root, so recovery assembles the cube from it.
  const std::string cube_path = dir + "/cube.vecube";
  auto size = FileSize(cube_path);
  ASSERT_TRUE(size.ok());
  FlipBitOnDisk(cube_path, *size - 1, 0x08);

  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectCubesBitExact((*reopened)->cube(), expected);
}

TEST_F(DurabilityTest, GlobalDamageFailsCleanlyNotSilently) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Tensor cube = MakeIntegerCube(*shape, 10);
  auto session = OlapSession::FromCube(*shape, cube, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  session->reset();

  // Destroy both copies of the base data: cube snapshot payload AND the
  // store's root payload. Nothing can reconstruct the cube; the open
  // must fail with a diagnostic, not fabricate zeros.
  for (const char* file : {"cube.vecube", "store.vecube"}) {
    const std::string path = dir + "/" + file;
    auto size = FileSize(path);
    ASSERT_TRUE(size.ok());
    FlipBitOnDisk(path, *size - 1, 0x10);
  }
  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInternal());
}

TEST_F(DurabilityTest, AutoCheckpointTruncatesWal) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 11);
  OlapSessionOptions options = DurableOptions(dir);
  options.durability.checkpoint_every = 2;
  auto session = OlapSession::FromCube(*shape, expected, options);
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 4; ++i) {
    std::vector<uint32_t> coords = {static_cast<uint32_t>(i), 0};
    ASSERT_TRUE((*session)->AddFact(coords, 1.0).ok());
    expected[expected.FlatIndex(coords)] += 1.0;
  }
  // Initial checkpoint + one per 2 facts.
  EXPECT_EQ((*session)->stats().checkpoints, 3u);
  session->reset();

  auto reopened = OlapSession::OpenDurable(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().wal_replayed, 0u)
      << "everything was folded into snapshots";
  ExpectCubesBitExact((*reopened)->cube(), expected);
}

TEST_F(DurabilityTest, CountSideRecoversAndServesAvg) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Tensor zeros;
  {
    auto z = Tensor::Zeros(shape->extents());
    ASSERT_TRUE(z.ok());
    zeros = std::move(z).value();
  }
  OlapSessionOptions options = DurableOptions(dir);
  options.maintain_count_cube = true;
  auto session = OlapSession::FromCube(*shape, zeros, options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AddFact({1, 1}, 10.0).ok());
  ASSERT_TRUE((*session)->AddFact({1, 1}, 20.0).ok());
  ASSERT_TRUE((*session)->AddFact({2, 0}, 7.0).ok());
  session->reset();

  auto reopened = OlapSession::OpenDurable(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto avg = (*reopened)->AvgByMask(0b11);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ((*avg)[0], 37.0 / 3.0);
  auto cell_avg = (*reopened)->AvgByMask(0);
  ASSERT_TRUE(cell_avg.ok());
  EXPECT_EQ((*cell_avg)[cell_avg->FlatIndex({1, 1})], 15.0);
}

TEST_F(DurabilityTest, SessionRepairReinstatesQuarantinedElements) {
  const std::string dir = MakeSessionDir();
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  Tensor expected = MakeIntegerCube(*shape, 12);
  auto session = OlapSession::FromCube(*shape, expected, DurableOptions(dir));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Checkpoint().ok());
  session->reset();

  // Rot the store's only element (the root). The cube snapshot survives,
  // so the session opens degraded and Repair() restores the store from
  // the authoritative in-memory cube.
  const std::string store_path = dir + "/store.vecube";
  auto size = FileSize(store_path);
  ASSERT_TRUE(size.ok());
  FlipBitOnDisk(store_path, *size - 1, 0x02);

  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->store().quarantined_count(), 1u);
  ExpectCubesBitExact((*reopened)->cube(), expected);

  auto repair = (*reopened)->Repair();
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->complete());
  EXPECT_EQ((*reopened)->store().quarantined_count(), 0u);
  auto root = (*reopened)->store().Get(ElementId::Root(2));
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE((*root)->ApproxEquals(expected, 0.0));
}

TEST_F(DurabilityTest, DurabilityOffMeansNoFilesNoWal) {
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Tensor cube = MakeIntegerCube(*shape, 13);
  auto session = OlapSession::FromCube(*shape, cube, {});
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->durable());
  ASSERT_TRUE((*session)->AddFact({0, 0}, 1.0).ok());
  EXPECT_EQ((*session)->stats().wal_appends, 0u);
  EXPECT_TRUE((*session)->Checkpoint().IsFailedPrecondition());
}

}  // namespace
}  // namespace vecube
