// Cross-module property tests: the paper's four operator properties
// (perfect reconstruction, non-expansiveness, distributivity,
// separability) plus system-level invariants, swept over shapes and seeds
// with parameterized gtest.

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "haar/cascade.h"
#include "select/algorithm1.h"
#include "select/pair_cost.h"
#include "select/procedure3.h"
#include "util/rng.h"
#include "workload/population.h"

namespace vecube {
namespace {

struct Param {
  std::vector<uint32_t> extents;
  uint64_t seed;
};

void PrintTo(const Param& p, std::ostream* os) {
  *os << "{[";
  for (size_t i = 0; i < p.extents.size(); ++i) {
    if (i) *os << "x";
    *os << p.extents[i];
  }
  *os << "], seed=" << p.seed << "}";
}

class CubeProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto shape = CubeShape::Make(GetParam().extents);
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(GetParam().seed);
    auto cube = UniformIntegerCube(shape_, &rng, -25, 25);
    ASSERT_TRUE(cube.ok());
    cube_ = std::move(cube).value();
  }

  CubeShape shape_;
  Tensor cube_;
};

TEST_P(CubeProperty, PerfectReconstructionThroughFullWaveletRoundTrip) {
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize(WaveletBasisSet(shape_));
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);
  auto back = engine.Assemble(ElementId::Root(shape_.ndim()));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(cube_, 0.0));
}

TEST_P(CubeProperty, NonExpansivenessOfEverySplit) {
  ViewElementGraph graph(shape_);
  graph.ForEachElement([&](const ElementId& id) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (!id.CanSplit(m, shape_)) continue;
      auto p = id.Child(m, StepKind::kPartial, shape_);
      auto r = id.Child(m, StepKind::kResidual, shape_);
      EXPECT_EQ(p->DataVolume(shape_) + r->DataVolume(shape_),
                id.DataVolume(shape_));
    }
  });
}

TEST_P(CubeProperty, SeparabilityOfRandomCascades) {
  // A random cascade and a per-dimension-stable permutation of it agree.
  Rng rng(GetParam().seed + 1000);
  std::vector<CascadeStep> steps;
  std::vector<uint32_t> level(shape_.ndim(), 0);
  for (int tries = 0; tries < 8; ++tries) {
    const uint32_t m = static_cast<uint32_t>(rng.UniformU64(shape_.ndim()));
    if (level[m] >= shape_.log_extent(m)) continue;
    ++level[m];
    steps.push_back(CascadeStep{
        m, rng.UniformU64(2) ? StepKind::kPartial : StepKind::kResidual});
  }
  // Stable-partition the steps by dimension: relative per-dim order kept.
  std::vector<CascadeStep> permuted;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    for (const CascadeStep& s : steps) {
      if (s.dim == m) permuted.push_back(s);
    }
  }
  auto a = ApplyCascade(cube_, steps);
  auto b = ApplyCascade(cube_, permuted);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 0.0));
}

TEST_P(CubeProperty, EveryAggregatedViewMatchesBruteForce) {
  ElementComputer computer(shape_, &cube_);
  const uint32_t d = shape_.ndim();
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    auto view = ElementId::AggregatedView(mask, shape_);
    auto fast = computer.Compute(*view);
    ASSERT_TRUE(fast.ok());
    // Brute force: sum cells into the reduced coordinates.
    auto slow = Tensor::Zeros(view->DataExtents(shape_));
    for (uint64_t flat = 0; flat < cube_.size(); ++flat) {
      auto coords = shape_.Coords(flat);
      for (uint32_t m = 0; m < d; ++m) {
        if ((mask >> m) & 1u) coords[m] = 0;
      }
      (*slow)[slow->FlatIndex(coords)] += cube_[flat];
    }
    EXPECT_TRUE(fast->ApproxEquals(*slow, 1e-9)) << "mask " << mask;
  }
}

TEST_P(CubeProperty, Algorithm1BasisAlwaysValidAndCheapest) {
  Rng rng(GetParam().seed + 2000);
  auto pop = RandomViewPopulation(shape_, &rng);
  auto selection = SelectMinCostBasis(shape_, *pop);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(IsNonRedundantBasis(selection->basis, shape_));
  // Storage is exactly non-expansive.
  EXPECT_EQ(StorageVolume(selection->basis, shape_), shape_.volume());
  // No worse than the canned non-redundant bases.
  EXPECT_LE(selection->predicted_cost,
            PopulationPairCost(CubeOnlySet(shape_), *pop, shape_) + 1e-9);
  EXPECT_LE(selection->predicted_cost,
            PopulationPairCost(WaveletBasisSet(shape_), *pop, shape_) + 1e-9);
}

TEST_P(CubeProperty, AssemblyFromSelectedBasisIsExactAndAsPlanned) {
  Rng rng(GetParam().seed + 3000);
  auto pop = RandomViewPopulation(shape_, &rng);
  auto selection = SelectMinCostBasis(shape_, *pop);
  ASSERT_TRUE(selection.ok());
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize(selection->basis);
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);
  auto calc = Procedure3Calculator::Make(shape_, selection->basis);
  ASSERT_TRUE(calc.ok());
  for (const QuerySpec& q : pop->queries()) {
    auto expected = computer.Compute(q.view);
    OpCounter ops;
    auto got = engine.Assemble(q.view, &ops);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9));
    EXPECT_EQ(ops.adds, calc->Cost(q.view));
  }
}

TEST_P(CubeProperty, TotalMassPreservedByAllIntermediates) {
  // Every all-partial intermediate preserves the cube's total mass.
  ElementComputer computer(shape_, &cube_);
  for (const ElementId& id :
       ViewElementGraph(shape_).IntermediateElements()) {
    auto data = computer.Compute(id);
    ASSERT_TRUE(data.ok());
    EXPECT_NEAR(data->Total(), cube_.Total(), 1e-9) << id.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeProperty,
    ::testing::Values(Param{{4}, 1}, Param{{16}, 2}, Param{{2, 2}, 3},
                      Param{{4, 4}, 4}, Param{{8, 4}, 5}, Param{{2, 16}, 6},
                      Param{{4, 4, 4}, 7}, Param{{2, 4, 8}, 8},
                      Param{{2, 2, 2, 2}, 9}, Param{{4, 2, 4, 2}, 10}));

}  // namespace
}  // namespace vecube
