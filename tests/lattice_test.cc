#include "select/lattice.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(LatticeTest, BuildEnumeratesAllViews) {
  const CubeShape shape = Shape({4, 8});
  const auto lattice = BuildLattice(shape);
  ASSERT_EQ(lattice.size(), 4u);
  EXPECT_EQ(lattice[0].volume, 32u);  // the cube
  EXPECT_EQ(lattice[1].volume, 8u);   // dim 0 aggregated
  EXPECT_EQ(lattice[2].volume, 4u);   // dim 1 aggregated
  EXPECT_EQ(lattice[3].volume, 1u);   // the total
}

TEST(LatticeTest, AnswersIsSubsetRelation) {
  EXPECT_TRUE(LatticeAnswers(0b00, 0b11));   // cube answers everything
  EXPECT_TRUE(LatticeAnswers(0b01, 0b11));
  EXPECT_TRUE(LatticeAnswers(0b01, 0b01));
  EXPECT_FALSE(LatticeAnswers(0b01, 0b10));  // disjoint groupings
  EXPECT_FALSE(LatticeAnswers(0b11, 0b01));  // total can't answer a view
}

TEST(LatticeTest, AnswerCostUsesSmallestAncestor) {
  const CubeShape shape = Shape({8, 8});
  // Nothing extra materialized: everything costs Vol(A).
  EXPECT_EQ(LatticeAnswerCost(shape, 0b11, {}), 64u);
  // Materializing view 0b01 (vol 8) helps its descendants only.
  EXPECT_EQ(LatticeAnswerCost(shape, 0b11, {0b01}), 8u);
  EXPECT_EQ(LatticeAnswerCost(shape, 0b01, {0b01}), 8u);
  EXPECT_EQ(LatticeAnswerCost(shape, 0b10, {0b01}), 64u);
}

TEST(LatticeTest, GreedyReducesTotalCost) {
  const CubeShape shape = Shape({16, 16, 16});
  LatticeGreedyOptions options;
  options.max_views = 3;
  auto selection = HruGreedySelect(shape, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->selected_masks.size(), 3u);
  // Baseline total: 8 views * 4096.
  EXPECT_LT(selection->total_cost, 8u * 4096u);
}

TEST(LatticeTest, GreedyStopsWhenNoBenefit) {
  // Degenerate cube 2x2: after materializing enough, benefit hits zero.
  const CubeShape shape = Shape({2, 2});
  LatticeGreedyOptions options;  // unbounded
  auto selection = HruGreedySelect(shape, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_LE(selection->selected_masks.size(), 3u);
}

TEST(LatticeTest, StorageBudgetRespected) {
  const CubeShape shape = Shape({16, 16});
  LatticeGreedyOptions options;
  options.storage_budget_cells = 16;  // room for one single-dim view
  auto selection = HruGreedySelect(shape, options);
  ASSERT_TRUE(selection.ok());
  EXPECT_LE(selection->extra_storage_cells, 16u);
}

TEST(LatticeTest, BenefitPerUnitSpacePrefersSmallViews) {
  // With raw benefit, big views near the cube win early; per-unit-space
  // ranking favors small high-leverage views. On an asymmetric cube the
  // two orderings differ.
  const CubeShape shape = Shape({64, 2, 2});
  LatticeGreedyOptions raw;
  raw.max_views = 1;
  LatticeGreedyOptions bpus = raw;
  bpus.benefit_per_unit_space = true;
  auto raw_sel = HruGreedySelect(shape, raw);
  auto bpus_sel = HruGreedySelect(shape, bpus);
  ASSERT_TRUE(raw_sel.ok() && bpus_sel.ok());
  ASSERT_EQ(raw_sel->selected_masks.size(), 1u);
  ASSERT_EQ(bpus_sel->selected_masks.size(), 1u);
  EXPECT_NE(raw_sel->selected_masks[0], bpus_sel->selected_masks[0]);
}

TEST(LatticeTest, OneWayDependencyContrast) {
  // The structural limitation the paper calls out: in the lattice, the
  // cube can never be reconstructed from views, so zero *total* cost
  // requires keeping all 2^d views INCLUDING the cube — storage
  // (n+1)^d/n^d — while a non-redundant element basis achieves full
  // coverage at exactly n^d.
  const CubeShape shape = Shape({4, 4});
  LatticeGreedyOptions options;  // unbounded greedy
  auto selection = HruGreedySelect(shape, options);
  ASSERT_TRUE(selection.ok());
  // Even with everything materialized, each view still "costs" its own
  // volume to emit; the interesting quantity is storage:
  uint64_t full_storage = shape.volume() + selection->extra_storage_cells;
  if (selection->selected_masks.size() == 3u) {
    EXPECT_EQ(full_storage, 25u);  // (4+1)^2
  }
  EXPECT_GT(full_storage, shape.volume());  // always expansive
}

}  // namespace
}  // namespace vecube
