#include "workload/trace.h"

#include <gtest/gtest.h>

#include "cube/synthetic.h"
#include "select/dynamic.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::MakeSquare(2, 4);
  EXPECT_TRUE(s.ok());
  return *s;
}

QueryPopulation SingleViewPop(uint32_t mask, const CubeShape& shape) {
  auto view = ElementId::AggregatedView(mask, shape);
  auto pop = FixedPopulation({{*view, 1.0}}, shape);
  EXPECT_TRUE(pop.ok());
  return *pop;
}

TEST(TraceTest, MakeValidates) {
  const CubeShape shape = Shape44();
  EXPECT_FALSE(QueryTrace::Make({}).ok());
  TracePhase zero{"z", SingleViewPop(1, shape), 0};
  EXPECT_FALSE(QueryTrace::Make({zero}).ok());
  TracePhase good{"g", SingleViewPop(1, shape), 5};
  auto trace = QueryTrace::Make({good});
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_queries(), 5u);
}

TEST(TraceTest, GenerateRespectsPhaseLengthsAndDistributions) {
  const CubeShape shape = Shape44();
  auto trace = QueryTrace::Make({
      TracePhase{"p1", SingleViewPop(1, shape), 10},
      TracePhase{"p2", SingleViewPop(2, shape), 20},
  });
  ASSERT_TRUE(trace.ok());
  Rng rng(1);
  const auto sequence = trace->Generate(&rng);
  ASSERT_EQ(sequence.size(), 30u);
  auto v1 = ElementId::AggregatedView(1, shape);
  auto v2 = ElementId::AggregatedView(2, shape);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sequence[i], *v1);
  for (size_t i = 10; i < 30; ++i) EXPECT_EQ(sequence[i], *v2);
}

TEST(TraceTest, GenerateDeterministicPerSeed) {
  const CubeShape shape = Shape44();
  Rng prng(2);
  auto mixed = RandomViewPopulation(shape, &prng);
  auto trace = QueryTrace::Make({TracePhase{"p", *mixed, 50}});
  Rng a(3), b(3);
  EXPECT_EQ(trace->Generate(&a), trace->Generate(&b));
}

TEST(TraceTest, ReplayAggregatesPerPhase) {
  const CubeShape shape = Shape44();
  auto trace = QueryTrace::Make({
      TracePhase{"p1", SingleViewPop(1, shape), 4},
      TracePhase{"p2", SingleViewPop(2, shape), 6},
  });
  Rng rng(4);
  uint64_t calls = 0;
  auto reports = ReplayTrace(*trace, &rng, [&](const ElementId&) {
    ++calls;
    return Result<uint64_t>(7u);
  });
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_EQ(calls, 10u);
  EXPECT_EQ((*reports)[0].queries, 4u);
  EXPECT_EQ((*reports)[1].total_ops, 42u);
  EXPECT_DOUBLE_EQ((*reports)[1].avg_ops_per_query, 7.0);
}

TEST(TraceTest, ReplayAbortsOnError) {
  const CubeShape shape = Shape44();
  auto trace = QueryTrace::Make({TracePhase{"p", SingleViewPop(1, shape), 5}});
  Rng rng(5);
  int calls = 0;
  auto reports = ReplayTrace(*trace, &rng, [&](const ElementId&) {
    if (++calls == 3) {
      return Result<uint64_t>(Status::Internal("boom"));
    }
    return Result<uint64_t>(1u);
  });
  EXPECT_FALSE(reports.ok());
  EXPECT_EQ(calls, 3);
}

TEST(TraceTest, DrivesDynamicAssemblerThroughPhaseShift) {
  const CubeShape shape = Shape44();
  Rng data_rng(6);
  auto cube = UniformIntegerCube(shape, &data_rng, 0, 9);

  DynamicOptions options;
  options.min_queries_between_reconfigs = 8;
  options.drift_threshold = 0.4;
  options.access_decay = 0.85;
  auto assembler = DynamicAssembler::Make(shape, *cube, options);
  ASSERT_TRUE(assembler.ok());

  auto trace = QueryTrace::Make({
      TracePhase{"phase1", SingleViewPop(1, shape), 40},
      TracePhase{"phase2", SingleViewPop(2, shape), 40},
  });
  Rng rng(7);
  auto reports = ReplayTrace(*trace, &rng, [&](const ElementId& view) {
    OpCounter ops;
    auto answer = (*assembler)->Query(view, &ops);
    if (!answer.ok()) return Result<uint64_t>(answer.status());
    return Result<uint64_t>(ops.adds);
  });
  ASSERT_TRUE(reports.ok());
  // By the end of each phase the hot view is free, so the phase average
  // is far below the cube-only cost (12 ops/query for these views).
  EXPECT_LT((*reports)[0].avg_ops_per_query, 6.0);
  EXPECT_LT((*reports)[1].avg_ops_per_query, 6.0);
  EXPECT_GE((*assembler)->reconfiguration_count(), 2u);
}

}  // namespace
}  // namespace vecube
