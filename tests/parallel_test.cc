// Determinism tests for the threaded execution paths: kernels, single
// assembly, and batch assembly must produce bit-identical tensors and
// identical measured op counts at every thread count — the paper's tested
// invariant (measured ops == Procedure-3 plan cost) may not bend to
// scheduling.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "api/session.h"
#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "haar/transform.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vecube {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr uint64_t kN = 10000;
  std::vector<uint8_t> hit(kN, 0);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(kN, 1, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) ++hit[i];  // chunks are disjoint
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), kN);
  for (uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hit[i], 1) << i;
}

TEST(ThreadPoolTest, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  uint64_t calls = 0;
  pool.ParallelFor(0, 1, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  std::atomic<uint64_t> covered{0};
  pool.ParallelFor(3, 100, [&](uint64_t begin, uint64_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 3u);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // A loop issued from inside a pool task must finish even with every
  // worker busy — the issuing thread claims its own chunks.
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(8, 1, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      pool.ParallelFor(100, 1, [&](uint64_t b, uint64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

class ParallelKernelFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 64*64*16 = 65536 cells: comfortably above kParallelKernelCells so
    // the kernels actually take the threaded path.
    auto shape = CubeShape::Make({64, 64, 16});
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(42);
    auto cube = UniformIntegerCube(shape_, &rng, -9, 9);
    ASSERT_TRUE(cube.ok());
    cube_ = std::move(cube).value();
  }

  CubeShape shape_;
  Tensor cube_;
};

TEST_F(ParallelKernelFixture, KernelsBitExactAcrossThreadCounts) {
  ThreadPool pool(4);
  for (uint32_t dim = 0; dim < 3; ++dim) {
    OpCounter serial_ops, pooled_ops;
    auto serial_sum = PartialSum(cube_, dim, &serial_ops);
    auto pooled_sum = PartialSum(cube_, dim, &pooled_ops, &pool);
    ASSERT_TRUE(serial_sum.ok() && pooled_sum.ok());
    EXPECT_EQ(serial_sum->data(), pooled_sum->data()) << "dim " << dim;
    EXPECT_EQ(serial_ops.adds, pooled_ops.adds);

    auto serial_res = PartialResidual(cube_, dim, nullptr);
    auto pooled_res = PartialResidual(cube_, dim, nullptr, &pool);
    ASSERT_TRUE(serial_res.ok() && pooled_res.ok());
    EXPECT_EQ(serial_res->data(), pooled_res->data()) << "dim " << dim;

    Tensor sp, sr, pp, pr;
    ASSERT_TRUE(PartialPair(cube_, dim, &sp, &sr, nullptr).ok());
    ASSERT_TRUE(PartialPair(cube_, dim, &pp, &pr, nullptr, &pool).ok());
    EXPECT_EQ(sp.data(), pp.data()) << "dim " << dim;
    EXPECT_EQ(sr.data(), pr.data()) << "dim " << dim;

    auto serial_syn = SynthesizePair(sp, sr, dim, nullptr);
    auto pooled_syn = SynthesizePair(sp, sr, dim, nullptr, &pool);
    ASSERT_TRUE(serial_syn.ok() && pooled_syn.ok());
    EXPECT_EQ(serial_syn->data(), pooled_syn->data()) << "dim " << dim;
    // Synthesis round-trips to the original cube bit-exactly (integers).
    EXPECT_EQ(serial_syn->data(), cube_.data()) << "dim " << dim;
  }
}

class ParallelAssemblyFixture : public ParallelKernelFixture {
 protected:
  void SetUp() override {
    ParallelKernelFixture::SetUp();
    ElementComputer computer(shape_, &cube_);
    auto store = computer.Materialize(WaveletBasisSet(shape_));
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
  }

  ElementStore store_{CubeShape{}};
};

TEST_F(ParallelAssemblyFixture, AssembleBitExactAndOpsEqualPlanCost) {
  ThreadPool pool(4);
  AssemblyEngine serial_engine(&store_);
  AssemblyEngine pooled_engine(&store_, &pool);
  const auto views = ViewElementGraph(shape_).AggregatedViews();
  ASSERT_EQ(views.size(), 8u);
  for (const ElementId& view : views) {
    const uint64_t plan = serial_engine.PlanCost(view);
    ASSERT_NE(plan, kInfiniteCost);
    EXPECT_EQ(pooled_engine.PlanCost(view), plan);

    OpCounter serial_ops, pooled_ops;
    auto serial_out = serial_engine.Assemble(view, &serial_ops);
    auto pooled_out = pooled_engine.Assemble(view, &pooled_ops);
    ASSERT_TRUE(serial_out.ok() && pooled_out.ok());
    EXPECT_EQ(serial_out->data(), pooled_out->data());
    // The paper's invariant, independent of thread count.
    EXPECT_EQ(serial_ops.adds, plan);
    EXPECT_EQ(pooled_ops.adds, plan);
  }
}

TEST_F(ParallelAssemblyFixture, AssembleBatchBitExactAcrossThreadCounts) {
  ThreadPool pool(4);
  AssemblyEngine serial_engine(&store_);
  AssemblyEngine pooled_engine(&store_, &pool);
  auto views = ViewElementGraph(shape_).AggregatedViews();
  views.push_back(views.front());  // duplicate target: still free, any order

  OpCounter serial_ops, pooled_ops;
  auto serial_batch = serial_engine.AssembleBatch(views, &serial_ops);
  auto pooled_batch = pooled_engine.AssembleBatch(views, &pooled_ops);
  ASSERT_TRUE(serial_batch.ok());
  ASSERT_TRUE(pooled_batch.ok());
  ASSERT_EQ(serial_batch->size(), pooled_batch->size());
  for (size_t i = 0; i < serial_batch->size(); ++i) {
    EXPECT_EQ((*serial_batch)[i].data(), (*pooled_batch)[i].data()) << i;
  }
  EXPECT_EQ(serial_ops.adds, pooled_ops.adds);

  // Shared batch work never exceeds the sum of individual plan costs.
  uint64_t individual = 0;
  for (const ElementId& view : views) {
    individual += serial_engine.PlanCost(view);
  }
  EXPECT_LE(serial_ops.adds, individual);
}

TEST_F(ParallelAssemblyFixture, BatchErrorsStillPropagateWithPool) {
  ThreadPool pool(4);
  // A store missing the residual sibling cannot rebuild the root.
  const ElementId root = ElementId::Root(3);
  auto p = root.Child(0, StepKind::kPartial, shape_);
  ASSERT_TRUE(p.ok());
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize({*p});
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store, &pool);
  auto batch = engine.AssembleBatch({*p, root});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsIncomplete());
}

TEST(ParallelSessionTest, NumThreadsOptionIsBitExact) {
  auto shape = CubeShape::Make({32, 32, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(7);
  auto cube = UniformIntegerCube(*shape, &rng, -5, 5);
  ASSERT_TRUE(cube.ok());

  OlapSessionOptions serial_options;
  serial_options.num_threads = 1;
  auto serial_session = OlapSession::FromCube(*shape, *cube, serial_options);
  ASSERT_TRUE(serial_session.ok());

  OlapSessionOptions pooled_options;
  pooled_options.num_threads = 4;
  auto pooled_session = OlapSession::FromCube(*shape, *cube, pooled_options);
  ASSERT_TRUE(pooled_session.ok());

  for (uint32_t mask : {0u, 1u, 3u, 5u, 7u}) {
    auto serial_view = (*serial_session)->ViewByMask(mask);
    auto pooled_view = (*pooled_session)->ViewByMask(mask);
    ASSERT_TRUE(serial_view.ok() && pooled_view.ok());
    EXPECT_EQ(serial_view->data(), pooled_view->data()) << mask;
  }
  EXPECT_EQ((*serial_session)->stats().assembly_ops,
            (*pooled_session)->stats().assembly_ops);
}

}  // namespace
}  // namespace vecube
