#include "core/freq_rect.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(FreqRectTest, RootCoversWholePlane) {
  const CubeShape shape = Shape({8, 4});
  const FreqRect rect = FreqRect::Of(ElementId::Root(2), shape);
  EXPECT_EQ(rect.interval(0), (FreqInterval{0, 8}));
  EXPECT_EQ(rect.interval(1), (FreqInterval{0, 4}));
  EXPECT_EQ(rect.Volume(), 32u);
}

TEST(FreqRectTest, ChildHalvesInterval) {
  // Eq. 21-22: P keeps the position, R moves to the upper half.
  const CubeShape shape = Shape({8});
  const ElementId root = ElementId::Root(1);
  auto p = root.Child(0, StepKind::kPartial, shape);
  auto r = root.Child(0, StepKind::kResidual, shape);
  EXPECT_EQ(FreqRect::Of(*p, shape).interval(0), (FreqInterval{0, 4}));
  EXPECT_EQ(FreqRect::Of(*r, shape).interval(0), (FreqInterval{4, 8}));
}

TEST(FreqRectTest, DeepOffsets) {
  const CubeShape shape = Shape({8});
  auto id = ElementId::Make({{3, 5}}, shape);
  EXPECT_EQ(FreqRect::Of(*id, shape).interval(0), (FreqInterval{5, 6}));
}

TEST(FreqRectTest, VolumeEqualsDataVolume) {
  const CubeShape shape = Shape({8, 4, 2});
  auto id = ElementId::Make({{1, 1}, {2, 0}, {0, 0}}, shape);
  EXPECT_EQ(FreqRect::Of(*id, shape).Volume(), id->DataVolume(shape));
}

TEST(FreqRectTest, SiblingsDisjoint) {
  const CubeShape shape = Shape({8, 8});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  auto r = ElementId::Root(2).Child(0, StepKind::kResidual, shape);
  EXPECT_EQ(FreqRect::Of(*p, shape).Overlap(FreqRect::Of(*r, shape)), 0u);
  EXPECT_FALSE(FreqRect::Of(*p, shape).Intersects(FreqRect::Of(*r, shape)));
}

TEST(FreqRectTest, OverlapOfCrossedHalves) {
  // (P, I) and (I, P) overlap in the lower-left quadrant.
  const CubeShape shape = Shape({4, 4});
  auto a = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto b = ElementId::Make({{0, 0}, {1, 0}}, shape);
  EXPECT_EQ(OverlapCells(*a, *b, shape), 4u);  // 2 x 2 cells
}

TEST(FreqRectTest, ContainsIsAncestry) {
  const CubeShape shape = Shape({8, 8});
  const ElementId root = ElementId::Root(2);
  auto child = root.Child(0, StepKind::kResidual, shape);
  auto grandchild = child->Child(1, StepKind::kPartial, shape);
  const FreqRect root_rect = FreqRect::Of(root, shape);
  const FreqRect child_rect = FreqRect::Of(*child, shape);
  const FreqRect gc_rect = FreqRect::Of(*grandchild, shape);
  EXPECT_TRUE(root_rect.Contains(child_rect));
  EXPECT_TRUE(child_rect.Contains(gc_rect));
  EXPECT_FALSE(gc_rect.Contains(child_rect));
}

TEST(FreqRectTest, IsAncestorOfMatchesContains) {
  const CubeShape shape = Shape({4, 4});
  std::vector<ElementId> all;
  for (uint32_t l0 = 0; l0 <= 2; ++l0) {
    for (uint32_t o0 = 0; o0 < (1u << l0); ++o0) {
      for (uint32_t l1 = 0; l1 <= 2; ++l1) {
        for (uint32_t o1 = 0; o1 < (1u << l1); ++o1) {
          all.push_back(*ElementId::Make({{l0, o0}, {l1, o1}}, shape));
        }
      }
    }
  }
  for (const ElementId& a : all) {
    for (const ElementId& b : all) {
      EXPECT_EQ(IsAncestorOf(a, b),
                FreqRect::Of(a, shape).Contains(FreqRect::Of(b, shape)))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(FreqRectTest, SelfOverlapIsVolume) {
  const CubeShape shape = Shape({8, 2});
  auto id = ElementId::Make({{2, 1}, {1, 0}}, shape);
  EXPECT_EQ(OverlapCells(*id, *id, shape), id->DataVolume(shape));
}

TEST(FreqRectTest, AncestorOverlapIsDescendantVolume) {
  const CubeShape shape = Shape({8, 8});
  const ElementId root = ElementId::Root(2);
  auto child = root.Child(1, StepKind::kPartial, shape);
  EXPECT_EQ(OverlapCells(root, *child, shape), child->DataVolume(shape));
}

TEST(FreqRectTest, ToString) {
  const CubeShape shape = Shape({4});
  auto id = ElementId::Make({{1, 1}}, shape);
  EXPECT_EQ(FreqRect::Of(*id, shape).ToString(), "{[2,4)}");
}

}  // namespace
}  // namespace vecube
