#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace vecube {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad extent");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad extent");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad extent");
}

TEST(StatusTest, AllErrorCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Incomplete("x").IsIncomplete());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIncomplete), "Incomplete");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  VECUBE_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ((Result<int>(7)).ValueOr(0), 7);
  EXPECT_EQ((Result<int>(Status::Internal("x"))).ValueOr(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  int half;
  VECUBE_ASSIGN_OR_RETURN(half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // inner call fails
  EXPECT_FALSE(QuarterOf(7).ok());  // outer call fails
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace vecube
