// Crash-consistency proof by exhaustive failpoint enumeration.
//
// A clean durable session lifecycle (create, add facts, checkpoint, add
// more facts) is traced once to enumerate every (failpoint, hit-index)
// pair the durability layer executes. Then, for each pair, the same
// lifecycle runs with an injected EIO at exactly that point — simulating
// a crash there, since the partial on-disk state is identical — the
// in-memory session is abandoned, and recovery must reproduce exactly
// the facts that were acknowledged: every acked fact present (the WAL
// made it durable before apply), every unacked fact absent, the whole
// state bit-exact and invariant-clean. No failpoint escapes coverage.
//
// VECUBE_SOAK_ITERS (env) repeats the sweep with fresh data seeds; the
// CI soak job uses it.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"
#include "cube/synthetic.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace vecube {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

OlapSessionOptions DurableOptions(const std::string& dir) {
  OlapSessionOptions options;
  options.durability.enabled = true;
  options.durability.directory = dir;
  options.verify_invariants = true;
  options.num_threads = 1;
  return options;
}

void WipeDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  for (const char* file :
       {"store.vecube", "cube.vecube", "store.count.vecube",
        "cube.count.vecube", "wal.log", "wal.log.tmp", "store.vecube.tmp",
        "cube.vecube.tmp"}) {
    std::remove((dir + "/" + file).c_str());
  }
}

Tensor MakeIntegerCube(const CubeShape& shape, uint64_t seed) {
  Rng rng(seed);
  auto cube = UniformIntegerCube(shape, &rng, -20, 20);
  EXPECT_TRUE(cube.ok());
  return std::move(cube).value();
}

const std::vector<std::pair<std::vector<uint32_t>, double>>& Facts() {
  static const std::vector<std::pair<std::vector<uint32_t>, double>> facts =
      {{{1, 2}, 5.0},  {{7, 3}, -2.0}, {{0, 0}, 11.0},
       {{1, 2}, 3.0},  {{4, 1}, -7.0}};
  return facts;
}

// One durable lifecycle: create the session (initial checkpoint), add
// facts 0-2, checkpoint, add facts 3-4. Accumulates every *acknowledged*
// fact into `acked_cube` (which starts as the base cube) — the contract
// is that exactly those survive a crash. Returns false if the session
// could not even be created.
bool RunLifecycle(const std::string& dir, const CubeShape& shape,
                  Tensor* acked_cube) {
  auto session = OlapSession::FromCube(shape, *acked_cube,
                                       DurableOptions(dir));
  if (!session.ok()) return false;
  const auto& facts = Facts();
  auto add = [&](size_t i) {
    if ((*session)->AddFact(facts[i].first, facts[i].second).ok()) {
      (*acked_cube)[acked_cube->FlatIndex(facts[i].first)] +=
          facts[i].second;
    }
  };
  add(0);
  add(1);
  add(2);
  (void)(*session)->Checkpoint();  // allowed to fail under injection
  add(3);
  add(4);
  return true;
}

void ExpectRecoveredExactly(const std::string& dir, const Tensor& acked_cube,
                            const std::string& context) {
  auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
  ASSERT_TRUE(reopened.ok())
      << context << ": " << reopened.status().ToString();
  const Tensor& got = (*reopened)->cube();
  ASSERT_EQ(got.size(), acked_cube.size()) << context;
  for (uint64_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], acked_cube[i]) << context << " cell " << i;
  }
  // The store serves the same answers (grand total via assembly).
  auto total = (*reopened)->ViewByMask(0b11);
  ASSERT_TRUE(total.ok()) << context;
  double want = 0.0;
  for (uint64_t i = 0; i < acked_cube.size(); ++i) want += acked_cube[i];
  ASSERT_EQ((*total)[0], want) << context;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Failpoints::DisarmAll();
    Failpoints::StopTrace();
  }
};

TEST_F(CrashRecoveryTest, EveryFailpointHitIsCrashConsistent) {
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  const std::string dir = TempPath("crash_sweep");

  long soak_iters = 1;  // NOLINT(google-runtime-int)
  if (const char* env = std::getenv("VECUBE_SOAK_ITERS")) {
    soak_iters = std::max(1L, std::atol(env));
  }

  for (long iter = 0; iter < soak_iters; ++iter) {  // NOLINT
    const uint64_t seed = 100 + static_cast<uint64_t>(iter);

    // Pass 1: trace a clean lifecycle to enumerate every failpoint hit.
    WipeDir(dir);
    Tensor clean_cube = MakeIntegerCube(*shape, seed);
    Failpoints::StartTrace();
    ASSERT_TRUE(RunLifecycle(dir, *shape, &clean_cube));
    Failpoints::StopTrace();
    const auto trace = Failpoints::TraceCounts();
    ASSERT_FALSE(trace.empty());
    // The clean run itself must recover bit-exactly.
    ExpectRecoveredExactly(dir, clean_cube, "clean run");
    uint64_t total_hits = 0;
    for (const auto& [name, hits] : trace) total_hits += hits;
    ASSERT_GE(total_hits, 10u) << "durability layer lost instrumentation?";

    // Pass 2: crash at every (failpoint, hit-index) and prove recovery.
    for (const auto& [name, hits] : trace) {
      for (uint64_t hit = 0; hit < hits; ++hit) {
        const std::string context = name + " hit#" + std::to_string(hit) +
                                    " iter " + std::to_string(iter);
        WipeDir(dir);
        Tensor acked = MakeIntegerCube(*shape, seed);
        Failpoints::Arm(name, FailpointAction{}, /*skip=*/hit);
        const bool created = RunLifecycle(dir, *shape, &acked);
        Failpoints::DisarmAll();
        if (!created) {
          // The "crash" hit the very first checkpoint: the session never
          // existed and no fact was ever acknowledged, so there is
          // nothing recovery must preserve. It must still fail cleanly
          // rather than fabricate state, if it fails.
          auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
          if (reopened.ok()) {
            const Tensor& got = (*reopened)->cube();
            for (uint64_t i = 0; i < got.size(); ++i) {
              ASSERT_EQ(got[i], acked[i]) << context << " cell " << i;
            }
          }
          continue;
        }
        ExpectRecoveredExactly(dir, acked, context);
      }
    }
  }
}

TEST_F(CrashRecoveryTest, ShortWriteCrashesAreRecoveredToo) {
  // Same sweep idea, but the injected failure leaves torn bytes on disk
  // (a real mid-write crash) instead of a clean EIO. One torn variant per
  // failpoint name suffices: the torn-tail handling is byte-count
  // agnostic.
  auto shape = CubeShape::Make({8, 4});
  ASSERT_TRUE(shape.ok());
  const std::string dir = TempPath("crash_torn");

  WipeDir(dir);
  Tensor clean_cube = MakeIntegerCube(*shape, 55);
  Failpoints::StartTrace();
  ASSERT_TRUE(RunLifecycle(dir, *shape, &clean_cube));
  Failpoints::StopTrace();
  const auto trace = Failpoints::TraceCounts();

  for (const auto& [name, hits] : trace) {
    for (uint64_t hit = 0; hit < hits; ++hit) {
      const std::string context = "torn " + name + " hit#" +
                                  std::to_string(hit);
      WipeDir(dir);
      Tensor acked = MakeIntegerCube(*shape, 55);
      FailpointAction torn;
      torn.kind = FailpointAction::Kind::kShortWrite;
      torn.short_bytes = 3;
      Failpoints::Arm(name, torn, /*skip=*/hit);
      const bool created = RunLifecycle(dir, *shape, &acked);
      Failpoints::DisarmAll();
      if (!created) {
        auto reopened = OlapSession::OpenDurable(DurableOptions(dir));
        if (reopened.ok()) {
          const Tensor& got = (*reopened)->cube();
          for (uint64_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], acked[i]) << context << " cell " << i;
          }
        }
        continue;
      }
      ExpectRecoveredExactly(dir, acked, context);
    }
  }
}

}  // namespace
}  // namespace vecube
