#include "workload/population.h"

#include <gtest/gtest.h>

#include "core/graph.h"

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(PopulationTest, MakeNormalizes) {
  const CubeShape shape = Shape44();
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  auto pop = QueryPopulation::Make(
      {QuerySpec{*a, 3.0}, QuerySpec{*b, 1.0}}, shape);
  ASSERT_TRUE(pop.ok());
  EXPECT_NEAR((*pop)[0].frequency, 0.75, 1e-12);
  EXPECT_NEAR((*pop)[1].frequency, 0.25, 1e-12);
}

TEST(PopulationTest, MakeRejectsEmptyAndNonPositive) {
  const CubeShape shape = Shape44();
  EXPECT_FALSE(QueryPopulation::Make({}, shape).ok());
  auto a = ElementId::AggregatedView(1, shape);
  EXPECT_FALSE(QueryPopulation::Make({QuerySpec{*a, 0.0}}, shape).ok());
  EXPECT_FALSE(QueryPopulation::Make({QuerySpec{*a, -1.0}}, shape).ok());
}

TEST(PopulationTest, MakeValidatesIds) {
  const CubeShape shape = Shape44();
  EXPECT_FALSE(
      QueryPopulation::Make({QuerySpec{ElementId::Root(3), 1.0}}, shape).ok());
}

TEST(PopulationTest, RandomViewPopulationCoversAllViews) {
  const CubeShape shape = Shape44();
  Rng rng(1);
  auto pop = RandomViewPopulation(shape, &rng);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop->size(), 4u);  // 2^2 aggregated views
  double total = 0.0;
  for (const QuerySpec& q : pop->queries()) {
    EXPECT_TRUE(q.view.IsAggregatedView(shape));
    EXPECT_GT(q.frequency, 0.0);
    total += q.frequency;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PopulationTest, RandomViewPopulationDeterministicPerSeed) {
  const CubeShape shape = Shape44();
  Rng a(5), b(5);
  auto pa = RandomViewPopulation(shape, &a);
  auto pb = RandomViewPopulation(shape, &b);
  for (size_t k = 0; k < pa->size(); ++k) {
    EXPECT_EQ((*pa)[k].view, (*pb)[k].view);
    EXPECT_DOUBLE_EQ((*pa)[k].frequency, (*pb)[k].frequency);
  }
}

TEST(PopulationTest, ZipfPopulationSkewed) {
  const CubeShape shape = Shape44();
  Rng rng(2);
  auto pop = ZipfViewPopulation(shape, &rng, 1.5);
  ASSERT_TRUE(pop.ok());
  double max_f = 0.0;
  for (const QuerySpec& q : pop->queries()) max_f = std::max(max_f, q.frequency);
  EXPECT_GT(max_f, 0.5);
}

TEST(PopulationTest, FixedPopulation) {
  const CubeShape shape = Shape44();
  auto a = ElementId::AggregatedView(1, shape);
  auto pop = FixedPopulation({{*a, 1.0}}, shape);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop->size(), 1u);
  EXPECT_DOUBLE_EQ((*pop)[0].frequency, 1.0);
}

TEST(PopulationTest, SampleRespectsWeights) {
  const CubeShape shape = Shape44();
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  auto pop = FixedPopulation({{*a, 0.9}, {*b, 0.1}}, shape);
  ASSERT_TRUE(pop.ok());
  Rng rng(3);
  int count_a = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (pop->Sample(&rng) == *a) ++count_a;
  }
  EXPECT_NEAR(static_cast<double>(count_a) / n, 0.9, 0.03);
}

}  // namespace
}  // namespace vecube
