// Robustness tests for the bounded-latency serving stack (DESIGN.md §13):
// deadline propagation through fills and follower waits, leader-abort
// cause propagation (no retry livelock), cancellation mid-assembly
// leaving the cache and scratch state consistent, admission-control load
// shedding under a TSan-friendly thread stress, and the graceful
// degradation contract (a degraded answer always carries a sound L2
// bound and is never cached). Suite names carry "Serve" into the CI TSan
// test filter; VECUBE_SOAK_ITERS (env) scales the stress rounds.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/assembly.h"
#include "core/element_id.h"
#include "core/store.h"
#include "cube/synthetic.h"
#include "cube/tensor.h"
#include "serve/admission.h"
#include "serve/serving.h"
#include "serve/view_cache.h"
#include "util/failpoint.h"
#include "util/query_context.h"
#include "util/rng.h"

namespace vecube {
namespace {

uint64_t SoakIters() {
  if (const char* env = std::getenv("VECUBE_SOAK_ITERS")) {
    const uint64_t iters = std::strtoull(env, nullptr, 10);
    if (iters > 0) return iters;
  }
  return 1;
}

/// Disarms every failpoint on scope exit so a failing assertion cannot
/// leak an armed failpoint into later tests.
struct FailpointGuard {
  ~FailpointGuard() { Failpoints::DisarmAll(); }
};

/// A cube-only ElementStore over an 8x8 shape with deterministic data.
struct CubeFixture {
  CubeShape shape;
  ElementStore store;

  static CubeFixture Make(uint64_t seed = 7) {
    auto shape = CubeShape::Make({8, 8});
    EXPECT_TRUE(shape.ok());
    Rng rng(seed);
    auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
    EXPECT_TRUE(cube.ok());
    CubeFixture fixture{*shape, ElementStore(*shape)};
    EXPECT_TRUE(
        fixture.store.Put(ElementId::Root(shape->ndim()), *cube).ok());
    return fixture;
  }

  [[nodiscard]] ElementId View(uint32_t mask) const {
    auto id = ElementId::AggregatedView(mask, shape);
    EXPECT_TRUE(id.ok());
    return *id;
  }
};

double L2Error(const Tensor& got, const Tensor& want) {
  EXPECT_EQ(got.size(), want.size());
  double err2 = 0.0;
  for (uint64_t i = 0; i < want.size(); ++i) {
    const double d = got[i] - want[i];
    err2 += d * d;
  }
  return std::sqrt(err2);
}

// ---------------------------------------------------------------------------
// Deadline propagation.

TEST(ServeDeadlineTest, ExpiredContextFailsBeforeAnyWork) {
  CubeFixture fixture = CubeFixture::Make();
  AssemblyEngine engine(&fixture.store);
  ElementServer server(&engine, &fixture.store, /*cache=*/nullptr);

  QueryContext ctx =
      QueryContext::WithDeadline(QueryContext::Clock::now() -
                                 std::chrono::milliseconds(1));
  auto answer = server.Serve(fixture.View(1), ctx);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded())
      << answer.status().ToString();
}

TEST(ServeDeadlineTest, CancellationUnwindsWithKCancelled) {
  CubeFixture fixture = CubeFixture::Make();
  AssemblyEngine engine(&fixture.store);
  ElementServer server(&engine, &fixture.store, /*cache=*/nullptr);

  QueryContext ctx = QueryContext::Cancellable();
  ctx.RequestCancel();
  auto answer = server.Serve(fixture.View(1), ctx);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsCancelled()) << answer.status().ToString();
}

// A leader stalled (failpoint-injected latency) past a follower's
// deadline: the follower must come back with its own kDeadlineExceeded
// instead of waiting out the leader, while the leader still completes
// and publishes an exact answer.
TEST(ServeChaosTest, FollowerDeadlineFiresWhileLeaderIsStalled) {
  FailpointGuard guard;
  CubeFixture fixture = CubeFixture::Make();
  const ElementId id = fixture.View(1);
  ViewCache cache;

  FailpointAction delay;
  delay.kind = FailpointAction::Kind::kDelay;
  delay.delay_ms = 400;
  Failpoints::Arm("serve.fill", delay);

  std::thread leader([&] {
    AssemblyEngine engine(&fixture.store);
    ElementServer server(&engine, &fixture.store, &cache);
    auto answer = server.Serve(id, QueryContext());
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_FALSE(answer->degraded);
  });
  // The flight exists once the leader's miss is counted; the stall
  // itself happens after the ticket is claimed.
  while (cache.Metrics().misses < 1) std::this_thread::yield();

  AssemblyEngine follower_engine(&fixture.store);
  ElementServer follower(&follower_engine, &fixture.store, &cache);
  auto answer = follower.Serve(
      id, QueryContext::WithTimeout(std::chrono::milliseconds(100)));
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded())
      << answer.status().ToString();
  leader.join();

  const ServeMetrics metrics = cache.Metrics();
  EXPECT_GE(metrics.deadline_exceeded, 1u);
  // The leader's late answer is cached and exact for the next caller.
  auto hit = cache.Lookup(id);
  ASSERT_NE(hit, nullptr);
  AssemblyEngine reference(&fixture.store);
  auto exact = reference.Assemble(id);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(hit->data(), exact->data());
}

// ---------------------------------------------------------------------------
// Leader abort handling (the follower-livelock fix): an element-local
// failure propagates to followers immediately; leader-local aborts are
// retried a bounded number of times, never forever.

TEST(ServeChaosTest, FollowerReceivesLeaderAbortCause) {
  CubeFixture fixture = CubeFixture::Make();
  const ElementId id = fixture.View(1);
  ViewCache cache;

  auto leader = cache.LookupOrBegin(id);
  ASSERT_TRUE(leader.fill.leader());
  auto follower = cache.LookupOrBegin(id);
  ASSERT_TRUE(follower.fill.valid());
  ASSERT_FALSE(follower.fill.leader());

  cache.AbortFill(std::move(leader.fill),
                  Status::Internal("injected fill failure"));
  // The cause survives on the flight even though the abort happened
  // before the wait began — no ordering window.
  ViewCache::FillWait wait = cache.WaitFill(follower.fill);
  EXPECT_EQ(wait.data, nullptr);
  ASSERT_FALSE(wait.status.ok());
  EXPECT_FALSE(wait.status.IsUnavailable())
      << "element-local cause replaced by the generic abort status";
  EXPECT_NE(wait.status.ToString().find("injected fill failure"),
            std::string::npos)
      << wait.status.ToString();
}

TEST(ServeChaosTest, InjectedFillErrorPropagatesThroughServer) {
  FailpointGuard guard;
  CubeFixture fixture = CubeFixture::Make();
  ViewCache cache;
  AssemblyEngine engine(&fixture.store);
  ElementServer server(&engine, &fixture.store, &cache);

  FailpointAction error;
  error.kind = FailpointAction::Kind::kError;
  Failpoints::Arm("serve.fill", error);
  auto answer = server.Serve(fixture.View(1), QueryContext());
  ASSERT_FALSE(answer.ok());
  EXPECT_NE(answer.status().ToString().find("injected fill failure"),
            std::string::npos)
      << answer.status().ToString();

  // One-shot failpoint: the next query recovers and serves exactly.
  auto retry = server.Serve(fixture.View(1), QueryContext());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->degraded);
}

TEST(ServeChaosTest, RepeatedLeaderAbortsDoNotLivelockFollowers) {
  CubeFixture fixture = CubeFixture::Make();
  const ElementId id = fixture.View(1);
  ViewCache cache;

  // A saboteur keeps claiming leadership and aborting with the generic
  // (leader-local) cause. Pre-fix behavior was an unbounded retry loop
  // in the follower; post-fix the follower either wins a leader ticket
  // itself (OK) or exhausts its bounded retries (kUnavailable) — either
  // way this test terminates.
  std::atomic<bool> stop{false};
  std::thread saboteur([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto outcome = cache.LookupOrBegin(id);
      if (outcome.fill.valid() && outcome.fill.leader()) {
        cache.AbortFill(std::move(outcome.fill));
      }
      std::this_thread::yield();
    }
  });

  AssemblyEngine engine(&fixture.store);
  ElementServer server(&engine, &fixture.store, &cache);
  auto answer = server.Serve(id, QueryContext());
  stop.store(true, std::memory_order_relaxed);
  saboteur.join();
  if (!answer.ok()) {
    EXPECT_TRUE(answer.status().IsUnavailable())
        << answer.status().ToString();
  }

  // Whatever the race produced, the stack is healthy afterwards.
  auto after = server.Serve(id, QueryContext());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  AssemblyEngine reference(&fixture.store);
  auto exact = reference.Assemble(id);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(after->data.data(), exact->data());
}

// ---------------------------------------------------------------------------
// Cancellation mid-fill leaves the cache (and the session's scratch
// state) consistent: the aborted flight is cleaned up, and the very next
// query assembles bit-exactly.

TEST(ServeChaosTest, CancellationMidFillLeavesCacheConsistent) {
  FailpointGuard guard;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(23);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  OlapSessionOptions options;
  options.view_cache.enabled = true;
  auto session = OlapSession::FromCube(*shape, *cube, options);
  ASSERT_TRUE(session.ok());
  auto reference = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(reference.ok());

  // The leader stalls inside the fill; cancellation lands during the
  // stall, so the post-stall QueryContext poll unwinds the assembly.
  FailpointAction delay;
  delay.kind = FailpointAction::Kind::kDelay;
  delay.delay_ms = 300;
  Failpoints::Arm("serve.fill", delay);

  QueryContext ctx = QueryContext::Cancellable();
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.RequestCancel();
  });
  auto mid = (*session)->ViewByMask(1, ctx);
  canceller.join();
  ASSERT_FALSE(mid.ok());
  EXPECT_TRUE(mid.status().IsCancelled()) << mid.status().ToString();

  // Consistency after the unwind: same session, same view, fresh
  // unbounded context — bit-exact against an uncached session, and every
  // other view still serves (ScratchArena and cache state intact).
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto got = (*session)->ViewByMask(mask);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = (*reference)->ViewByMask(mask);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->data(), want->data()) << "mask " << mask;
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation contract.

TEST(ServeDegradeTest, DegradedAnswerCarriesSoundBoundAndIsNeverCached) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(31);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  OlapSessionOptions options;
  options.view_cache.enabled = true;
  auto session = OlapSession::FromCube(*shape, *cube, options);
  ASSERT_TRUE(session.ok());
  auto mask1 = ElementId::AggregatedView(1, *shape);
  ASSERT_TRUE(mask1.ok());

  // Budget far below the plan cost, degradation opted in: the answer is
  // approximate and its returned L2 bound must dominate the true error.
  QueryContext degraded_ctx;
  degraded_ctx.set_allow_degraded(true).set_ops_budget(4);
  auto degraded = (*session)->Query(*mask1, degraded_ctx);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_GT(degraded->l2_bound, 0.0);

  auto exact = (*session)->Query(*mask1, QueryContext());
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact->degraded);
  EXPECT_EQ(exact->l2_bound, 0.0);
  EXPECT_LE(L2Error(degraded->data, exact->data),
            degraded->l2_bound * (1.0 + 1e-12) + 1e-9);

  // Never cached: the degraded answer must not have been published, so
  // the exact query above went through a real (exact) fill and any later
  // hit is bit-exact.
  auto again = (*session)->Query(*mask1, degraded_ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->degraded) << "cache hit must serve the exact tensor";
  EXPECT_EQ(again->data.data(), exact->data.data());

  const ServeMetrics metrics = (*session)->serve_metrics();
  EXPECT_EQ(metrics.degraded, 1u);
}

TEST(ServeDegradeTest, ElementStripsDegradationAndFailsClosed) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(31);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(session.ok());
  auto mask1 = ElementId::AggregatedView(1, *shape);
  ASSERT_TRUE(mask1.ok());

  // Element() has no channel for an error bound, so even an opted-in
  // context must not leak an approximate tensor through it: the budget
  // shortfall surfaces as kDeadlineExceeded instead.
  QueryContext ctx;
  ctx.set_allow_degraded(true).set_ops_budget(4);
  auto answer = (*session)->Element(*mask1, ctx);
  ASSERT_FALSE(answer.ok());
  EXPECT_TRUE(answer.status().IsDeadlineExceeded())
      << answer.status().ToString();
}

TEST(ServeDegradeTest, GenerousBudgetStaysExactEvenWhenOptedIn) {
  CubeFixture fixture = CubeFixture::Make(31);
  AssemblyEngine engine(&fixture.store);
  ElementServer server(&engine, &fixture.store, /*cache=*/nullptr);

  QueryContext ctx;
  ctx.set_allow_degraded(true).set_ops_budget(1u << 20);
  auto answer = server.Serve(fixture.View(1), ctx);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->degraded);
  EXPECT_EQ(answer->l2_bound, 0.0);
  auto exact = engine.Assemble(fixture.View(1));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(answer->data.data(), exact->data());
}

// ---------------------------------------------------------------------------
// Admission control: bounded queue, load shedding, graceful shutdown.
// Thread-heavy on purpose — the suite name carries "Serve" into the CI
// TSan filter, so this doubles as the admission-queue race detector.

TEST(ServeAdmissionTest, ShedsWhenQueueIsFullAndRecovers) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;  // no waiting: the second arrival is shed
  AdmissionController admission(options);

  auto first = admission.Admit();
  ASSERT_TRUE(first.ok());
  auto second = admission.Admit();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted())
      << second.status().ToString();
  EXPECT_NE(second.status().ToString().find("retry after"),
            std::string::npos)
      << "shed status must carry the retry-after hint";

  first->Release();
  auto third = admission.Admit();
  EXPECT_TRUE(third.ok());
  const AdmissionMetrics metrics = admission.Metrics();
  EXPECT_EQ(metrics.admitted, 2u);
  EXPECT_EQ(metrics.shed, 1u);
}

TEST(ServeAdmissionTest, QueuedWaiterHonorsItsDeadline) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 4;
  AdmissionController admission(options);

  auto holder = admission.Admit();
  ASSERT_TRUE(holder.ok());
  const auto start = std::chrono::steady_clock::now();
  auto queued = admission.Admit(
      QueryContext::WithTimeout(std::chrono::milliseconds(50)));
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(queued.ok());
  EXPECT_TRUE(queued.status().IsDeadlineExceeded())
      << queued.status().ToString();
  EXPECT_LT(waited, std::chrono::seconds(5)) << "wait was not bounded";
  EXPECT_EQ(admission.Metrics().deadline_exceeded, 1u);
}

TEST(ServeAdmissionTest, ShutdownRefusesNewArrivalsAndDrains) {
  AdmissionController admission;
  auto permit = admission.Admit();
  ASSERT_TRUE(permit.ok());
  admission.Shutdown();
  auto refused = admission.Admit();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  EXPECT_FALSE(admission.Drain(std::chrono::milliseconds(50)))
      << "drained while a permit was still outstanding";
  permit->Release();
  EXPECT_TRUE(admission.Drain(std::chrono::milliseconds(1000)));
  EXPECT_EQ(admission.Metrics().inflight, 0u);
  EXPECT_EQ(admission.Metrics().queued, 0u);
}

TEST(ServeAdmissionStressTest, MetricsIdentityHoldsUnderContention) {
  const uint64_t rounds = 200 * SoakIters();
  constexpr uint32_t kThreads = 8;
  AdmissionOptions options;
  options.max_inflight = 2;
  options.max_queue = 2;
  AdmissionController admission(options);

  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> held{0};
  std::atomic<bool> over_limit{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (uint32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (uint64_t i = 0; i < rounds; ++i) {
        // Mix of unbounded, short-deadline, and already-expired contexts.
        QueryContext ctx;
        if (i % 3 == 1) {
          ctx = QueryContext::WithTimeout(std::chrono::milliseconds(2));
        } else if (i % 3 == 2) {
          ctx = QueryContext::WithDeadline(QueryContext::Clock::now());
        }
        attempts.fetch_add(1, std::memory_order_relaxed);  // order: stat
        auto permit = admission.Admit(ctx);
        if (!permit.ok()) continue;
        // order: acq_rel — the inflight ceiling check below reads the
        // counter other holders bumped.
        const uint64_t now = held.fetch_add(1, std::memory_order_acq_rel);
        if (now + 1 > options.max_inflight) over_limit.store(true);
        std::this_thread::yield();
        held.fetch_sub(1, std::memory_order_acq_rel);  // order: see above
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_FALSE(over_limit.load()) << "more permits than max_inflight";

  admission.Shutdown();
  auto rejected = admission.Admit();
  EXPECT_TRUE(rejected.status().IsUnavailable());
  EXPECT_TRUE(admission.Drain(std::chrono::milliseconds(1000)));

  const AdmissionMetrics metrics = admission.Metrics();
  EXPECT_EQ(metrics.admitted + metrics.shed + metrics.deadline_exceeded +
                metrics.rejected_shutdown,
            attempts.load() + 1)  // +1: the post-shutdown probe above
      << "every Admit() must resolve to exactly one outcome";
  EXPECT_EQ(metrics.inflight, 0u);
  EXPECT_EQ(metrics.queued, 0u);
}

// ---------------------------------------------------------------------------
// The end-to-end accounting gate: a concurrent mixed workload through
// admission + serving resolves every query to exactly one contract
// outcome — deadline_exceeded + shed + degraded + ok == queries_issued.

TEST(ServeAccountingStressTest, EveryQueryResolvesToExactlyOneOutcome) {
  const uint64_t queries_per_worker = 100 * SoakIters();
  constexpr uint32_t kThreads = 6;
  CubeFixture fixture = CubeFixture::Make(47);
  const std::vector<ElementId> views = {fixture.View(0), fixture.View(1),
                                        fixture.View(2), fixture.View(3)};
  ViewCache cache;
  AdmissionOptions admission_options;
  admission_options.max_inflight = 2;
  admission_options.max_queue = 2;
  AdmissionController admission(admission_options);

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (uint32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      AssemblyEngine engine(&fixture.store);
      ElementServer server(&engine, &fixture.store, &cache);
      for (uint64_t i = 0; i < queries_per_worker; ++i) {
        QueryContext ctx;
        switch (i % 4) {
          case 0:  // unbounded
            break;
          case 1:  // tight but usually feasible
            ctx = QueryContext::WithTimeout(std::chrono::milliseconds(5));
            break;
          case 2:  // already hopeless
            ctx = QueryContext::WithDeadline(QueryContext::Clock::now());
            break;
          case 3:  // degradation-eligible with a starvation budget
            ctx.set_allow_degraded(true).set_ops_budget(4);
            break;
        }
        auto permit = admission.Admit(ctx);
        if (!permit.ok()) {
          if (permit.status().IsResourceExhausted()) {
            cache.RecordShed();
            shed.fetch_add(1, std::memory_order_relaxed);  // order: stat
          } else if (permit.status().IsDeadlineExceeded() ||
                     permit.status().IsCancelled()) {
            deadline_exceeded.fetch_add(
                1, std::memory_order_relaxed);  // order: stat
          } else {
            unexpected.fetch_add(1, std::memory_order_relaxed);  // order:
                                                                 // stat
          }
          continue;
        }
        auto answer = server.Serve(views[(w + i) % views.size()], ctx);
        if (!answer.ok()) {
          if (answer.status().IsDeadlineExceeded() ||
              answer.status().IsCancelled()) {
            deadline_exceeded.fetch_add(
                1, std::memory_order_relaxed);  // order: stat
          } else {
            unexpected.fetch_add(1, std::memory_order_relaxed);  // order:
                                                                 // stat
          }
          continue;
        }
        if (answer->degraded) {
          degraded.fetch_add(1, std::memory_order_relaxed);  // order: stat
        } else {
          ok.fetch_add(1, std::memory_order_relaxed);  // order: stat
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(unexpected.load(), 0u)
      << "some query resolved outside the robustness contract";
  EXPECT_EQ(
      ok.load() + deadline_exceeded.load() + shed.load() + degraded.load(),
      queries_per_worker * kThreads);
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.shed, shed.load());
  EXPECT_EQ(metrics.degraded, degraded.load());
}

}  // namespace
}  // namespace vecube
