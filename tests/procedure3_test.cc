#include "select/procedure3.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(Procedure3Test, StoredElementIsFree) {
  const CubeShape shape = Shape({4, 4});
  auto calc = Procedure3Calculator::Make(shape, CubeOnlySet(shape));
  ASSERT_TRUE(calc.ok());
  EXPECT_EQ(calc->Cost(ElementId::Root(2)), 0u);
}

TEST(Procedure3Test, AggregationCostFromCube) {
  const CubeShape shape = Shape({8, 8});
  auto calc = Procedure3Calculator::Make(shape, CubeOnlySet(shape));
  auto view = ElementId::AggregatedView(0b11, shape);
  EXPECT_EQ(calc->Cost(*view), 63u);  // Vol(A) - 1
}

TEST(Procedure3Test, SynthesisWhenNoAncestor) {
  const CubeShape shape = Shape({4, 4});
  const ElementId root = ElementId::Root(2);
  auto p = root.Child(0, StepKind::kPartial, shape);
  auto r = root.Child(0, StepKind::kResidual, shape);
  auto calc = Procedure3Calculator::Make(shape, {*p, *r});
  ASSERT_TRUE(calc.ok());
  // Root: one synthesis stage, Vol(root) ops.
  EXPECT_EQ(calc->Cost(root), 16u);
}

TEST(Procedure3Test, UnreachableIsInfinite) {
  const CubeShape shape = Shape({4, 4});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  auto calc = Procedure3Calculator::Make(shape, {*p});
  EXPECT_EQ(calc->Cost(ElementId::Root(2)), kInfiniteCost);
  // But descendants of the stored element are fine.
  auto pp = p->Child(0, StepKind::kPartial, shape);
  EXPECT_EQ(calc->Cost(*pp), 4u);  // vol 8 -> vol 4
}

TEST(Procedure3Test, MatchesAssemblyEnginePlanOnRandomBases)  {
  // Procedure-3 analytic costs must equal the executable engine's plans
  // for every element of the graph, over several stored sets.
  const CubeShape shape = Shape({4, 4});
  Rng rng(3);
  auto cube = UniformIntegerCube(shape, &rng);
  ElementComputer computer(shape, &*cube);

  const std::vector<std::vector<ElementId>> sets = {
      CubeOnlySet(shape),
      WaveletBasisSet(shape),
      GaussianPyramidSet(shape),
      ViewHierarchySet(shape),
  };
  ViewElementGraph graph(shape);
  for (const auto& set : sets) {
    auto store = computer.Materialize(set);
    ASSERT_TRUE(store.ok());
    AssemblyEngine engine(&*store);
    auto calc = Procedure3Calculator::Make(shape, set);
    ASSERT_TRUE(calc.ok());
    graph.ForEachElement([&](const ElementId& id) {
      EXPECT_EQ(calc->Cost(id), engine.PlanCost(id)) << id.ToString();
    });
  }
}

TEST(Procedure3Test, TotalCostWeightsByFrequency) {
  const CubeShape shape = Shape({4, 4});
  auto calc = Procedure3Calculator::Make(shape, CubeOnlySet(shape));
  auto v1 = ElementId::AggregatedView(1, shape);  // cost 16-4 = 12
  auto v3 = ElementId::AggregatedView(3, shape);  // cost 16-1 = 15
  auto pop = FixedPopulation({{*v1, 0.25}, {*v3, 0.75}}, shape);
  EXPECT_DOUBLE_EQ(calc->TotalCost(*pop), 0.25 * 12 + 0.75 * 15);
}

TEST(Procedure3Test, TotalCostInfiniteWhenAnyQueryUnreachable) {
  const CubeShape shape = Shape({4, 4});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  auto calc = Procedure3Calculator::Make(shape, {*p});
  auto pop = FixedPopulation({{ElementId::Root(2), 1.0}}, shape);
  EXPECT_EQ(calc->TotalCost(*pop), static_cast<double>(kInfiniteCost));
}

TEST(Procedure3Test, RedundantElementsReduceCost) {
  const CubeShape shape = Shape({8, 8});
  auto view = ElementId::AggregatedView(0b01, shape);
  auto pop = FixedPopulation({{*view, 1.0}}, shape);

  auto base = Procedure3Calculator::Make(shape, CubeOnlySet(shape));
  std::vector<ElementId> with_view = CubeOnlySet(shape);
  with_view.push_back(*view);
  auto better = Procedure3Calculator::Make(shape, with_view);
  EXPECT_GT(base->TotalCost(*pop), 0.0);
  EXPECT_DOUBLE_EQ(better->TotalCost(*pop), 0.0);
}

TEST(Procedure3Test, IntermediateAncestorBeatsRoot) {
  // Storing the half-aggregated intermediate makes deeper aggregates
  // cheaper than recomputing from the cube.
  const CubeShape shape = Shape({16});
  auto p2 = ElementId::Intermediate({2}, shape);  // vol 4
  std::vector<ElementId> set = CubeOnlySet(shape);
  set.push_back(*p2);
  auto calc = Procedure3Calculator::Make(shape, set);
  auto p4 = ElementId::Intermediate({4}, shape);  // vol 1
  EXPECT_EQ(calc->Cost(*p4), 3u);  // 4 - 1, not 16 - 1
}

TEST(Procedure3Test, ValidatesSelectedIds) {
  const CubeShape shape = Shape({4});
  EXPECT_FALSE(
      Procedure3Calculator::Make(shape, {ElementId::Root(2)}).ok());
}

}  // namespace
}  // namespace vecube
