#include "util/bits.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(4));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(255), 7u);
  EXPECT_EQ(FloorLog2(256), 8u);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 40), 40u);
}

TEST(BitsTest, ExactLog2OfPowers) {
  for (uint32_t k = 0; k < 63; ++k) {
    EXPECT_EQ(ExactLog2(uint64_t{1} << k), k);
  }
}

TEST(BitsTest, LargestDyadicFactor) {
  EXPECT_EQ(LargestDyadicFactor(1), 1u);
  EXPECT_EQ(LargestDyadicFactor(2), 2u);
  EXPECT_EQ(LargestDyadicFactor(6), 2u);
  EXPECT_EQ(LargestDyadicFactor(8), 8u);
  EXPECT_EQ(LargestDyadicFactor(12), 4u);
  EXPECT_EQ(LargestDyadicFactor(96), 32u);
}

TEST(BitsTest, ConstexprUsable) {
  static_assert(IsPowerOfTwo(16));
  static_assert(FloorLog2(16) == 4);
  static_assert(LargestDyadicFactor(24) == 8);
  SUCCEED();
}

}  // namespace
}  // namespace vecube
