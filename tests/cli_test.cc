// End-to-end exercise of the vecube_cli tool: build a cube from CSV,
// optimize it for a workload, query views and ranges, inspect the store.
// The CLI binary path is injected by CMake as VECUBE_CLI_PATH.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace vecube {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Runs the CLI and captures stdout. Returns the exit code.
int RunCli(const std::string& args, std::string* output) {
  const std::string command =
      std::string(VECUBE_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    *output += buffer.data();
  }
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    // Parallel ctest runs each test in its own process; prefix files with
    // the test name so concurrent cases never collide.
    const std::string prefix =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    csv_ = TempPath((prefix + "_facts.csv").c_str());
    store_ = TempPath((prefix + "_store.vecube").c_str());
    tuned_ = TempPath((prefix + "_tuned.vecube").c_str());
    std::ofstream out(csv_, std::ios::trunc);
    out << "product,region,amount\n";
    out << "0,0,10\n0,1,5\n1,0,20\n1,3,2\n3,2,8\n2,2,4\n0,0,6\n";
  }

  void TearDown() override {
    std::remove(csv_.c_str());
    std::remove(store_.c_str());
    std::remove(tuned_.c_str());
  }

  std::string csv_, store_, tuned_;
};

TEST_F(CliPipeline, BuildOptimizeQueryRangeInfo) {
  std::string output;
  // Build.
  ASSERT_EQ(RunCli("build --csv " + csv_ + " --extents 4,4 --out " + store_,
                   &output),
            0)
      << output;
  EXPECT_NE(output.find("built [4, 4] cube from 7 rows"), std::string::npos)
      << output;

  // Query the grand total straight from the cube store (mask 3 = both
  // dims aggregated): 10+5+20+2+8+4+6 = 55.
  ASSERT_EQ(RunCli("query --store " + store_ + " --mask 3", &output), 0)
      << output;
  EXPECT_NE(output.find("55"), std::string::npos) << output;

  // Optimize for a workload concentrated on per-product totals.
  ASSERT_EQ(RunCli("optimize --store " + store_ + " --out " + tuned_ +
                       " --workload 2:0.8,3:0.2",
                   &output),
            0)
      << output;
  EXPECT_NE(output.find("selected"), std::string::npos) << output;

  // The tuned store answers the same query identically.
  ASSERT_EQ(RunCli("query --store " + tuned_ + " --mask 3", &output), 0)
      << output;
  EXPECT_NE(output.find("55"), std::string::npos) << output;
  // And the hot view (mask 2) is free: ops=0.
  ASSERT_EQ(RunCli("query --store " + tuned_ + " --mask 2", &output), 0)
      << output;
  EXPECT_NE(output.find("ops=0"), std::string::npos) << output;

  // Range over products 0..1, regions 0..3: 10+5+20+2+6 = 43.
  ASSERT_EQ(RunCli("range --store " + store_ +
                       " --start 0,0 --width 2,4",
                   &output),
            0)
      << output;
  EXPECT_NE(output.find("sum=43"), std::string::npos) << output;

  // Info lists the store contents.
  ASSERT_EQ(RunCli("info --store " + tuned_, &output), 0) << output;
  EXPECT_NE(output.find("complete basis: yes"), std::string::npos) << output;
}

TEST_F(CliPipeline, BadInvocationsFail) {
  std::string output;
  EXPECT_NE(RunCli("", &output), 0);
  EXPECT_NE(RunCli("frobnicate", &output), 0);
  EXPECT_NE(RunCli("build --csv /nonexistent.csv --extents 4 --out " + store_,
                   &output),
            0);
  EXPECT_NE(RunCli("query --store /nonexistent.vecube --mask 0", &output), 0);
  EXPECT_NE(RunCli("build --csv " + csv_ + " --extents bogus --out " + store_,
                   &output),
            0);
}

TEST_F(CliPipeline, FsckReportsHealthCorruptionAndRepair) {
  std::string output;
  ASSERT_EQ(RunCli("build --csv " + csv_ + " --extents 4,4 --out " + store_,
                   &output),
            0)
      << output;

  // A pristine v2 snapshot passes element-by-element verification.
  ASSERT_EQ(RunCli("fsck --store " + store_, &output), 0) << output;
  EXPECT_NE(output.find("v2 snapshot"), std::string::npos) << output;
  EXPECT_NE(output.find("verdict: healthy"), std::string::npos) << output;

  // Flip one bit in the last payload byte: fsck must localize the damage
  // to the element and exit nonzero.
  {
    std::fstream file(store_,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const auto last = static_cast<std::streamoff>(file.tellg()) - 1;
    file.seekg(last);
    char byte = 0;
    file.get(byte);
    file.seekp(last);
    byte = static_cast<char>(byte ^ 0x01);
    file.write(&byte, 1);
  }
  ASSERT_EQ(RunCli("fsck --store " + store_, &output), 1) << output;
  EXPECT_NE(output.find("CORRUPT"), std::string::npos) << output;
  EXPECT_NE(output.find("verdict: degraded"), std::string::npos) << output;

  // The build store holds only the root: nothing can re-derive it, and
  // fsck --repair must say so rather than fabricate data.
  ASSERT_EQ(RunCli("fsck --store " + store_ + " --repair", &output), 1)
      << output;
  EXPECT_NE(output.find("UNREPAIRABLE"), std::string::npos) << output;
}

TEST_F(CliPipeline, PaddedBuild) {
  // Extents 3,4 pad to 4,4; out-of-domain keys would fail, in-domain work.
  std::string output;
  ASSERT_EQ(RunCli("build --csv " + csv_ +
                       " --extents 4,4 --pad --out " + store_,
                   &output),
            0)
      << output;
  ASSERT_EQ(RunCli("info --store " + store_, &output), 0) << output;
  EXPECT_NE(output.find("shape [4, 4]"), std::string::npos) << output;
}

}  // namespace
}  // namespace vecube
