#include "cube/sparse_cube.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(SparseCubeTest, AddAndGet) {
  SparseCube sc(Shape44());
  ASSERT_TRUE(sc.Add({1, 2}, 5.0).ok());
  EXPECT_EQ(sc.Get({1, 2}), 5.0);
  EXPECT_EQ(sc.Get({2, 1}), 0.0);
  EXPECT_EQ(sc.num_nonzero(), 1u);
}

TEST(SparseCubeTest, AddAccumulates) {
  SparseCube sc(Shape44());
  ASSERT_TRUE(sc.Add({0, 0}, 2.0).ok());
  ASSERT_TRUE(sc.Add({0, 0}, 3.0).ok());
  EXPECT_EQ(sc.Get({0, 0}), 5.0);
  EXPECT_EQ(sc.num_nonzero(), 1u);
}

TEST(SparseCubeTest, BoundsChecked) {
  SparseCube sc(Shape44());
  EXPECT_TRUE(sc.Add({4, 0}, 1.0).IsOutOfRange());
  EXPECT_TRUE(sc.Add({0}, 1.0).IsInvalidArgument());
}

TEST(SparseCubeTest, Density) {
  SparseCube sc(Shape44());
  ASSERT_TRUE(sc.Add({0, 0}, 1.0).ok());
  ASSERT_TRUE(sc.Add({1, 1}, 1.0).ok());
  EXPECT_DOUBLE_EQ(sc.density(), 2.0 / 16.0);
}

TEST(SparseCubeTest, DensifyRoundTrip) {
  SparseCube sc(Shape44());
  ASSERT_TRUE(sc.Add({3, 3}, 7.0).ok());
  ASSERT_TRUE(sc.Add({0, 2}, -2.0).ok());
  auto dense = sc.Densify();
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->At({3, 3}), 7.0);
  EXPECT_EQ(dense->At({0, 2}), -2.0);
  EXPECT_EQ(dense->Total(), 5.0);

  auto back = SparseCube::FromDense(Shape44(), *dense);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nonzero(), 2u);
  EXPECT_EQ(back->Get({3, 3}), 7.0);
}

TEST(SparseCubeTest, FromDenseWithTolerance) {
  auto dense = Tensor::Zeros({4, 4});
  dense->Set({0, 0}, 1e-15);
  dense->Set({1, 1}, 1.0);
  auto sparse = SparseCube::FromDense(Shape44(), *dense, 1e-12);
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->num_nonzero(), 1u);
}

TEST(SparseCubeTest, FromDenseShapeMismatch) {
  auto dense = Tensor::Zeros({2, 2});
  EXPECT_FALSE(SparseCube::FromDense(Shape44(), *dense).ok());
}

TEST(SparseCubeTest, IndicesStaySorted) {
  SparseCube sc(Shape44());
  ASSERT_TRUE(sc.Add({3, 0}, 1.0).ok());
  ASSERT_TRUE(sc.Add({0, 1}, 1.0).ok());
  ASSERT_TRUE(sc.Add({1, 2}, 1.0).ok());
  const auto& idx = sc.indices();
  for (size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
}

}  // namespace
}  // namespace vecube
