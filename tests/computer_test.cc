#include "core/computer.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "cube/synthetic.h"
#include "haar/cascade.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

TEST(ComputerTest, RootIsTheCube) {
  Fixture f = MakeFixture({4, 4}, 1);
  ElementComputer computer(f.shape, &f.cube);
  auto root = computer.Compute(ElementId::Root(2));
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->ApproxEquals(f.cube, 0.0));
}

TEST(ComputerTest, MatchesCascadePath) {
  Fixture f = MakeFixture({8, 4}, 2);
  ElementComputer computer(f.shape, &f.cube);
  auto id = ElementId::Make({{2, 1}, {1, 0}}, f.shape);
  auto direct = ApplyCascade(f.cube, id->PathFromRoot());
  auto computed = computer.Compute(*id);
  ASSERT_TRUE(computed.ok());
  EXPECT_TRUE(computed->ApproxEquals(*direct, 0.0));
}

TEST(ComputerTest, AggregatedViewMatchesAggregateDims) {
  Fixture f = MakeFixture({4, 8, 2}, 3);
  ElementComputer computer(f.shape, &f.cube);
  auto view = ElementId::AggregatedView(0b101, f.shape);  // dims 0 and 2
  auto expected = AggregateDims(f.cube, {0, 2});
  auto computed = computer.Compute(*view);
  ASSERT_TRUE(computed.ok());
  EXPECT_TRUE(computed->ApproxEquals(*expected, 0.0));
}

TEST(ComputerTest, GrandTotalElement) {
  Fixture f = MakeFixture({4, 4}, 4);
  ElementComputer computer(f.shape, &f.cube);
  auto total = computer.Compute(*ElementId::AggregatedView(0b11, f.shape));
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->size(), 1u);
  EXPECT_DOUBLE_EQ((*total)[0], f.cube.Total());
}

TEST(ComputerTest, CacheSharesPrefixes) {
  Fixture f = MakeFixture({16}, 5);
  ElementComputer computer(f.shape, &f.cube);
  OpCounter ops;
  auto p3 = computer.Compute(*ElementId::Make({{3, 0}}, f.shape), &ops);
  ASSERT_TRUE(p3.ok());
  const uint64_t first = ops.adds;   // 8 + 4 + 2
  EXPECT_EQ(first, 14u);
  auto p2 = computer.Compute(*ElementId::Make({{2, 0}}, f.shape), &ops);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(ops.adds, first);  // cache hit: no extra work
}

TEST(ComputerTest, ClearCache) {
  Fixture f = MakeFixture({8}, 6);
  ElementComputer computer(f.shape, &f.cube);
  ASSERT_TRUE(computer.Compute(*ElementId::Make({{2, 0}}, f.shape)).ok());
  EXPECT_GT(computer.CacheSize(), 0u);
  computer.ClearCache();
  EXPECT_EQ(computer.CacheSize(), 0u);
}

TEST(ComputerTest, MaterializeWaveletBasis) {
  Fixture f = MakeFixture({4, 4}, 7);
  ElementComputer computer(f.shape, &f.cube);
  const auto basis = WaveletBasisSet(f.shape);
  auto store = computer.Materialize(basis);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), basis.size());
  EXPECT_EQ(store->StorageCells(), f.shape.volume());
}

TEST(ComputerTest, InvalidIdRejected) {
  Fixture f = MakeFixture({4}, 8);
  ElementComputer computer(f.shape, &f.cube);
  // Level 3 exceeds the depth-2 cascade of extent 4 at construction time.
  EXPECT_FALSE(ElementId::Make({{3, 0}}, f.shape).ok());
  // A valid id computes fine; an arity mismatch is rejected.
  EXPECT_TRUE(computer.Compute(*ElementId::Make({{1, 0}}, f.shape)).ok());
  EXPECT_FALSE(computer.Compute(ElementId::Root(3)).ok());
}

}  // namespace
}  // namespace vecube
