#include "range/range_engine.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "range/prefix_baseline.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(RangeSpecTest, Validation) {
  const CubeShape shape = Shape({8, 4});
  EXPECT_TRUE(RangeSpec::Make({0, 0}, {8, 4}, shape).ok());
  EXPECT_TRUE(RangeSpec::Make({7, 3}, {1, 1}, shape).ok());
  EXPECT_FALSE(RangeSpec::Make({0, 0}, {9, 4}, shape).ok());   // too wide
  EXPECT_FALSE(RangeSpec::Make({8, 0}, {1, 1}, shape).ok());   // off the end
  EXPECT_FALSE(RangeSpec::Make({0, 0}, {0, 4}, shape).ok());   // zero width
  EXPECT_FALSE(RangeSpec::Make({0}, {8}, shape).ok());         // arity
}

TEST(RangeSpecTest, Volume) {
  const CubeShape shape = Shape({8, 4});
  auto r = RangeSpec::Make({1, 1}, {3, 2}, shape);
  EXPECT_EQ(r->Volume(), 6u);
}

TEST(DecomposeIntervalTest, FullIntervalIsOneBlock) {
  const auto blocks = DecomposeInterval(0, 8, 3);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (DyadicBlock{3, 0}));
}

TEST(DecomposeIntervalTest, SingleCell) {
  const auto blocks = DecomposeInterval(5, 1, 3);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (DyadicBlock{0, 5}));
}

TEST(DecomposeIntervalTest, UnalignedRange) {
  // [1, 7) over extent 8 = [1,2) + [2,4) + [4,6) + [6,7).
  const auto blocks = DecomposeInterval(1, 6, 3);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0], (DyadicBlock{0, 1}));
  EXPECT_EQ(blocks[1], (DyadicBlock{1, 1}));
  EXPECT_EQ(blocks[2], (DyadicBlock{1, 2}));
  EXPECT_EQ(blocks[3], (DyadicBlock{0, 6}));
}

TEST(DecomposeIntervalTest, CoversExactlyOnce) {
  // Property sweep: every (start, width) decomposition tiles the interval.
  const uint32_t n = 16, log_n = 4;
  for (uint32_t start = 0; start < n; ++start) {
    for (uint32_t width = 1; start + width <= n; ++width) {
      const auto blocks = DecomposeInterval(start, width, log_n);
      std::vector<int> covered(n, 0);
      for (const DyadicBlock& b : blocks) {
        for (uint32_t i = 0; i < (1u << b.level); ++i) {
          covered[(b.index << b.level) + i]++;
        }
      }
      for (uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(covered[i], (i >= start && i < start + width) ? 1 : 0)
            << "start " << start << " width " << width << " cell " << i;
      }
      // Canonical decomposition size bound.
      EXPECT_LE(blocks.size(), 2u * log_n);
    }
  }
}

struct Fixture {
  CubeShape shape;
  Tensor cube;
  ElementStore store;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed,
                    bool full_pyramid) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  EXPECT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  std::vector<ElementId> set;
  if (full_pyramid) {
    set = ViewElementGraph(*shape).IntermediateElements();
  } else {
    set = CubeOnlySet(*shape);
  }
  auto store = computer.Materialize(set);
  EXPECT_TRUE(store.ok());
  return Fixture{*shape, std::move(cube).value(), std::move(store).value()};
}

TEST(RangeEngineTest, MatchesNaiveOnFullPyramid) {
  Fixture f = MakeFixture({8, 8}, 1, /*full_pyramid=*/true);
  RangeEngine engine(&f.store, MissingElementPolicy::kError);
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint32_t> start(2), width(2);
    for (uint32_t m = 0; m < 2; ++m) {
      start[m] = static_cast<uint32_t>(rng.UniformU64(8));
      width[m] = 1 + static_cast<uint32_t>(rng.UniformU64(8 - start[m]));
    }
    auto range = RangeSpec::Make(start, width, f.shape);
    ASSERT_TRUE(range.ok());
    auto fast = engine.RangeSum(*range);
    auto naive = NaiveRangeSum(f.cube, f.shape, *range);
    ASSERT_TRUE(fast.ok() && naive.ok());
    EXPECT_DOUBLE_EQ(*fast, *naive) << range->ToString();
  }
}

TEST(RangeEngineTest, AlignedRangeIsSingleRead) {
  // Eq. 40: a power-of-two aligned range is one cell of the k-th partial
  // aggregation.
  Fixture f = MakeFixture({16}, 2, /*full_pyramid=*/true);
  RangeEngine engine(&f.store, MissingElementPolicy::kError);
  auto range = RangeSpec::Make({8}, {4}, f.shape);
  RangeQueryStats stats;
  auto sum = engine.RangeSum(*range, &stats);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(stats.cell_reads, 1u);
  EXPECT_EQ(stats.additions, 0u);
}

TEST(RangeEngineTest, ErrorPolicyOnMissingElement) {
  Fixture f = MakeFixture({8, 8}, 3, /*full_pyramid=*/false);
  RangeEngine engine(&f.store, MissingElementPolicy::kError);
  // A width-2 aligned block needs the level-1 intermediate, absent here.
  auto range = RangeSpec::Make({0, 0}, {2, 1}, f.shape);
  EXPECT_TRUE(engine.RangeSum(*range).status().IsNotFound());
  // Width-1 blocks only touch the root, which is present.
  auto cell = RangeSpec::Make({3, 3}, {1, 1}, f.shape);
  EXPECT_TRUE(engine.RangeSum(*cell).ok());
}

TEST(RangeEngineTest, AssemblePolicyFillsGapsAndCaches) {
  Fixture f = MakeFixture({8, 8}, 4, /*full_pyramid=*/false);
  RangeEngine engine(&f.store, MissingElementPolicy::kAssemble);
  auto range = RangeSpec::Make({0, 0}, {4, 4}, f.shape);
  RangeQueryStats stats;
  auto sum = engine.RangeSum(*range, &stats);
  ASSERT_TRUE(sum.ok());
  auto naive = NaiveRangeSum(f.cube, f.shape, *range);
  EXPECT_DOUBLE_EQ(*sum, *naive);
  EXPECT_GT(stats.elements_missing, 0u);
  EXPECT_GT(stats.assembly_ops, 0u);
  // Second identical query hits the assembled cache.
  RangeQueryStats stats2;
  ASSERT_TRUE(engine.RangeSum(*range, &stats2).ok());
  EXPECT_EQ(stats2.elements_missing, 0u);
  EXPECT_EQ(stats2.assembly_ops, 0u);
}

TEST(RangeEngineTest, FarFewerReadsThanNaive) {
  Fixture f = MakeFixture({32, 32}, 5, /*full_pyramid=*/true);
  RangeEngine engine(&f.store, MissingElementPolicy::kError);
  auto range = RangeSpec::Make({1, 1}, {30, 30}, f.shape);
  RangeQueryStats stats;
  uint64_t naive_reads = 0;
  auto fast = engine.RangeSum(*range, &stats);
  auto naive = NaiveRangeSum(f.cube, f.shape, *range, &naive_reads);
  ASSERT_TRUE(fast.ok() && naive.ok());
  EXPECT_DOUBLE_EQ(*fast, *naive);
  EXPECT_EQ(naive_reads, 900u);
  EXPECT_LE(stats.cell_reads, 64u);  // (2 log2 32)^2
}

TEST(PrefixSumTest, MatchesNaiveEverywhere) {
  const CubeShape shape = Shape({8, 4});
  Rng rng(6);
  auto cube = UniformIntegerCube(shape, &rng, 0, 9);
  auto prefix = PrefixSumCube::Build(shape, *cube);
  ASSERT_TRUE(prefix.ok());
  for (uint32_t s0 = 0; s0 < 8; ++s0) {
    for (uint32_t w0 = 1; s0 + w0 <= 8; ++w0) {
      for (uint32_t s1 = 0; s1 < 4; ++s1) {
        for (uint32_t w1 = 1; s1 + w1 <= 4; ++w1) {
          auto range = RangeSpec::Make({s0, s1}, {w0, w1}, shape);
          auto fast = prefix->RangeSum(*range);
          auto naive = NaiveRangeSum(*cube, shape, *range);
          ASSERT_TRUE(fast.ok() && naive.ok());
          EXPECT_DOUBLE_EQ(*fast, *naive);
        }
      }
    }
  }
}

TEST(PrefixSumTest, ConstantReadsPerQuery) {
  const CubeShape shape = Shape({16, 16});
  Rng rng(7);
  auto cube = UniformIntegerCube(shape, &rng);
  auto prefix = PrefixSumCube::Build(shape, *cube);
  uint64_t reads = 0;
  auto range = RangeSpec::Make({3, 5}, {9, 7}, shape);
  ASSERT_TRUE(prefix->RangeSum(*range, &reads).ok());
  EXPECT_LE(reads, 4u);  // 2^d with zero-start corners skipped
}

TEST(PrefixSumTest, RejectsMismatchedCube) {
  const CubeShape shape = Shape({8});
  auto wrong = Tensor::Zeros({4});
  EXPECT_FALSE(PrefixSumCube::Build(shape, *wrong).ok());
}

}  // namespace
}  // namespace vecube
