// Exhaustive oracle: on a 1-D cube of extent 8 the view element graph has
// 15 elements and exactly 26 guillotine tilings (all non-redundant bases,
// since d = 1 admits no non-guillotine covers). Every basis is checked
// end-to-end: structural properties, exact reconstruction of all 15
// elements, measured work == Procedure-3 cost, and Algorithm 1 returning
// the true minimum over the enumerated bases for several populations —
// including populations over intermediate and residual elements.

#include <gtest/gtest.h>

#include <limits>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "select/algorithm1.h"
#include "select/pair_cost.h"
#include "select/procedure3.h"
#include "util/rng.h"

namespace vecube {
namespace {

class Oracle1D : public ::testing::Test {
 protected:
  void SetUp() override {
    auto shape = CubeShape::Make({8});
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(11);
    auto cube = UniformIntegerCube(shape_, &rng, -7, 7);
    ASSERT_TRUE(cube.ok());
    cube_ = std::move(cube).value();
    EnumerateTilings(ElementId::Root(1), &tilings_);
  }

  void EnumerateTilings(const ElementId& id,
                        std::vector<std::vector<ElementId>>* out) {
    out->push_back({id});
    if (!id.CanSplit(0, shape_)) return;
    auto p = id.Child(0, StepKind::kPartial, shape_);
    auto r = id.Child(0, StepKind::kResidual, shape_);
    std::vector<std::vector<ElementId>> left, right;
    EnumerateTilings(*p, &left);
    EnumerateTilings(*r, &right);
    for (const auto& l : left) {
      for (const auto& t : right) {
        std::vector<ElementId> combined = l;
        combined.insert(combined.end(), t.begin(), t.end());
        out->push_back(std::move(combined));
      }
    }
  }

  CubeShape shape_;
  Tensor cube_;
  std::vector<std::vector<ElementId>> tilings_;
};

TEST_F(Oracle1D, TwentySixTilings) {
  // t(8) = 1 + t(4)^2, t(4) = 1 + t(2)^2, t(2) = 1 + 1 = 2 -> 26.
  EXPECT_EQ(tilings_.size(), 26u);
}

TEST_F(Oracle1D, EveryTilingIsANonRedundantBasis) {
  for (const auto& tiling : tilings_) {
    EXPECT_TRUE(IsNonRedundantBasis(tiling, shape_));
    EXPECT_EQ(StorageVolume(tiling, shape_), 8u);
  }
}

TEST_F(Oracle1D, EveryBasisReconstructsEveryElementAtPlannedCost) {
  ElementComputer computer(shape_, &cube_);
  ViewElementGraph graph(shape_);
  for (const auto& tiling : tilings_) {
    auto store = computer.Materialize(tiling);
    ASSERT_TRUE(store.ok());
    AssemblyEngine engine(&*store);
    auto calc = Procedure3Calculator::Make(shape_, tiling);
    ASSERT_TRUE(calc.ok());
    graph.ForEachElement([&](const ElementId& id) {
      auto expected = computer.Compute(id);
      OpCounter ops;
      auto got = engine.Assemble(id, &ops);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->ApproxEquals(*expected, 0.0)) << id.ToString();
      EXPECT_EQ(ops.adds, calc->Cost(id)) << id.ToString();
      EXPECT_EQ(engine.PlanCost(id), calc->Cost(id)) << id.ToString();
    });
  }
}

TEST_F(Oracle1D, Algorithm1IsExactlyOptimalOverAllBases) {
  // Several populations: views only, intermediates, residuals, mixtures.
  ViewElementGraph graph(shape_);
  std::vector<QueryPopulation> populations;
  {
    Rng rng(21);
    for (uint64_t seed = 0; seed < 5; ++seed) {
      auto pop = RandomViewPopulation(shape_, &rng);
      ASSERT_TRUE(pop.ok());
      populations.push_back(*pop);
    }
    auto p2 = ElementId::Intermediate({2}, shape_);
    auto r = ElementId::Make({{1, 1}}, shape_);
    auto deep = ElementId::Make({{3, 5}}, shape_);
    auto mixed = FixedPopulation(
        {{*p2, 0.5}, {*r, 0.3}, {*deep, 0.2}}, shape_);
    ASSERT_TRUE(mixed.ok());
    populations.push_back(*mixed);
  }
  for (const QueryPopulation& population : populations) {
    auto selection = SelectMinCostBasis(shape_, population);
    ASSERT_TRUE(selection.ok());
    double best = std::numeric_limits<double>::infinity();
    for (const auto& tiling : tilings_) {
      best = std::min(best, PopulationPairCost(tiling, population, shape_));
    }
    EXPECT_NEAR(selection->predicted_cost, best, 1e-9);
  }
}

TEST_F(Oracle1D, PairModelUpperBoundsTreeModelOnEveryBasis) {
  // The documented relationship between the two accountings (DESIGN.md):
  // the Procedure-3 tree cost never exceeds the Eq.-27 pair cost.
  Rng rng(31);
  auto population = RandomViewPopulation(shape_, &rng);
  ASSERT_TRUE(population.ok());
  for (const auto& tiling : tilings_) {
    auto calc = Procedure3Calculator::Make(shape_, tiling);
    ASSERT_TRUE(calc.ok());
    const double tree = calc->TotalCost(*population);
    const double pair = PopulationPairCost(tiling, *population, shape_);
    EXPECT_LE(tree, pair + 1e-9);
  }
}

}  // namespace
}  // namespace vecube
