#include "cube/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cube/cube_builder.h"

namespace vecube {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  out << contents;
}

TEST(CsvTest, ParsesHeaderAndRows) {
  const std::string path = TempPath("basic.csv");
  WriteFile(path,
            "product,store,amount\n"
            "1,2,9.5\n"
            "0,3,-1\n");
  auto relation = LoadRelationCsv(path, 2, 1);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 2u);
  EXPECT_EQ(relation->functional_name(0), "product");
  EXPECT_EQ(relation->measure_name(0), "amount");
  EXPECT_EQ(relation->key(1, 0), 2);
  EXPECT_DOUBLE_EQ(relation->measure(0, 1), -1.0);
  std::remove(path.c_str());
}

TEST(CsvTest, NoHeaderGetsDefaultNames) {
  const std::string path = TempPath("noheader.csv");
  WriteFile(path, "5,1.25\n7,2.5\n");
  CsvOptions options;
  options.has_header = false;
  auto relation = LoadRelationCsv(path, 1, 1, options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 2u);
  EXPECT_EQ(relation->functional_name(0), "key0");
  EXPECT_EQ(relation->measure_name(0), "measure0");
  std::remove(path.c_str());
}

TEST(CsvTest, CustomDelimiter) {
  const std::string path = TempPath("tabs.csv");
  WriteFile(path, "a\tm\n3\t4.5\n");
  CsvOptions options;
  options.delimiter = '\t';
  auto relation = LoadRelationCsv(path, 1, 1, options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->key(0, 0), 3);
  std::remove(path.c_str());
}

TEST(CsvTest, ColumnCountMismatchReportsLine) {
  const std::string path = TempPath("badcols.csv");
  WriteFile(path, "a,b,m\n1,2,3\n4,5\n");
  auto relation = LoadRelationCsv(path, 2, 1);
  ASSERT_FALSE(relation.ok());
  EXPECT_NE(relation.status().message().find("line 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, NonNumericFieldRejected) {
  const std::string path = TempPath("nonnum.csv");
  WriteFile(path, "a,m\nhello,2\n");
  EXPECT_FALSE(LoadRelationCsv(path, 1, 1).ok());
  WriteFile(path, "a,m\n1,world\n");
  EXPECT_FALSE(LoadRelationCsv(path, 1, 1).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, WindowsLineEndingsTolerated) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,m\r\n1,2\r\n");
  auto relation = LoadRelationCsv(path, 1, 1);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->key(0, 0), 1);
  EXPECT_DOUBLE_EQ(relation->measure(0, 0), 2.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      LoadRelationCsv("/nonexistent/file.csv", 1, 1).status().IsNotFound());
}

TEST(CsvTest, SaveLoadRoundTrip) {
  auto relation = Relation::Make({"x", "y"}, {"v", "w"});
  ASSERT_TRUE(relation->Append({1, 2}, {3.5, -4.0}).ok());
  ASSERT_TRUE(relation->Append({-7, 0}, {0.25, 100.0}).ok());
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveRelationCsv(*relation, path).ok());

  auto loaded = LoadRelationCsv(path, 2, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->key(0, 1), -7);
  EXPECT_DOUBLE_EQ(loaded->measure(1, 1), 100.0);
  EXPECT_EQ(loaded->functional_name(1), "y");
  std::remove(path.c_str());
}

TEST(CsvTest, LoadedRelationBuildsCube) {
  const std::string path = TempPath("tocube.csv");
  WriteFile(path,
            "x,y,v\n"
            "0,0,1\n"
            "0,0,2\n"
            "3,3,10\n");
  auto relation = LoadRelationCsv(path, 2, 1);
  ASSERT_TRUE(relation.ok());
  auto shape = CubeShape::Make({4, 4});
  auto built = CubeBuilder::Build(*relation, *shape);
  ASSERT_TRUE(built.ok());
  EXPECT_DOUBLE_EQ(built->cube.At({0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(built->cube.At({3, 3}), 10.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vecube
