// Exact reproduction of the paper's pedagogical example (Section 7.1,
// Figure 7 and Table 2): the 2x2 data cube whose view element graph has
// nine elements, with queries V1 and V7 equally likely.
//
// Element labels (derived from the constraints of Table 2; see DESIGN.md):
//   V0 = A = (I, I)        V1 = (P, I)   V4 = (R, I)
//   V7 = (I, P)            V8 = (I, R)
//   V2 = (P, P) = S(A)     V3 = (P, R)   V5 = (R, P)   V6 = (R, R)
// where per dimension I = untouched, P = partial sum, R = residual.

#include <gtest/gtest.h>

#include "core/basis.h"
#include "select/algorithm1.h"
#include "select/pair_cost.h"
#include "select/procedure3.h"
#include "workload/population.h"

namespace vecube {
namespace {

class PedagogicalExample : public ::testing::Test {
 protected:
  void SetUp() override {
    auto shape = CubeShape::Make({2, 2});
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    auto make = [&](uint32_t l0, uint32_t o0, uint32_t l1, uint32_t o1) {
      auto id = ElementId::Make({{l0, o0}, {l1, o1}}, shape_);
      EXPECT_TRUE(id.ok());
      return *id;
    };
    v_ = {make(0, 0, 0, 0),   // V0 = A
          make(1, 0, 0, 0),   // V1 = (P, I)
          make(1, 0, 1, 0),   // V2 = (P, P)
          make(1, 0, 1, 1),   // V3 = (P, R)
          make(1, 1, 0, 0),   // V4 = (R, I)
          make(1, 1, 1, 0),   // V5 = (R, P)
          make(1, 1, 1, 1),   // V6 = (R, R)
          make(0, 0, 1, 0),   // V7 = (I, P)
          make(0, 0, 1, 1)};  // V8 = (I, R)
    auto pop = FixedPopulation({{v_[1], 0.5}, {v_[7], 0.5}}, shape_);
    ASSERT_TRUE(pop.ok());
    population_ = *pop;
  }

  // Table-2 processing cost: total operations to generate each queried
  // view once (Procedure 3 with unit weights == 2x the f-weighted cost).
  uint64_t ProcessingCost(const std::vector<ElementId>& set) {
    auto calc = Procedure3Calculator::Make(shape_, set);
    EXPECT_TRUE(calc.ok());
    const uint64_t c1 = calc->Cost(v_[1]);
    const uint64_t c7 = calc->Cost(v_[7]);
    EXPECT_NE(c1, kInfiniteCost);
    EXPECT_NE(c7, kInfiniteCost);
    return c1 + c7;
  }

  CubeShape shape_;
  std::vector<ElementId> v_;
  QueryPopulation population_;
};

TEST_F(PedagogicalExample, GraphHasNineElements) {
  // (2n-1)^2 = 9 elements for the 2x2 cube; 4 aggregated views.
  EXPECT_EQ((2u * 2 - 1) * (2u * 2 - 1), 9u);
  EXPECT_TRUE(v_[0].IsRoot());
  EXPECT_TRUE(v_[1].IsAggregatedView(shape_));
  EXPECT_TRUE(v_[2].IsAggregatedView(shape_));  // the total aggregation
  EXPECT_TRUE(v_[7].IsAggregatedView(shape_));
  EXPECT_TRUE(v_[3].IsResidual());
  EXPECT_TRUE(v_[4].IsResidual());
}

// --- Table 2, row by row -------------------------------------------------

TEST_F(PedagogicalExample, Row1_V3V6V7) {
  const std::vector<ElementId> set{v_[3], v_[6], v_[7]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 3u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row2_V1V5V6) {
  const std::vector<ElementId> set{v_[1], v_[5], v_[6]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 3u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row3_V0) {
  const std::vector<ElementId> set{v_[0]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 4u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row4_V1V4) {
  const std::vector<ElementId> set{v_[1], v_[4]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 4u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row5_V7V8) {
  const std::vector<ElementId> set{v_[7], v_[8]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 4u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row6_V2V3V5V6) {
  const std::vector<ElementId> set{v_[2], v_[3], v_[5], v_[6]};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 4u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
}

TEST_F(PedagogicalExample, Row7_V0V1V7_RedundantBasis) {
  const std::vector<ElementId> set{v_[0], v_[1], v_[7]};
  EXPECT_TRUE(IsComplete(set, shape_));
  EXPECT_FALSE(IsNonRedundant(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 0u);
  EXPECT_EQ(StorageVolume(set, shape_), 8u);
}

TEST_F(PedagogicalExample, Row8_V1V7_RedundantIncomplete) {
  const std::vector<ElementId> set{v_[1], v_[7]};
  EXPECT_FALSE(IsComplete(set, shape_));
  EXPECT_FALSE(IsNonRedundant(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 0u);
  EXPECT_EQ(StorageVolume(set, shape_), 4u);
  // And it really cannot construct all views: the root is unreachable.
  auto calc = Procedure3Calculator::Make(shape_, set);
  EXPECT_EQ(calc->Cost(v_[0]), kInfiniteCost);
}

TEST_F(PedagogicalExample, Row9_V3V7_NonRedundantIncomplete) {
  const std::vector<ElementId> set{v_[3], v_[7]};
  EXPECT_FALSE(IsComplete(set, shape_));
  EXPECT_TRUE(IsNonRedundant(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 3u);
  EXPECT_EQ(StorageVolume(set, shape_), 3u);
}

TEST_F(PedagogicalExample, Row10_V2V3V5_NonRedundantIncomplete) {
  const std::vector<ElementId> set{v_[2], v_[3], v_[5]};
  EXPECT_FALSE(IsComplete(set, shape_));
  EXPECT_TRUE(IsNonRedundant(set, shape_));
  EXPECT_EQ(ProcessingCost(set), 4u);
  EXPECT_EQ(StorageVolume(set, shape_), 3u);
}

// --- The example's headline claims ---------------------------------------

TEST_F(PedagogicalExample, PairModelAgreesOnNonRedundantBases) {
  // For the non-redundant bases of Table 2, the Eq.-27 pair model equals
  // the Procedure-3 tree cost (single synthesis stage).
  const std::vector<std::vector<ElementId>> bases = {
      {v_[3], v_[6], v_[7]}, {v_[1], v_[5], v_[6]}, {v_[0]},
      {v_[1], v_[4]},        {v_[7], v_[8]},        {v_[2], v_[3], v_[5], v_[6]},
  };
  for (const auto& set : bases) {
    EXPECT_EQ(UnweightedPairCost(set, {v_[1], v_[7]}, shape_),
              ProcessingCost(set));
  }
}

TEST_F(PedagogicalExample, Algorithm1FindsAMinimumCostBasis) {
  auto selection = SelectMinCostBasis(shape_, population_);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(IsNonRedundantBasis(selection->basis, shape_));
  // Weighted cost 1.5 == unweighted 3, the optimum of Table 2.
  EXPECT_DOUBLE_EQ(selection->predicted_cost, 1.5);
  EXPECT_EQ(ProcessingCost(selection->basis), 3u);
}

TEST_F(PedagogicalExample, MaterializingViewsOnlyIsWorse) {
  // "without using view elements, the processing cost is reduced only by
  // increasing the storage cost": the best element basis beats the cube
  // at equal storage.
  EXPECT_LT(ProcessingCost({v_[3], v_[6], v_[7]}), ProcessingCost({v_[0]}));
  EXPECT_EQ(StorageVolume({v_[3], v_[6], v_[7]}, shape_),
            StorageVolume({v_[0]}, shape_));
}

}  // namespace
}  // namespace vecube
