#include "core/tracker.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(TrackerTest, EmptyDistribution) {
  AccessTracker tracker;
  EXPECT_TRUE(tracker.Distribution().empty());
  EXPECT_EQ(tracker.total_accesses(), 0u);
}

TEST(TrackerTest, CountsNormalize) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  tracker.Record(*a);
  tracker.Record(*a);
  tracker.Record(*a);
  tracker.Record(*b);
  const auto dist = tracker.Distribution();
  ASSERT_EQ(dist.size(), 2u);
  double total = 0.0;
  for (const auto& [id, f] : dist) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // a < b lexicographically? a aggregates dim 0 -> codes (2@0, 0@0);
  // b -> (0@0, 2@0). So b sorts first.
  EXPECT_EQ(dist[0].first, *b);
  EXPECT_NEAR(dist[1].second, 0.75, 1e-12);
}

TEST(TrackerTest, DecayFavorsRecentAccesses) {
  const CubeShape shape = Shape44();
  AccessTracker tracker(0.5);
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  for (int i = 0; i < 10; ++i) tracker.Record(*a);
  for (int i = 0; i < 10; ++i) tracker.Record(*b);
  const auto dist = tracker.Distribution();
  ASSERT_EQ(dist.size(), 2u);
  // b was accessed last; with decay 0.5 it dominates.
  double fa = 0, fb = 0;
  for (const auto& [id, f] : dist) {
    if (id == *a) fa = f;
    if (id == *b) fb = f;
  }
  EXPECT_GT(fb, 0.9);
  EXPECT_LT(fa, 0.1);
}

TEST(TrackerTest, DriftAgainstEmptyReferenceIsOne) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  EXPECT_NEAR(tracker.L1Drift({}), 1.0, 1e-12);
}

TEST(TrackerTest, DriftZeroWhenDistributionsMatch) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  tracker.Record(*a);
  tracker.Record(*b);
  EXPECT_NEAR(tracker.L1Drift({{*a, 0.5}, {*b, 0.5}}), 0.0, 1e-12);
}

TEST(TrackerTest, DriftTwoForDisjointDistributions) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  EXPECT_NEAR(
      tracker.L1Drift({{*ElementId::AggregatedView(2, shape), 1.0}}), 2.0,
      1e-12);
}

TEST(TrackerTest, ResetClears) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  tracker.Reset();
  EXPECT_TRUE(tracker.Distribution().empty());
  EXPECT_EQ(tracker.total_accesses(), 0u);
}

}  // namespace
}  // namespace vecube
