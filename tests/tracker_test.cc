#include "core/tracker.h"

#include <gtest/gtest.h>

#include <thread>

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(TrackerTest, EmptyDistribution) {
  AccessTracker tracker;
  EXPECT_TRUE(tracker.Distribution().empty());
  EXPECT_EQ(tracker.total_accesses(), 0u);
}

TEST(TrackerTest, CountsNormalize) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  tracker.Record(*a);
  tracker.Record(*a);
  tracker.Record(*a);
  tracker.Record(*b);
  const auto dist = tracker.Distribution();
  ASSERT_EQ(dist.size(), 2u);
  double total = 0.0;
  for (const auto& [id, f] : dist) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // a < b lexicographically? a aggregates dim 0 -> codes (2@0, 0@0);
  // b -> (0@0, 2@0). So b sorts first.
  EXPECT_EQ(dist[0].first, *b);
  EXPECT_NEAR(dist[1].second, 0.75, 1e-12);
}

TEST(TrackerTest, DecayFavorsRecentAccesses) {
  const CubeShape shape = Shape44();
  AccessTracker tracker(0.5);
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  for (int i = 0; i < 10; ++i) tracker.Record(*a);
  for (int i = 0; i < 10; ++i) tracker.Record(*b);
  const auto dist = tracker.Distribution();
  ASSERT_EQ(dist.size(), 2u);
  // b was accessed last; with decay 0.5 it dominates.
  double fa = 0, fb = 0;
  for (const auto& [id, f] : dist) {
    if (id == *a) fa = f;
    if (id == *b) fb = f;
  }
  EXPECT_GT(fb, 0.9);
  EXPECT_LT(fa, 0.1);
}

TEST(TrackerTest, DriftAgainstEmptyReferenceIsOne) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  EXPECT_NEAR(tracker.L1Drift({}), 1.0, 1e-12);
}

TEST(TrackerTest, DriftZeroWhenDistributionsMatch) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  auto a = ElementId::AggregatedView(1, shape);
  auto b = ElementId::AggregatedView(2, shape);
  tracker.Record(*a);
  tracker.Record(*b);
  EXPECT_NEAR(tracker.L1Drift({{*a, 0.5}, {*b, 0.5}}), 0.0, 1e-12);
}

TEST(TrackerTest, DriftTwoForDisjointDistributions) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  EXPECT_NEAR(
      tracker.L1Drift({{*ElementId::AggregatedView(2, shape), 1.0}}), 2.0,
      1e-12);
}

// Distinct ids on demand: deep-level codes over a 256x256 shape give
// 2^16 addressable elements.
std::vector<ElementId> DistinctIds(size_t count) {
  auto shape = CubeShape::Make({256, 256});
  EXPECT_TRUE(shape.ok());
  std::vector<ElementId> ids;
  ids.reserve(count);
  for (uint32_t o1 = 0; o1 < 256 && ids.size() < count; ++o1) {
    for (uint32_t o2 = 0; o2 < 256 && ids.size() < count; ++o2) {
      auto id = ElementId::Make({DimCode{8, o1}, DimCode{8, o2}}, *shape);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  EXPECT_EQ(ids.size(), count);
  return ids;
}

// Regression: weights_ grew without bound — one map slot per distinct id
// ever recorded, forever, even with decay rendering the tail weightless.
TEST(TrackerTest, LongTailOfColdIdsIsPrunedUnderDecay) {
  AccessTracker tracker(0.9);
  const std::vector<ElementId> ids = DistinctIds(20000);
  for (const ElementId& id : ids) tracker.Record(id);
  // With decay 0.9 a once-touched weight sinks below kPruneEpsilon after
  // ~219 further records; only the recent tail (plus at most one prune
  // interval of slack) may hold slots.
  EXPECT_LT(tracker.tracked_count(), 2048u);
  EXPECT_EQ(tracker.total_accesses(), 20000u);
  const auto dist = tracker.Distribution();
  EXPECT_EQ(dist.size(), tracker.tracked_count());
  double total = 0.0;
  for (const auto& [id, f] : dist) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TrackerTest, HotEntrySurvivesPruning) {
  const CubeShape shape = Shape44();
  AccessTracker tracker(0.9);
  auto hot = ElementId::AggregatedView(3, shape);
  const std::vector<ElementId> tail = DistinctIds(8000);
  for (const ElementId& id : tail) {
    tracker.Record(id);
    tracker.Record(*hot);  // every other access keeps the hot id warm
  }
  EXPECT_LT(tracker.tracked_count(), 2048u);
  double hot_freq = 0.0;
  for (const auto& [id, f] : tracker.Distribution()) {
    if (id == *hot) hot_freq = f;
  }
  // The hot id holds its analytic share of the surviving mass: with the
  // alternating pattern it carries 1/(1-0.81) ≈ 5.26 of ~10 total weight.
  EXPECT_GT(hot_freq, 0.45);
}

TEST(TrackerTest, PlainCountingNeverPrunes) {
  AccessTracker tracker(1.0);
  const std::vector<ElementId> ids = DistinctIds(3000);
  for (const ElementId& id : ids) tracker.Record(id);
  // Decay 1.0 keeps exact history: pruning would silently drop real
  // counts, so every id must still be tracked (3000 > several prune
  // intervals — the sweep must not have engaged).
  EXPECT_EQ(tracker.tracked_count(), 3000u);
  EXPECT_EQ(tracker.Distribution().size(), 3000u);
}

TEST(TrackerTest, ResetClears) {
  const CubeShape shape = Shape44();
  AccessTracker tracker;
  tracker.Record(*ElementId::AggregatedView(1, shape));
  tracker.Reset();
  EXPECT_TRUE(tracker.Distribution().empty());
  EXPECT_EQ(tracker.total_accesses(), 0u);
}

// ---------------------------------------------------------------------------
// BufferedAccessLog: the write-behind front keeping Record() off the
// serving hit path. Nothing may be lost, and with decay == 1.0 the
// drained sink is bit-identical to eager recording (counting is
// order-independent).

TEST(TrackerBufferTest, DrainedStateMatchesEagerExactly) {
  const std::vector<ElementId> ids = DistinctIds(16);
  AccessTracker eager(1.0);
  AccessTracker sink(1.0);
  BufferedAccessLog log(&sink);

  for (int round = 0; round < 40; ++round) {
    const ElementId& id = ids[static_cast<size_t>(round * 7 % 16)];
    eager.Record(id);
    log.Record(id);
  }
  // Below the batch size: the sink has seen nothing yet.
  EXPECT_EQ(log.buffered(), 40u);
  EXPECT_EQ(sink.total_accesses(), 0u);

  log.Drain();
  EXPECT_EQ(log.buffered(), 0u);
  EXPECT_EQ(sink.total_accesses(), eager.total_accesses());
  const auto drained = sink.Distribution();
  const auto reference = eager.Distribution();
  ASSERT_EQ(drained.size(), reference.size());
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].first, reference[i].first);
    EXPECT_DOUBLE_EQ(drained[i].second, reference[i].second);
  }
}

TEST(TrackerBufferTest, FullBatchAppliesWithoutExplicitDrain) {
  const std::vector<ElementId> ids = DistinctIds(4);
  AccessTracker sink(1.0);
  BufferedAccessLog log(&sink, /*batch_size=*/8);
  // A single thread maps to one stripe, so the 8th record flushes it.
  for (int i = 0; i < 8; ++i) log.Record(ids[static_cast<size_t>(i % 4)]);
  EXPECT_EQ(log.buffered(), 0u);
  EXPECT_EQ(sink.total_accesses(), 8u);
}

TEST(TrackerBufferTest, ConcurrentRecordersLoseNothing) {
  const std::vector<ElementId> ids = DistinctIds(32);
  AccessTracker sink(1.0);
  BufferedAccessLog log(&sink, /*batch_size=*/16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;

  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(ids[static_cast<size_t>((t * kPerThread + i) % 32)]);
      }
    });
  }
  for (std::thread& recorder : recorders) recorder.join();
  log.Drain();
  EXPECT_EQ(log.buffered(), 0u);
  EXPECT_EQ(sink.total_accesses(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  // Every id got an equal share; decay 1.0 counting is order-independent,
  // so the distribution is exact regardless of interleaving.
  for (const auto& [id, freq] : sink.Distribution()) {
    EXPECT_DOUBLE_EQ(freq, 1.0 / 32.0);
  }
}

}  // namespace
}  // namespace vecube
