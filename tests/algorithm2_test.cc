#include "select/algorithm2.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "select/algorithm1.h"
#include "select/procedure3.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(Algorithm2Test, FrontierStartsAtInitialSet) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(1);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  options.storage_target_cells = shape.volume();  // no room to add
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  ASSERT_EQ(frontier->size(), 1u);
  EXPECT_FALSE((*frontier)[0].added_valid);
  EXPECT_EQ((*frontier)[0].storage_cells, shape.volume());
}

TEST(Algorithm2Test, CostsMonotonicallyDecrease) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(2);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  options.storage_target_cells = 2 * shape.volume();
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  ASSERT_GT(frontier->size(), 1u);
  for (size_t i = 1; i < frontier->size(); ++i) {
    EXPECT_LT((*frontier)[i].processing_cost,
              (*frontier)[i - 1].processing_cost);
    EXPECT_GT((*frontier)[i].storage_cells, (*frontier)[i - 1].storage_cells);
  }
}

TEST(Algorithm2Test, RespectsStorageTarget) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(3);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  options.storage_target_cells = shape.volume() + 5;
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  for (const GreedyStep& step : *frontier) {
    EXPECT_LE(step.storage_cells, options.storage_target_cells);
  }
}

TEST(Algorithm2Test, ReachesZeroCostWithEnoughStorage) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(4);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  // The view hierarchy volume (n+1)^d bounds what zero cost requires.
  options.storage_target_cells = 3 * shape.volume();
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  EXPECT_DOUBLE_EQ(frontier->back().processing_cost, 0.0);
}

TEST(Algorithm2Test, ViewPoolOnlyAddsAggregatedViews) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(5);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  options.storage_target_cells = 3 * shape.volume();
  options.pool = CandidatePool::kAggregatedViews;
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  for (size_t i = 1; i < frontier->size(); ++i) {
    EXPECT_TRUE((*frontier)[i].added.IsAggregatedView(shape));
  }
}

TEST(Algorithm2Test, GuaranteedVariantDominatesViewPool) {
  // Figure 9's guarantee (Section 7.2.2): with the "add the best view,
  // remove the obsolete view elements" refinement, the view element
  // frontier is never above the greedy-views frontier. We run the element
  // method with the same view candidate pool plus obsolete pruning, from
  // the Algorithm-1 basis.
  const CubeShape shape = Shape({4, 4});
  for (uint64_t seed = 10; seed < 15; ++seed) {
    Rng rng(seed);
    auto pop = RandomViewPopulation(shape, &rng);

    auto basis = SelectMinCostBasis(shape, *pop);
    ASSERT_TRUE(basis.ok());

    GreedyOptions views_opt;
    views_opt.storage_target_cells = 3 * shape.volume();
    views_opt.pool = CandidatePool::kAggregatedViews;
    auto views = GreedySelect(shape, *pop, CubeOnlySet(shape), views_opt);

    GreedyOptions elems_opt = views_opt;
    elems_opt.prune_obsolete = true;
    auto elems = GreedySelect(shape, *pop, basis->basis, elems_opt);
    ASSERT_TRUE(views.ok() && elems.ok());

    // Point a never worse than point b (equal initial storage).
    EXPECT_EQ(elems->front().storage_cells, views->front().storage_cells);
    EXPECT_LE(elems->front().processing_cost,
              views->front().processing_cost + 1e-9)
        << "seed " << seed;

    // Both converge to the zero-processing-cost solution (point d).
    EXPECT_DOUBLE_EQ(views->back().processing_cost, 0.0);
    EXPECT_DOUBLE_EQ(elems->back().processing_cost, 0.0);

    // Element frontier dominates: at each view-frontier storage point the
    // element method has reached a cost at least as low.
    for (const GreedyStep& vstep : *views) {
      double best_elem_cost = elems->front().processing_cost;
      for (const GreedyStep& estep : *elems) {
        if (estep.storage_cells <= vstep.storage_cells) {
          best_elem_cost = std::min(best_elem_cost, estep.processing_cost);
        }
      }
      EXPECT_LE(best_elem_cost, vstep.processing_cost + 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(Algorithm2Test, IncompleteInitialSetRejected) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(6);
  auto pop = RandomViewPopulation(shape, &rng);
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  GreedyOptions options;
  options.storage_target_cells = 2 * shape.volume();
  auto frontier = GreedySelect(shape, *pop, {*p}, options);
  EXPECT_FALSE(frontier.ok());
}

TEST(Algorithm2Test, PruneObsoleteKeepsCostAndShrinksStorage) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(7);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions plain;
  plain.storage_target_cells = 2 * shape.volume();
  GreedyOptions pruned = plain;
  pruned.prune_obsolete = true;
  auto a = GreedySelect(shape, *pop, CubeOnlySet(shape), plain);
  auto b = GreedySelect(shape, *pop, CubeOnlySet(shape), pruned);
  ASSERT_TRUE(a.ok() && b.ok());
  // Pruning never ends with a higher final cost at equal-or-less storage
  // than the plain run's last step.
  EXPECT_LE(b->back().processing_cost, a->back().processing_cost + 1e-9);
  EXPECT_LE(b->back().storage_cells, a->back().storage_cells);
}

TEST(Algorithm2Test, AddedElementsAreRecordedInSelectedSets) {
  const CubeShape shape = Shape({4, 4});
  Rng rng(8);
  auto pop = RandomViewPopulation(shape, &rng);
  GreedyOptions options;
  options.storage_target_cells = 2 * shape.volume();
  auto frontier = GreedySelect(shape, *pop, CubeOnlySet(shape), options);
  ASSERT_TRUE(frontier.ok());
  for (size_t i = 1; i < frontier->size(); ++i) {
    const auto& step = (*frontier)[i];
    EXPECT_TRUE(step.added_valid);
    EXPECT_NE(std::find(step.selected.begin(), step.selected.end(),
                        step.added),
              step.selected.end());
    // Procedure-3 re-evaluation agrees with the recorded cost.
    auto calc = Procedure3Calculator::Make(shape, step.selected);
    ASSERT_TRUE(calc.ok());
    EXPECT_NEAR(calc->TotalCost(*pop), step.processing_cost, 1e-9);
  }
}

}  // namespace
}  // namespace vecube
