// Race-detection stress tests for the threaded execution paths, designed
// to run under ThreadSanitizer (the CI TSan job) as well as natively.
//
// These tests hammer the three concurrency surfaces introduced with the
// thread pool: ParallelFor scheduling (including nesting and concurrent
// external callers), AssembleBatch target fan-out, and the latched
// shared-subresult cache that must compute every distinct sub-element
// exactly once. Interleavings are randomized via seeded Rng draws —
// different chunk sizes, target subsets, and thread counts per round — so
// repeated runs explore different schedules while staying reproducible.
// Every round is verified against the serial engine: bit-exact outputs
// and identical measured op counts, the paper's Procedure-3 invariant.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/element_id.h"
#include "core/graph.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "cube/tensor.h"
#include "haar/transform.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vecube {
namespace {

// Rounds are kept modest: TSan multiplies runtime ~10x and CI runs on
// small machines. The schedules explored grow with rounds, not with data.
constexpr int kRounds = 12;

TEST(ThreadPoolStress, ConcurrentExternalCallersRandomizedShapes) {
  ThreadPool pool(4);
  constexpr int kCallers = 3;
  std::vector<std::thread> callers;
  std::vector<uint64_t> totals(kCallers, 0);
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &totals, &failures, c] {
      Rng rng(0x5712e55 + static_cast<uint64_t>(c));
      uint64_t total = 0;
      for (int round = 0; round < kRounds * 4; ++round) {
        const uint64_t n = 1 + rng.UniformU64(4000);
        const uint64_t grain = 1 + rng.UniformU64(64);
        std::atomic<uint64_t> covered{0};
        pool.ParallelFor(n, grain, [&covered](uint64_t begin, uint64_t end) {
          covered.fetch_add(end - begin, std::memory_order_relaxed);
        });
        if (covered.load() != n) failures.fetch_add(1);
        total += covered.load();
      }
      totals[c] = total;
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < kCallers; ++c) EXPECT_GT(totals[c], 0u);
}

TEST(ThreadPoolStress, NestedLoopsUnderConcurrentCallers) {
  ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::atomic<uint64_t> grand_total{0};
  for (int c = 0; c < 2; ++c) {
    callers.emplace_back([&pool, &grand_total, c] {
      Rng rng(0xae57ed + static_cast<uint64_t>(c));
      for (int round = 0; round < kRounds; ++round) {
        const uint64_t inner = 50 + rng.UniformU64(200);
        std::atomic<uint64_t> total{0};
        pool.ParallelFor(8, 1, [&pool, &total, inner](uint64_t b, uint64_t e) {
          for (uint64_t i = b; i < e; ++i) {
            // Nested loop from inside a pool task: the issuing thread
            // must claim chunks itself, so this completes even with all
            // workers busy serving the other caller.
            pool.ParallelFor(inner, 16,
                             [&total](uint64_t ib, uint64_t ie) {
                               total.fetch_add(ie - ib,
                                               std::memory_order_relaxed);
                             });
          }
        });
        EXPECT_EQ(total.load(), 8 * inner);
        grand_total.fetch_add(total.load());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_GT(grand_total.load(), 0u);
}

class BatchStressFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto shape = CubeShape::Make({16, 16, 8});
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(99);
    auto cube = UniformIntegerCube(shape_, &rng, -9, 9);
    ASSERT_TRUE(cube.ok());
    cube_ = std::move(cube).value();
    ElementComputer computer(shape_, &cube_);
    auto store = computer.Materialize(WaveletBasisSet(shape_));
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    // Target universe: every aggregated view plus a band of intermediate
    // elements, so batches share deep sub-results.
    targets_ = ViewElementGraph(shape_).AggregatedViews();
    for (const ElementId& id : ViewElementGraph(shape_).IntermediateElements()) {
      if (id.TotalLevel() >= 2 && id.TotalLevel() <= 5) targets_.push_back(id);
    }
  }

  CubeShape shape_;
  Tensor cube_;
  ElementStore store_{CubeShape{}};
  std::vector<ElementId> targets_;
};

TEST_F(BatchStressFixture, RandomizedBatchesBitExactAtEveryThreadCount) {
  AssemblyEngine serial_engine(&store_);
  Rng rng(0xba7c4);
  for (int round = 0; round < kRounds; ++round) {
    // Random overlapping subset, with deliberate duplicates.
    std::vector<ElementId> batch;
    const uint64_t batch_size = 3 + rng.UniformU64(10);
    for (uint64_t i = 0; i < batch_size; ++i) {
      batch.push_back(targets_[rng.UniformU64(targets_.size())]);
    }
    batch.push_back(batch.front());

    OpCounter serial_ops;
    auto serial_out = serial_engine.AssembleBatch(batch, &serial_ops);
    ASSERT_TRUE(serial_out.ok());

    const uint32_t threads = 2 + static_cast<uint32_t>(rng.UniformU64(5));
    ThreadPool pool(threads);
    AssemblyEngine pooled_engine(&store_, &pool);
    OpCounter pooled_ops;
    auto pooled_out = pooled_engine.AssembleBatch(batch, &pooled_ops);
    ASSERT_TRUE(pooled_out.ok());

    ASSERT_EQ(serial_out->size(), pooled_out->size());
    for (size_t i = 0; i < serial_out->size(); ++i) {
      ASSERT_EQ((*serial_out)[i].data(), (*pooled_out)[i].data())
          << "round " << round << " target " << i << " threads " << threads;
    }
    ASSERT_EQ(serial_ops.adds, pooled_ops.adds)
        << "round " << round << " threads " << threads;
  }
}

TEST_F(BatchStressFixture, LatchedCacheContentionManyDuplicateTargets) {
  // Every target identical: maximal contention on the cache latch — the
  // first thread computes, everyone else must block, not recompute. Op
  // counts equal to a single-target batch prove exactly-once execution.
  AssemblyEngine serial_engine(&store_);
  const ElementId hot = targets_.back();
  OpCounter once_ops;
  auto once = serial_engine.AssembleBatch({hot}, &once_ops);
  ASSERT_TRUE(once.ok());

  for (uint32_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    AssemblyEngine engine(&store_, &pool);
    std::vector<ElementId> batch(16, hot);
    OpCounter ops;
    auto out = engine.AssembleBatch(batch, &ops);
    ASSERT_TRUE(out.ok());
    for (const Tensor& t : *out) {
      ASSERT_EQ(t.data(), (*once)[0].data()) << threads;
    }
    EXPECT_EQ(ops.adds, once_ops.adds) << threads;
  }
}

TEST_F(BatchStressFixture, ConcurrentEnginesSharingOnePool) {
  // Separate engines (each with private memo tables) over the same store
  // and the same pool, driven from concurrent external threads: exercises
  // pool task interleaving between unrelated batches.
  ThreadPool pool(4);
  AssemblyEngine reference(&store_);
  std::vector<Tensor> expected;
  for (const ElementId& id : targets_) {
    auto t = reference.Assemble(id);
    ASSERT_TRUE(t.ok());
    expected.push_back(std::move(t).value());
  }

  constexpr int kCallers = 3;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([this, &pool, &expected, &mismatches, c] {
      Rng rng(0xc0ffee + static_cast<uint64_t>(c));
      AssemblyEngine engine(&store_, &pool);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<ElementId> batch;
        std::vector<size_t> picks;
        const uint64_t batch_size = 2 + rng.UniformU64(6);
        for (uint64_t i = 0; i < batch_size; ++i) {
          picks.push_back(rng.UniformU64(targets_.size()));
          batch.push_back(targets_[picks.back()]);
        }
        auto out = engine.AssembleBatch(batch);
        if (!out.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if ((*out)[i].data() != expected[picks[i]].data()) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KernelStress, ThreadedKernelsUnderConcurrentCallers) {
  // Tensors above kParallelKernelCells so the kernels take the threaded
  // row-loop path while two external threads contend for the same pool.
  auto shape = CubeShape::Make({64, 32, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(1234);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  ASSERT_GE(cube->size(), kParallelKernelCells);

  Tensor sp, sr;
  ASSERT_TRUE(PartialPair(*cube, 0, &sp, &sr).ok());

  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 2; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        Tensor p, r;
        if (!PartialPair(*cube, 0, &p, &r, nullptr, &pool).ok() ||
            p.data() != sp.data() || r.data() != sr.data()) {
          mismatches.fetch_add(1);
          continue;
        }
        auto back = SynthesizePair(p, r, 0, nullptr, &pool);
        if (!back.ok() || back->data() != cube->data()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace vecube
