#include "core/approximate.h"

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
  ElementStore store;  // wavelet basis
};

Fixture MakeFixture(uint64_t seed) {
  auto shape = CubeShape::Make({16, 16});
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = ClusteredCube(*shape, &rng, 3, 2.0, 50.0);
  EXPECT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(WaveletBasisSet(*shape));
  EXPECT_TRUE(store.ok());
  return Fixture{*shape, std::move(cube).value(), std::move(store).value()};
}

TEST(ApproximateTest, ZeroThresholdIsLossless) {
  Fixture f = MakeFixture(1);
  ThresholdSummary summary;
  auto approx = ThresholdResiduals(f.store, 0.0, &summary);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(summary.zeroed, 0u);
  AssemblyEngine engine(&*approx);
  auto back = engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(f.cube, 0.0));
}

TEST(ApproximateTest, ThresholdingReducesNonzeros) {
  Fixture f = MakeFixture(2);
  ThresholdSummary tight, loose;
  ASSERT_TRUE(ThresholdResiduals(f.store, 1.0, &tight).ok());
  ASSERT_TRUE(ThresholdResiduals(f.store, 20.0, &loose).ok());
  EXPECT_GE(loose.zeroed, tight.zeroed);
  EXPECT_LE(loose.retained_nonzero, tight.retained_nonzero);
  EXPECT_EQ(tight.total_cells, f.store.StorageCells());
}

TEST(ApproximateTest, GrandTotalStaysExact) {
  // The total aggregation is an intermediate element in the wavelet
  // basis; thresholding residuals cannot perturb it.
  Fixture f = MakeFixture(3);
  auto approx = ThresholdResiduals(f.store, 15.0);
  ASSERT_TRUE(approx.ok());
  AssemblyEngine engine(&*approx);
  auto total = engine.AssembleView(0b11);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], f.cube.Total());
}

TEST(ApproximateTest, ErrorGrowsMonotonicallyWithThreshold) {
  Fixture f = MakeFixture(4);
  double previous_rms = 0.0;
  for (double threshold : {0.0, 2.0, 8.0, 32.0}) {
    auto approx = ThresholdResiduals(f.store, threshold);
    ASSERT_TRUE(approx.ok());
    AssemblyEngine engine(&*approx);
    auto back = engine.Assemble(ElementId::Root(2));
    ASSERT_TRUE(back.ok());
    auto error = CompareTensors(f.cube, *back);
    ASSERT_TRUE(error.ok());
    EXPECT_GE(error->rms + 1e-12, previous_rms) << threshold;
    previous_rms = error->rms;
  }
}

TEST(ApproximateTest, ModerateThresholdSmallRelativeError) {
  Fixture f = MakeFixture(5);
  ThresholdSummary summary;
  auto approx = ThresholdResiduals(f.store, 4.0, &summary);
  ASSERT_TRUE(approx.ok());
  EXPECT_GT(summary.zeroed, 0u);
  AssemblyEngine engine(&*approx);
  auto back = engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(back.ok());
  auto error = CompareTensors(f.cube, *back);
  ASSERT_TRUE(error.ok());
  // Clustered data: small detail coefficients carry little mass.
  EXPECT_LT(error->relative_l1, 0.25);
}

TEST(ApproximateTest, CompareTensorsMetrics) {
  auto a = Tensor::FromData({4}, {1, 2, 3, 4});
  auto b = Tensor::FromData({4}, {1, 2, 3, 8});
  auto error = CompareTensors(*a, *b);
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(error->max_abs, 4.0);
  EXPECT_DOUBLE_EQ(error->rms, 2.0);
  EXPECT_DOUBLE_EQ(error->relative_l1, 0.4);
  auto c = Tensor::FromData({2}, {0, 0});
  EXPECT_FALSE(CompareTensors(*a, *c).ok());
}

TEST(ApproximateTest, NegativeThresholdRejected) {
  Fixture f = MakeFixture(6);
  EXPECT_FALSE(ThresholdResiduals(f.store, -1.0).ok());
}

}  // namespace
}  // namespace vecube
