#include "select/advisor.h"

#include <gtest/gtest.h>

#include "core/basis.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::MakeSquare(2, 4);
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(AdvisorTest, BasisDominatesComparators) {
  const CubeShape shape = Shape44();
  Rng rng(1);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->basis.processing_cost, report->cube_only_cost + 1e-9);
  EXPECT_LE(report->basis.processing_cost, report->wavelet_cost + 1e-9);
  EXPECT_DOUBLE_EQ(report->basis.relative_storage, 1.0);
  EXPECT_TRUE(IsNonRedundantBasis(report->basis.selected, shape));
}

TEST(AdvisorTest, ViewHierarchyHasZeroCostForViewWorkloads) {
  // All 2^d views materialized -> every view query is free.
  const CubeShape shape = Shape44();
  Rng rng(2);
  auto pop = RandomViewPopulation(shape, &rng);
  auto report = AdviseConfiguration(shape, *pop, AdvisorOptions{});
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->view_hierarchy_cost, 0.0);
  EXPECT_EQ(report->view_hierarchy_storage, 625u / 625u * 25u);  // (4+1)^2
}

TEST(AdvisorTest, BudgetPointsImproveMonotonically) {
  const CubeShape shape = Shape44();
  Rng rng(3);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  const uint64_t vol = shape.volume();
  options.budgets = {vol + 4, vol + 8, 2 * vol};
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->budget_points.size(), 3u);
  double previous = report->basis.processing_cost;
  for (const AdvisorPoint& point : report->budget_points) {
    EXPECT_LE(point.processing_cost, previous + 1e-9);
    previous = point.processing_cost;
  }
}

TEST(AdvisorTest, ZeroCostStorageDiscovered) {
  const CubeShape shape = Shape44();
  Rng rng(4);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  options.budgets = {3 * shape.volume()};
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->zero_cost_storage, 0u);
  EXPECT_DOUBLE_EQ(report->budget_points.back().processing_cost, 0.0);
}

TEST(AdvisorTest, BudgetsBelowBasisIgnored) {
  const CubeShape shape = Shape44();
  Rng rng(5);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  options.budgets = {1, shape.volume() / 2, shape.volume()};
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->budget_points.empty());
}

TEST(AdvisorTest, ReportPrints) {
  const CubeShape shape = Shape44();
  Rng rng(6);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  options.budgets = {shape.volume() + 16};
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("optimal non-expansive basis"), std::string::npos);
  EXPECT_NE(text.find("cube only"), std::string::npos);
}

TEST(AdvisorTest, ViewPoolOptionRespected) {
  const CubeShape shape = Shape44();
  Rng rng(7);
  auto pop = RandomViewPopulation(shape, &rng);
  AdvisorOptions options;
  options.budgets = {2 * shape.volume()};
  options.elements_pool = false;
  auto report = AdviseConfiguration(shape, *pop, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->budget_points.size(), 1u);
  // Everything added beyond the basis is an aggregated view.
  for (const ElementId& id : report->budget_points[0].selected) {
    const bool in_basis =
        std::find(report->basis.selected.begin(),
                  report->basis.selected.end(), id) !=
        report->basis.selected.end();
    if (!in_basis) {
      EXPECT_TRUE(id.IsAggregatedView(shape)) << id.ToString();
    }
  }
}

}  // namespace
}  // namespace vecube
