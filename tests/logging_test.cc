// Tests of the CHECK/DCHECK macro family: pass-through behavior, death on
// violation with streamed context, single evaluation of VECUBE_CHECK_OK
// operands, and NDEBUG compile-out of VECUBE_DCHECK side effects.

#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace vecube {
namespace {

int g_counted_ok_calls = 0;

Status CountedOk() {
  ++g_counted_ok_calls;
  return Status::OK();
}

TEST(LoggingTest, CheckPassesWithoutEvaluatingStream) {
  int evaluated = 0;
  VECUBE_CHECK(1 + 1 == 2) << "n=" << ++evaluated;
  // Streamed operands sit on the failure arm; a passing check must never
  // touch them.
  EXPECT_EQ(evaluated, 0);
}

TEST(LoggingTest, CheckDeathIncludesExpressionAndContext) {
  EXPECT_DEATH(VECUBE_CHECK(2 < 1) << "ctx " << 42,
               "CHECK failed: 2 < 1 .*ctx 42");
}

TEST(LoggingTest, CheckDeathWithoutStreamedContext) {
  EXPECT_DEATH(VECUBE_CHECK(false), "CHECK failed: false");
}

TEST(LoggingTest, CheckOkPassesAndEvaluatesOnce) {
  g_counted_ok_calls = 0;
  int streamed = 0;
  VECUBE_CHECK_OK(CountedOk()) << "never " << ++streamed;
  EXPECT_EQ(g_counted_ok_calls, 1);
  EXPECT_EQ(streamed, 0);
}

TEST(LoggingTest, CheckOkDeathIncludesStatusAndContext) {
  EXPECT_DEATH(
      VECUBE_CHECK_OK(Status::InvalidArgument("boom")) << "while testing",
      "CHECK_OK failed: .*InvalidArgument: boom.*while testing");
}

TEST(LoggingTest, DcheckSideEffectsCompileOutInNdebug) {
  int n = 0;
  VECUBE_DCHECK(++n == 1) << "streamed " << ++n;
#ifdef NDEBUG
  // The condition and the streamed operands are compiled but never
  // evaluated: no side effects may run.
  EXPECT_EQ(n, 0);
#else
  // Debug: the condition runs (and passes); the stream arm does not.
  EXPECT_EQ(n, 1);
#endif
}

#ifndef NDEBUG
TEST(LoggingTest, DcheckDiesInDebugBuilds) {
  EXPECT_DEATH(VECUBE_DCHECK(false) << "dbg", "CHECK failed: false");
}
#endif

TEST(LoggingTest, CheckWorksInsideControlFlow) {
  // The macros must behave as single statements (no dangling-else traps).
  int hits = 0;
  for (int i = 0; i < 3; ++i)
    if (i % 2 == 0)
      VECUBE_CHECK(i >= 0) << i;
    else
      ++hits;
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace vecube
