// Tests for the annotated synchronization wrappers in util/sync.h: the
// wrappers must behave exactly like the std primitives they shim
// (mutual exclusion, shared readers, condition wakeups), independently
// of whether the Clang capability annotations are compiled in.

#include "util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace vecube {
namespace {

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread contender([&] {
    // order: relaxed — the join below is the synchronization point.
    observed.store(mu.TryLock() ? 1 : 0, std::memory_order_relaxed);
  });
  contender.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  ReaderLock outer(mu);
  // A second reader on another thread must get in while the first is
  // still held; join() would hang forever if readers excluded readers.
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    ReaderLock inner(mu);
    entered.store(true);
  });
  reader.join();
  EXPECT_TRUE(entered.load());
}

TEST(SyncTest, WriterLockExcludesWriters) {
  SharedMutex mu;
  long total = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterLock lock(mu);
        ++total;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total, static_cast<long>(kThreads) * kIters);
}

TEST(SyncTest, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncTest, CondVarWaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const std::cv_status status =
      cv.WaitFor(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(SyncTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace vecube
