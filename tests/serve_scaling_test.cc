// Serving-cache scaling tests: the contention-free hit path hammered
// from many threads. Two properties are pinned:
//
//  1. Exactness — the lock-free hit counters lose nothing: after T
//     threads each perform R hits, Metrics().hits == T*R, and the
//     per-entry ops_saved credit matches to the operation. Runs under
//     TSan in CI (the suite name carries "Serve"/"Stress" into the tsan
//     job's -R filter), which also proves the pin/publish protocol race
//     free.
//
//  2. Scaling sanity — in a Release build on real hardware, adding
//     threads to a pure-hit workload must not reduce aggregate
//     throughput (the seed's per-shard mutex + shared_ptr refcount hit
//     path anti-scaled: 8 threads took 3.5x the wall of 1). Skipped
//     under sanitizers (instrumentation serializes atomics) and on
//     single-core machines (time slicing makes any multi-thread wall a
//     scheduling artifact, not a cache property).

#include "serve/view_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "cube/tensor.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define VECUBE_TEST_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define VECUBE_TEST_UNDER_SANITIZER 1
#endif

namespace vecube {
namespace {

Tensor MakeTensor(uint32_t cells, double value) {
  auto tensor =
      Tensor::FromData({cells}, std::vector<double>(cells, value));
  EXPECT_TRUE(tensor.ok());
  return std::move(tensor).value();
}

std::vector<ElementId> WorkingSet(uint32_t count) {
  auto shape = CubeShape::Make({16, 16});
  EXPECT_TRUE(shape.ok());
  std::vector<ElementId> ids;
  for (uint32_t a = 0; a <= 4 && ids.size() < count; ++a) {
    for (uint32_t b = 0; b <= 4 && ids.size() < count; ++b) {
      auto id = ElementId::Intermediate({a, b}, *shape);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  EXPECT_EQ(ids.size(), count);
  return ids;
}

// Pre-populates `cache` with `ids`, each costing `cost` ops to rebuild.
// Small working set + default capacity: nothing can evict, so every
// subsequent lookup is a hit and the expected counters are exact.
void Populate(ViewCache* cache, const std::vector<ElementId>& ids,
              uint64_t cost) {
  for (const ElementId& id : ids) {
    ASSERT_NE(cache->Insert(id, MakeTensor(8, 1.0), cost), nullptr);
  }
}

// Runs `threads` workers, each performing `rounds` pinned hits over
// `ids`, and returns the wall time of the hammer region (spawn excluded
// via a start latch).
double HammerMs(ViewCache* cache, const std::vector<ElementId>& ids,
                uint32_t threads, uint32_t rounds) {
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      double sink = 0.0;
      for (uint32_t round = 0; round < rounds; ++round) {
        const ElementId& id = ids[(w + round) % ids.size()];
        ViewCache::ReadHandle handle = cache->LookupPinned(id);
        ASSERT_TRUE(handle) << "pure-hit workload missed";
        sink += (*handle)[0];
      }
      EXPECT_GT(sink, 0.0);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(ServeScalingStressTest, ConcurrentHitsAreCountedExactly) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kRounds = 20000;
  constexpr uint64_t kCost = 13;
  const std::vector<ElementId> ids = WorkingSet(8);

  ViewCache cache;
  Populate(&cache, ids, kCost);
  const ServeMetrics seeded = cache.Metrics();
  ASSERT_EQ(seeded.entries, ids.size());
  ASSERT_EQ(seeded.hits, 0u);

  HammerMs(&cache, ids, kThreads, kRounds);

  // Lock-free counters are exact, not approximate: every one of the
  // threads x rounds hits is accounted, with its full ops_saved credit.
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.hits, uint64_t{kThreads} * kRounds);
  EXPECT_EQ(metrics.misses, 0u);
  EXPECT_EQ(metrics.evictions, 0u);
  EXPECT_EQ(metrics.assembly_ops_saved, uint64_t{kThreads} * kRounds * kCost);
}

TEST(ServeScalingStressTest, SharedPtrCompatPathCountsExactlyToo) {
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kRounds = 5000;
  const std::vector<ElementId> ids = WorkingSet(4);

  ViewCache cache;
  Populate(&cache, ids, /*cost=*/3);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (uint32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (uint32_t round = 0; round < kRounds; ++round) {
        auto handle = cache.Lookup(ids[(w + round) % ids.size()]);
        ASSERT_NE(handle, nullptr);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(cache.Metrics().hits, uint64_t{kThreads} * kRounds);
}

// Release-only, bare-metal-only: the whole point of the contention-free
// read design. Per-thread work is FIXED, so perfect scaling keeps wall
// time flat as threads grow; the seed's mutex hit path grew it ~3.5x by
// 8 threads. The 2.0x gate rejects any contention collapse while
// tolerating scheduler noise on shared CI runners.
TEST(ServeScalingStressTest, FixedPerThreadWorkDoesNotAntiScale) {
#if !defined(NDEBUG) || defined(VECUBE_TEST_UNDER_SANITIZER)
  GTEST_SKIP() << "timing gate is only meaningful in Release without "
                  "sanitizer instrumentation";
#else
  const uint32_t hardware = std::thread::hardware_concurrency();
  if (hardware < 2) {
    GTEST_SKIP() << "single-core machine: multi-thread wall measures the "
                    "scheduler, not the cache";
  }
  const uint32_t threads = hardware < 8 ? hardware : 8;
  constexpr uint32_t kRounds = 200000;
  const std::vector<ElementId> ids = WorkingSet(8);

  ViewCache cache;
  Populate(&cache, ids, /*cost=*/5);

  // Best-of-3 per thread count to shave scheduler noise.
  double single_ms = 1e300;
  double multi_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const double s = HammerMs(&cache, ids, 1, kRounds);
    if (s < single_ms) single_ms = s;
    const double m = HammerMs(&cache, ids, threads, kRounds);
    if (m < multi_ms) multi_ms = m;
  }
  EXPECT_LT(multi_ms, single_ms * 2.0)
      << threads << " threads took " << multi_ms << " ms vs " << single_ms
      << " ms single-threaded for the same per-thread work";
#endif
}

}  // namespace
}  // namespace vecube
