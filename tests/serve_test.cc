// Serving-layer tests: the ViewCache replacement policy and metrics in
// isolation, the cached OlapSession's bit-exactness and invalidation
// hooks, and a TSan-targeted concurrent stress round (readers racing an
// invalidating writer; the suite name carries "Stress" into the CI TSan
// test filter).

#include "serve/view_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/computer.h"
#include "core/element_id.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "cube/tensor.h"
#include "select/dynamic.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/population.h"

namespace vecube {
namespace {

// A 1-d tensor of `cells` doubles, all equal to `value`.
Tensor MakeTensor(uint32_t cells, double value) {
  auto tensor =
      Tensor::FromData({cells}, std::vector<double>(cells, value));
  EXPECT_TRUE(tensor.ok());
  return std::move(tensor).value();
}

// Distinct ids over an 8x8 shape: one per (level0, level1) pyramid cell.
std::vector<ElementId> PyramidIds(const CubeShape& shape, uint32_t count) {
  std::vector<ElementId> ids;
  for (uint32_t a = 0; a <= shape.log_extent(0) && ids.size() < count; ++a) {
    for (uint32_t b = 0; b <= shape.log_extent(1) && ids.size() < count;
         ++b) {
      auto id = ElementId::Intermediate({a, b}, shape);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  EXPECT_EQ(ids.size(), count);
  return ids;
}

TEST(ViewCacheTest, MissThenHitRoundTrips) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 2);

  EXPECT_EQ(cache.Lookup(ids[0]), nullptr);
  auto inserted = cache.Insert(ids[0], MakeTensor(4, 7.0), 12);
  ASSERT_NE(inserted, nullptr);
  auto hit = cache.Lookup(ids[0]);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), inserted.get());
  EXPECT_EQ((*hit)[0], 7.0);
  EXPECT_EQ(cache.Lookup(ids[1]), nullptr);

  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.misses, 2u);
  EXPECT_EQ(metrics.insertions, 1u);
  EXPECT_EQ(metrics.entries, 1u);
  EXPECT_EQ(metrics.bytes_resident, 4 * sizeof(double));
  EXPECT_EQ(metrics.assembly_ops_saved, 12u);
  EXPECT_DOUBLE_EQ(metrics.HitRate(), 1.0 / 3.0);
}

TEST(ViewCacheTest, FirstWriterWinsOnDuplicateInsert) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto first = cache.Insert(id, MakeTensor(4, 1.0), 5);
  auto second = cache.Insert(id, MakeTensor(4, 1.0), 5);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Metrics().insertions, 1u);
  EXPECT_EQ(cache.Metrics().entries, 1u);
}

TEST(ViewCacheTest, EvictsColdCheapBeforeHotExpensive) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 2 * 8 * sizeof(double);  // room for two entries
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 3);

  // ids[0]: hot and expensive to rebuild. ids[1]: cold and free.
  cache.Insert(ids[0], MakeTensor(8, 1.0), 1000);
  for (int i = 0; i < 4; ++i) EXPECT_NE(cache.Lookup(ids[0]), nullptr);
  cache.Insert(ids[1], MakeTensor(8, 2.0), 0);

  // Full; the third entry must displace the minimum-score victim.
  cache.Insert(ids[2], MakeTensor(8, 3.0), 50);
  EXPECT_EQ(cache.Metrics().evictions, 1u);
  EXPECT_NE(cache.Lookup(ids[0]), nullptr) << "hot/expensive entry evicted";
  EXPECT_EQ(cache.Lookup(ids[1]), nullptr) << "cold/cheap entry kept";
  EXPECT_NE(cache.Lookup(ids[2]), nullptr);
}

TEST(ViewCacheTest, CapacityIsEnforced) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 4 * 8 * sizeof(double);
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 12);

  for (const ElementId& id : ids) {
    cache.Insert(id, MakeTensor(8, 1.0), 1);
    EXPECT_LE(cache.Metrics().bytes_resident, options.capacity_bytes);
  }
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.entries, 4u);
  EXPECT_EQ(metrics.evictions, 8u);
}

TEST(ViewCacheTest, OversizedEntryServedButNotRetained) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 8 * sizeof(double);
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto served = cache.Insert(id, MakeTensor(64, 5.0), 9);
  ASSERT_NE(served, nullptr);  // caller can still answer from this
  EXPECT_EQ((*served)[0], 5.0);
  EXPECT_EQ(cache.Lookup(id), nullptr);
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.rejected_inserts, 1u);
  EXPECT_EQ(metrics.entries, 0u);
  EXPECT_EQ(metrics.bytes_resident, 0u);
}

TEST(ViewCacheTest, InvalidateAllDropsEverythingAndAllowsFreshData) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 6);

  for (const ElementId& id : ids) cache.Insert(id, MakeTensor(4, 1.0), 3);
  // An in-flight reader's handle must survive the flush.
  auto held = cache.Lookup(ids[0]);
  ASSERT_NE(held, nullptr);

  EXPECT_EQ(cache.InvalidateAll(), 6u);
  EXPECT_EQ(cache.Metrics().entries, 0u);
  EXPECT_EQ(cache.Metrics().bytes_resident, 0u);
  EXPECT_EQ(cache.Metrics().invalidations, 6u);
  for (const ElementId& id : ids) EXPECT_EQ(cache.Lookup(id), nullptr);
  EXPECT_EQ((*held)[0], 1.0);  // old handle still fully readable

  // Post-flush inserts are new entries with the new data, not revivals.
  auto fresh = cache.Insert(ids[0], MakeTensor(4, 2.0), 3);
  EXPECT_NE(fresh.get(), held.get());
  EXPECT_EQ((*cache.Lookup(ids[0]))[0], 2.0);
}

TEST(ViewCacheTest, TargetedInvalidateDropsOnlyThatEntry) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 2);
  cache.Insert(ids[0], MakeTensor(4, 1.0), 1);
  cache.Insert(ids[1], MakeTensor(4, 2.0), 1);
  cache.Invalidate(ids[0]);
  EXPECT_EQ(cache.Lookup(ids[0]), nullptr);
  EXPECT_NE(cache.Lookup(ids[1]), nullptr);
  EXPECT_EQ(cache.Metrics().invalidations, 1u);
}

// ---------------------------------------------------------------------------
// Single-flight: miss coalescing, abort/retry, and the flush-epoch guard
// against resurrecting pre-flush fills.

TEST(ViewCacheTest, LookupOrBeginAppointsExactlyOneLeader) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto outcome = cache.LookupOrBegin(id);
  ASSERT_FALSE(outcome.hit);
  ASSERT_TRUE(outcome.fill.valid());
  EXPECT_TRUE(outcome.fill.leader());

  auto served = cache.CompleteFill(std::move(outcome.fill),
                                   MakeTensor(4, 3.0), /*assembly_cost=*/7);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ((*served)[0], 3.0);

  // Retained: the next lookup is a plain hit, not another flight.
  auto again = cache.LookupOrBegin(id);
  ASSERT_TRUE(again.hit);
  EXPECT_EQ((*again.hit)[0], 3.0);
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.misses, 1u);
  EXPECT_EQ(metrics.insertions, 1u);
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.assembly_ops_executed, 7u);
  EXPECT_EQ(metrics.assembly_ops_saved, 7u);
}

// Regression (flush-epoch tagging): a fill that began before a wholesale
// flush used to be inserted after it, resurrecting a tensor computed
// from pre-delta state. The completed fill must still be served to its
// caller (the answer was correct when the query began) but never
// retained.
TEST(ViewCacheTest, FlushDuringFillServesButDoesNotRetainStaleTensor) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto outcome = cache.LookupOrBegin(id);
  ASSERT_TRUE(outcome.fill.valid());
  ASSERT_TRUE(outcome.fill.leader());

  // The delta hook fires while the "assembly" is in progress.
  cache.InvalidateAll();

  auto served = cache.CompleteFill(std::move(outcome.fill),
                                   MakeTensor(4, 9.0), /*assembly_cost=*/5);
  ASSERT_NE(served, nullptr);  // the leader still gets its answer
  EXPECT_EQ((*served)[0], 9.0);

  EXPECT_EQ(cache.Lookup(id), nullptr) << "stale fill was retained";
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.stale_fills, 1u);
  EXPECT_EQ(metrics.insertions, 0u);
  EXPECT_EQ(metrics.entries, 0u);
  // The leader's work is still accounted as executed ops.
  EXPECT_EQ(metrics.assembly_ops_executed, 5u);
}

TEST(ViewCacheTest, ConcurrentMissesCoalesceOntoOneFill) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];
  constexpr int kFollowers = 8;
  constexpr uint64_t kCost = 40;

  // Main thread takes the leader ticket, then holds the fill open until
  // every follower has joined the flight — fully deterministic.
  auto leader = cache.LookupOrBegin(id);
  ASSERT_TRUE(leader.fill.valid());
  ASSERT_TRUE(leader.fill.leader());

  std::atomic<int> entered{0};
  std::atomic<int> served_ok{0};
  std::vector<std::thread> followers;
  followers.reserve(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&] {
      auto outcome = cache.LookupOrBegin(id);
      ASSERT_TRUE(outcome.fill.valid());
      ASSERT_FALSE(outcome.fill.leader());
      entered.fetch_add(1);
      ViewCache::FillWait wait = cache.WaitFill(outcome.fill);
      if (wait.status.ok() && (*wait.data)[0] == 6.0) served_ok.fetch_add(1);
    });
  }
  while (entered.load() < kFollowers) std::this_thread::yield();
  auto answer =
      cache.CompleteFill(std::move(leader.fill), MakeTensor(4, 6.0), kCost);
  ASSERT_NE(answer, nullptr);
  for (std::thread& follower : followers) follower.join();
  EXPECT_EQ(served_ok.load(), kFollowers);

  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.misses, 1u) << "followers must not count as misses";
  EXPECT_EQ(metrics.insertions, 1u);
  EXPECT_EQ(metrics.coalesced_hits, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(metrics.hits, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(metrics.assembly_ops_executed, kCost);
  EXPECT_EQ(metrics.assembly_ops_saved, kCost * kFollowers);
}

TEST(ViewCacheTest, AbortedFillWakesFollowerToBecomeNextLeader) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto leader = cache.LookupOrBegin(id);
  ASSERT_TRUE(leader.fill.leader());

  std::atomic<int> entered{0};
  std::thread follower([&] {
    auto outcome = cache.LookupOrBegin(id);
    ASSERT_FALSE(outcome.fill.leader());
    entered.fetch_add(1);
    // The leader aborts: WaitFill surfaces the abort cause (no data) and
    // the retry wins its own leader ticket.
    ViewCache::FillWait wait = cache.WaitFill(outcome.fill);
    EXPECT_EQ(wait.data, nullptr);
    EXPECT_TRUE(wait.status.IsUnavailable()) << wait.status.ToString();
    auto retry = cache.LookupOrBegin(id);
    ASSERT_TRUE(retry.fill.valid());
    ASSERT_TRUE(retry.fill.leader());
    auto served = cache.CompleteFill(std::move(retry.fill),
                                     MakeTensor(4, 2.0), /*assembly_cost=*/3);
    EXPECT_NE(served, nullptr);
  });
  while (entered.load() < 1) std::this_thread::yield();
  cache.AbortFill(std::move(leader.fill));
  follower.join();

  auto hit = cache.Lookup(id);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 2.0);
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.misses, 2u);  // two appointed leaders, one aborted
  EXPECT_EQ(metrics.insertions, 1u);
  EXPECT_EQ(metrics.coalesced_hits, 0u);  // the abort served nobody
}

// ---------------------------------------------------------------------------
// Session-level behaviour: bit-exactness and invalidation hooks.

OlapSessionOptions CachedOptions() {
  OlapSessionOptions options;
  options.view_cache.enabled = true;
  return options;
}

TEST(ServeSessionTest, CachedServingIsBitExactAcrossWholeLattice) {
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(11);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  auto cached = OlapSession::FromCube(*shape, *cube, CachedOptions());
  auto plain = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*cached)->caching());
  ASSERT_FALSE((*plain)->caching());

  const ViewElementGraph graph(*shape);
  for (int pass = 0; pass < 2; ++pass) {
    graph.ForEachElement([&](const ElementId& id) {
      auto from_cache = (*cached)->Element(id);
      auto reference = (*plain)->Element(id);
      ASSERT_TRUE(from_cache.ok());
      ASSERT_TRUE(reference.ok());
      // Bit-exact, not approximate: data() compares doubles exactly.
      EXPECT_EQ(from_cache->data(), reference->data()) << id.ToString();
    });
  }
  const ServeMetrics metrics = (*cached)->serve_metrics();
  EXPECT_GE(metrics.hits, graph.NumElements());  // pass 2 is all hits
  EXPECT_GT(metrics.assembly_ops_saved, 0u);
}

TEST(ServeSessionTest, RepeatViewQueriesAreServedFromCache) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(12);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 20);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto first = (*session)->ViewByMask(3);
  ASSERT_TRUE(first.ok());
  const uint64_t ops_after_first = (*session)->stats().assembly_ops;
  auto second = (*session)->ViewByMask(3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->data(), second->data());
  // The repeat spent no assembly ops.
  EXPECT_EQ((*session)->stats().assembly_ops, ops_after_first);
  EXPECT_GE((*session)->serve_metrics().hits, 1u);
}

TEST(ServeSessionTest, RangeQueriesShareTheServingCache) {
  auto shape = CubeShape::Make({16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(13);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto range = RangeSpec::Make({1, 2}, {13, 11}, *shape);
  ASSERT_TRUE(range.ok());
  auto first = (*session)->RangeSum(*range);
  ASSERT_TRUE(first.ok());
  const ServeMetrics after_first = (*session)->serve_metrics();
  EXPECT_GT(after_first.insertions, 0u);  // missing intermediates retained

  auto second = (*session)->RangeSum(*range);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  const ServeMetrics after_second = (*session)->serve_metrics();
  EXPECT_EQ(after_second.insertions, after_first.insertions);
  EXPECT_GT(after_second.hits, after_first.hits);

  // And the answer is right: naive summation agrees.
  auto naive = NaiveRangeSum(*cube, *shape, *range);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(*first, *naive, 1e-9);
}

TEST(ServeSessionTest, AddFactInvalidatesCachedAnswers) {
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(14);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto before = (*session)->ViewByMask(3);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*session)->AddFact({2, 3}, 5.0).ok());
  EXPECT_GT((*session)->serve_metrics().invalidations, 0u);

  auto after = (*session)->ViewByMask(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0], (*before)[0] + 5.0);

  // Cross-check against a fresh session over the updated cube.
  Tensor updated = *cube;
  updated[updated.FlatIndex({2, 3})] += 5.0;
  auto fresh = OlapSession::FromCube(*shape, updated);
  ASSERT_TRUE(fresh.ok());
  auto expected = (*fresh)->ViewByMask(3);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->data(), expected->data());
}

TEST(ServeSessionTest, OptimizeFlushesTheCache) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(15);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  for (uint32_t mask = 0; mask < 4; ++mask) {
    ASSERT_TRUE((*session)->ViewByMask(mask).ok());
  }
  ASSERT_GT((*session)->serve_metrics().entries, 0u);

  Rng wrng(16);
  auto population = ZipfViewPopulation(*shape, &wrng, 1.0);
  ASSERT_TRUE(population.ok());
  ASSERT_TRUE((*session)->DeclareWorkload(*population).ok());
  ASSERT_TRUE((*session)->Optimize().ok());
  EXPECT_GT((*session)->serve_metrics().invalidations, 0u);

  // Post-flush answers still agree with an uncached session.
  auto plain = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(plain.ok());
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto got = (*session)->ViewByMask(mask);
    auto expected = (*plain)->ViewByMask(mask);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(got->data(), expected->data());
  }
}

// ---------------------------------------------------------------------------
// Concurrency: readers race inserts and wholesale invalidation. Run under
// TSan by the CI tsan job (suite name matches its -R filter). Tensors are
// version-stamped — every cell equals the version — so a reader can
// detect a torn or partially published tensor without any external
// synchronization with the writer.

TEST(ServeStressTest, ConcurrentReadersSurviveInvalidatingWriter) {
  ViewCacheOptions options;
  options.shards = 4;
  options.capacity_bytes = 1u << 16;
  ViewCache cache(options);
  auto shape_result = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape_result.ok());
  const CubeShape shape = *shape_result;
  const std::vector<ElementId> ids = PyramidIds(shape, 16);

  constexpr int kReaders = 4;
  constexpr int kReaderRounds = 3000;
  constexpr int kWriterRounds = 200;
  std::atomic<uint64_t> version{1};
  std::atomic<int> inconsistencies{0};
  std::atomic<uint64_t> hits{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0x5e7e + static_cast<uint64_t>(r));
      for (int round = 0; round < kReaderRounds; ++round) {
        const ElementId& id = ids[rng.UniformU64(ids.size())];
        auto tensor = cache.Lookup(id);
        if (tensor == nullptr) {
          const double v = static_cast<double>(version.load());
          tensor = cache.Insert(id, MakeTensor(16, v),
                                /*assembly_cost=*/rng.UniformU64(100));
        } else {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
        // Internal consistency: a handed-out tensor is never torn.
        const double first = (*tensor)[0];
        for (uint64_t i = 1; i < tensor->size(); ++i) {
          if ((*tensor)[i] != first) {
            inconsistencies.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < kWriterRounds; ++round) {
      version.fetch_add(1);
      cache.InvalidateAll();
      std::this_thread::yield();
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(hits.load(), 0u);
  // Counters survived the races coherently: resident set within budget.
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_LE(metrics.bytes_resident, options.capacity_bytes);
  EXPECT_EQ(metrics.hits, hits.load());
}

// The serving accounting identity: every query either pays its assembly
// cost exactly once (leader fill) or saves it exactly once (hit /
// coalesced follower), so
//
//   ops_saved + ops_executed == Σ per-query cost   (the uncached baseline)
//
// at EVERY thread count — and with single-flight coalescing and no
// eviction pressure, ops_executed itself is thread-count-invariant:
// concurrency changes who assembles, never how much is assembled.
TEST(ServeStressTest, AccountingIdentityHoldsAtEveryThreadCount) {
  auto shape_result = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape_result.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape_result, 8);
  const auto cost_of = [](size_t i) -> uint64_t {
    return 10 * (static_cast<uint64_t>(i) + 1);
  };

  // Deterministic skewed query sequence, shared by every run.
  constexpr uint64_t kQueries = 4000;
  Rng seq_rng(0xacc7);
  std::vector<size_t> sequence(kQueries);
  uint64_t baseline_ops = 0;
  for (uint64_t q = 0; q < kQueries; ++q) {
    const size_t pick =
        std::min(seq_rng.UniformU64(ids.size()), seq_rng.UniformU64(ids.size()));
    sequence[q] = pick;
    baseline_ops += cost_of(pick);
  }

  uint64_t executed_single_threaded = 0;
  for (const uint32_t threads : {1u, 8u}) {
    ViewCache cache;  // default capacity: no evictions for 8 tiny entries
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        const uint64_t lo = kQueries * w / threads;
        const uint64_t hi = kQueries * (w + 1) / threads;
        for (uint64_t q = lo; q < hi; ++q) {
          const size_t pick = sequence[q];
          for (;;) {
            auto outcome = cache.LookupOrBegin(ids[pick]);
            if (outcome.hit) break;
            if (!outcome.fill.leader()) {
              if (!cache.WaitFill(outcome.fill).status.ok()) continue;
              break;
            }
            auto served =
                cache.CompleteFill(std::move(outcome.fill),
                                   MakeTensor(4, 1.0), cost_of(pick));
            ASSERT_NE(served, nullptr);
            break;
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();

    const ServeMetrics metrics = cache.Metrics();
    EXPECT_EQ(metrics.evictions, 0u);
    EXPECT_EQ(metrics.hits + metrics.misses, kQueries);
    EXPECT_EQ(metrics.assembly_ops_saved + metrics.assembly_ops_executed,
              baseline_ops)
        << "accounting identity broken at " << threads << " threads";
    if (threads == 1) {
      executed_single_threaded = metrics.assembly_ops_executed;
      EXPECT_EQ(metrics.coalesced_hits, 0u);
    } else {
      EXPECT_EQ(metrics.assembly_ops_executed, executed_single_threaded)
          << "misses not coalesced: assembled work grew with concurrency";
    }
  }
}

// ---------------------------------------------------------------------------
// DynamicAssembler integration: reconfiguration is the serving layer's
// other flush source. A FAILED reconfiguration (injected via the
// dynamic.reconfigure failpoint) must leave the cache untouched — no
// flush, no lost entries; a successful one must flush and keep answers
// bit-exact.

TEST(DynamicServeTest, FailedReconfigureLeavesCacheIntactThenFlushWorks) {
  auto shape_result = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape_result.ok());
  const CubeShape shape = *shape_result;
  Rng rng(17);
  auto cube = UniformIntegerCube(shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  DynamicOptions options;
  options.cache.enabled = true;
  options.min_queries_between_reconfigs = 1000;  // no auto attempts
  auto assembler = DynamicAssembler::Make(shape, *cube, options);
  ASSERT_TRUE(assembler.ok());

  auto view = ElementId::AggregatedView(0b11, shape);
  ASSERT_TRUE(view.ok());
  ElementComputer computer(shape, &*cube);
  auto expected = computer.Compute(*view);
  ASSERT_TRUE(expected.ok());

  ASSERT_TRUE((*assembler)->Query(*view).ok());  // leader fill
  ASSERT_TRUE((*assembler)->Query(*view).ok());  // hit
  const ServeMetrics before = (*assembler)->serve_metrics();
  EXPECT_EQ(before.insertions, 1u);
  EXPECT_GE(before.hits, 1u);

  Failpoints::Arm("dynamic.reconfigure", FailpointAction{});
  EXPECT_FALSE((*assembler)->Reconfigure().ok());
  Failpoints::DisarmAll();

  // Nothing was flushed: the entry is still resident and still serves.
  const ServeMetrics after_failure = (*assembler)->serve_metrics();
  EXPECT_EQ(after_failure.invalidations, 0u);
  EXPECT_EQ(after_failure.entries, before.entries);
  auto still_cached = (*assembler)->Query(*view);
  ASSERT_TRUE(still_cached.ok());
  EXPECT_EQ(still_cached->data(), expected->data());
  EXPECT_GT((*assembler)->serve_metrics().hits, after_failure.hits);

  // A successful reconfiguration flushes, and post-flush answers are
  // re-assembled bit-exactly from the migrated store.
  ASSERT_TRUE((*assembler)->Reconfigure().ok());
  EXPECT_GT((*assembler)->serve_metrics().invalidations, 0u);
  auto after_flush = (*assembler)->Query(*view);
  ASSERT_TRUE(after_flush.ok());
  EXPECT_EQ(after_flush->data(), expected->data());
}

// ---------------------------------------------------------------------------
// Buffered access history: Record() is off the hit path; the tracker lags
// until a drain and then matches eager recording exactly.

TEST(ServeSessionTest, AccessHistoryBuffersAndDrainsToEagerState) {
  auto shape_result = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape_result.ok());
  const CubeShape shape = *shape_result;
  Rng rng(18);
  auto cube = UniformIntegerCube(shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  const std::vector<uint32_t> masks = {3, 3, 1, 2, 3, 1, 3, 3, 2, 3};
  for (const uint32_t mask : masks) {
    ASSERT_TRUE((*session)->ViewByMask(mask).ok());
  }
  // The hit path buffered the records instead of touching the tracker.
  EXPECT_EQ((*session)->buffered_accesses(), masks.size());
  EXPECT_EQ((*session)->access_tracker().total_accesses(), 0u);

  (*session)->DrainAccessHistory();
  EXPECT_EQ((*session)->buffered_accesses(), 0u);
  EXPECT_EQ((*session)->access_tracker().total_accesses(), masks.size());

  // Drained state is identical to eager recording of the same sequence
  // (single-threaded: one stripe, order preserved).
  AccessTracker eager(OlapSessionOptions{}.access_decay);
  for (const uint32_t mask : masks) {
    auto id = ElementId::AggregatedView(mask, shape);
    ASSERT_TRUE(id.ok());
    eager.Record(*id);
  }
  const auto drained_dist = (*session)->access_tracker().Distribution();
  const auto eager_dist = eager.Distribution();
  ASSERT_EQ(drained_dist.size(), eager_dist.size());
  for (size_t i = 0; i < drained_dist.size(); ++i) {
    EXPECT_EQ(drained_dist[i].first, eager_dist[i].first);
    EXPECT_DOUBLE_EQ(drained_dist[i].second, eager_dist[i].second);
  }

  // Optimize() drains implicitly: observed traffic is complete without an
  // explicit drain call.
  for (const uint32_t mask : masks) {
    ASSERT_TRUE((*session)->ViewByMask(mask).ok());
  }
  EXPECT_GT((*session)->buffered_accesses(), 0u);
  ASSERT_TRUE((*session)->Optimize().ok());
  EXPECT_EQ((*session)->buffered_accesses(), 0u);
  EXPECT_EQ((*session)->access_tracker().total_accesses(), 2 * masks.size());
}

}  // namespace
}  // namespace vecube
