// Serving-layer tests: the ViewCache replacement policy and metrics in
// isolation, the cached OlapSession's bit-exactness and invalidation
// hooks, and a TSan-targeted concurrent stress round (readers racing an
// invalidating writer; the suite name carries "Stress" into the CI TSan
// test filter).

#include "serve/view_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/computer.h"
#include "core/element_id.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "cube/tensor.h"
#include "util/rng.h"
#include "workload/population.h"

namespace vecube {
namespace {

// A 1-d tensor of `cells` doubles, all equal to `value`.
Tensor MakeTensor(uint32_t cells, double value) {
  auto tensor =
      Tensor::FromData({cells}, std::vector<double>(cells, value));
  EXPECT_TRUE(tensor.ok());
  return std::move(tensor).value();
}

// Distinct ids over an 8x8 shape: one per (level0, level1) pyramid cell.
std::vector<ElementId> PyramidIds(const CubeShape& shape, uint32_t count) {
  std::vector<ElementId> ids;
  for (uint32_t a = 0; a <= shape.log_extent(0) && ids.size() < count; ++a) {
    for (uint32_t b = 0; b <= shape.log_extent(1) && ids.size() < count;
         ++b) {
      auto id = ElementId::Intermediate({a, b}, shape);
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  EXPECT_EQ(ids.size(), count);
  return ids;
}

TEST(ViewCacheTest, MissThenHitRoundTrips) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 2);

  EXPECT_EQ(cache.Lookup(ids[0]), nullptr);
  auto inserted = cache.Insert(ids[0], MakeTensor(4, 7.0), 12);
  ASSERT_NE(inserted, nullptr);
  auto hit = cache.Lookup(ids[0]);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), inserted.get());
  EXPECT_EQ((*hit)[0], 7.0);
  EXPECT_EQ(cache.Lookup(ids[1]), nullptr);

  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.hits, 1u);
  EXPECT_EQ(metrics.misses, 2u);
  EXPECT_EQ(metrics.insertions, 1u);
  EXPECT_EQ(metrics.entries, 1u);
  EXPECT_EQ(metrics.bytes_resident, 4 * sizeof(double));
  EXPECT_EQ(metrics.assembly_ops_saved, 12u);
  EXPECT_DOUBLE_EQ(metrics.HitRate(), 1.0 / 3.0);
}

TEST(ViewCacheTest, FirstWriterWinsOnDuplicateInsert) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto first = cache.Insert(id, MakeTensor(4, 1.0), 5);
  auto second = cache.Insert(id, MakeTensor(4, 1.0), 5);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.Metrics().insertions, 1u);
  EXPECT_EQ(cache.Metrics().entries, 1u);
}

TEST(ViewCacheTest, EvictsColdCheapBeforeHotExpensive) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 2 * 8 * sizeof(double);  // room for two entries
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 3);

  // ids[0]: hot and expensive to rebuild. ids[1]: cold and free.
  cache.Insert(ids[0], MakeTensor(8, 1.0), 1000);
  for (int i = 0; i < 4; ++i) EXPECT_NE(cache.Lookup(ids[0]), nullptr);
  cache.Insert(ids[1], MakeTensor(8, 2.0), 0);

  // Full; the third entry must displace the minimum-score victim.
  cache.Insert(ids[2], MakeTensor(8, 3.0), 50);
  EXPECT_EQ(cache.Metrics().evictions, 1u);
  EXPECT_NE(cache.Lookup(ids[0]), nullptr) << "hot/expensive entry evicted";
  EXPECT_EQ(cache.Lookup(ids[1]), nullptr) << "cold/cheap entry kept";
  EXPECT_NE(cache.Lookup(ids[2]), nullptr);
}

TEST(ViewCacheTest, CapacityIsEnforced) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 4 * 8 * sizeof(double);
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 12);

  for (const ElementId& id : ids) {
    cache.Insert(id, MakeTensor(8, 1.0), 1);
    EXPECT_LE(cache.Metrics().bytes_resident, options.capacity_bytes);
  }
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.entries, 4u);
  EXPECT_EQ(metrics.evictions, 8u);
}

TEST(ViewCacheTest, OversizedEntryServedButNotRetained) {
  ViewCacheOptions options;
  options.shards = 1;
  options.capacity_bytes = 8 * sizeof(double);
  ViewCache cache(options);
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const ElementId id = PyramidIds(*shape, 1)[0];

  auto served = cache.Insert(id, MakeTensor(64, 5.0), 9);
  ASSERT_NE(served, nullptr);  // caller can still answer from this
  EXPECT_EQ((*served)[0], 5.0);
  EXPECT_EQ(cache.Lookup(id), nullptr);
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_EQ(metrics.rejected_inserts, 1u);
  EXPECT_EQ(metrics.entries, 0u);
  EXPECT_EQ(metrics.bytes_resident, 0u);
}

TEST(ViewCacheTest, InvalidateAllDropsEverythingAndAllowsFreshData) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 6);

  for (const ElementId& id : ids) cache.Insert(id, MakeTensor(4, 1.0), 3);
  // An in-flight reader's handle must survive the flush.
  auto held = cache.Lookup(ids[0]);
  ASSERT_NE(held, nullptr);

  EXPECT_EQ(cache.InvalidateAll(), 6u);
  EXPECT_EQ(cache.Metrics().entries, 0u);
  EXPECT_EQ(cache.Metrics().bytes_resident, 0u);
  EXPECT_EQ(cache.Metrics().invalidations, 6u);
  for (const ElementId& id : ids) EXPECT_EQ(cache.Lookup(id), nullptr);
  EXPECT_EQ((*held)[0], 1.0);  // old handle still fully readable

  // Post-flush inserts are new entries with the new data, not revivals.
  auto fresh = cache.Insert(ids[0], MakeTensor(4, 2.0), 3);
  EXPECT_NE(fresh.get(), held.get());
  EXPECT_EQ((*cache.Lookup(ids[0]))[0], 2.0);
}

TEST(ViewCacheTest, TargetedInvalidateDropsOnlyThatEntry) {
  ViewCache cache;
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  const std::vector<ElementId> ids = PyramidIds(*shape, 2);
  cache.Insert(ids[0], MakeTensor(4, 1.0), 1);
  cache.Insert(ids[1], MakeTensor(4, 2.0), 1);
  cache.Invalidate(ids[0]);
  EXPECT_EQ(cache.Lookup(ids[0]), nullptr);
  EXPECT_NE(cache.Lookup(ids[1]), nullptr);
  EXPECT_EQ(cache.Metrics().invalidations, 1u);
}

// ---------------------------------------------------------------------------
// Session-level behaviour: bit-exactness and invalidation hooks.

OlapSessionOptions CachedOptions() {
  OlapSessionOptions options;
  options.view_cache.enabled = true;
  return options;
}

TEST(ServeSessionTest, CachedServingIsBitExactAcrossWholeLattice) {
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(11);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());

  auto cached = OlapSession::FromCube(*shape, *cube, CachedOptions());
  auto plain = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*cached)->caching());
  ASSERT_FALSE((*plain)->caching());

  const ViewElementGraph graph(*shape);
  for (int pass = 0; pass < 2; ++pass) {
    graph.ForEachElement([&](const ElementId& id) {
      auto from_cache = (*cached)->Element(id);
      auto reference = (*plain)->Element(id);
      ASSERT_TRUE(from_cache.ok());
      ASSERT_TRUE(reference.ok());
      // Bit-exact, not approximate: data() compares doubles exactly.
      EXPECT_EQ(from_cache->data(), reference->data()) << id.ToString();
    });
  }
  const ServeMetrics metrics = (*cached)->serve_metrics();
  EXPECT_GE(metrics.hits, graph.NumElements());  // pass 2 is all hits
  EXPECT_GT(metrics.assembly_ops_saved, 0u);
}

TEST(ServeSessionTest, RepeatViewQueriesAreServedFromCache) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(12);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 20);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto first = (*session)->ViewByMask(3);
  ASSERT_TRUE(first.ok());
  const uint64_t ops_after_first = (*session)->stats().assembly_ops;
  auto second = (*session)->ViewByMask(3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->data(), second->data());
  // The repeat spent no assembly ops.
  EXPECT_EQ((*session)->stats().assembly_ops, ops_after_first);
  EXPECT_GE((*session)->serve_metrics().hits, 1u);
}

TEST(ServeSessionTest, RangeQueriesShareTheServingCache) {
  auto shape = CubeShape::Make({16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(13);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto range = RangeSpec::Make({1, 2}, {13, 11}, *shape);
  ASSERT_TRUE(range.ok());
  auto first = (*session)->RangeSum(*range);
  ASSERT_TRUE(first.ok());
  const ServeMetrics after_first = (*session)->serve_metrics();
  EXPECT_GT(after_first.insertions, 0u);  // missing intermediates retained

  auto second = (*session)->RangeSum(*range);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  const ServeMetrics after_second = (*session)->serve_metrics();
  EXPECT_EQ(after_second.insertions, after_first.insertions);
  EXPECT_GT(after_second.hits, after_first.hits);

  // And the answer is right: naive summation agrees.
  auto naive = NaiveRangeSum(*cube, *shape, *range);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(*first, *naive, 1e-9);
}

TEST(ServeSessionTest, AddFactInvalidatesCachedAnswers) {
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(14);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  auto before = (*session)->ViewByMask(3);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*session)->AddFact({2, 3}, 5.0).ok());
  EXPECT_GT((*session)->serve_metrics().invalidations, 0u);

  auto after = (*session)->ViewByMask(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0], (*before)[0] + 5.0);

  // Cross-check against a fresh session over the updated cube.
  Tensor updated = *cube;
  updated[updated.FlatIndex({2, 3})] += 5.0;
  auto fresh = OlapSession::FromCube(*shape, updated);
  ASSERT_TRUE(fresh.ok());
  auto expected = (*fresh)->ViewByMask(3);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->data(), expected->data());
}

TEST(ServeSessionTest, OptimizeFlushesTheCache) {
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(15);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  ASSERT_TRUE(cube.ok());
  auto session = OlapSession::FromCube(*shape, *cube, CachedOptions());
  ASSERT_TRUE(session.ok());

  for (uint32_t mask = 0; mask < 4; ++mask) {
    ASSERT_TRUE((*session)->ViewByMask(mask).ok());
  }
  ASSERT_GT((*session)->serve_metrics().entries, 0u);

  Rng wrng(16);
  auto population = ZipfViewPopulation(*shape, &wrng, 1.0);
  ASSERT_TRUE(population.ok());
  ASSERT_TRUE((*session)->DeclareWorkload(*population).ok());
  ASSERT_TRUE((*session)->Optimize().ok());
  EXPECT_GT((*session)->serve_metrics().invalidations, 0u);

  // Post-flush answers still agree with an uncached session.
  auto plain = OlapSession::FromCube(*shape, *cube);
  ASSERT_TRUE(plain.ok());
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto got = (*session)->ViewByMask(mask);
    auto expected = (*plain)->ViewByMask(mask);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(got->data(), expected->data());
  }
}

// ---------------------------------------------------------------------------
// Concurrency: readers race inserts and wholesale invalidation. Run under
// TSan by the CI tsan job (suite name matches its -R filter). Tensors are
// version-stamped — every cell equals the version — so a reader can
// detect a torn or partially published tensor without any external
// synchronization with the writer.

TEST(ServeStressTest, ConcurrentReadersSurviveInvalidatingWriter) {
  ViewCacheOptions options;
  options.shards = 4;
  options.capacity_bytes = 1u << 16;
  ViewCache cache(options);
  auto shape_result = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape_result.ok());
  const CubeShape shape = *shape_result;
  const std::vector<ElementId> ids = PyramidIds(shape, 16);

  constexpr int kReaders = 4;
  constexpr int kReaderRounds = 3000;
  constexpr int kWriterRounds = 200;
  std::atomic<uint64_t> version{1};
  std::atomic<int> inconsistencies{0};
  std::atomic<uint64_t> hits{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0x5e7e + static_cast<uint64_t>(r));
      for (int round = 0; round < kReaderRounds; ++round) {
        const ElementId& id = ids[rng.UniformU64(ids.size())];
        auto tensor = cache.Lookup(id);
        if (tensor == nullptr) {
          const double v = static_cast<double>(version.load());
          tensor = cache.Insert(id, MakeTensor(16, v),
                                /*assembly_cost=*/rng.UniformU64(100));
        } else {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
        // Internal consistency: a handed-out tensor is never torn.
        const double first = (*tensor)[0];
        for (uint64_t i = 1; i < tensor->size(); ++i) {
          if ((*tensor)[i] != first) {
            inconsistencies.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < kWriterRounds; ++round) {
      version.fetch_add(1);
      cache.InvalidateAll();
      std::this_thread::yield();
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(hits.load(), 0u);
  // Counters survived the races coherently: resident set within budget.
  const ServeMetrics metrics = cache.Metrics();
  EXPECT_LE(metrics.bytes_resident, options.capacity_bytes);
  EXPECT_EQ(metrics.hits, hits.load());
}

}  // namespace
}  // namespace vecube
