// Failpoint registry semantics and the WritableFile fault-injection shim:
// one-shot arming, skip counts, trace counting, and each injected failure
// mode's exact on-disk effect.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/io_file.h"

namespace vecube {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size);
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Failpoints::DisarmAll();
    Failpoints::StopTrace();
  }
};

TEST_F(FailpointTest, UnarmedHitReturnsNothing) {
  EXPECT_FALSE(Failpoints::Hit("never.armed").has_value());
}

TEST_F(FailpointTest, ArmedFiresOnceThenDisarms) {
  Failpoints::Arm("fp", FailpointAction{});
  auto fired = Failpoints::Hit("fp");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, FailpointAction::Kind::kError);
  EXPECT_FALSE(Failpoints::Hit("fp").has_value()) << "one-shot";
}

TEST_F(FailpointTest, SkipCountDelaysFiring) {
  Failpoints::Arm("fp", FailpointAction{}, /*skip=*/2);
  EXPECT_FALSE(Failpoints::Hit("fp").has_value());
  EXPECT_FALSE(Failpoints::Hit("fp").has_value());
  EXPECT_TRUE(Failpoints::Hit("fp").has_value()) << "fires on 3rd hit";
  EXPECT_FALSE(Failpoints::Hit("fp").has_value());
}

TEST_F(FailpointTest, RearmReplacesPreviousArming) {
  Failpoints::Arm("fp", FailpointAction{}, /*skip=*/100);
  FailpointAction flip;
  flip.kind = FailpointAction::Kind::kBitFlip;
  flip.flip_bit = 7;
  Failpoints::Arm("fp", flip);
  auto fired = Failpoints::Hit("fp");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, FailpointAction::Kind::kBitFlip);
  EXPECT_EQ(fired->flip_bit, 7u);
}

TEST_F(FailpointTest, DisarmAndDisarmAll) {
  Failpoints::Arm("a", FailpointAction{});
  Failpoints::Arm("b", FailpointAction{});
  Failpoints::Disarm("a");
  EXPECT_FALSE(Failpoints::Hit("a").has_value());
  Failpoints::DisarmAll();
  EXPECT_FALSE(Failpoints::Hit("b").has_value());
}

TEST_F(FailpointTest, TraceCountsEveryHit) {
  Failpoints::StartTrace();
  Failpoints::Hit("alpha");
  Failpoints::Hit("beta");
  Failpoints::Hit("alpha");
  Failpoints::Hit("alpha");
  Failpoints::StopTrace();
  const auto counts = Failpoints::TraceCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "alpha");
  EXPECT_EQ(counts[0].second, 3u);
  EXPECT_EQ(counts[1].first, "beta");
  EXPECT_EQ(counts[1].second, 1u);
}

TEST_F(FailpointTest, TraceRestartResetsCounts) {
  Failpoints::StartTrace();
  Failpoints::Hit("x");
  Failpoints::StartTrace();
  Failpoints::Hit("y");
  Failpoints::StopTrace();
  const auto counts = Failpoints::TraceCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].first, "y");
}

TEST_F(FailpointTest, InjectedErrorLeavesFileUntouched) {
  const std::string path = TempPath("fp_error.bin");
  auto file = WritableFile::Create(path, "t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("good", 4).ok());
  Failpoints::Arm("t", FailpointAction{});
  EXPECT_FALSE(file->Append("evil", 4).ok());
  EXPECT_EQ(file->offset(), 4u) << "failed append must not advance";
  ASSERT_TRUE(file->Append("more", 4).ok());
  ASSERT_TRUE(file->Close().ok());
  const auto bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.data(), bytes.size()), "goodmore");
  std::remove(path.c_str());
}

TEST_F(FailpointTest, ShortWriteLeavesTornPrefix) {
  const std::string path = TempPath("fp_short.bin");
  auto file = WritableFile::Create(path, "t");
  ASSERT_TRUE(file.ok());
  FailpointAction torn;
  torn.kind = FailpointAction::Kind::kShortWrite;
  torn.short_bytes = 2;
  Failpoints::Arm("t", torn);
  EXPECT_FALSE(file->Append("abcdef", 6).ok());
  ASSERT_TRUE(file->Close().ok());
  const auto bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.data(), bytes.size()), "ab");
  std::remove(path.c_str());
}

TEST_F(FailpointTest, BitFlipCorruptsSilently) {
  const std::string path = TempPath("fp_flip.bin");
  auto file = WritableFile::Create(path, "t");
  ASSERT_TRUE(file.ok());
  FailpointAction flip;
  flip.kind = FailpointAction::Kind::kBitFlip;
  flip.flip_bit = 0;  // lowest bit of the first byte
  Failpoints::Arm("t", flip);
  EXPECT_TRUE(file->Append("a", 1).ok()) << "bit rot is a 'successful' write";
  ASSERT_TRUE(file->Close().ok());
  const auto bytes = ReadAll(path);
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 'a' ^ 1);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, SyncAndRenameFailpoints) {
  const std::string path = TempPath("fp_sync.bin");
  auto file = WritableFile::Create(path, "t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("x", 1).ok());
  Failpoints::Arm("t.sync", FailpointAction{});
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_TRUE(file->Sync().ok()) << "one-shot: next sync succeeds";
  ASSERT_TRUE(file->Close().ok());

  const std::string target = TempPath("fp_renamed.bin");
  Failpoints::Arm("t.rename", FailpointAction{});
  EXPECT_FALSE(AtomicRename(path, target, "t").ok());
  EXPECT_TRUE(FileSize(path).ok()) << "source survives a failed rename";
  EXPECT_TRUE(AtomicRename(path, target, "t").ok());
  EXPECT_TRUE(FileSize(target).ok());
  std::remove(target.c_str());
}

TEST_F(FailpointTest, TruncateToUndoesAppend) {
  const std::string path = TempPath("fp_trunc.bin");
  auto file = WritableFile::Create(path, "t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Append("keepdrop", 8).ok());
  ASSERT_TRUE(file->TruncateTo(4).ok());
  ASSERT_TRUE(file->Append("tail", 4).ok());
  ASSERT_TRUE(file->Close().ok());
  const auto bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.data(), bytes.size()), "keeptail");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vecube
