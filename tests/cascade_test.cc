#include "haar/cascade.h"

#include <gtest/gtest.h>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

Tensor RandomCube(const std::vector<uint32_t>& extents, uint64_t seed) {
  auto shape = CubeShape::Make(extents);
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -20, 20);
  EXPECT_TRUE(cube.ok());
  return std::move(cube).value();
}

TEST(CascadeTest, ApplyEmptyCascadeIsIdentity) {
  const Tensor in = RandomCube({4, 4}, 1);
  auto out = ApplyCascade(in, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(in, 0.0));
}

TEST(CascadeTest, ApplyCascadeMatchesManual) {
  const Tensor in = RandomCube({4, 4}, 2);
  auto manual = PartialSum(in, 0);
  manual = PartialResidual(*manual, 1);
  auto cascade = ApplyCascade(in, {CascadeStep{0, StepKind::kPartial},
                                   CascadeStep{1, StepKind::kResidual}});
  ASSERT_TRUE(cascade.ok());
  EXPECT_TRUE(cascade->ApproxEquals(*manual, 0.0));
}

TEST(CascadeTest, SeparabilityAcrossDims) {
  // Eq. 14: P^m and P^n commute across dimensions (also with residuals).
  const Tensor in = RandomCube({8, 4}, 3);
  auto a = ApplyCascade(in, {CascadeStep{0, StepKind::kPartial},
                             CascadeStep{1, StepKind::kResidual}});
  auto b = ApplyCascade(in, {CascadeStep{1, StepKind::kResidual},
                             CascadeStep{0, StepKind::kPartial}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 0.0));
}

TEST(CascadeTest, DistributivityTelescopes) {
  // Eq. 8: Pk = P1 applied k times == PartialSumK.
  const Tensor in = RandomCube({16}, 4);
  auto p1 = PartialSum(in, 0);
  auto p2 = PartialSum(*p1, 0);
  auto p3 = PartialSum(*p2, 0);
  auto pk = PartialSumK(in, 0, 3);
  ASSERT_TRUE(pk.ok());
  EXPECT_TRUE(pk->ApproxEquals(*p3, 0.0));
}

TEST(CascadeTest, PartialSumKZeroIsIdentity) {
  const Tensor in = RandomCube({8}, 5);
  auto pk = PartialSumK(in, 0, 0);
  ASSERT_TRUE(pk.ok());
  EXPECT_TRUE(pk->ApproxEquals(in, 0.0));
}

TEST(CascadeTest, PartialSumKTooDeepRejected) {
  const Tensor in = RandomCube({8}, 5);
  EXPECT_TRUE(PartialSumK(in, 0, 4).status().IsFailedPrecondition());
}

TEST(CascadeTest, TotalAggregateSumsDim) {
  const Tensor in = RandomCube({8, 4}, 6);
  auto total = TotalAggregate(in, 0);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->extents(), (std::vector<uint32_t>{1, 4}));
  // Column sums.
  for (uint32_t j = 0; j < 4; ++j) {
    double expected = 0.0;
    for (uint32_t i = 0; i < 8; ++i) expected += in.At({i, j});
    EXPECT_DOUBLE_EQ(total->At({0, j}), expected);
  }
}

TEST(CascadeTest, TotalAggregateOfExtentOneIsIdentity) {
  const Tensor in = RandomCube({1, 4}, 7);
  auto total = TotalAggregate(in, 0);
  ASSERT_TRUE(total.ok());
  EXPECT_TRUE(total->ApproxEquals(in, 0.0));
}

TEST(CascadeTest, AggregateDimsOrderIndependent) {
  const Tensor in = RandomCube({4, 8, 2}, 8);
  auto a = AggregateDims(in, {0, 2});
  auto b = AggregateDims(in, {2, 0});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 0.0));
}

TEST(CascadeTest, AggregateDimsRejectsDuplicates) {
  const Tensor in = RandomCube({4, 4}, 9);
  EXPECT_TRUE(AggregateDims(in, {0, 0}).status().IsInvalidArgument());
}

TEST(CascadeTest, GrandTotalMatchesTensorTotal) {
  const Tensor in = RandomCube({4, 4, 4}, 10);
  auto total = GrandTotal(in);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(*total, in.Total());
}

TEST(CascadeTest, TotalAggregationOpCount) {
  // Cascading P along a dim of extent n costs Vol/2 + Vol/4 + ... =
  // Vol - Vol/n operations.
  const Tensor in = RandomCube({16, 4}, 11);
  OpCounter ops;
  auto total = TotalAggregate(in, 0, &ops);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(ops.adds, 64u - 4u);
}

TEST(CascadeTest, FullCubeAggregationOpCount) {
  // Generating the grand total costs Vol(A) - 1 adds regardless of the
  // dimension order (telescoping).
  const Tensor in = RandomCube({8, 8}, 12);
  OpCounter ops;
  auto total = GrandTotal(in, &ops);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(ops.adds, 63u);
}

}  // namespace
}  // namespace vecube
