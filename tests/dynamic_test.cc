#include "select/dynamic.h"

#include <gtest/gtest.h>

#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

TEST(DynamicTest, StartsWithCubeOnly) {
  Fixture f = MakeFixture({4, 4}, 1);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  EXPECT_EQ((*assembler)->store().size(), 1u);
  EXPECT_TRUE((*assembler)->store().Contains(ElementId::Root(2)));
  EXPECT_EQ((*assembler)->reconfiguration_count(), 0u);
}

TEST(DynamicTest, QueriesAnswerCorrectly) {
  Fixture f = MakeFixture({4, 4}, 2);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  ElementComputer computer(f.shape, &f.cube);
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto view = ElementId::AggregatedView(mask, f.shape);
    auto expected = computer.Compute(*view);
    auto got = (*assembler)->Query(*view);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9)) << mask;
  }
  EXPECT_EQ((*assembler)->queries_served(), 4u);
}

TEST(DynamicTest, ReconfiguresUnderSkewedTraffic) {
  Fixture f = MakeFixture({4, 4}, 3);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 8;
  options.drift_threshold = 0.5;
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  auto hot = ElementId::AggregatedView(0b11, f.shape);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*assembler)->Query(*hot).ok());
  }
  EXPECT_GE((*assembler)->reconfiguration_count(), 1u);
  // After adaptation the hot view is materialized: querying it is free.
  OpCounter ops;
  ASSERT_TRUE((*assembler)->Query(*hot, &ops).ok());
  EXPECT_EQ(ops.adds, 0u);
}

TEST(DynamicTest, AnswersStayCorrectAcrossReconfigurations) {
  Fixture f = MakeFixture({4, 4}, 4);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 4;
  options.drift_threshold = 0.2;
  options.access_decay = 0.9;
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  ElementComputer computer(f.shape, &f.cube);
  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const uint32_t mask = static_cast<uint32_t>(rng.UniformU64(4));
    auto view = ElementId::AggregatedView(mask, f.shape);
    auto expected = computer.Compute(*view);
    auto got = (*assembler)->Query(*view);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->ApproxEquals(*expected, 1e-9)) << "query " << i;
  }
}

TEST(DynamicTest, ForcedReconfigureNeedsObservations) {
  Fixture f = MakeFixture({4, 4}, 5);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  EXPECT_TRUE((*assembler)->Reconfigure().IsFailedPrecondition());
}

TEST(DynamicTest, StorageBudgetAddsRedundancy) {
  Fixture f = MakeFixture({4, 4}, 6);
  DynamicOptions options;
  options.storage_budget_cells = 2 * f.shape.volume();
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  auto a = ElementId::AggregatedView(0b01, f.shape);
  auto b = ElementId::AggregatedView(0b10, f.shape);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*assembler)->Query(*a).ok());
    ASSERT_TRUE((*assembler)->Query(*b).ok());
  }
  ASSERT_TRUE((*assembler)->Reconfigure().ok());
  // With budget for redundancy, both hot views end up free.
  OpCounter ops;
  ASSERT_TRUE((*assembler)->Query(*a, &ops).ok());
  ASSERT_TRUE((*assembler)->Query(*b, &ops).ok());
  EXPECT_EQ(ops.adds, 0u);
  EXPECT_LE((*assembler)->store().StorageCells(), options.storage_budget_cells);
}

TEST(DynamicTest, ShapeMismatchRejected) {
  Fixture f = MakeFixture({4, 4}, 7);
  auto other = CubeShape::Make({8, 8});
  EXPECT_FALSE(DynamicAssembler::Make(*other, f.cube, DynamicOptions{}).ok());
}

// Regression: Query() used to discard a successfully assembled answer
// when the *after-answering* reconfiguration attempt failed. The failure
// must be recorded on the side and the answer returned.
TEST(DynamicTest, ReconfigureFailureDoesNotDropAnswer) {
  Fixture f = MakeFixture({4, 4}, 8);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 2;
  options.drift_threshold = 0.1;  // any drift from empty baseline triggers
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  Failpoints::Arm("dynamic.reconfigure", FailpointAction{});

  auto view = ElementId::AggregatedView(0b11, f.shape);
  ElementComputer computer(f.shape, &f.cube);
  auto expected = computer.Compute(*view);

  // Query 1: below min_queries_between_reconfigs, no attempt yet.
  ASSERT_TRUE((*assembler)->Query(*view).ok());
  EXPECT_TRUE((*assembler)->last_reconfig_error().ok());

  // Query 2 triggers the (injected-to-fail) reconfiguration. The answer
  // must come back anyway, bit-correct.
  auto got = (*assembler)->Query(*view);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9));
  EXPECT_TRUE((*assembler)->last_reconfig_error().IsInternal());
  EXPECT_EQ((*assembler)->reconfiguration_failures(), 1u);
  EXPECT_EQ((*assembler)->reconfiguration_count(), 0u);

  // The failpoint is one-shot: the next attempt succeeds and clears the
  // recorded error.
  Failpoints::DisarmAll();
  ASSERT_TRUE((*assembler)->Query(*view).ok());
  ASSERT_TRUE((*assembler)->Query(*view).ok());
  EXPECT_GE((*assembler)->reconfiguration_count(), 1u);
  EXPECT_TRUE((*assembler)->last_reconfig_error().ok());
  EXPECT_EQ((*assembler)->reconfiguration_failures(), 1u);
}

// Regression: Reconfigure() dereferenced frontier.back() without an
// emptiness check. Exercise the tightest budgets around the basis volume
// — including ones where the greedy pass has (almost) nothing to add —
// and require the Algorithm-1 basis to survive as the target set.
TEST(DynamicTest, TinyRedundancyBudgetKeepsBasis) {
  Fixture f = MakeFixture({4, 4}, 9);
  ElementComputer computer(f.shape, &f.cube);
  for (uint64_t extra : {1u, 2u, 4u}) {
    DynamicOptions options;
    // Just above the cube-only basis volume: the greedy branch runs but
    // can afford at most a sliver beyond the basis.
    options.storage_budget_cells = f.shape.volume() + extra;
    auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
    ASSERT_TRUE(assembler.ok());
    auto view = ElementId::AggregatedView(0b01, f.shape);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*assembler)->Query(*view).ok());
    }
    ASSERT_TRUE((*assembler)->Reconfigure().ok()) << "budget +" << extra;
    EXPECT_LE((*assembler)->store().StorageCells(),
              options.storage_budget_cells);
    // The store still answers everything correctly.
    auto got = (*assembler)->Query(*view);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ApproxEquals(*computer.Compute(*view), 1e-9));
  }
}

// The serving cache in front of the dynamic loop: hits save assembly ops,
// reconfiguration flushes, answers stay correct throughout.
TEST(DynamicTest, CachedServingSavesOpsAndFlushesOnReconfigure) {
  Fixture f = MakeFixture({4, 4}, 10);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 8;
  options.drift_threshold = 0.5;
  options.cache.enabled = true;
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  ASSERT_NE((*assembler)->cache(), nullptr);

  ElementComputer computer(f.shape, &f.cube);
  auto hot = ElementId::AggregatedView(0b10, f.shape);
  auto expected = computer.Compute(*hot);
  for (int i = 0; i < 20; ++i) {
    OpCounter ops;
    auto got = (*assembler)->Query(*hot, &ops);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->ApproxEquals(*expected, 1e-9)) << "query " << i;
    if (i > 0 && (*assembler)->reconfiguration_count() == 0) {
      // Before any reconfiguration, repeats are pure cache hits.
      EXPECT_EQ(ops.adds, 0u) << "query " << i;
    }
  }
  const ServeMetrics metrics = (*assembler)->serve_metrics();
  EXPECT_GT(metrics.hits, 0u);
  EXPECT_GT(metrics.assembly_ops_saved, 0u);
  EXPECT_GE((*assembler)->reconfiguration_count(), 1u);
  EXPECT_GT(metrics.invalidations, 0u);  // the reconfiguration flushed
}

}  // namespace
}  // namespace vecube
