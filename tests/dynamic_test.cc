#include "select/dynamic.h"

#include <gtest/gtest.h>

#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 9);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

TEST(DynamicTest, StartsWithCubeOnly) {
  Fixture f = MakeFixture({4, 4}, 1);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  EXPECT_EQ((*assembler)->store().size(), 1u);
  EXPECT_TRUE((*assembler)->store().Contains(ElementId::Root(2)));
  EXPECT_EQ((*assembler)->reconfiguration_count(), 0u);
}

TEST(DynamicTest, QueriesAnswerCorrectly) {
  Fixture f = MakeFixture({4, 4}, 2);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  ElementComputer computer(f.shape, &f.cube);
  for (uint32_t mask = 0; mask < 4; ++mask) {
    auto view = ElementId::AggregatedView(mask, f.shape);
    auto expected = computer.Compute(*view);
    auto got = (*assembler)->Query(*view);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ApproxEquals(*expected, 1e-9)) << mask;
  }
  EXPECT_EQ((*assembler)->queries_served(), 4u);
}

TEST(DynamicTest, ReconfiguresUnderSkewedTraffic) {
  Fixture f = MakeFixture({4, 4}, 3);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 8;
  options.drift_threshold = 0.5;
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  auto hot = ElementId::AggregatedView(0b11, f.shape);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*assembler)->Query(*hot).ok());
  }
  EXPECT_GE((*assembler)->reconfiguration_count(), 1u);
  // After adaptation the hot view is materialized: querying it is free.
  OpCounter ops;
  ASSERT_TRUE((*assembler)->Query(*hot, &ops).ok());
  EXPECT_EQ(ops.adds, 0u);
}

TEST(DynamicTest, AnswersStayCorrectAcrossReconfigurations) {
  Fixture f = MakeFixture({4, 4}, 4);
  DynamicOptions options;
  options.min_queries_between_reconfigs = 4;
  options.drift_threshold = 0.2;
  options.access_decay = 0.9;
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  ElementComputer computer(f.shape, &f.cube);
  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const uint32_t mask = static_cast<uint32_t>(rng.UniformU64(4));
    auto view = ElementId::AggregatedView(mask, f.shape);
    auto expected = computer.Compute(*view);
    auto got = (*assembler)->Query(*view);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->ApproxEquals(*expected, 1e-9)) << "query " << i;
  }
}

TEST(DynamicTest, ForcedReconfigureNeedsObservations) {
  Fixture f = MakeFixture({4, 4}, 5);
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, DynamicOptions{});
  ASSERT_TRUE(assembler.ok());
  EXPECT_TRUE((*assembler)->Reconfigure().IsFailedPrecondition());
}

TEST(DynamicTest, StorageBudgetAddsRedundancy) {
  Fixture f = MakeFixture({4, 4}, 6);
  DynamicOptions options;
  options.storage_budget_cells = 2 * f.shape.volume();
  auto assembler = DynamicAssembler::Make(f.shape, f.cube, options);
  ASSERT_TRUE(assembler.ok());
  auto a = ElementId::AggregatedView(0b01, f.shape);
  auto b = ElementId::AggregatedView(0b10, f.shape);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*assembler)->Query(*a).ok());
    ASSERT_TRUE((*assembler)->Query(*b).ok());
  }
  ASSERT_TRUE((*assembler)->Reconfigure().ok());
  // With budget for redundancy, both hot views end up free.
  OpCounter ops;
  ASSERT_TRUE((*assembler)->Query(*a, &ops).ok());
  ASSERT_TRUE((*assembler)->Query(*b, &ops).ok());
  EXPECT_EQ(ops.adds, 0u);
  EXPECT_LE((*assembler)->store().StorageCells(), options.storage_budget_cells);
}

TEST(DynamicTest, ShapeMismatchRejected) {
  Fixture f = MakeFixture({4, 4}, 7);
  auto other = CubeShape::Make({8, 8});
  EXPECT_FALSE(DynamicAssembler::Make(*other, f.cube, DynamicOptions{}).ok());
}

}  // namespace
}  // namespace vecube
