#include "rolap/group_by.h"

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/cube_builder.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Relation relation;
  Tensor cube;
};

Fixture MakeFixture(uint64_t seed) {
  auto shape = CubeShape::Make({8, 4, 4});
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto relation = SyntheticSalesRelation(*shape, &rng, 1000, 1.0);
  EXPECT_TRUE(relation.ok());
  auto built = CubeBuilder::Build(*relation, *shape);
  EXPECT_TRUE(built.ok());
  return Fixture{*shape, std::move(relation).value(),
                 std::move(built->cube)};
}

TEST(RolapTest, GroupByMatchesCubeViewsForEveryMask) {
  Fixture f = MakeFixture(1);
  ElementComputer computer(f.shape, &f.cube);
  for (uint32_t mask = 0; mask < 8; ++mask) {
    auto rolap = GroupBySum(f.relation, f.shape, mask);
    auto molap =
        computer.Compute(*ElementId::AggregatedView(mask, f.shape));
    ASSERT_TRUE(rolap.ok() && molap.ok()) << mask;
    EXPECT_TRUE(rolap->ApproxEquals(*molap, 1e-9)) << "mask " << mask;
  }
}

TEST(RolapTest, StatsCountScansAndGroups) {
  Fixture f = MakeFixture(2);
  GroupByStats stats;
  auto out = GroupBySum(f.relation, f.shape, 0b110, 0, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.rows_scanned, f.relation.num_rows());
  EXPECT_GT(stats.groups, 0u);
  EXPECT_LE(stats.groups, 8u);  // at most extent(0) groups
}

TEST(RolapTest, EveryViewCostsAFullScan) {
  // The ROLAP pain the paper motivates: answering K views scans the
  // relation K times, while the cube pays the scan once at build time.
  Fixture f = MakeFixture(3);
  GroupByStats stats;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    ASSERT_TRUE(GroupBySum(f.relation, f.shape, mask, 0, &stats).ok());
  }
  EXPECT_EQ(stats.rows_scanned, 8 * f.relation.num_rows());
}

TEST(RolapTest, ScanRangeSumMatchesCube) {
  Fixture f = MakeFixture(4);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint32_t> start(3), width(3);
    for (uint32_t m = 0; m < 3; ++m) {
      start[m] = static_cast<uint32_t>(rng.UniformU64(f.shape.extent(m)));
      width[m] = 1 + static_cast<uint32_t>(
                         rng.UniformU64(f.shape.extent(m) - start[m]));
    }
    auto rolap = ScanRangeSum(f.relation, f.shape, start, width);
    ASSERT_TRUE(rolap.ok());
    double expected = 0.0;
    std::vector<uint32_t> coords(start);
    for (;;) {
      expected += f.cube.At(coords);
      uint32_t m = 0;
      for (; m < 3; ++m) {
        if (++coords[m] < start[m] + width[m]) break;
        coords[m] = start[m];
      }
      if (m == 3) break;
    }
    EXPECT_NEAR(*rolap, expected, 1e-9);
  }
}

TEST(RolapTest, Validation) {
  Fixture f = MakeFixture(5);
  auto wrong_shape = CubeShape::Make({8, 4});
  EXPECT_FALSE(GroupBySum(f.relation, *wrong_shape, 0).ok());
  EXPECT_FALSE(GroupBySum(f.relation, f.shape, 0, 7).ok());
  EXPECT_FALSE(GroupBySum(f.relation, f.shape, 0b11111).ok());

  auto bad_keys = Relation::Make({"x"}, {"v"});
  ASSERT_TRUE(bad_keys->Append({99}, {1.0}).ok());
  auto small = CubeShape::Make({4});
  EXPECT_TRUE(GroupBySum(*bad_keys, *small, 0).status().IsOutOfRange());
}

}  // namespace
}  // namespace vecube
