#include "select/best_basis.h"

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(BestBasisTest, ResultIsNonRedundantBasis) {
  const CubeShape shape = Shape({8, 8});
  Rng rng(1);
  auto cube = SparseRandomCube(shape, &rng, 0.1);
  auto result = SelectCompressionBasis(shape, *cube, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsNonRedundantBasis(result->basis, shape));
}

TEST(BestBasisTest, ConstantCubeCompressesToOneCoefficient) {
  // A constant cube has all its energy in the fully-aggregated element:
  // every residual is exactly zero.
  const CubeShape shape = Shape({8, 8});
  auto cube = Tensor::FromData(std::vector<uint32_t>{8, 8},
                               std::vector<double>(64, 5.0));
  auto result = SelectCompressionBasis(shape, *cube, 0.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->significant_coefficients, 1u);
  EXPECT_EQ(result->cube_nonzeros, 64u);
}

TEST(BestBasisTest, NeverWorseThanKeepingTheCube) {
  const CubeShape shape = Shape({16, 8});
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    auto cube = SparseRandomCube(shape, &rng, 0.2);
    auto result = SelectCompressionBasis(shape, *cube, 0.0);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->significant_coefficients, result->cube_nonzeros);
  }
}

TEST(BestBasisTest, HigherThresholdNeverIncreasesCount) {
  const CubeShape shape = Shape({8, 8});
  Rng rng(7);
  auto cube = UniformIntegerCube(shape, &rng, 0, 9);
  auto tight = SelectCompressionBasis(shape, *cube, 0.0);
  auto loose = SelectCompressionBasis(shape, *cube, 10.0);
  ASSERT_TRUE(tight.ok() && loose.ok());
  EXPECT_LE(loose->significant_coefficients, tight->significant_coefficients);
}

TEST(BestBasisTest, SelectedBasisReconstructsTheCube) {
  // The chosen basis is complete, so assembling the root from its
  // materialized elements must reproduce the cube exactly.
  const CubeShape shape = Shape({8, 8});
  Rng rng(9);
  auto cube = SparseRandomCube(shape, &rng, 0.15);
  auto result = SelectCompressionBasis(shape, *cube, 0.5);
  ASSERT_TRUE(result.ok());

  ElementComputer computer(shape, &*cube);
  auto store = computer.Materialize(result->basis);
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);
  auto back = engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(*cube, 0.0));
}

TEST(BestBasisTest, ValidatesArguments) {
  const CubeShape shape = Shape({8});
  auto wrong = Tensor::Zeros({4});
  EXPECT_FALSE(SelectCompressionBasis(shape, *wrong, 0.0).ok());
  auto cube = Tensor::Zeros({8});
  EXPECT_FALSE(SelectCompressionBasis(shape, *cube, -1.0).ok());
}

}  // namespace
}  // namespace vecube
