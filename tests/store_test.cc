#include "core/store.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(StoreTest, PutAndGet) {
  ElementStore store(Shape44());
  auto data = Tensor::Zeros({4, 4});
  (*data)[0] = 1.0;
  ASSERT_TRUE(store.Put(ElementId::Root(2), *data).ok());
  EXPECT_TRUE(store.Contains(ElementId::Root(2)));
  auto got = store.Get(ElementId::Root(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((**got)[0], 1.0);
}

TEST(StoreTest, GetMissingIsNotFound) {
  ElementStore store(Shape44());
  EXPECT_TRUE(store.Get(ElementId::Root(2)).status().IsNotFound());
}

TEST(StoreTest, PutValidatesExtents) {
  ElementStore store(Shape44());
  auto wrong = Tensor::Zeros({2, 4});
  EXPECT_TRUE(
      store.Put(ElementId::Root(2), *wrong).IsInvalidArgument());
  // Element (1@0, 0@0) has data extents {2, 4}.
  auto id = ElementId::Make({{1, 0}, {0, 0}}, Shape44());
  EXPECT_TRUE(store.Put(*id, *wrong).ok());
}

TEST(StoreTest, StorageCellsTracksPutsAndErases) {
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  EXPECT_EQ(store.StorageCells(), 16u);
  auto id = ElementId::Make({{2, 0}, {2, 0}}, shape);
  ASSERT_TRUE(store.Put(*id, *Tensor::Zeros({1, 1})).ok());
  EXPECT_EQ(store.StorageCells(), 17u);
  EXPECT_DOUBLE_EQ(store.RelativeStorage(), 17.0 / 16.0);
  ASSERT_TRUE(store.Erase(ElementId::Root(2)).ok());
  EXPECT_EQ(store.StorageCells(), 1u);
  EXPECT_TRUE(store.Erase(ElementId::Root(2)).IsNotFound());
}

TEST(StoreTest, ReplaceDoesNotDoubleCount) {
  ElementStore store(Shape44());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  EXPECT_EQ(store.StorageCells(), 16u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StoreTest, IdsSorted) {
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  auto a = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto b = ElementId::Make({{1, 0}, {0, 0}}, shape);
  ASSERT_TRUE(store.Put(*a, *Tensor::Zeros({2, 4})).ok());
  ASSERT_TRUE(store.Put(*b, *Tensor::Zeros({2, 4})).ok());
  const auto ids = store.Ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0] < ids[1]);
}

TEST(StoreTest, ArityMismatchRejected) {
  ElementStore store(Shape44());
  EXPECT_TRUE(store.Put(ElementId::Root(3), *Tensor::Zeros({4, 4, 4}))
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace vecube
