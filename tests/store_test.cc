#include "core/store.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape44() {
  auto s = CubeShape::Make({4, 4});
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(StoreTest, PutAndGet) {
  ElementStore store(Shape44());
  auto data = Tensor::Zeros({4, 4});
  (*data)[0] = 1.0;
  ASSERT_TRUE(store.Put(ElementId::Root(2), *data).ok());
  EXPECT_TRUE(store.Contains(ElementId::Root(2)));
  auto got = store.Get(ElementId::Root(2));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((**got)[0], 1.0);
}

TEST(StoreTest, GetMissingIsNotFound) {
  ElementStore store(Shape44());
  EXPECT_TRUE(store.Get(ElementId::Root(2)).status().IsNotFound());
}

TEST(StoreTest, PutValidatesExtents) {
  ElementStore store(Shape44());
  auto wrong = Tensor::Zeros({2, 4});
  EXPECT_TRUE(
      store.Put(ElementId::Root(2), *wrong).IsInvalidArgument());
  // Element (1@0, 0@0) has data extents {2, 4}.
  auto id = ElementId::Make({{1, 0}, {0, 0}}, Shape44());
  EXPECT_TRUE(store.Put(*id, *wrong).ok());
}

TEST(StoreTest, StorageCellsTracksPutsAndErases) {
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  EXPECT_EQ(store.StorageCells(), 16u);
  auto id = ElementId::Make({{2, 0}, {2, 0}}, shape);
  ASSERT_TRUE(store.Put(*id, *Tensor::Zeros({1, 1})).ok());
  EXPECT_EQ(store.StorageCells(), 17u);
  EXPECT_DOUBLE_EQ(store.RelativeStorage(), 17.0 / 16.0);
  ASSERT_TRUE(store.Erase(ElementId::Root(2)).ok());
  EXPECT_EQ(store.StorageCells(), 1u);
  EXPECT_TRUE(store.Erase(ElementId::Root(2)).IsNotFound());
}

TEST(StoreTest, ReplaceDoesNotDoubleCount) {
  ElementStore store(Shape44());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  EXPECT_EQ(store.StorageCells(), 16u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StoreTest, IdsSorted) {
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  auto a = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto b = ElementId::Make({{1, 0}, {0, 0}}, shape);
  ASSERT_TRUE(store.Put(*a, *Tensor::Zeros({2, 4})).ok());
  ASSERT_TRUE(store.Put(*b, *Tensor::Zeros({2, 4})).ok());
  const auto ids = store.Ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0] < ids[1]);
}

TEST(StoreTest, ArityMismatchRejected) {
  ElementStore store(Shape44());
  EXPECT_TRUE(store.Put(ElementId::Root(3), *Tensor::Zeros({4, 4, 4}))
                  .IsInvalidArgument());
}

TEST(StoreTest, QuarantineDropsDataAndCells) {
  ElementStore store(Shape44());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  ASSERT_TRUE(store.Quarantine(ElementId::Root(2)).ok());
  EXPECT_TRUE(store.IsQuarantined(ElementId::Root(2)));
  EXPECT_FALSE(store.Contains(ElementId::Root(2)))
      << "untrusted data must not be served";
  EXPECT_TRUE(store.Get(ElementId::Root(2)).status().IsNotFound());
  EXPECT_EQ(store.StorageCells(), 0u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.quarantined_count(), 1u);
}

TEST(StoreTest, PutClearsQuarantineMark) {
  ElementStore store(Shape44());
  ASSERT_TRUE(store.Quarantine(ElementId::Root(2)).ok());
  ASSERT_TRUE(store.Put(ElementId::Root(2), *Tensor::Zeros({4, 4})).ok());
  EXPECT_FALSE(store.IsQuarantined(ElementId::Root(2)));
  EXPECT_EQ(store.quarantined_count(), 0u);
  EXPECT_EQ(store.StorageCells(), 16u);
}

TEST(StoreTest, EraseClearsQuarantineMark) {
  ElementStore store(Shape44());
  ASSERT_TRUE(store.Quarantine(ElementId::Root(2)).ok());
  // Erasing a quarantined-only id drops the mark (the caller is giving
  // the element up entirely).
  ASSERT_TRUE(store.Erase(ElementId::Root(2)).ok());
  EXPECT_EQ(store.quarantined_count(), 0u);
  EXPECT_TRUE(store.Erase(ElementId::Root(2)).IsNotFound());
}

TEST(StoreTest, AccountingStaysExactUnderQuarantineChurn) {
  // Regression: StorageCells() must equal the summed volume of the
  // resident elements through arbitrary Put / Erase / Quarantine /
  // Put-replace sequences (the degraded-mode and repair paths exercise
  // all of them).
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  auto check = [&store] {
    uint64_t cells = 0;
    for (const ElementId& id : store.Ids()) {
      auto data = store.Get(id);
      ASSERT_TRUE(data.ok());
      cells += (*data)->size();
      EXPECT_FALSE(store.IsQuarantined(id));
    }
    EXPECT_EQ(cells, store.StorageCells());
  };
  const ElementId root = ElementId::Root(2);
  auto half = ElementId::Make({{1, 0}, {0, 0}}, shape);
  ASSERT_TRUE(half.ok());

  ASSERT_TRUE(store.Put(root, *Tensor::Zeros({4, 4})).ok());
  ASSERT_TRUE(store.Put(*half, *Tensor::Zeros({2, 4})).ok());
  check();
  ASSERT_TRUE(store.Quarantine(*half).ok());
  check();
  ASSERT_TRUE(store.Put(*half, *Tensor::Zeros({2, 4})).ok());  // repair
  check();
  ASSERT_TRUE(store.Put(root, *Tensor::Zeros({4, 4})).ok());  // replace
  check();
  ASSERT_TRUE(store.Quarantine(root).ok());
  check();
  ASSERT_TRUE(store.Erase(root).ok());  // give up on it
  check();
  ASSERT_TRUE(store.Erase(*half).ok());
  check();
  EXPECT_EQ(store.StorageCells(), 0u);
  EXPECT_EQ(store.quarantined_count(), 0u);
}

TEST(StoreTest, QuarantineValidatesArity) {
  ElementStore store(Shape44());
  EXPECT_FALSE(store.Quarantine(ElementId::Root(3)).ok());
}

TEST(StoreTest, QuarantinedIdsSorted) {
  const CubeShape shape = Shape44();
  ElementStore store(shape);
  auto a = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto b = ElementId::Make({{1, 0}, {0, 0}}, shape);
  ASSERT_TRUE(store.Quarantine(*a).ok());
  ASSERT_TRUE(store.Quarantine(*b).ok());
  const auto ids = store.QuarantinedIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0] < ids[1]);
}

}  // namespace
}  // namespace vecube
