// End-to-end scenarios: relation -> cube -> decomposition -> selection ->
// assembly -> range queries, exercised the way an OLAP application would.

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/graph.h"
#include "cube/cube_builder.h"
#include "cube/sparse_cube.h"
#include "cube/synthetic.h"
#include "range/prefix_baseline.h"
#include "range/range_engine.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "select/dynamic.h"
#include "select/procedure3.h"
#include "util/rng.h"

namespace vecube {
namespace {

TEST(IntegrationTest, RelationToViewsPipeline) {
  // A small star-schema fact table: (product, store, day) -> amount.
  auto shape = CubeShape::Make({8, 4, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(1);
  auto relation = SyntheticSalesRelation(*shape, &rng, 2000, 1.1);
  ASSERT_TRUE(relation.ok());
  auto built = CubeBuilder::Build(*relation, *shape);
  ASSERT_TRUE(built.ok());

  // Materialize a workload-tuned basis and answer all 8 views.
  Rng rng2(2);
  auto pop = RandomViewPopulation(*shape, &rng2);
  auto selection = SelectMinCostBasis(*shape, *pop);
  ASSERT_TRUE(selection.ok());
  ElementComputer computer(*shape, &built->cube);
  auto store = computer.Materialize(selection->basis);
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);

  for (uint32_t mask = 0; mask < 8; ++mask) {
    auto view = engine.AssembleView(mask);
    ASSERT_TRUE(view.ok()) << mask;
    // Mass conservation: every aggregated view sums to the relation total.
    double relation_total = 0.0;
    for (uint64_t row = 0; row < relation->num_rows(); ++row) {
      relation_total += relation->measure(0, row);
    }
    EXPECT_NEAR(view->Total(), relation_total, 1e-6);
  }
}

TEST(IntegrationTest, SelectionReducesMeasuredWorkNotJustPredicted) {
  // The headline claim, measured: assembling a skewed workload from the
  // Algorithm-1 basis costs fewer real operations than from the cube.
  auto shape = CubeShape::Make({16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(3);
  auto cube = UniformIntegerCube(*shape, &rng);
  auto hot = ElementId::AggregatedView(0b01, *shape);
  auto warm = ElementId::AggregatedView(0b11, *shape);
  auto pop = FixedPopulation({{*hot, 0.8}, {*warm, 0.2}}, *shape);
  ASSERT_TRUE(pop.ok());

  ElementComputer computer(*shape, &*cube);
  auto cube_store = computer.Materialize(CubeOnlySet(*shape));
  auto selection = SelectMinCostBasis(*shape, *pop);
  ASSERT_TRUE(selection.ok());
  auto tuned_store = computer.Materialize(selection->basis);
  ASSERT_TRUE(cube_store.ok() && tuned_store.ok());

  AssemblyEngine cube_engine(&*cube_store);
  AssemblyEngine tuned_engine(&*tuned_store);
  OpCounter cube_ops, tuned_ops;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cube_engine.Assemble(*hot, &cube_ops).ok());
    ASSERT_TRUE(tuned_engine.Assemble(*hot, &tuned_ops).ok());
  }
  ASSERT_TRUE(cube_engine.Assemble(*warm, &cube_ops).ok());
  ASSERT_TRUE(tuned_engine.Assemble(*warm, &tuned_ops).ok());
  EXPECT_LT(tuned_ops.adds, cube_ops.adds);
}

TEST(IntegrationTest, GreedyRedundancyZeroesOutHotViews) {
  auto shape = CubeShape::Make({4, 4, 4});
  ASSERT_TRUE(shape.ok());
  Rng rng(4);
  auto pop = RandomViewPopulation(*shape, &rng);
  auto basis = SelectMinCostBasis(*shape, *pop);
  ASSERT_TRUE(basis.ok());

  GreedyOptions options;
  options.storage_target_cells = 3 * shape->volume();
  auto frontier = GreedySelect(*shape, *pop, basis->basis, options);
  ASSERT_TRUE(frontier.ok());
  EXPECT_DOUBLE_EQ(frontier->back().processing_cost, 0.0);

  // Zero predicted cost means every queried view is itself selected.
  auto calc = Procedure3Calculator::Make(*shape, frontier->back().selected);
  for (const QuerySpec& q : pop->queries()) {
    EXPECT_EQ(calc->Cost(q.view), 0u);
  }
}

TEST(IntegrationTest, RangeQueriesOverSelectedPyramid) {
  auto shape = CubeShape::Make({16, 16});
  ASSERT_TRUE(shape.ok());
  Rng rng(5);
  auto cube = ClusteredCube(*shape, &rng, 4, 3.0);
  ASSERT_TRUE(cube.ok());

  ElementComputer computer(*shape, &*cube);
  auto store =
      computer.Materialize(ViewElementGraph(*shape).IntermediateElements());
  ASSERT_TRUE(store.ok());
  RangeEngine engine(&*store, MissingElementPolicy::kError);
  auto prefix = PrefixSumCube::Build(*shape, *cube);
  ASSERT_TRUE(prefix.ok());

  Rng qrng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> start(2), width(2);
    for (uint32_t m = 0; m < 2; ++m) {
      start[m] = static_cast<uint32_t>(qrng.UniformU64(16));
      width[m] = 1 + static_cast<uint32_t>(qrng.UniformU64(16 - start[m]));
    }
    auto range = RangeSpec::Make(start, width, *shape);
    auto a = engine.RangeSum(*range);
    auto b = prefix->RangeSum(*range);
    auto c = NaiveRangeSum(*cube, *shape, *range);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_DOUBLE_EQ(*a, *c);
    EXPECT_DOUBLE_EQ(*b, *c);
  }
}

TEST(IntegrationTest, DynamicAssemblerAdaptsAndWins) {
  // Phase 1 traffic on one view, phase 2 on another; the dynamic
  // assembler must end up serving phase-2 traffic for free.
  auto shape = CubeShape::Make({8, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(7);
  auto cube = UniformIntegerCube(*shape, &rng);

  DynamicOptions options;
  options.min_queries_between_reconfigs = 8;
  options.drift_threshold = 0.4;
  options.access_decay = 0.8;
  auto assembler = DynamicAssembler::Make(*shape, *cube, options);
  ASSERT_TRUE(assembler.ok());

  auto phase1 = ElementId::AggregatedView(0b01, *shape);
  auto phase2 = ElementId::AggregatedView(0b10, *shape);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE((*assembler)->Query(*phase1).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE((*assembler)->Query(*phase2).ok());

  OpCounter ops;
  ASSERT_TRUE((*assembler)->Query(*phase2, &ops).ok());
  EXPECT_EQ(ops.adds, 0u);
  EXPECT_GE((*assembler)->reconfiguration_count(), 2u);
}

TEST(IntegrationTest, SparseCubeRoundTripThroughAssembly) {
  auto shape = CubeShape::Make({16, 8});
  ASSERT_TRUE(shape.ok());
  Rng rng(8);
  auto dense = SparseRandomCube(*shape, &rng, 0.05);
  ASSERT_TRUE(dense.ok());
  auto sparse = SparseCube::FromDense(*shape, *dense);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LT(sparse->density(), 0.12);

  auto densified = sparse->Densify();
  ASSERT_TRUE(densified.ok());
  ElementComputer computer(*shape, &*densified);
  auto store = computer.Materialize(WaveletBasisSet(*shape));
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);
  auto back = engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(*dense, 0.0));
}

TEST(IntegrationTest, CountAndAverageCubes) {
  // AVG = SUM / COUNT, both served from the same machinery.
  auto shape = CubeShape::Make({4, 4});
  ASSERT_TRUE(shape.ok());
  auto relation = Relation::Make({"x", "y"}, {"v"});
  ASSERT_TRUE(relation.ok());
  ASSERT_TRUE(relation->Append({1, 1}, {10.0}).ok());
  ASSERT_TRUE(relation->Append({1, 1}, {20.0}).ok());
  ASSERT_TRUE(relation->Append({1, 2}, {6.0}).ok());

  auto sum = CubeBuilder::Build(*relation, *shape);
  CubeBuildOptions count_opt;
  count_opt.count_instead_of_sum = true;
  auto count = CubeBuilder::Build(*relation, *shape, count_opt);
  ASSERT_TRUE(sum.ok() && count.ok());

  // AVG over the row y in {1,2} of x=1: (10+20+6)/3 = 12.
  ElementComputer sum_computer(*shape, &sum->cube);
  ElementComputer count_computer(*shape, &count->cube);
  auto view = ElementId::AggregatedView(0b10, *shape);  // aggregate y
  auto s = sum_computer.Compute(*view);
  auto c = count_computer.Compute(*view);
  ASSERT_TRUE(s.ok() && c.ok());
  EXPECT_DOUBLE_EQ(s->At({1, 0}) / c->At({1, 0}), 12.0);
}

}  // namespace
}  // namespace vecube
