#include "core/element_id.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(ElementIdTest, RootHasZeroCodes) {
  const ElementId root = ElementId::Root(3);
  EXPECT_TRUE(root.IsRoot());
  EXPECT_EQ(root.ndim(), 3u);
  for (uint32_t m = 0; m < 3; ++m) {
    EXPECT_EQ(root.dim(m).level, 0u);
    EXPECT_EQ(root.dim(m).offset, 0u);
  }
}

TEST(ElementIdTest, MakeValidates) {
  const CubeShape shape = Shape({4, 4});
  EXPECT_TRUE(ElementId::Make({{2, 3}, {0, 0}}, shape).ok());
  EXPECT_FALSE(ElementId::Make({{3, 0}, {0, 0}}, shape).ok());  // level > K
  EXPECT_FALSE(ElementId::Make({{1, 2}, {0, 0}}, shape).ok());  // offset >= 2^k
  EXPECT_FALSE(ElementId::Make({{0, 0}}, shape).ok());          // arity
}

TEST(ElementIdTest, ChildMapping) {
  // P: (k, o) -> (k+1, 2o); R: (k, o) -> (k+1, 2o+1).   (Eq. 23)
  const CubeShape shape = Shape({8});
  const ElementId root = ElementId::Root(1);
  auto p = root.Child(0, StepKind::kPartial, shape);
  auto r = root.Child(0, StepKind::kResidual, shape);
  ASSERT_TRUE(p.ok() && r.ok());
  EXPECT_EQ(p->dim(0), (DimCode{1, 0}));
  EXPECT_EQ(r->dim(0), (DimCode{1, 1}));
  auto rp = r->Child(0, StepKind::kPartial, shape);
  auto rr = r->Child(0, StepKind::kResidual, shape);
  EXPECT_EQ(rp->dim(0), (DimCode{2, 2}));
  EXPECT_EQ(rr->dim(0), (DimCode{2, 3}));
}

TEST(ElementIdTest, CannotSplitBeyondDepth) {
  const CubeShape shape = Shape({4});
  auto leaf = ElementId::Make({{2, 1}}, shape);
  EXPECT_FALSE(leaf->CanSplit(0, shape));
  EXPECT_TRUE(
      leaf->Child(0, StepKind::kPartial, shape).status().IsFailedPrecondition());
}

TEST(ElementIdTest, ParentInvertsChild) {
  const CubeShape shape = Shape({8, 8});
  const ElementId root = ElementId::Root(2);
  auto c1 = root.Child(1, StepKind::kResidual, shape);
  auto c2 = c1->Child(1, StepKind::kPartial, shape);
  auto back = c2->Parent(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *c1);
  EXPECT_TRUE(root.Parent(0).status().IsFailedPrecondition());
}

TEST(ElementIdTest, SiblingToggles) {
  const CubeShape shape = Shape({4});
  auto p = ElementId::Root(1).Child(0, StepKind::kPartial, shape);
  auto sibling = p->Sibling(0);
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(sibling->dim(0), (DimCode{1, 1}));
  EXPECT_EQ(*sibling->Sibling(0), *p);
  EXPECT_TRUE(p->IsPartialChild(0));
  EXPECT_FALSE(sibling->IsPartialChild(0));
}

TEST(ElementIdTest, AggregatedViewMasks) {
  const CubeShape shape = Shape({4, 8});
  auto v0 = ElementId::AggregatedView(0, shape);   // the cube
  auto v1 = ElementId::AggregatedView(1, shape);   // aggregate dim 0
  auto v3 = ElementId::AggregatedView(3, shape);   // total
  ASSERT_TRUE(v0.ok() && v1.ok() && v3.ok());
  EXPECT_TRUE(v0->IsRoot());
  EXPECT_EQ(v1->dim(0), (DimCode{2, 0}));
  EXPECT_EQ(v1->dim(1), (DimCode{0, 0}));
  EXPECT_EQ(v3->dim(1), (DimCode{3, 0}));
  EXPECT_TRUE(v0->IsAggregatedView(shape));
  EXPECT_TRUE(v1->IsAggregatedView(shape));
  EXPECT_TRUE(v3->IsAggregatedView(shape));
}

TEST(ElementIdTest, PartialChainIsIntermediateNotAggregated) {
  const CubeShape shape = Shape({8});
  auto p1 = ElementId::Intermediate({1}, shape);
  ASSERT_TRUE(p1.ok());
  EXPECT_TRUE(p1->IsIntermediate());
  EXPECT_FALSE(p1->IsAggregatedView(shape));  // partially aggregated only
  EXPECT_FALSE(p1->IsResidual());
}

TEST(ElementIdTest, ResidualClassification) {
  const CubeShape shape = Shape({4, 4});
  auto residual = ElementId::Make({{1, 1}, {0, 0}}, shape);
  EXPECT_TRUE(residual->IsResidual());
  EXPECT_FALSE(residual->IsIntermediate());
  EXPECT_FALSE(residual->IsAggregatedView(shape));
}

TEST(ElementIdTest, DataExtentsAndVolume) {
  const CubeShape shape = Shape({8, 4});
  auto id = ElementId::Make({{2, 3}, {1, 0}}, shape);
  EXPECT_EQ(id->DataExtents(shape), (std::vector<uint32_t>{2, 2}));
  EXPECT_EQ(id->DataVolume(shape), 4u);
  EXPECT_EQ(ElementId::Root(2).DataVolume(shape), 32u);
}

TEST(ElementIdTest, TotalLevel) {
  const CubeShape shape = Shape({8, 4});
  auto id = ElementId::Make({{2, 3}, {1, 0}}, shape);
  EXPECT_EQ(id->TotalLevel(), 3u);
  EXPECT_EQ(ElementId::Root(2).TotalLevel(), 0u);
}

TEST(ElementIdTest, PathFromRootEncodesOffsets) {
  const CubeShape shape = Shape({8});
  // offset 5 at level 3 = binary 101 = R, P, R from the root.
  auto id = ElementId::Make({{3, 5}}, shape);
  const auto path = id->PathFromRoot();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], (CascadeStep{0, StepKind::kResidual}));
  EXPECT_EQ(path[1], (CascadeStep{0, StepKind::kPartial}));
  EXPECT_EQ(path[2], (CascadeStep{0, StepKind::kResidual}));
}

TEST(ElementIdTest, PathFromRootReachesId) {
  const CubeShape shape = Shape({8, 4});
  auto id = ElementId::Make({{2, 1}, {1, 1}}, shape);
  ElementId current = ElementId::Root(2);
  for (const CascadeStep& step : id->PathFromRoot()) {
    auto next = current.Child(step.dim, step.kind, shape);
    ASSERT_TRUE(next.ok());
    current = *next;
  }
  EXPECT_EQ(current, *id);
}

TEST(ElementIdTest, OrderingAndEquality) {
  const CubeShape shape = Shape({4, 4});
  auto a = ElementId::Make({{0, 0}, {1, 0}}, shape);
  auto b = ElementId::Make({{0, 0}, {1, 1}}, shape);
  EXPECT_TRUE(*a < *b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(*a, *ElementId::Make({{0, 0}, {1, 0}}, shape));
}

TEST(ElementIdTest, HashDistinguishes) {
  const CubeShape shape = Shape({4, 4});
  std::unordered_set<ElementId, ElementIdHash> set;
  set.insert(*ElementId::Make({{1, 0}, {0, 0}}, shape));
  set.insert(*ElementId::Make({{0, 0}, {1, 0}}, shape));
  set.insert(*ElementId::Make({{1, 0}, {0, 0}}, shape));  // duplicate
  EXPECT_EQ(set.size(), 2u);
}

TEST(ElementIdTest, ToString) {
  const CubeShape shape = Shape({4, 4});
  auto id = ElementId::Make({{2, 3}, {0, 0}}, shape);
  EXPECT_EQ(id->ToString(), "(2@3, 0@0)");
}

}  // namespace
}  // namespace vecube
