#include "select/pair_cost.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(PairCostTest, DisjointElementsCostZero) {
  const CubeShape shape = Shape({4, 4});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  auto r = ElementId::Root(2).Child(0, StepKind::kResidual, shape);
  EXPECT_EQ(PairCost(*p, *r, shape), 0u);
}

TEST(PairCostTest, SelfCostZero) {
  const CubeShape shape = Shape({8, 8});
  auto v = ElementId::AggregatedView(1, shape);
  EXPECT_EQ(PairCost(*v, *v, shape), 0u);
}

TEST(PairCostTest, AncestorToDescendantIsVolumeDifference) {
  // Eq. 28 telescopes to Vol(a) - I.
  const CubeShape shape = Shape({8, 8});
  const ElementId root = ElementId::Root(2);
  auto view = ElementId::AggregatedView(0b01, shape);  // vol 8
  EXPECT_EQ(PairCost(root, *view, shape), 64u - 8u);
  EXPECT_EQ(PairCost(*view, root, shape), 56u);  // symmetric
}

TEST(PairCostTest, CrossedHalves) {
  // (P, I) supporting (I, P) on a 2x2 cube: I = 1, cost (2-1)+(2-1) = 2.
  const CubeShape shape = Shape({2, 2});
  auto v1 = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto v7 = ElementId::Make({{0, 0}, {1, 0}}, shape);
  EXPECT_EQ(PairCost(*v1, *v7, shape), 2u);
}

TEST(PairCostTest, SupportCostWeighted) {
  const CubeShape shape = Shape({2, 2});
  auto v1 = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto v7 = ElementId::Make({{0, 0}, {1, 0}}, shape);
  auto pop = FixedPopulation({{*v1, 0.5}, {*v7, 0.5}}, shape);
  ASSERT_TRUE(pop.ok());
  // C(V1, V1) = 0, C(V1, V7) = 2 -> weighted 1.0.
  EXPECT_DOUBLE_EQ(SupportCost(*v1, *pop, shape), 1.0);
}

TEST(PairCostTest, PopulationPairCostSumsMembers) {
  const CubeShape shape = Shape({2, 2});
  auto v1 = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto v4 = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto v7 = ElementId::Make({{0, 0}, {1, 0}}, shape);
  auto pop = FixedPopulation({{*v1, 0.5}, {*v7, 0.5}}, shape);
  // {V1, V4}: V1 free; V7 costs 2 from each -> weighted total 2.0.
  EXPECT_DOUBLE_EQ(PopulationPairCost({*v1, *v4}, *pop, shape), 2.0);
}

TEST(PairCostTest, UnweightedMatchesPaperConvention) {
  const CubeShape shape = Shape({2, 2});
  auto v1 = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto v4 = ElementId::Make({{1, 1}, {0, 0}}, shape);
  auto v7 = ElementId::Make({{0, 0}, {1, 0}}, shape);
  EXPECT_EQ(UnweightedPairCost({*v1, *v4}, {*v1, *v7}, shape), 4u);
}

TEST(PairCostTest, CubeOnlyCostIsVolumeDeficit) {
  // Supporting view Z from the cube costs Vol(A) - Vol(Z) (per query).
  const CubeShape shape = Shape({4, 4});
  const ElementId root = ElementId::Root(2);
  auto views = std::vector<ElementId>{
      *ElementId::AggregatedView(1, shape),   // vol 4
      *ElementId::AggregatedView(2, shape),   // vol 4
      *ElementId::AggregatedView(3, shape)};  // vol 1
  EXPECT_EQ(UnweightedPairCost({root}, views, shape),
            (16u - 4u) + (16u - 4u) + (16u - 1u));
}

TEST(PairCostTest, PartialOverlapBothSidesCharged) {
  // a = (1@0, 0@0) (left half), k = (0@0, 1@0) (bottom half) on 4x4:
  // I = 2*2 = 4, C = (8-4) + (8-4) = 8.
  const CubeShape shape = Shape({4, 4});
  auto a = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto k = ElementId::Make({{0, 0}, {1, 0}}, shape);
  EXPECT_EQ(PairCost(*a, *k, shape), 8u);
}

}  // namespace
}  // namespace vecube
