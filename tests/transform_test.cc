#include "haar/transform.h"

#include <gtest/gtest.h>

#include "cube/shape.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

TEST(TransformTest, PartialSum1D) {
  auto in = Tensor::FromData({4}, {1, 2, 3, 4});
  auto p = PartialSum(*in, 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->extents(), (std::vector<uint32_t>{2}));
  EXPECT_EQ((*p)[0], 3.0);
  EXPECT_EQ((*p)[1], 7.0);
}

TEST(TransformTest, PartialResidual1D) {
  auto in = Tensor::FromData({4}, {1, 2, 3, 4});
  auto r = PartialResidual(*in, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], -1.0);
  EXPECT_EQ((*r)[1], -1.0);
}

TEST(TransformTest, PartialSumAlongEachDim2D) {
  auto in = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto p0 = PartialSum(*in, 0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0->extents(), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ((*p0)[0], 4.0);  // 1+3
  EXPECT_EQ((*p0)[1], 6.0);  // 2+4
  auto p1 = PartialSum(*in, 1);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->extents(), (std::vector<uint32_t>{2, 1}));
  EXPECT_EQ((*p1)[0], 3.0);  // 1+2
  EXPECT_EQ((*p1)[1], 7.0);  // 3+4
}

TEST(TransformTest, ResidualSign) {
  auto in = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  auto r1 = PartialResidual(*in, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)[0], -1.0);  // 1-2
  EXPECT_EQ((*r1)[1], -1.0);  // 3-4
}

TEST(TransformTest, OddExtentRejected) {
  auto in = Tensor::FromData({3}, {1, 2, 3});
  EXPECT_TRUE(PartialSum(*in, 0).status().IsFailedPrecondition());
}

TEST(TransformTest, ExtentOneRejected) {
  auto in = Tensor::FromData({1, 4}, {1, 2, 3, 4});
  EXPECT_TRUE(PartialSum(*in, 0).status().IsFailedPrecondition());
  EXPECT_TRUE(PartialSum(*in, 1).ok());
}

TEST(TransformTest, DimOutOfRangeRejected) {
  auto in = Tensor::FromData({4}, {1, 2, 3, 4});
  EXPECT_TRUE(PartialSum(*in, 1).status().IsInvalidArgument());
  EXPECT_TRUE(PartialResidual(*in, 7).status().IsInvalidArgument());
}

TEST(TransformTest, PartialPairMatchesSeparateCalls) {
  auto shape = CubeShape::Make({4, 8});
  Rng rng(2);
  auto in = UniformIntegerCube(*shape, &rng);
  for (uint32_t dim : {0u, 1u}) {
    Tensor p, r;
    ASSERT_TRUE(PartialPair(*in, dim, &p, &r).ok());
    auto p2 = PartialSum(*in, dim);
    auto r2 = PartialResidual(*in, dim);
    EXPECT_TRUE(p.ApproxEquals(*p2, 0.0));
    EXPECT_TRUE(r.ApproxEquals(*r2, 0.0));
  }
}

TEST(TransformTest, PartialPairNullOutputsRejected) {
  auto in = Tensor::FromData({4}, {1, 2, 3, 4});
  Tensor p;
  EXPECT_TRUE(PartialPair(*in, 0, &p, nullptr).IsInvalidArgument());
}

TEST(TransformTest, SynthesizeInverts1D) {
  auto in = Tensor::FromData({8}, {5, 1, 4, 4, 0, -2, 7, 3});
  auto p = PartialSum(*in, 0);
  auto r = PartialResidual(*in, 0);
  auto back = SynthesizePair(*p, *r, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(*in, 0.0));  // exact for integers
}

TEST(TransformTest, SynthesizeShapeMismatchRejected) {
  auto p = Tensor::Zeros({2});
  auto q = Tensor::Zeros({4});
  EXPECT_TRUE(SynthesizePair(*p, *q, 0).status().IsInvalidArgument());
}

TEST(TransformTest, OpCountsMatchOutputVolumes) {
  auto shape = CubeShape::Make({8, 4});
  Rng rng(9);
  auto in = UniformIntegerCube(*shape, &rng);
  OpCounter ops;
  auto p = PartialSum(*in, 0, &ops);
  EXPECT_EQ(ops.adds, 16u);  // 4*4 outputs
  auto r = PartialResidual(*in, 0, &ops);
  EXPECT_EQ(ops.adds, 32u);
  auto back = SynthesizePair(*p, *r, 0, &ops);
  EXPECT_EQ(ops.adds, 32u + 32u);  // synthesis writes 32 cells
  ops.Reset();
  EXPECT_EQ(ops.adds, 0u);
}

TEST(TransformTest, NonExpansiveness) {
  // Property 3: Vol(P) + Vol(R) == Vol(A).
  auto shape = CubeShape::Make({8, 4, 2});
  Rng rng(4);
  auto in = UniformIntegerCube(*shape, &rng);
  for (uint32_t dim = 0; dim < 3; ++dim) {
    auto p = PartialSum(*in, dim);
    auto r = PartialResidual(*in, dim);
    ASSERT_TRUE(p.ok() && r.ok());
    EXPECT_EQ(p->size() + r->size(), in->size());
  }
}

TEST(TransformTest, PartialSumPreservesTotal) {
  auto shape = CubeShape::Make({8, 8});
  Rng rng(6);
  auto in = UniformIntegerCube(*shape, &rng);
  auto p = PartialSum(*in, 1);
  EXPECT_DOUBLE_EQ(p->Total(), in->Total());
}

TEST(TransformTest, ResidualOfConstantIsZero) {
  auto in = Tensor::FromData({4, 2}, {3, 3, 3, 3, 3, 3, 3, 3});
  auto r = PartialResidual(*in, 0);
  for (uint64_t i = 0; i < r->size(); ++i) EXPECT_EQ((*r)[i], 0.0);
}

// Property-style sweep: perfect reconstruction along every dimension of
// several cube shapes with random integer data.
class ReconstructionSweep
    : public ::testing::TestWithParam<std::vector<uint32_t>> {};

TEST_P(ReconstructionSweep, PerfectReconstructionEveryDim) {
  auto shape = CubeShape::Make(GetParam());
  ASSERT_TRUE(shape.ok());
  Rng rng(21);
  auto in = UniformIntegerCube(*shape, &rng, -50, 50);
  for (uint32_t dim = 0; dim < shape->ndim(); ++dim) {
    if (shape->extent(dim) < 2) continue;
    Tensor p, r;
    ASSERT_TRUE(PartialPair(*in, dim, &p, &r).ok());
    auto back = SynthesizePair(p, r, dim);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->ApproxEquals(*in, 0.0))
        << "dim " << dim << " shape " << in->ShapeString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReconstructionSweep,
    ::testing::Values(std::vector<uint32_t>{2}, std::vector<uint32_t>{64},
                      std::vector<uint32_t>{2, 2},
                      std::vector<uint32_t>{16, 8},
                      std::vector<uint32_t>{4, 4, 4},
                      std::vector<uint32_t>{2, 8, 4},
                      std::vector<uint32_t>{1, 8},
                      std::vector<uint32_t>{2, 2, 2, 2, 2}));

}  // namespace
}  // namespace vecube
