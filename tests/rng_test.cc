#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace vecube {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU64() != b.NextU64()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64BoundOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RngTest, UniformU64HitsAllResidues) {
  Rng rng(99);
  bool seen[8] = {};
  for (int i = 0; i < 400; ++i) seen[rng.UniformU64(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double u = rng.UniformDouble(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(11);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.UniformDouble();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(RngTest, SimplexSumsToOne) {
  Rng rng(3);
  for (size_t k : {1u, 2u, 16u, 100u}) {
    const auto w = rng.Simplex(k);
    ASSERT_EQ(w.size(), k);
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12);
    for (double x : w) EXPECT_GE(x, 0.0);
  }
}

TEST(RngTest, ZipfWeightsSumToOneAndSkewed) {
  Rng rng(3);
  const auto w = rng.ZipfWeights(64, 1.0);
  ASSERT_EQ(w.size(), 64u);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
  // The largest weight of Zipf(1) over 64 items is 1/H_64 ~ 0.21.
  double max_w = 0.0;
  for (double x : w) max_w = std::max(max_w, x);
  EXPECT_GT(max_w, 0.15);
}

TEST(RngTest, ZipfExponentZeroIsUniform) {
  Rng rng(4);
  const auto w = rng.ZipfWeights(10, 0.0);
  for (double x : w) EXPECT_NEAR(x, 0.1, 1e-12);
}

}  // namespace
}  // namespace vecube
