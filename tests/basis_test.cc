#include "core/basis.h"

#include <gtest/gtest.h>

#include "core/graph.h"

namespace vecube {
namespace {

CubeShape Shape(std::vector<uint32_t> extents) {
  auto s = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(BasisTest, CubeOnlyIsNonRedundantBasis) {
  const CubeShape shape = Shape({4, 4});
  const auto set = CubeOnlySet(shape);
  EXPECT_TRUE(IsNonRedundant(set, shape));
  EXPECT_TRUE(IsComplete(set, shape));
  EXPECT_TRUE(IsNonRedundantBasis(set, shape));
  EXPECT_EQ(StorageVolume(set, shape), shape.volume());
}

TEST(BasisTest, SiblingPairIsBasis) {
  const CubeShape shape = Shape({4, 4});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  auto r = ElementId::Root(2).Child(0, StepKind::kResidual, shape);
  const std::vector<ElementId> set{*p, *r};
  EXPECT_TRUE(IsNonRedundantBasis(set, shape));
  EXPECT_EQ(StorageVolume(set, shape), shape.volume());  // non-expansive
}

TEST(BasisTest, SinglePartialChildIsIncomplete) {
  const CubeShape shape = Shape({4, 4});
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, shape);
  const std::vector<ElementId> set{*p};
  EXPECT_TRUE(IsNonRedundant(set, shape));
  EXPECT_FALSE(IsComplete(set, shape));
}

TEST(BasisTest, OverlappingViewsAreRedundant) {
  // (P, I) and (I, P): the paper's {V1, V7} — redundant, incomplete.
  const CubeShape shape = Shape({2, 2});
  auto v1 = ElementId::Make({{1, 0}, {0, 0}}, shape);
  auto v7 = ElementId::Make({{0, 0}, {1, 0}}, shape);
  const std::vector<ElementId> set{*v1, *v7};
  EXPECT_FALSE(IsNonRedundant(set, shape));
  EXPECT_FALSE(IsComplete(set, shape));
}

TEST(BasisTest, RootPlusAnythingIsRedundantBasis) {
  const CubeShape shape = Shape({4, 4});
  auto v1 = ElementId::Make({{2, 0}, {0, 0}}, shape);
  const std::vector<ElementId> set{ElementId::Root(2), *v1};
  EXPECT_FALSE(IsNonRedundant(set, shape));
  EXPECT_TRUE(IsComplete(set, shape));
  EXPECT_FALSE(IsNonRedundantBasis(set, shape));
}

TEST(BasisTest, CompletenessForSubElement) {
  const CubeShape shape = Shape({4});
  auto p = ElementId::Root(1).Child(0, StepKind::kPartial, shape);
  auto pp = p->Child(0, StepKind::kPartial, shape);
  auto pr = p->Child(0, StepKind::kResidual, shape);
  // {PP, PR} is complete w.r.t. P but not w.r.t. the root.
  const std::vector<ElementId> set{*pp, *pr};
  EXPECT_TRUE(IsCompleteFor(set, *p, shape));
  EXPECT_FALSE(IsCompleteFor(set, ElementId::Root(1), shape));
}

TEST(BasisTest, Procedure1AgreesWithCoverage2D) {
  // For d <= 2 every complete non-redundant cover is guillotine, so the
  // paper's Procedure 1 agrees with the coverage criterion.
  const CubeShape shape = Shape({2, 2});
  ViewElementGraph graph(shape);
  std::vector<ElementId> all;
  graph.ForEachElement([&](const ElementId& id) { all.push_back(id); });
  ASSERT_EQ(all.size(), 9u);
  const ElementId root = ElementId::Root(2);
  // All subsets of the 9 elements.
  for (uint32_t mask = 0; mask < (1u << 9); ++mask) {
    std::vector<ElementId> set;
    for (uint32_t i = 0; i < 9; ++i) {
      if ((mask >> i) & 1u) set.push_back(all[i]);
    }
    if (set.empty()) continue;
    if (!IsNonRedundant(set, shape)) continue;
    EXPECT_EQ(IsComplete(set, shape), IsCompleteProcedure1(set, root, shape))
        << "mask " << mask;
  }
}

TEST(BasisTest, WaveletBasisIsNonRedundantBasis) {
  for (const auto& extents :
       {std::vector<uint32_t>{8}, std::vector<uint32_t>{4, 4},
        std::vector<uint32_t>{8, 2}, std::vector<uint32_t>{4, 4, 4}}) {
    const CubeShape shape = Shape(extents);
    const auto basis = WaveletBasisSet(shape);
    EXPECT_TRUE(IsNonRedundantBasis(basis, shape)) << shape.ToString();
    // Non-expansive: volume n^d (Section 4.3).
    EXPECT_EQ(StorageVolume(basis, shape), shape.volume()) << shape.ToString();
  }
}

TEST(BasisTest, WaveletBasisSize) {
  // Square cube: 1 + levels * (2^d - 1) members.
  const CubeShape shape = Shape({16, 16});
  EXPECT_EQ(WaveletBasisSet(shape).size(), 1u + 4u * 3u);
}

TEST(BasisTest, GaussianPyramidIsRedundantComplete) {
  const CubeShape shape = Shape({4, 4});
  const auto pyramid = GaussianPyramidSet(shape);
  EXPECT_EQ(pyramid.size(), 3u);  // levels 0, 1, 2
  EXPECT_TRUE(IsComplete(pyramid, shape));      // contains the root
  EXPECT_FALSE(IsNonRedundant(pyramid, shape));  // nested low-pass chain
  EXPECT_EQ(StorageVolume(pyramid, shape), 16u + 4u + 1u);
}

TEST(BasisTest, GaussianPyramidMembersAreIntermediate) {
  const CubeShape shape = Shape({8, 4});
  for (const ElementId& id : GaussianPyramidSet(shape)) {
    EXPECT_TRUE(id.IsIntermediate());
  }
}

TEST(BasisTest, ViewHierarchyVolumeIsNPlusOneToTheD) {
  // Section 4.3: Vol = (n+1)^d for square cubes.
  const CubeShape shape = Shape({4, 4, 4});
  const auto hierarchy = ViewHierarchySet(shape);
  EXPECT_EQ(hierarchy.size(), 8u);
  EXPECT_EQ(StorageVolume(hierarchy, shape), 125u);
  EXPECT_TRUE(IsComplete(hierarchy, shape));
  EXPECT_FALSE(IsNonRedundant(hierarchy, shape));
}

TEST(BasisTest, NonSquareWaveletBasis) {
  // Short dimensions exhaust first; the decomposition continues jointly on
  // the remaining ones.
  const CubeShape shape = Shape({8, 2});
  const auto basis = WaveletBasisSet(shape);
  EXPECT_TRUE(IsNonRedundantBasis(basis, shape));
  EXPECT_EQ(StorageVolume(basis, shape), 16u);
}

TEST(BasisTest, EmptySetIsNotComplete) {
  const CubeShape shape = Shape({4});
  EXPECT_FALSE(IsComplete({}, shape));
  EXPECT_TRUE(IsNonRedundant({}, shape));  // vacuously
}

}  // namespace
}  // namespace vecube
