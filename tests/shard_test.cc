// Dyadic shard decomposition (core/shard_plan.h): exhaustive bit-exactness
// and op-count pinning against the step-at-a-time oracle across (shape,
// step pattern, shards, threads, dispatch); ShardPlan structural
// invariants (cost partition, merge legality, coverage); combine-stage
// stress under concurrent executors (TSan); QueryContext cancellation
// unwinding mid-shard; ShardScratch ownership semantics; engine-level
// routing with num_shards.

#include "core/shard_plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "haar/fused.h"
#include "haar/simd.h"
#include "haar/transform.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace vecube {
namespace {

// The seed execution model every sharded run must match bit for bit.
Result<Tensor> UnfusedCascade(const Tensor& input,
                              const std::vector<CascadeStep>& steps,
                              OpCounter* ops = nullptr) {
  Tensor current = input;
  for (const CascadeStep& step : steps) {
    Tensor next;
    if (step.kind == StepKind::kPartial) {
      VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, step.dim, ops));
    } else {
      VECUBE_ASSIGN_OR_RETURN(next, PartialResidual(current, step.dim, ops));
    }
    current = std::move(next);
  }
  return current;
}

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.extents() != b.extents()) {
    return ::testing::AssertionFailure()
           << "extents differ: " << a.ShapeString() << " vs "
           << b.ShapeString();
  }
  if (std::memcmp(a.raw(), b.raw(), a.size() * sizeof(double)) != 0) {
    for (uint64_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a.raw()[i], &b.raw()[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "cell " << i << " differs: " << a.raw()[i] << " vs "
               << b.raw()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

struct ForceScalar {
  ForceScalar() {
    internal::OverrideVecOpsForTesting(&internal::ScalarVecOps());
  }
  ~ForceScalar() { internal::OverrideVecOpsForTesting(nullptr); }
};

struct BudgetOverride {
  explicit BudgetOverride(uint64_t cells) {
    internal::SetFusedBudgetForTesting(cells);
  }
  ~BudgetOverride() { internal::SetFusedBudgetForTesting(0); }
};

Tensor RandomTensor(const std::vector<uint32_t>& extents, uint64_t seed) {
  auto shape = CubeShape::Make(extents);
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  EXPECT_TRUE(cube.ok());
  return std::move(cube).value();
}

uint64_t AnalyticCost(const Tensor& input,
                      const std::vector<CascadeStep>& steps) {
  uint64_t cost = 0;
  uint64_t volume = input.size();
  for (size_t s = 0; s < steps.size(); ++s) {
    volume /= 2;
    cost += volume;
  }
  return cost;
}

// Step patterns that between them exercise: pure concat splits, pure
// merge splits, mixed concat+merge, residual kinds inside the deferred
// suffix, and multi-dimension interleaving.
struct Pattern {
  const char* name;
  std::vector<uint32_t> extents;
  std::vector<CascadeStep> steps;
};

std::vector<Pattern> SweepPatterns() {
  const CascadeStep p0{0, StepKind::kPartial};
  const CascadeStep p1{1, StepKind::kPartial};
  const CascadeStep p2{2, StepKind::kPartial};
  const CascadeStep r0{0, StepKind::kResidual};
  const CascadeStep r1{1, StepKind::kResidual};
  const CascadeStep r2{2, StepKind::kResidual};
  return {
      // Output stays large: concat splits only.
      {"concat_only", {8, 8, 4}, {p0, p1}},
      // Full aggregation: output volume 1, every split is a merge split.
      {"merge_only_1d", {16}, {p0, p0, p0, p0}},
      // Full aggregation, multi-dim: merge along the last-stepped dim.
      {"merge_after_concat", {8, 8}, {p0, p0, p0, p1, p1, p1}},
      // Residual steps inside the deferred suffix (sign order matters).
      {"residual_suffix", {4, 8}, {p0, p0, p1, r1, p1}},
      // Trailing run of length 1 caps the merge depth.
      {"short_trailing_run", {8, 4, 2}, {p0, p0, p0, p1, p1, p2}},
      // Residuals everywhere, interleaved dims.
      {"interleaved_residuals", {8, 4, 4}, {r0, p1, r2, p0, r1, p2}},
      // Offset-style descent: most-significant residual first per dim.
      {"descent_like", {16, 8}, {r0, p0, p0, p0, r1, p1, p1}},
  };
}

// --- Tentpole: exhaustive bit-exactness + op-pinning sweep --------------

TEST(ShardSweep, BitIdenticalAndOpsPinnedAcrossShardsThreadsDispatch) {
  for (const Pattern& pat : SweepPatterns()) {
    SCOPED_TRACE(pat.name);
    const Tensor input = RandomTensor(pat.extents, 42);
    OpCounter ref_ops;
    Tensor ref;
    {
      ForceScalar scalar;
      auto r = UnfusedCascade(input, pat.steps, &ref_ops);
      ASSERT_TRUE(r.ok());
      ref = *r;
    }
    ASSERT_EQ(ref_ops.adds, AnalyticCost(input, pat.steps));

    for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
      const ShardPlan plan = ShardPlan::Build(input.extents(), pat.steps,
                                              shards);
      ASSERT_LE(plan.parallelism(), shards);
      ASSERT_EQ(plan.total_cost(), ref_ops.adds)
          << "decomposition must partition the analytic cost";
      for (const uint32_t threads : {1u, 2u, 4u}) {
        for (const bool scalar : {false, true}) {
          SCOPED_TRACE(testing::Message()
                       << "shards=" << shards << " threads=" << threads
                       << " scalar=" << scalar);
          std::optional<ForceScalar> force;
          if (scalar) force.emplace();
          ThreadPool pool(threads);
          ThreadedShardExecutor exec(&pool);
          OpCounter ops;
          auto out = exec.Execute(input, plan, &ops, nullptr);
          ASSERT_TRUE(out.ok()) << out.status().ToString();
          EXPECT_TRUE(BitIdentical(*out, ref));
          EXPECT_EQ(ops.adds, ref_ops.adds);
        }
      }
    }
  }
}

TEST(ShardSweep, TinyFusedBudgetStillBitIdentical) {
  // A 1-cell budget forces maximal group splitting and windowed tiling
  // inside every shard's serial cascade.
  const Pattern pat{"budget", {8, 8}, {CascadeStep{0, StepKind::kPartial},
                                       CascadeStep{1, StepKind::kResidual},
                                       CascadeStep{1, StepKind::kPartial}}};
  const Tensor input = RandomTensor(pat.extents, 7);
  Tensor ref;
  {
    ForceScalar scalar;
    auto r = UnfusedCascade(input, pat.steps);
    ASSERT_TRUE(r.ok());
    ref = *r;
  }
  BudgetOverride budget(1);
  for (const uint32_t shards : {2u, 4u, 8u}) {
    const ShardPlan plan =
        ShardPlan::Build(input.extents(), pat.steps, shards);
    ThreadPool pool(2);
    ThreadedShardExecutor exec(&pool);
    auto out = exec.Execute(input, plan, nullptr, nullptr);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(BitIdentical(*out, ref)) << "shards=" << shards;
  }
}

// --- ShardPlan structural invariants ------------------------------------

TEST(ShardPlanTest, SingleShardIsIdentityDecomposition) {
  const std::vector<uint32_t> extents{8, 4};
  const std::vector<CascadeStep> steps{{0, StepKind::kPartial}};
  const ShardPlan plan = ShardPlan::Build(extents, steps, 1);
  EXPECT_EQ(plan.parallelism(), 1u);
  EXPECT_EQ(plan.merge_levels(), 0u);
  EXPECT_EQ(plan.local_in_extents(), extents);
  EXPECT_EQ(plan.local_steps(), steps);
  EXPECT_TRUE(plan.in_contiguous());
}

TEST(ShardPlanTest, ShardCountRoundsDownToPowerOfTwo) {
  const std::vector<uint32_t> extents{16, 16};
  const std::vector<CascadeStep> steps{{0, StepKind::kPartial}};
  const ShardPlan plan = ShardPlan::Build(extents, steps, 7);
  EXPECT_EQ(plan.parallelism(), 4u);
}

TEST(ShardPlanTest, ConcatSplitsExhaustOutputBeforeMerging) {
  // Output extents {4, 4}: 8 shards need 8 concat splits <= 16 available,
  // so no combine stage.
  const ShardPlan plan = ShardPlan::Build(
      {8, 8}, {{0, StepKind::kPartial}, {1, StepKind::kPartial}}, 8);
  EXPECT_EQ(plan.parallelism(), 8u);
  EXPECT_EQ(plan.merge_levels(), 0u);
  EXPECT_EQ(plan.local_steps().size(), 2u);
}

TEST(ShardPlanTest, MergeOnlyAlongLastSteppedDimension) {
  // Full aggregation of {8, 8} ending in dim-1 steps: merge splits must
  // defer dim-1 steps only, and the local list is a prefix of the global.
  const std::vector<CascadeStep> steps{
      {0, StepKind::kPartial}, {0, StepKind::kPartial},
      {0, StepKind::kPartial}, {1, StepKind::kPartial},
      {1, StepKind::kPartial}, {1, StepKind::kResidual}};
  const ShardPlan plan = ShardPlan::Build({8, 8}, steps, 4);
  EXPECT_EQ(plan.parallelism(), 4u);
  EXPECT_EQ(plan.merge_levels(), 2u);
  ASSERT_EQ(plan.merge_kinds().size(), 2u);
  EXPECT_EQ(plan.merge_kinds()[0], StepKind::kPartial);
  EXPECT_EQ(plan.merge_kinds()[1], StepKind::kResidual);
  ASSERT_EQ(plan.local_steps().size(), steps.size() - 2);
  for (size_t s = 0; s < plan.local_steps().size(); ++s) {
    EXPECT_EQ(plan.local_steps()[s], steps[s]);
  }
}

TEST(ShardPlanTest, MergeDepthCappedByTrailingRun) {
  // The last step's dimension has a trailing run of exactly one step, so
  // at most one merge level is legal no matter how many shards are asked
  // for (deferring any dim-0 step would reorder the global suffix).
  const std::vector<CascadeStep> steps{{0, StepKind::kPartial},
                                       {0, StepKind::kPartial},
                                       {0, StepKind::kPartial},
                                       {1, StepKind::kPartial}};
  const ShardPlan plan = ShardPlan::Build({8, 2}, steps, 8);
  EXPECT_LE(plan.merge_levels(), 1u);
  EXPECT_EQ(plan.parallelism(), 2u);
}

TEST(ShardPlanTest, TasksTileTheSourceDisjointly) {
  const std::vector<CascadeStep> steps{{0, StepKind::kPartial},
                                       {1, StepKind::kPartial},
                                       {1, StepKind::kPartial}};
  const ShardPlan plan = ShardPlan::Build({8, 8, 4}, steps, 8);
  ASSERT_GT(plan.parallelism(), 1u);
  // Every source cell is covered by exactly one task subrectangle.
  std::set<uint64_t> covered;
  const std::vector<uint32_t>& local = plan.local_in_extents();
  for (const ShardTask& task : plan.tasks()) {
    std::vector<uint32_t> idx(local.size(), 0);
    for (;;) {
      uint64_t flat = 0;
      for (size_t m = 0; m < local.size(); ++m) {
        flat = flat * plan.in_extents()[m] + task.in_begin[m] + idx[m];
      }
      EXPECT_TRUE(covered.insert(flat).second) << "overlap at " << flat;
      size_t m = local.size();
      bool done = true;
      while (m-- > 0) {
        if (++idx[m] < local[m]) {
          done = false;
          break;
        }
        idx[m] = 0;
      }
      if (done) break;
    }
  }
  uint64_t volume = 1;
  for (const uint32_t e : plan.in_extents()) volume *= e;
  EXPECT_EQ(covered.size(), volume);
}

TEST(ShardPlanTest, NonDyadicShapeDegradesToSingleTask) {
  const ShardPlan plan =
      ShardPlan::Build({6, 4}, {{1, StepKind::kPartial}}, 8);
  EXPECT_EQ(plan.parallelism(), 1u);
}

TEST(ShardPlanTest, CostPartitionHoldsAcrossShardCounts) {
  const Tensor input = RandomTensor({16, 8, 4}, 3);
  const std::vector<CascadeStep> steps{
      {0, StepKind::kPartial}, {0, StepKind::kPartial},
      {1, StepKind::kResidual}, {2, StepKind::kPartial},
      {2, StepKind::kPartial}};
  const uint64_t analytic = AnalyticCost(input, steps);
  for (const uint32_t shards : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const ShardPlan plan = ShardPlan::Build(input.extents(), steps, shards);
    EXPECT_EQ(plan.total_cost(), analytic) << "shards=" << shards;
  }
}

// --- ShardScratch -------------------------------------------------------

TEST(ShardScratchTest, GrantsAreAlignedDisjointAndReusedAfterReset) {
  ShardScratch scratch;
  double* a = scratch.Take(100);
  double* b = scratch.Take(1000);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  // Disjoint grants: writing one must not disturb the other.
  for (int i = 0; i < 100; ++i) a[i] = 1.0;
  for (int i = 0; i < 1000; ++i) b[i] = 2.0;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a[i], 1.0);
  const uint64_t capacity = scratch.capacity_cells();
  scratch.Reset();
  (void)scratch.Take(100);
  (void)scratch.Take(1000);
  EXPECT_EQ(scratch.capacity_cells(), capacity)
      << "same-shape reuse must not allocate";
}

// --- Combine-stage stress (run under TSan in CI) ------------------------

TEST(ShardStressTest, ConcurrentExecutorsShareLanesSafely) {
  // Merge-heavy plan: full aggregation so every shard funnels into the
  // combine DAG, exercising lane claiming, per-lane scratch, and the
  // lane-buffer handoff under concurrent Execute() calls on ONE executor.
  const Tensor input = RandomTensor({16, 16}, 9);
  std::vector<CascadeStep> steps;
  for (int s = 0; s < 4; ++s) steps.push_back({0, StepKind::kPartial});
  for (int s = 0; s < 4; ++s) steps.push_back({1, StepKind::kPartial});
  const ShardPlan plan = ShardPlan::Build(input.extents(), steps, 8);
  ASSERT_GT(plan.merge_levels(), 0u);

  Tensor ref;
  {
    auto r = UnfusedCascade(input, steps);
    ASSERT_TRUE(r.ok());
    ref = *r;
  }

  ThreadPool pool(4);
  ThreadedShardExecutor exec(&pool);
  constexpr int kCallers = 4;
  constexpr int kReps = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        OpCounter ops;
        auto out = exec.Execute(input, plan, &ops, nullptr);
        if (!out.ok() || !BitIdentical(*out, ref) ||
            ops.adds != plan.total_cost()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Cancellation unwinding ---------------------------------------------

TEST(ShardCancelTest, PreCancelledContextUnwindsWithoutResult) {
  const Tensor input = RandomTensor({16, 16, 8}, 5);
  std::vector<CascadeStep> steps;
  for (int s = 0; s < 4; ++s) steps.push_back({0, StepKind::kPartial});
  const ShardPlan plan = ShardPlan::Build(input.extents(), steps, 4);
  ThreadPool pool(2);
  ThreadedShardExecutor exec(&pool);
  const QueryContext ctx = QueryContext::Cancellable();
  ctx.RequestCancel();
  auto out = exec.Execute(input, plan, nullptr, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

TEST(ShardCancelTest, MidFlightCancellationUnwindsEveryLane) {
  // Race a cancel against a running sharded cascade, across enough
  // repetitions to land inside shard execution at various depths. Every
  // outcome must be either a complete bit-exact result or a clean
  // cancellation — never a crash, hang, or partial tensor.
  const Tensor input = RandomTensor({32, 16, 8}, 6);
  std::vector<CascadeStep> steps;
  for (int s = 0; s < 5; ++s) steps.push_back({0, StepKind::kPartial});
  for (int s = 0; s < 2; ++s) steps.push_back({1, StepKind::kResidual});
  const ShardPlan plan = ShardPlan::Build(input.extents(), steps, 8);
  Tensor ref;
  {
    auto r = UnfusedCascade(input, steps);
    ASSERT_TRUE(r.ok());
    ref = *r;
  }
  ThreadPool pool(4);
  ThreadedShardExecutor exec(&pool);
  // A 64-cell budget makes chunks (the poll granularity) plentiful.
  BudgetOverride budget(64);
  for (int rep = 0; rep < 20; ++rep) {
    const QueryContext ctx = QueryContext::Cancellable();
    std::thread canceller([&] { ctx.RequestCancel(); });
    auto out = exec.Execute(input, plan, nullptr, &ctx);
    canceller.join();
    if (out.ok()) {
      EXPECT_TRUE(BitIdentical(*out, ref));
    } else {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
    }
  }
}

TEST(ShardCancelTest, ExpiredDeadlinePropagatesThroughEngine) {
  Rng rng(8);
  auto shape = CubeShape::Make({16, 16, 8, 8});
  ASSERT_TRUE(shape.ok());
  auto cube = UniformIntegerCube(*shape, &rng, -9, 9);
  ASSERT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(CubeOnlySet(*shape));
  ASSERT_TRUE(store.ok());
  ThreadPool pool(4);
  AssemblyEngine engine(&*store, &pool, nullptr, 4);
  const QueryContext ctx =
      QueryContext::WithDeadline(QueryContext::Clock::now() -
                                 std::chrono::milliseconds(1));
  auto out = engine.AssembleView(0b1111, nullptr, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
}

// --- Engine-level routing -----------------------------------------------

class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto shape = CubeShape::Make({16, 16, 8, 8});  // 2^14 cells: shardable
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(21);
    auto cube = UniformIntegerCube(shape_, &rng, -9, 9);
    ASSERT_TRUE(cube.ok());
    auto store = ElementComputer(shape_, &*cube).Materialize(
        CubeOnlySet(shape_));
    ASSERT_TRUE(store.ok());
    store_.emplace(std::move(*store));
  }

  CubeShape shape_;
  std::optional<ElementStore> store_;
};

TEST_F(ShardedEngineTest, AssembleBitExactAndOpsInvariantAcrossShards) {
  // Serial single-shard reference.
  AssemblyEngine reference(&*store_);
  std::vector<ElementId> views;
  std::vector<Tensor> ref_out;
  std::vector<uint64_t> ref_ops;
  for (uint32_t mask = 1; mask < 16; mask += 5) {  // 1, 6, 11 — mixed arity
    auto view = ElementId::AggregatedView(mask, shape_);
    ASSERT_TRUE(view.ok());
    views.push_back(*view);
    OpCounter ops;
    auto out = reference.Assemble(*view, &ops);
    ASSERT_TRUE(out.ok());
    ref_out.push_back(std::move(*out));
    ref_ops.push_back(ops.adds);
  }
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (const uint32_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      AssemblyEngine engine(&*store_, &pool, nullptr, shards);
      EXPECT_EQ(engine.num_shards(), shards);
      for (size_t v = 0; v < views.size(); ++v) {
        OpCounter ops;
        auto out = engine.Assemble(views[v], &ops);
        ASSERT_TRUE(out.ok());
        EXPECT_TRUE(BitIdentical(*out, ref_out[v]))
            << "shards=" << shards << " threads=" << threads << " view=" << v;
        EXPECT_EQ(ops.adds, ref_ops[v]);
      }
    }
  }
}

TEST_F(ShardedEngineTest, BatchOpsInvariantAcrossShardsAndThreads) {
  std::vector<ElementId> targets;
  for (uint32_t mask = 0; mask < 16; ++mask) {
    auto view = ElementId::AggregatedView(mask, shape_);
    ASSERT_TRUE(view.ok());
    targets.push_back(*view);
  }
  AssemblyEngine reference(&*store_);
  OpCounter ref_ops;
  auto ref = reference.AssembleBatch(targets, &ref_ops);
  ASSERT_TRUE(ref.ok());

  for (const uint32_t shards : {1u, 4u}) {
    for (const uint32_t threads : {2u, 4u}) {
      ThreadPool pool(threads);
      AssemblyEngine engine(&*store_, &pool, nullptr, shards);
      OpCounter ops;
      auto out = engine.AssembleBatch(targets, &ops);
      ASSERT_TRUE(out.ok());
      ASSERT_EQ(out->size(), ref->size());
      for (size_t i = 0; i < ref->size(); ++i) {
        EXPECT_TRUE(BitIdentical((*out)[i], (*ref)[i]))
            << "shards=" << shards << " threads=" << threads << " i=" << i;
      }
      // The cost-sorted, shard-decomposed batch must book exactly the
      // serial batch's shared-work total.
      EXPECT_EQ(ops.adds, ref_ops.adds)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_F(ShardedEngineTest, DefaultShardBudgetTracksPoolSize) {
  ThreadPool pool(4);
  AssemblyEngine engine(&*store_, &pool, nullptr, 0);
  EXPECT_EQ(engine.num_shards(), 4u);
  AssemblyEngine serial(&*store_);
  EXPECT_EQ(serial.num_shards(), 1u);
}

}  // namespace
}  // namespace vecube
