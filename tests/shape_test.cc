#include "cube/shape.h"

#include <gtest/gtest.h>

namespace vecube {
namespace {

TEST(ShapeTest, MakeValidatesPowerOfTwo) {
  EXPECT_TRUE(CubeShape::Make({4, 8}).ok());
  EXPECT_FALSE(CubeShape::Make({4, 6}).ok());
  EXPECT_FALSE(CubeShape::Make({0, 4}).ok());
}

TEST(ShapeTest, MakeRejectsEmpty) {
  auto r = CubeShape::Make({});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ShapeTest, MakeRejectsTooManyDims) {
  // Shapes above the 16-dim planner limit are representable (the planning
  // engines reject them at their own boundary); the hard shape cap at 24
  // keeps the view-element count Π(2n-1) within uint64_t.
  EXPECT_FALSE(CubeShape::Make(std::vector<uint32_t>(25, 2)).ok());
  EXPECT_TRUE(CubeShape::Make(std::vector<uint32_t>(24, 2)).ok());
  EXPECT_TRUE(CubeShape::Make(std::vector<uint32_t>(17, 2)).ok());
  EXPECT_TRUE(CubeShape::Make(std::vector<uint32_t>(16, 2)).ok());
}

TEST(ShapeTest, ExtentOneIsAllowed) {
  auto r = CubeShape::Make({1, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->volume(), 4u);
  EXPECT_EQ(r->log_extent(0), 0u);
  EXPECT_EQ(r->log_extent(1), 2u);
}

TEST(ShapeTest, VolumeAndLogExtents) {
  auto r = CubeShape::Make({4, 8, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ndim(), 3u);
  EXPECT_EQ(r->volume(), 64u);
  EXPECT_EQ(r->log_extent(0), 2u);
  EXPECT_EQ(r->log_extent(1), 3u);
  EXPECT_EQ(r->log_extent(2), 1u);
}

TEST(ShapeTest, RowMajorStrides) {
  auto r = CubeShape::Make({4, 8, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stride(2), 1u);
  EXPECT_EQ(r->stride(1), 2u);
  EXPECT_EQ(r->stride(0), 16u);
}

TEST(ShapeTest, FlatIndexCoordsRoundTrip) {
  auto r = CubeShape::Make({4, 2, 8});
  ASSERT_TRUE(r.ok());
  for (uint64_t flat = 0; flat < r->volume(); ++flat) {
    const auto coords = r->Coords(flat);
    EXPECT_EQ(r->FlatIndex(coords), flat);
  }
}

TEST(ShapeTest, MakeSquare) {
  auto r = CubeShape::MakeSquare(4, 16);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ndim(), 4u);
  EXPECT_EQ(r->volume(), 65536u);
}

TEST(ShapeTest, Equality) {
  auto a = CubeShape::Make({4, 4});
  auto b = CubeShape::Make({4, 4});
  auto c = CubeShape::Make({4, 8});
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(ShapeTest, ToString) {
  auto r = CubeShape::Make({4, 16});
  EXPECT_EQ(r->ToString(), "[4, 16]");
}

TEST(ShapeTest, RejectsHugeVolume) {
  // 2^41 cells exceeds the 2^40 allocation guard.
  EXPECT_FALSE(
      CubeShape::Make({1u << 31, 1u << 10}).ok());
}

}  // namespace
}  // namespace vecube
