// High-dimensionality stress tests: a 16-dimensional cube of extent 2 per
// dimension has N_ve = 3^16 ~ 43M — beyond the dense memo tables — so
// these exercise the hash-map planning fallback, plus the combinatorics
// at the dimensional limit.

#include <gtest/gtest.h>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "core/freq_rect.h"
#include "core/graph.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

class HighDimFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto shape = CubeShape::MakeSquare(16, 2);
    ASSERT_TRUE(shape.ok());
    shape_ = *shape;
    Rng rng(77);
    auto cube = UniformIntegerCube(shape_, &rng, -5, 5);
    ASSERT_TRUE(cube.ok());
    cube_ = std::move(cube).value();
  }

  CubeShape shape_;
  Tensor cube_;
};

TEST_F(HighDimFixture, GraphCensus) {
  ViewElementGraph graph(shape_);
  uint64_t expected = 1;
  for (int i = 0; i < 16; ++i) expected *= 3;
  EXPECT_EQ(graph.NumElements(), expected);       // 3^16
  EXPECT_EQ(graph.NumAggregatedViews(), 65536u);  // 2^16
  EXPECT_EQ(graph.NumIntermediate(), 65536u);     // 2^16 (levels 0/1)
}

TEST_F(HighDimFixture, HashFallbackPlansAndAssembles) {
  // With extent 2, every aggregated view is also an element reachable in
  // one P per dimension. Store the cube only; plan and execute a few
  // deep aggregations through the hash-map memo path.
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize(CubeOnlySet(shape_));
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);

  for (uint32_t mask : {0x0001u, 0x00FFu, 0xFFFFu, 0x5555u}) {
    auto view = ElementId::AggregatedView(mask, shape_);
    ASSERT_TRUE(view.ok());
    const uint64_t plan = engine.PlanCost(*view);
    ASSERT_NE(plan, kInfiniteCost);
    OpCounter ops;
    auto out = engine.Assemble(*view, &ops);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(ops.adds, plan);
    // Aggregation from the cube costs Vol(A) - Vol(view).
    EXPECT_EQ(plan, shape_.volume() - view->DataVolume(shape_));
  }
}

TEST_F(HighDimFixture, GrandTotalExact) {
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize(CubeOnlySet(shape_));
  AssemblyEngine engine(&*store);
  auto total = engine.AssembleView(0xFFFF);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ((*total)[0], cube_.Total());
}

TEST_F(HighDimFixture, SiblingBasisReconstructs) {
  // Split along dimension 7; reconstruct the cube from the two halves via
  // the hash-map planner.
  const ElementId root = ElementId::Root(16);
  auto p = root.Child(7, StepKind::kPartial, shape_);
  auto r = root.Child(7, StepKind::kResidual, shape_);
  ElementComputer computer(shape_, &cube_);
  auto store = computer.Materialize({*p, *r});
  ASSERT_TRUE(store.ok());
  AssemblyEngine engine(&*store);
  auto back = engine.Assemble(root);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(cube_, 0.0));
}

TEST_F(HighDimFixture, WaveletBasisNonExpansive) {
  const auto basis = WaveletBasisSet(shape_);
  // Joint split of 16 binary dims: 2^16 - 1 details + 1 total.
  EXPECT_EQ(basis.size(), 65536u);
  EXPECT_EQ(StorageVolume(basis, shape_), shape_.volume());
  // The full O(n^2) disjointness check is infeasible at 65536 elements;
  // Σ volumes == Vol(A) plus spot-checked pairwise disjointness covers it
  // (overlap anywhere would force the volume sum above Vol(A) for a
  // cover, and these are all distinct single-cell leaves + the total).
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto& a = basis[static_cast<size_t>(rng.UniformU64(basis.size()))];
    const auto& b = basis[static_cast<size_t>(rng.UniformU64(basis.size()))];
    if (a == b) continue;
    EXPECT_EQ(OverlapCells(a, b, shape_), 0u);
  }
}

// Regression: the assembly planner runs on fixed 16-slot code buffers. A
// 17-dimensional store used to overflow them silently (stack smash at
// PlanCost/Execute's std::array copy); the engine must reject such shapes
// cleanly instead, mirroring Procedure3Calculator::Make.
TEST(DimensionLimitTest, SeventeenDimStoreRejectedByAssemblyEngine) {
  auto shape = CubeShape::Make(std::vector<uint32_t>(17, 2));
  ASSERT_TRUE(shape.ok());  // representable: the shape cap is 24
  Rng rng(11);
  auto cube = UniformIntegerCube(*shape, &rng, -3, 3);
  ASSERT_TRUE(cube.ok());
  ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(CubeOnlySet(*shape));
  ASSERT_TRUE(store.ok());

  AssemblyEngine engine(&*store);
  const ElementId root = ElementId::Root(17);
  EXPECT_EQ(engine.PlanCost(root), kInfiniteCost);

  auto assembled = engine.Assemble(root);
  ASSERT_FALSE(assembled.ok());
  EXPECT_TRUE(assembled.status().IsInvalidArgument());

  auto batch = engine.AssembleBatch({root});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());

  auto view = engine.AssembleView((1u << 17) - 1);
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsInvalidArgument());
}

TEST(DimensionLimitTest, TwentyFiveDimsRejectedByShape) {
  EXPECT_FALSE(CubeShape::Make(std::vector<uint32_t>(25, 2)).ok());
}

}  // namespace
}  // namespace vecube
