#include "cube/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cube/cube_builder.h"

namespace vecube {
namespace {

TEST(SyntheticTest, UniformIntegerCubeInRange) {
  auto shape = CubeShape::Make({8, 8});
  Rng rng(1);
  auto cube = UniformIntegerCube(*shape, &rng, 5, 9);
  ASSERT_TRUE(cube.ok());
  for (uint64_t i = 0; i < cube->size(); ++i) {
    EXPECT_GE((*cube)[i], 5.0);
    EXPECT_LE((*cube)[i], 9.0);
    EXPECT_EQ((*cube)[i], std::floor((*cube)[i]));  // integer-valued
  }
}

TEST(SyntheticTest, UniformIntegerCubeDeterministic) {
  auto shape = CubeShape::Make({4, 4});
  Rng a(7), b(7);
  auto ca = UniformIntegerCube(*shape, &a);
  auto cb = UniformIntegerCube(*shape, &b);
  EXPECT_TRUE(ca->ApproxEquals(*cb, 0.0));
}

TEST(SyntheticTest, SparseRandomCubeDensity) {
  auto shape = CubeShape::Make({32, 32});
  Rng rng(3);
  auto cube = SparseRandomCube(*shape, &rng, 0.1);
  ASSERT_TRUE(cube.ok());
  uint64_t nonzero = 0;
  for (uint64_t i = 0; i < cube->size(); ++i) {
    if ((*cube)[i] != 0.0) ++nonzero;
  }
  const double density =
      static_cast<double>(nonzero) / static_cast<double>(cube->size());
  EXPECT_NEAR(density, 0.1, 0.03);
}

TEST(SyntheticTest, SparseRandomCubeValidatesFraction) {
  auto shape = CubeShape::Make({4});
  Rng rng(3);
  EXPECT_FALSE(SparseRandomCube(*shape, &rng, 1.5).ok());
  EXPECT_FALSE(SparseRandomCube(*shape, &rng, -0.1).ok());
}

TEST(SyntheticTest, ClusteredCubeHasMass) {
  auto shape = CubeShape::Make({16, 16});
  Rng rng(5);
  auto cube = ClusteredCube(*shape, &rng, 3, 2.0);
  ASSERT_TRUE(cube.ok());
  EXPECT_GT(cube->Total(), 0.0);
}

TEST(SyntheticTest, ClusteredCubeValidatesArgs) {
  auto shape = CubeShape::Make({4});
  Rng rng(5);
  EXPECT_FALSE(ClusteredCube(*shape, &rng, 0, 2.0).ok());
  EXPECT_FALSE(ClusteredCube(*shape, &rng, 1, 0.0).ok());
}

TEST(SyntheticTest, SalesRelationBuildsIntoCube) {
  auto shape = CubeShape::Make({8, 4, 4});
  Rng rng(11);
  auto relation = SyntheticSalesRelation(*shape, &rng, 500, 1.0);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_rows(), 500u);
  auto built = CubeBuilder::Build(*relation, *shape);
  ASSERT_TRUE(built.ok());
  EXPECT_GT(built->cube.Total(), 0.0);
}

TEST(SyntheticTest, SalesRelationKeysInRange) {
  auto shape = CubeShape::Make({4, 4});
  Rng rng(13);
  auto relation = SyntheticSalesRelation(*shape, &rng, 200, 1.5);
  ASSERT_TRUE(relation.ok());
  for (uint64_t row = 0; row < relation->num_rows(); ++row) {
    for (uint32_t m = 0; m < 2; ++m) {
      EXPECT_GE(relation->key(m, row), 0);
      EXPECT_LT(relation->key(m, row), 4);
    }
  }
}

}  // namespace
}  // namespace vecube
