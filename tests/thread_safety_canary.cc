// Thread-safety annotation canary: deliberately ill-locked code.
//
// This file is NOT part of any shipping target. tests/CMakeLists.txt
// registers it, only when VECUBE_THREAD_SAFETY=ON (Clang), as a
// negative-compile ctest: building this object MUST fail under
// -Werror=thread-safety. If it ever compiles, the analysis has been
// silently disabled (wrong flags, annotation macros stubbed out, a
// global escape hatch) and the canary test fails the suite.
//
// Under non-Clang compilers the annotations compile away and this file
// is valid (never-built) C++ — the ctest is simply not registered.

#include "util/sync.h"

namespace vecube {
namespace {

class IllLockedCounter {
 public:
  // Violation 1: writes a guarded field without holding the mutex.
  void BumpWithoutLock() { ++value_; }

  // Violation 2: acquires the mutex and returns with it still held on
  // one path — not released on every path.
  void LeakLockOnEvenValues() {
    mu_.Lock();
    if (value_ % 2 != 0) {
      mu_.Unlock();
    }
  }

  // Violation 3: calls a REQUIRES function without the capability.
  void CallContractWithoutLock() { BumpLocked(); }

 private:
  void BumpLocked() VECUBE_REQUIRES(mu_) { ++value_; }

  Mutex mu_;
  int value_ VECUBE_GUARDED_BY(mu_) = 0;
};

// Anchor so the class is ODR-used and the analysis runs over it.
void TouchCanary() {
  IllLockedCounter counter;
  counter.BumpWithoutLock();
  counter.LeakLockOnEvenValues();
  counter.CallContractWithoutLock();
}

}  // namespace
}  // namespace vecube
