#include "range/slice.h"

#include <gtest/gtest.h>

#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture() {
  auto shape = CubeShape::Make({4, 8});
  EXPECT_TRUE(shape.ok());
  Rng rng(1);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 99);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

TEST(SliceTest, FullRangeCopiesCube) {
  Fixture f = MakeFixture();
  auto range = RangeSpec::Make({0, 0}, {4, 8}, f.shape);
  auto sub = ExtractSubcube(f.cube, f.shape, *range);
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(sub->ApproxEquals(f.cube, 0.0));
}

TEST(SliceTest, SubcubeValuesMatch) {
  Fixture f = MakeFixture();
  auto range = RangeSpec::Make({1, 3}, {2, 4}, f.shape);
  auto sub = ExtractSubcube(f.cube, f.shape, *range);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->extents(), (std::vector<uint32_t>{2, 4}));
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(sub->At({i, j}), f.cube.At({1 + i, 3 + j}));
    }
  }
}

TEST(SliceTest, SingleCell) {
  Fixture f = MakeFixture();
  auto range = RangeSpec::Make({3, 7}, {1, 1}, f.shape);
  auto sub = ExtractSubcube(f.cube, f.shape, *range);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->size(), 1u);
  EXPECT_EQ((*sub)[0], f.cube.At({3, 7}));
}

TEST(SliceTest, SliceFixesOneDim) {
  Fixture f = MakeFixture();
  auto slice = ExtractSlice(f.cube, f.shape, 0, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->extents(), (std::vector<uint32_t>{1, 8}));
  for (uint32_t j = 0; j < 8; ++j) {
    EXPECT_EQ(slice->At({0, j}), f.cube.At({2, j}));
  }
}

TEST(SliceTest, SubcubeSumMatchesRangeVolume) {
  Fixture f = MakeFixture();
  auto range = RangeSpec::Make({0, 2}, {4, 3}, f.shape);
  auto sub = ExtractSubcube(f.cube, f.shape, *range);
  ASSERT_TRUE(sub.ok());
  double expected = 0.0;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 2; j < 5; ++j) expected += f.cube.At({i, j});
  }
  EXPECT_DOUBLE_EQ(sub->Total(), expected);
}

TEST(SliceTest, Validation) {
  Fixture f = MakeFixture();
  RangeSpec bad{{0, 0}, {5, 8}};
  EXPECT_FALSE(ExtractSubcube(f.cube, f.shape, bad).ok());
  EXPECT_FALSE(ExtractSlice(f.cube, f.shape, 2, 0).ok());
  EXPECT_FALSE(ExtractSlice(f.cube, f.shape, 0, 4).ok());
  auto wrong = Tensor::Zeros({2, 2});
  auto range = RangeSpec::Make({0, 0}, {1, 1}, f.shape);
  EXPECT_FALSE(ExtractSubcube(*wrong, f.shape, *range).ok());
}

}  // namespace
}  // namespace vecube
