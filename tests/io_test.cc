#include "core/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/assembly.h"
#include "core/basis.h"
#include "core/computer.h"
#include "cube/synthetic.h"
#include "util/rng.h"

namespace vecube {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ElementStore MakeStore(uint64_t seed) {
  auto shape = CubeShape::Make({8, 4});
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, -50, 50);
  ElementComputer computer(*shape, &*cube);
  auto store = computer.Materialize(WaveletBasisSet(*shape));
  EXPECT_TRUE(store.ok());
  return std::move(store).value();
}

TEST(IoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.vecube");
  const ElementStore store = MakeStore(1);
  ASSERT_TRUE(SaveStore(store, path).ok());

  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shape(), store.shape());
  EXPECT_EQ(loaded->size(), store.size());
  EXPECT_EQ(loaded->StorageCells(), store.StorageCells());
  for (const ElementId& id : store.Ids()) {
    auto original = store.Get(id);
    auto restored = loaded->Get(id);
    ASSERT_TRUE(original.ok() && restored.ok()) << id.ToString();
    EXPECT_TRUE((*restored)->ApproxEquals(**original, 0.0)) << id.ToString();
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadedStoreAssembles) {
  const std::string path = TempPath("assemble.vecube");
  const ElementStore store = MakeStore(2);
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());

  AssemblyEngine original_engine(&store);
  AssemblyEngine loaded_engine(&*loaded);
  auto a = original_engine.Assemble(ElementId::Root(2));
  auto b = loaded_engine.Assemble(ElementId::Root(2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 0.0));
  std::remove(path.c_str());
}

TEST(IoTest, EmptyStoreRoundTrips) {
  const std::string path = TempPath("empty.vecube");
  auto shape = CubeShape::Make({4, 4});
  ElementStore store(*shape);
  ASSERT_TRUE(SaveStore(store, path).ok());
  auto loaded = LoadStore(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->shape(), *shape);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadStore("/nonexistent/path/store.vecube")
                  .status()
                  .IsNotFound());
}

TEST(IoTest, BadMagicRejected) {
  const std::string path = TempPath("badmagic.vecube");
  std::ofstream out(path, std::ios::binary);
  out << "NOTACUBE plus some garbage";
  out.close();
  auto loaded = LoadStore(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(IoTest, TruncatedFileRejected) {
  const std::string path = TempPath("truncated.vecube");
  const ElementStore store = MakeStore(3);
  ASSERT_TRUE(SaveStore(store, path).ok());
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<size_t>(size) / 2);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  auto loaded = LoadStore(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(IoTest, TruncationFuzzNeverCrashesOrMisloads) {
  // Truncating the file at any prefix length must yield a clean error
  // (never a crash, never a silently short store).
  const std::string path = TempPath("fuzz.vecube");
  const ElementStore store = MakeStore(7);
  ASSERT_TRUE(SaveStore(store, path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size);
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  in.close();

  // Sample a spread of truncation points, including all short prefixes.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < 64 && i < size; ++i) cuts.push_back(i);
  for (size_t i = 64; i < size; i += size / 97 + 1) cuts.push_back(i);
  for (size_t cut : cuts) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto loaded = LoadStore(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(IoTest, CorruptedElementHeaderRejected) {
  const std::string path = TempPath("corrupt.vecube");
  const ElementStore store = MakeStore(8);
  ASSERT_TRUE(SaveStore(store, path).ok());
  // Flip a byte inside the first element header (after magic+shape+count).
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8 + 4 + 2 * 4 + 8 + 1);
  char byte = static_cast<char>(0xFF);
  file.write(&byte, 1);
  file.close();
  auto loaded = LoadStore(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(IoTest, TrailingGarbageRejected) {
  const std::string path = TempPath("trailing.vecube");
  const ElementStore store = MakeStore(4);
  ASSERT_TRUE(SaveStore(store, path).ok());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "extra";
  out.close();
  auto loaded = LoadStore(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vecube
