// Tests of the src/verify invariant checker: it must stay silent on every
// legal workload and provably fire on injected corruption.

#include "verify/invariants.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "api/session.h"
#include "core/assembly.h"
#include "core/computer.h"
#include "core/element_id.h"
#include "core/store.h"
#include "cube/shape.h"
#include "cube/synthetic.h"
#include "cube/tensor.h"
#include "util/rng.h"

namespace vecube {
namespace {

struct Fixture {
  CubeShape shape;
  Tensor cube;
};

Fixture MakeFixture(std::vector<uint32_t> extents, uint64_t seed) {
  auto shape = CubeShape::Make(std::move(extents));
  EXPECT_TRUE(shape.ok());
  Rng rng(seed);
  auto cube = UniformIntegerCube(*shape, &rng, 0, 20);
  EXPECT_TRUE(cube.ok());
  return Fixture{*shape, std::move(cube).value()};
}

// ---------------------------------------------------------------------------
// Clean paths: the checker passes on tier-1-style workloads.

TEST(InvariantCheckerTest, PassesOnRootOnlyStore) {
  Fixture f = MakeFixture({4, 4, 4}, 11);
  ElementStore store(f.shape);
  ASSERT_TRUE(store.Put(ElementId::Root(3), f.cube).ok());
  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckAll(store, f.cube).ok());
  EXPECT_EQ(checker.report().violations, 0u);
  EXPECT_GT(checker.report().checks_run, 0u);
}

TEST(InvariantCheckerTest, PassesOnMaterializedPyramid) {
  Fixture f = MakeFixture({8, 4}, 12);
  ElementComputer computer(f.shape, &f.cube);
  std::vector<ElementId> set;
  // Children of the root along dim 0 plus the root: a non-expansive split.
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, f.shape);
  auto r = ElementId::Root(2).Child(0, StepKind::kResidual, f.shape);
  ASSERT_TRUE(p.ok() && r.ok());
  set.push_back(*p);
  set.push_back(*r);
  auto store = computer.Materialize(set);
  ASSERT_TRUE(store.ok());
  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckAll(*store, f.cube).ok());
  EXPECT_EQ(checker.report().violations, 0u);
}

TEST(InvariantCheckerTest, SessionWithVerificationServesWorkload) {
  Fixture f = MakeFixture({8, 8}, 13);
  OlapSession::Options options;
  options.verify_invariants = true;
  auto session = OlapSession::FromCube(f.shape, f.cube, options);
  ASSERT_TRUE(session.ok());
  ASSERT_NE((*session)->invariant_checker(), nullptr);

  auto hot = ElementId::AggregatedView(0b01, f.shape);
  auto pop = FixedPopulation({{*hot, 1.0}}, f.shape);
  ASSERT_TRUE((*session)->DeclareWorkload(*pop).ok());
  ASSERT_TRUE((*session)->Optimize().ok());
  for (uint32_t mask = 0; mask < 4; ++mask) {
    EXPECT_TRUE((*session)->ViewByMask(mask).ok());
  }
  EXPECT_TRUE((*session)->AddFact({1, 2}, 5.0).ok());
  EXPECT_TRUE((*session)->AddFact({7, 0}, -2.5).ok());

  const InvariantReport& report = (*session)->invariant_checker()->report();
  EXPECT_EQ(report.violations, 0u);
  EXPECT_GT(report.checks_run, 4u);
}

TEST(InvariantCheckerTest, SessionWithoutVerificationHasNoChecker) {
  Fixture f = MakeFixture({4, 4}, 14);
  OlapSession::Options options;
  options.verify_invariants = false;
  auto session = OlapSession::FromCube(f.shape, f.cube, options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->invariant_checker(), nullptr);
}

TEST(InvariantCheckerTest, HaarAndSplitChecksPassOnRandomCube) {
  Fixture f = MakeFixture({16, 8}, 15);
  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckHaarRoundTrip(f.cube).ok());
  EXPECT_TRUE(checker.CheckNonExpansiveSplit(f.cube).ok());
  EXPECT_EQ(checker.report().violations, 0u);
}

// ---------------------------------------------------------------------------
// Injected corruption: every class of violation must fire.

TEST(InvariantCheckerTest, FiresOnOutOfRangeOffset) {
  Fixture f = MakeFixture({4, 4}, 21);
  ElementStore store(f.shape);
  // (k=1, o=5) along dim 0: offset 5 is outside [0, 2^1). The data extents
  // only depend on the level, so Put accepts it — exactly the kind of
  // silent rot the bounds check exists for.
  ElementId bad = ElementId::UnsafeFromCodes({{1, 5}, {0, 0}});
  auto data = Tensor::Zeros({2, 4});
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(store.Put(bad, *data).ok());

  InvariantChecker checker(f.shape);
  Status st = checker.CheckElementBounds(store);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(checker.report().violations, 1u);
  ASSERT_FALSE(checker.report().messages.empty());
  EXPECT_NE(checker.report().messages[0].find("offset"), std::string::npos);
}

TEST(InvariantCheckerTest, FiresOnCorruptedRootData) {
  Fixture f = MakeFixture({4, 4}, 22);
  ElementStore store(f.shape);
  ASSERT_TRUE(store.Put(ElementId::Root(2), f.cube).ok());
  auto cell = store.GetMutable(ElementId::Root(2));
  ASSERT_TRUE(cell.ok());
  (**cell)[3] += 1.0;  // silent bit-rot in the materialized root

  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckStoreConsistency(store, f.cube).IsInternal());
  EXPECT_GE(checker.report().violations, 1u);
}

TEST(InvariantCheckerTest, FiresOnCorruptedChildViaReconstruction) {
  Fixture f = MakeFixture({8, 4}, 23);
  ElementComputer computer(f.shape, &f.cube);
  auto p = ElementId::Root(2).Child(0, StepKind::kPartial, f.shape);
  auto r = ElementId::Root(2).Child(0, StepKind::kResidual, f.shape);
  ASSERT_TRUE(p.ok() && r.ok());
  auto store = computer.Materialize({*p, *r});
  ASSERT_TRUE(store.ok());
  auto cell = store->GetMutable(*p);
  ASSERT_TRUE(cell.ok());
  (**cell)[0] += 0.5;  // corrupt the partial child

  InvariantChecker checker(f.shape);
  // The (k,o) geometry is still fine; reconstruction is what breaks.
  EXPECT_TRUE(checker.CheckElementBounds(*store).ok());
  EXPECT_TRUE(checker.CheckPerfectReconstruction(*store, f.cube).IsInternal());
  EXPECT_GE(checker.report().violations, 1u);
}

TEST(InvariantCheckerTest, FiresOnMismatchedPlanCost) {
  Fixture f = MakeFixture({4, 4}, 24);
  ElementStore store(f.shape);
  ASSERT_TRUE(store.Put(ElementId::Root(2), f.cube).ok());
  AssemblyEngine engine(&store);
  auto view = ElementId::AggregatedView(0b11, f.shape);
  ASSERT_TRUE(view.ok());
  const uint64_t plan = engine.PlanCost(*view);
  ASSERT_NE(plan, kInfiniteCost);

  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckOpCount(plan, plan).ok());
  Status st = checker.CheckOpCount(plan, plan + 1);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(checker.report().violations, 1u);
  EXPECT_NE(st.message().find("Procedure-3"), std::string::npos);
}

TEST(InvariantCheckerTest, FiresOnHaarViolationInSyntheticTensor) {
  // A tensor is just numbers — the Haar identity can't fail on real data.
  // Drive the check with a NaN cell, which breaks every comparison and
  // must be reported rather than silently accepted.
  auto shape = CubeShape::Make({4});
  ASSERT_TRUE(shape.ok());
  auto t = Tensor::FromData({4}, {1.0, 2.0, std::nan(""), 4.0});
  ASSERT_TRUE(t.ok());
  InvariantChecker checker(*shape);
  EXPECT_TRUE(checker.CheckHaarRoundTrip(*t).IsInternal());
}

TEST(InvariantCheckerTest, ReportAccumulatesAndResets) {
  Fixture f = MakeFixture({4, 4}, 25);
  InvariantChecker checker(f.shape);
  EXPECT_TRUE(checker.CheckOpCount(1, 2).IsInternal());
  EXPECT_TRUE(checker.CheckOpCount(3, 4).IsInternal());
  EXPECT_EQ(checker.report().violations, 2u);
  EXPECT_EQ(checker.report().messages.size(), 2u);
  checker.ResetReport();
  EXPECT_EQ(checker.report().violations, 0u);
  EXPECT_TRUE(checker.report().messages.empty());
}

}  // namespace
}  // namespace vecube
