// InvariantChecker: runtime verification of the paper's algebraic
// guarantees.
//
// Every materialization path in vecube must preserve a small set of
// invariants that the paper proves analytically:
//
//   * (k,o) well-formedness — every resident element's per-dimension
//     (level, offset) codes obey 0 <= level <= K_m and 0 <= offset < 2^k,
//     and its data extents are n_m >> k (Definitions 2-4, the Eq. 23
//     frequency-plane map);
//   * perfect reconstruction — the Haar analysis/synthesis pair is an
//     exact round trip (Eqs. 1-4), so the store can rebuild the base cube
//     A bit-for-bit (up to float tolerance);
//   * non-expansiveness — Vol(P1(A)) + Vol(R1(A)) = Vol(A) along every
//     dimension (Property 3);
//   * cost-model fidelity — the op count measured while executing an
//     assembly equals the Procedure-3 analytic plan cost;
//   * store consistency — after incremental maintenance
//     (ApplyPointDelta), every stored element still equals the analysis
//     cascade of the current cube.
//
// The checker is deliberately sampling-based and budgeted so it can run
// after *every* engine operation in a VECUBE_VERIFY build without turning
// the test suite quadratic: row and element samples are drawn from a
// deterministic Rng re-seeded per call, and each call stops once
// `max_checked_cells` of input volume have been examined.
//
// All checks return Status: OK when the invariant holds (or the check was
// skipped for budget reasons), Internal with a diagnostic message when it
// is violated. Violations are also accumulated in report() so callers can
// distinguish "never ran" from "ran clean".

#ifndef VECUBE_VERIFY_INVARIANTS_H_
#define VECUBE_VERIFY_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/store.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

/// Sampling budgets and tolerances for the checker. Defaults keep a
/// per-operation check roughly O(Vol(A)) worst case.
struct InvariantOptions {
  /// Lines sampled per dimension by the Haar round-trip check.
  uint32_t max_sampled_rows = 4;
  /// Stored elements recomputed per store-consistency check.
  uint32_t max_checked_elements = 4;
  /// Input-volume budget (cells) per check call; sampling stops once
  /// exceeded. At least one sample always runs.
  uint64_t max_checked_cells = uint64_t{1} << 16;
  /// Absolute tolerance for float comparisons. The unnormalized Haar pair
  /// over test-scale data is exact in IEEE double, but synthesized halves
  /// ((P±R)/2) can round once per cascade stage on adversarial values.
  double tolerance = 1e-6;
  /// Seed for the deterministic sampling streams.
  uint64_t seed = 0x7ecb5eedULL;
};

/// Violation accounting across a checker's lifetime.
struct InvariantReport {
  uint64_t checks_run = 0;
  uint64_t violations = 0;
  /// First few violation diagnostics (capped at 16).
  std::vector<std::string> messages;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(CubeShape shape, InvariantOptions options = {});

  /// (k,o) bounds and extent agreement for every resident element.
  Status CheckElementBounds(const ElementStore& store);

  /// Analysis/synthesis round trip on sampled lines of `tensor` along
  /// every dimension with even extent (Eqs. 1-4).
  Status CheckHaarRoundTrip(const Tensor& tensor);

  /// Non-expansiveness of the P1/R1 split along every splittable
  /// dimension: volumes partition exactly and the children synthesize the
  /// parent back (Property 3 + Eqs. 3-4).
  Status CheckNonExpansiveSplit(const Tensor& tensor);

  /// Procedure-3 cost-model fidelity: measured ops equal the plan cost.
  Status CheckOpCount(uint64_t plan_cost, uint64_t measured_ops);

  /// Sampled stored elements equal the analysis cascade of `cube`.
  Status CheckStoreConsistency(const ElementStore& store, const Tensor& cube);

  /// Store bookkeeping: StorageCells() equals the summed volume of the
  /// resident elements, and no id is simultaneously resident and
  /// quarantined. Exact (not sampled) — it is O(#elements), touching no
  /// cell data — and guards the accounting under Put/Erase/Quarantine
  /// churn during degraded operation and repair.
  Status CheckStoreAccounting(const ElementStore& store);

  /// The store reconstructs the base cube A exactly, and the measured
  /// reconstruction ops equal the analytic plan cost. Skipped (OK) when
  /// the store cannot reach the root at all — completeness is the
  /// planner's contract, not every store's.
  Status CheckPerfectReconstruction(const ElementStore& store,
                                    const Tensor& cube);

  /// Runs every store-level check above (bounds, round trip, split,
  /// consistency, reconstruction) and returns the first violation.
  Status CheckAll(const ElementStore& store, const Tensor& cube);

  [[nodiscard]] const InvariantReport& report() const { return report_; }
  void ResetReport() { report_ = {}; }
  [[nodiscard]] const CubeShape& shape() const { return shape_; }

 private:
  /// Records a violation and returns it as Status::Internal.
  Status Violation(std::string message);
  /// Bumps checks_run; returns the argument unchanged.
  Status Finish(Status status);

  CubeShape shape_;
  InvariantOptions options_;
  InvariantReport report_;
};

}  // namespace vecube

#endif  // VECUBE_VERIFY_INVARIANTS_H_
