#include "verify/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "core/assembly.h"
#include "core/computer.h"
#include "core/element_id.h"
#include "haar/transform.h"
#include "util/rng.h"

namespace vecube {
namespace {

constexpr size_t kMaxReportMessages = 16;

/// Mixed absolute/relative comparison: exact algebra up to one rounding
/// per cascade stage, scaled for large aggregates.
bool CellsClose(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace

InvariantChecker::InvariantChecker(CubeShape shape, InvariantOptions options)
    : shape_(std::move(shape)), options_(options) {}

Status InvariantChecker::Violation(std::string message) {
  ++report_.violations;
  if (report_.messages.size() < kMaxReportMessages) {
    report_.messages.push_back(message);
  }
  return Status::Internal(std::move(message));
}

Status InvariantChecker::Finish(Status status) {
  ++report_.checks_run;
  return status;
}

Status InvariantChecker::CheckElementBounds(const ElementStore& store) {
  if (store.shape() != shape_) {
    return Finish(Violation("store shape " + store.shape().ToString() +
                            " does not match checker shape " +
                            shape_.ToString()));
  }
  for (const ElementId& id : store.Ids()) {
    if (id.ndim() != shape_.ndim()) {
      return Finish(Violation("element " + id.ToString() + " has arity " +
                              std::to_string(id.ndim()) + ", shape has " +
                              std::to_string(shape_.ndim())));
    }
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      const DimCode& code = id.dim(m);
      if (code.level > shape_.log_extent(m)) {
        return Finish(Violation(
            "element " + id.ToString() + " level " +
            std::to_string(code.level) + " exceeds K_" + std::to_string(m) +
            " = " + std::to_string(shape_.log_extent(m))));
      }
      if (code.offset >= (uint32_t{1} << code.level)) {
        return Finish(Violation(
            "element " + id.ToString() + " offset " +
            std::to_string(code.offset) + " outside [0, 2^" +
            std::to_string(code.level) + ") along dim " + std::to_string(m)));
      }
    }
    Result<const Tensor*> data = store.Get(id);
    if (!data.ok()) {
      return Finish(Violation("element " + id.ToString() +
                              " listed but not readable: " +
                              data.status().ToString()));
    }
    if ((*data)->extents() != id.DataExtents(shape_)) {
      return Finish(Violation("element " + id.ToString() + " data extents " +
                              (*data)->ShapeString() +
                              " disagree with (k,o) geometry"));
    }
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckHaarRoundTrip(const Tensor& tensor) {
  Rng rng(options_.seed ^ 0x1);
  uint64_t examined = 0;
  for (uint32_t dim = 0; dim < tensor.ndim(); ++dim) {
    const uint32_t extent = tensor.extent(dim);
    if (extent < 2 || extent % 2 != 0) continue;
    const uint64_t stride = tensor.stride(dim);
    const uint64_t lines = tensor.size() / extent;
    const uint64_t samples =
        std::min<uint64_t>(options_.max_sampled_rows, lines);
    for (uint64_t s = 0; s < samples; ++s) {
      // Derive the start of the line containing a uniformly sampled cell.
      const uint64_t cell = rng.UniformU64(tensor.size());
      const uint64_t coord = (cell / stride) % extent;
      const uint64_t start = cell - coord * stride;
      for (uint32_t i = 0; i < extent / 2; ++i) {
        const double even = tensor[start + uint64_t{2} * i * stride];
        const double odd = tensor[start + (uint64_t{2} * i + 1) * stride];
        const double p = even + odd;   // Eq. 1
        const double r = even - odd;   // Eq. 2
        const double even_back = (p + r) / 2.0;  // Eq. 3
        const double odd_back = (p - r) / 2.0;   // Eq. 4
        if (!CellsClose(even_back, even, options_.tolerance) ||
            !CellsClose(odd_back, odd, options_.tolerance)) {
          return Finish(Violation(
              "Haar round trip failed along dim " + std::to_string(dim) +
              " at pair " + std::to_string(i) + ": (" +
              std::to_string(even) + ", " + std::to_string(odd) +
              ") -> (" + std::to_string(even_back) + ", " +
              std::to_string(odd_back) + ")"));
        }
      }
      examined += extent;
      if (examined > options_.max_checked_cells) return Finish(Status::OK());
    }
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckNonExpansiveSplit(const Tensor& tensor) {
  uint64_t examined = 0;
  for (uint32_t dim = 0; dim < tensor.ndim(); ++dim) {
    const uint32_t extent = tensor.extent(dim);
    if (extent < 2 || extent % 2 != 0) continue;
    Tensor partial, residual;
    Status split = PartialPair(tensor, dim, &partial, &residual);
    if (!split.ok()) {
      return Finish(Violation("P1/R1 split failed along dim " +
                              std::to_string(dim) + ": " + split.ToString()));
    }
    if (partial.size() + residual.size() != tensor.size()) {
      return Finish(Violation(
          "non-expansiveness violated along dim " + std::to_string(dim) +
          ": Vol(P)=" + std::to_string(partial.size()) + " + Vol(R)=" +
          std::to_string(residual.size()) + " != Vol(A)=" +
          std::to_string(tensor.size())));
    }
    Result<Tensor> back = SynthesizePair(partial, residual, dim);
    if (!back.ok()) {
      return Finish(Violation("synthesis failed along dim " +
                              std::to_string(dim) + ": " +
                              back.status().ToString()));
    }
    if (!back->ApproxEquals(tensor, options_.tolerance)) {
      return Finish(Violation(
          "perfect reconstruction violated along dim " + std::to_string(dim) +
          ": synthesized parent differs from original"));
    }
    examined += tensor.size();
    if (examined > options_.max_checked_cells) break;
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckOpCount(uint64_t plan_cost,
                                      uint64_t measured_ops) {
  if (plan_cost != measured_ops) {
    return Finish(Violation("measured assembly ops " +
                            std::to_string(measured_ops) +
                            " differ from Procedure-3 plan cost " +
                            std::to_string(plan_cost)));
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckStoreConsistency(const ElementStore& store,
                                               const Tensor& cube) {
  if (cube.extents() != shape_.extents()) {
    return Finish(Violation("cube extents " + cube.ShapeString() +
                            " do not match checker shape " +
                            shape_.ToString()));
  }
  std::vector<ElementId> ids = store.Ids();
  if (ids.empty()) return Finish(Status::OK());

  // Deterministic sample of at most max_checked_elements ids, charging
  // one cube volume of budget per recomputed element.
  Rng rng(options_.seed ^ 0x2);
  std::vector<ElementId> sample;
  if (ids.size() <= options_.max_checked_elements) {
    sample = std::move(ids);
  } else {
    std::vector<uint8_t> taken(ids.size(), 0);
    while (sample.size() < options_.max_checked_elements) {
      uint64_t pick = rng.UniformU64(ids.size());
      while (taken[pick]) pick = (pick + 1) % ids.size();
      taken[pick] = 1;
      sample.push_back(ids[pick]);
    }
  }

  ElementComputer computer(shape_, &cube);
  uint64_t examined = 0;
  for (const ElementId& id : sample) {
    Result<Tensor> expected = computer.Compute(id);
    if (!expected.ok()) {
      return Finish(Violation("cannot recompute element " + id.ToString() +
                              ": " + expected.status().ToString()));
    }
    Result<const Tensor*> stored = store.Get(id);
    if (!stored.ok()) {
      return Finish(Violation("element " + id.ToString() +
                              " vanished during consistency check"));
    }
    if (!(*stored)->ApproxEquals(*expected, options_.tolerance)) {
      return Finish(Violation(
          "store inconsistent with base cube: element " + id.ToString() +
          " differs from its analysis cascade"));
    }
    examined += shape_.volume();
    if (examined > options_.max_checked_cells) break;
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckStoreAccounting(const ElementStore& store) {
  uint64_t cells = 0;
  for (const ElementId& id : store.Ids()) {
    Result<const Tensor*> data = store.Get(id);
    if (!data.ok()) {
      return Finish(Violation("element " + id.ToString() +
                              " listed but not readable: " +
                              data.status().ToString()));
    }
    cells += (*data)->size();
    if (store.IsQuarantined(id)) {
      return Finish(Violation("element " + id.ToString() +
                              " is both resident and quarantined"));
    }
  }
  if (cells != store.StorageCells()) {
    return Finish(Violation(
        "StorageCells() = " + std::to_string(store.StorageCells()) +
        " but resident elements sum to " + std::to_string(cells)));
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckPerfectReconstruction(const ElementStore& store,
                                                    const Tensor& cube) {
  if (cube.extents() != shape_.extents()) {
    return Finish(Violation("cube extents " + cube.ShapeString() +
                            " do not match checker shape " +
                            shape_.ToString()));
  }
  AssemblyEngine engine(&store);
  const ElementId root = ElementId::Root(shape_.ndim());
  const uint64_t plan_cost = engine.PlanCost(root);
  // A store with no path to the root (e.g. beyond the engine's planning
  // arity, or deliberately partial) is not an invariant violation;
  // completeness is checked where a plan claims to exist.
  if (plan_cost == kInfiniteCost) return Finish(Status::OK());

  OpCounter ops;
  Result<Tensor> rebuilt = engine.Assemble(root, &ops);
  if (!rebuilt.ok()) {
    return Finish(Violation(
        "root plan cost is finite but assembly failed: " +
        rebuilt.status().ToString()));
  }
  if (ops.adds != plan_cost) {
    return Finish(Violation("root reconstruction ops " +
                            std::to_string(ops.adds) +
                            " differ from Procedure-3 plan cost " +
                            std::to_string(plan_cost)));
  }
  if (!rebuilt->ApproxEquals(cube, options_.tolerance)) {
    return Finish(Violation(
        "perfect reconstruction violated: assembled base cube differs "
        "from A"));
  }
  return Finish(Status::OK());
}

Status InvariantChecker::CheckAll(const ElementStore& store,
                                  const Tensor& cube) {
  Status first = Status::OK();
  auto absorb = [&first](Status status) {
    if (first.ok() && !status.ok()) first = std::move(status);
  };
  absorb(CheckElementBounds(store));
  absorb(CheckStoreAccounting(store));
  absorb(CheckHaarRoundTrip(cube));
  absorb(CheckNonExpansiveSplit(cube));
  absorb(CheckStoreConsistency(store, cube));
  absorb(CheckPerfectReconstruction(store, cube));
  return first;
}

}  // namespace vecube
