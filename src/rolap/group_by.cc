#include "rolap/group_by.h"

#include <unordered_map>
#include <vector>

namespace vecube {

Result<Tensor> GroupBySum(const Relation& relation, const CubeShape& shape,
                          uint32_t aggregated_mask, uint32_t measure_column,
                          GroupByStats* stats) {
  if (relation.num_functional() != shape.ndim()) {
    return Status::InvalidArgument("relation arity does not match cube");
  }
  if (measure_column >= relation.num_measures()) {
    return Status::InvalidArgument("measure column out of range");
  }
  if (shape.ndim() < 32 && (aggregated_mask >> shape.ndim()) != 0) {
    return Status::InvalidArgument("aggregation mask has extra bits");
  }

  // Result layout matches the cube view: aggregated dims have extent 1.
  std::vector<uint32_t> extents(shape.extents());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if ((aggregated_mask >> m) & 1u) extents[m] = 1;
  }
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(std::move(extents)));

  // Hash aggregation keyed by the flat group coordinates. (A dense array
  // would do here since groups are bounded by the view volume; the hash
  // table is the honest ROLAP implementation, where the executor does not
  // know the group domain in advance.)
  std::unordered_map<uint64_t, double> groups;
  std::vector<uint32_t> coords(shape.ndim());
  for (uint64_t row = 0; row < relation.num_rows(); ++row) {
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      const int64_t key = relation.key(m, row);
      if (key < 0 || static_cast<uint64_t>(key) >= shape.extent(m)) {
        return Status::OutOfRange("row " + std::to_string(row) +
                                  ": key outside dimension extent");
      }
      coords[m] = ((aggregated_mask >> m) & 1u)
                      ? 0u
                      : static_cast<uint32_t>(key);
    }
    groups[out.FlatIndex(coords)] += relation.measure(measure_column, row);
    if (stats != nullptr) ++stats->rows_scanned;
  }
  for (const auto& [flat, sum] : groups) {
    out[flat] = sum;
  }
  if (stats != nullptr) stats->groups += groups.size();
  return out;
}

Result<double> ScanRangeSum(const Relation& relation, const CubeShape& shape,
                            const std::vector<uint32_t>& start,
                            const std::vector<uint32_t>& width,
                            uint32_t measure_column, GroupByStats* stats) {
  if (relation.num_functional() != shape.ndim() ||
      start.size() != shape.ndim() || width.size() != shape.ndim()) {
    return Status::InvalidArgument("arity mismatch");
  }
  if (measure_column >= relation.num_measures()) {
    return Status::InvalidArgument("measure column out of range");
  }
  double total = 0.0;
  for (uint64_t row = 0; row < relation.num_rows(); ++row) {
    bool inside = true;
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      const int64_t key = relation.key(m, row);
      if (key < static_cast<int64_t>(start[m]) ||
          key >= static_cast<int64_t>(start[m] + width[m])) {
        inside = false;
        break;
      }
    }
    if (inside) total += relation.measure(measure_column, row);
    if (stats != nullptr) ++stats->rows_scanned;
  }
  return total;
}

}  // namespace vecube
