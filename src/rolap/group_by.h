// ROLAP baseline: answering aggregated views directly from the relation.
//
// The paper's introduction contrasts MOLAP (explicit multi-dimensional
// arrays, which the view element method builds on) with ROLAP (standard
// relational processing, where each view is a GROUP BY over the fact
// table). This module implements the ROLAP side — a straightforward
// hash-aggregation GROUP BY executor — so benchmarks can show what the
// cube machinery is being compared against: every view costs a full
// relation scan, regardless of how small the answer is, and nothing is
// reused between views.

#ifndef VECUBE_ROLAP_GROUP_BY_H_
#define VECUBE_ROLAP_GROUP_BY_H_

#include <cstdint>

#include "cube/relation.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

/// Per-query accounting for the ROLAP path.
struct GroupByStats {
  uint64_t rows_scanned = 0;
  uint64_t groups = 0;
};

/// SELECT SUM(measure) ... GROUP BY the dimensions NOT in
/// `aggregated_mask` (bit m set = dimension m aggregated away), answered
/// by one scan + hash aggregation. The result tensor matches the layout
/// of the corresponding cube view (aggregated dimensions have extent 1),
/// so it is directly comparable to AssemblyEngine::AssembleView.
/// Keys must be direct indices in [0, extent) (KeyMapping::kDirect).
Result<Tensor> GroupBySum(const Relation& relation, const CubeShape& shape,
                          uint32_t aggregated_mask,
                          uint32_t measure_column = 0,
                          GroupByStats* stats = nullptr);

/// The range-aggregation of Eq. 36 on the ROLAP side: one scan with a
/// predicate per dimension.
Result<double> ScanRangeSum(const Relation& relation, const CubeShape& shape,
                            const std::vector<uint32_t>& start,
                            const std::vector<uint32_t>& width,
                            uint32_t measure_column = 0,
                            GroupByStats* stats = nullptr);

}  // namespace vecube

#endif  // VECUBE_ROLAP_GROUP_BY_H_
