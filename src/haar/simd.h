// Runtime-dispatched vector kernels for the Haar hot loops.
//
// The P1/R1 analysis pair and its synthesis inverse reduce to four inner
// loop shapes:
//
//   * contiguous rows (inner > 1): dst[j] = a[j] +/- b[j] over a row of
//     `inner` cells — trivially vector-parallel;
//   * innermost-dimension pairs (inner == 1): sum[i] = in[2i] + in[2i+1],
//     the even/odd deinterleave that blocks autovectorization of the
//     generic loop; and their synthesis transposes.
//
// This header is the *only* seam between the portable kernels and any
// CPU-specific code. The dispatch table is selected exactly once, at first
// use: AVX2 when the binary carries the AVX2 translation unit, the CPU
// reports the feature, and the VECUBE_DISABLE_AVX2 environment hook is not
// set; the portable scalar table otherwise. Every vector implementation is
// bit-identical to its scalar counterpart (each output cell is the same
// single add/subtract/halving expression — only the schedule changes), so
// dispatch never affects results, operation counts, or determinism.
//
// Intrinsics policy (enforced by tools/vecube_lint.py, rule
// simd-dispatch): CPU intrinsics may appear only in src/haar/simd_avx2.cc,
// the translation unit this table dispatches into.

#ifndef VECUBE_HAAR_SIMD_H_
#define VECUBE_HAAR_SIMD_H_

#include <cstdint>

namespace vecube {

/// Function table for the vectorizable Haar inner loops. All row forms
/// require dst ranges disjoint from sources; pair forms read 2n input
/// cells and write n outputs per stream.
struct HaarVecOps {
  /// dst[j] = a[j] + b[j], j in [0, n).
  void (*add_rows)(const double* a, const double* b, double* dst,
                   uint64_t n);
  /// dst[j] = a[j] - b[j].
  void (*sub_rows)(const double* a, const double* b, double* dst,
                   uint64_t n);
  /// sum[j] = a[j] + b[j] and diff[j] = a[j] - b[j] in one pass.
  void (*addsub_rows)(const double* a, const double* b, double* sum,
                      double* diff, uint64_t n);
  /// even[j] = 0.5 * (p[j] + r[j]), odd[j] = 0.5 * (p[j] - r[j]).
  void (*synth_rows)(const double* p, const double* r, double* even,
                     double* odd, uint64_t n);
  /// sum[i] = in[2i] + in[2i+1], i in [0, n).
  void (*pair_sum)(const double* in, double* sum, uint64_t n);
  /// diff[i] = in[2i] - in[2i+1].
  void (*pair_diff)(const double* in, double* diff, uint64_t n);
  /// Both of the above in one pass over the input.
  void (*pair_both)(const double* in, double* sum, double* diff,
                    uint64_t n);
  /// out[2i] = 0.5 * (p[i] + r[i]), out[2i+1] = 0.5 * (p[i] - r[i]).
  void (*pair_synth)(const double* p, const double* r, double* out,
                     uint64_t n);
  /// "scalar" or "avx2" — for logs, benches, and tests.
  const char* name;
};

/// The table selected at startup (first call); stable afterwards.
const HaarVecOps& VecOps();

/// True when VecOps() dispatches to the AVX2 implementations.
bool VecOpsAreAvx2();

namespace internal {

/// The portable table (always available).
const HaarVecOps& ScalarVecOps();

/// The AVX2 table, or null when the binary was built without AVX2 support
/// or the CPU lacks the feature. Ignores the environment hook.
const HaarVecOps* Avx2VecOpsOrNull();

/// VECUBE_DISABLE_AVX2 semantics: disabled iff set, non-empty, and not
/// literally "0".
bool ParseDisableAvx2(const char* value);

/// Test-only: force the dispatch table (`nullptr` restores the startup
/// policy). Not thread-safe against concurrent kernel execution.
void OverrideVecOpsForTesting(const HaarVecOps* ops);

}  // namespace internal

}  // namespace vecube

#endif  // VECUBE_HAAR_SIMD_H_
