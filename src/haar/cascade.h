// Cascades of the first partial aggregation pair (Sections 3.1-3.2).
//
// Distributivity (Property 2) lets the k-th partial aggregation be computed
// by applying P1 recursively (the "telescopic" Eq. 8); separability
// (Property 4) lets cascades along different dimensions commute (Eq. 14).
// Total aggregation S^m is the log2(n_m)-fold cascade of P1^m (Eq. 15),
// and the grand total S(A) cascades over every dimension (Eq. 16).
//
// All entry points execute through the fused kernel layer (haar/fused.h):
// runs of consecutive steps are collapsed into single slab passes through
// scratch tiles instead of materializing one tensor per level. Results and
// OpCounter totals are bit-identical to the step-at-a-time path; `pool`
// and `arena` are optional accelerators and never change outputs.

#ifndef VECUBE_HAAR_CASCADE_H_
#define VECUBE_HAAR_CASCADE_H_

#include <cstdint>
#include <vector>

#include "cube/tensor.h"
#include "haar/scratch.h"
#include "haar/transform.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// One analysis step of a cascade: which operator along which dimension.
enum class StepKind : uint8_t {
  kPartial,   ///< P1^dim
  kResidual,  ///< R1^dim
};

struct CascadeStep {
  uint32_t dim;
  StepKind kind;

  bool operator==(const CascadeStep&) const = default;
};

/// Applies a sequence of P1/R1 steps left to right. Any step order whose
/// per-dimension subsequences match produces identical output
/// (separability); the per-dimension order itself is significant.
Result<Tensor> ApplyCascade(const Tensor& input,
                            const std::vector<CascadeStep>& steps,
                            OpCounter* ops = nullptr,
                            ThreadPool* pool = nullptr,
                            ScratchArena* arena = nullptr);

/// k-th partial aggregation Pk^dim (Eq. 5 via the recursion of Eq. 7).
/// Requires extent(dim) divisible by 2^k.
Result<Tensor> PartialSumK(const Tensor& input, uint32_t dim, uint32_t k,
                           OpCounter* ops = nullptr,
                           ThreadPool* pool = nullptr,
                           ScratchArena* arena = nullptr);

/// Total aggregation S^dim (Eq. 15): cascades P1^dim until the extent
/// along `dim` is 1. The dimension is kept with extent 1 (not dropped), so
/// coordinates of other dimensions are stable.
Result<Tensor> TotalAggregate(const Tensor& input, uint32_t dim,
                              OpCounter* ops = nullptr,
                              ThreadPool* pool = nullptr,
                              ScratchArena* arena = nullptr);

/// Totally aggregates along every dimension in `dims` (Eq. 16). Duplicate
/// dimensions are an error.
Result<Tensor> AggregateDims(const Tensor& input,
                             const std::vector<uint32_t>& dims,
                             OpCounter* ops = nullptr,
                             ThreadPool* pool = nullptr,
                             ScratchArena* arena = nullptr);

/// The grand total S(A): totally aggregates every dimension and returns
/// the single remaining cell.
Result<double> GrandTotal(const Tensor& input, OpCounter* ops = nullptr,
                          ThreadPool* pool = nullptr,
                          ScratchArena* arena = nullptr);

}  // namespace vecube

#endif  // VECUBE_HAAR_CASCADE_H_
