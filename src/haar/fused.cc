#include "haar/fused.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "haar/simd.h"
#include "util/logging.h"

namespace vecube {

namespace internal {
namespace {
std::atomic<uint64_t> g_fused_budget_cells{kDefaultFusedBudgetCells};
}  // namespace

uint64_t FusedBudgetCells() {
  // order: relaxed — a standalone tuning knob; no data is published
  // through it, and any torn-epoch read would still be a valid budget.
  return g_fused_budget_cells.load(std::memory_order_relaxed);
}

void SetFusedBudgetForTesting(uint64_t cells) {
  // order: relaxed — test-only knob, set before kernels run; readers
  // only need atomicity, not ordering.
  g_fused_budget_cells.store(cells == 0 ? kDefaultFusedBudgetCells : cells,
                             std::memory_order_relaxed);
}

}  // namespace internal

namespace {

// One P1/R1 pass inside a fused group, described over the group's
// dimension window [lo..hi] (the "mid" shape): the step dimension has
// extent `n`, `group_outer` mid cells precede it and `deeper` follow it,
// so the pass pairs rows of `deeper` mid cells.
struct Pass {
  uint64_t group_outer = 1;
  uint64_t n = 2;
  uint64_t deeper = 1;
  StepKind kind = StepKind::kPartial;
};

// A maximal run of consecutive steps executed as one slab pass (count >= 2)
// or routed to the plain kernels (count == 1).
struct Group {
  size_t first = 0;
  size_t count = 0;
  uint32_t lo = 0;  // dimension window, inclusive
  uint32_t hi = 0;
  uint64_t entry_volume = 1;          // product of entry extents over [lo..hi]
  std::vector<uint32_t> exit_extents;  // full extents after the group
  std::vector<Pass> passes;            // one per step, in order
};

// Greedy left-to-right grouping: extend the current group while the merged
// dimension window's entry volume keeps the first intermediate (volume/2
// mid cells per inner column) within the scratch budget. Depends only on
// the input shape, the step list, and the budget — never on data or thread
// count — so planning is deterministic.
std::vector<Group> PlanGroups(std::vector<uint32_t> extents,
                              const std::vector<CascadeStep>& steps,
                              uint64_t budget) {
  std::vector<Group> groups;
  size_t i = 0;
  while (i < steps.size()) {
    Group g;
    g.first = i;
    g.count = 1;
    g.lo = g.hi = steps[i].dim;
    const std::vector<uint32_t> entry = extents;
    extents[steps[i].dim] /= 2;
    size_t j = i + 1;
    while (j < steps.size()) {
      const uint32_t q = steps[j].dim;
      const uint32_t lo = std::min(g.lo, q);
      const uint32_t hi = std::max(g.hi, q);
      uint64_t volume = 1;
      for (uint32_t m = lo; m <= hi; ++m) volume *= entry[m];
      if (volume / 2 > budget) break;
      g.lo = lo;
      g.hi = hi;
      extents[q] /= 2;
      ++g.count;
      ++j;
    }
    for (uint32_t m = g.lo; m <= g.hi; ++m) g.entry_volume *= entry[m];
    std::vector<uint32_t> mid(entry.begin() + g.lo,
                              entry.begin() + g.hi + 1);
    for (size_t s = g.first; s < g.first + g.count; ++s) {
      const uint32_t q = steps[s].dim - g.lo;
      Pass p;
      p.kind = steps[s].kind;
      p.n = mid[q];
      for (uint32_t m = 0; m < q; ++m) p.group_outer *= mid[m];
      for (size_t m = q + 1; m < mid.size(); ++m) p.deeper *= mid[m];
      g.passes.push_back(p);
      mid[q] /= 2;
    }
    g.exit_extents = extents;
    groups.push_back(std::move(g));
    i = j;
  }
  return groups;
}

// Runs one pass over one slab tile. Both layouts address mid cell `c`,
// window offset `j` at base + c * unit + j: packed scratch has unit == w,
// the input/output tensors have unit == inner (bases pre-offset to the
// slab and window).
void RunPass(const Pass& p, const double* src, uint64_t src_unit, double* dst,
             uint64_t dst_unit, uint64_t w, const HaarVecOps& vec) {
  const uint64_t half = p.n / 2;
  const uint64_t deeper = p.deeper;
  const bool partial = p.kind == StepKind::kPartial;
  if (src_unit == w && dst_unit == w) {
    // Both sides packed (or the tile spans the full inner block): rows of
    // `deeper * w` contiguous cells.
    const uint64_t row = deeper * w;
    if (row == 1) {
      // Pairs are adjacent across the entire pass: one deinterleaving
      // sweep over group_outer * half output cells.
      if (partial) {
        vec.pair_sum(src, dst, p.group_outer * half);
      } else {
        vec.pair_diff(src, dst, p.group_outer * half);
      }
      return;
    }
    for (uint64_t g = 0; g < p.group_outer; ++g) {
      const double* sg = src + g * p.n * row;
      double* dg = dst + g * half * row;
      for (uint64_t i = 0; i < half; ++i) {
        const double* even = sg + (2 * i) * row;
        if (partial) {
          vec.add_rows(even, even + row, dg + i * row, row);
        } else {
          vec.sub_rows(even, even + row, dg + i * row, row);
        }
      }
    }
    return;
  }
  // Windowed tensor edge (first or last pass of a tiled slab): w-cell rows
  // at `unit` strides per mid cell.
  for (uint64_t g = 0; g < p.group_outer; ++g) {
    for (uint64_t i = 0; i < half; ++i) {
      const uint64_t src_base = (g * p.n + 2 * i) * deeper;
      const uint64_t dst_base = (g * half + i) * deeper;
      for (uint64_t t = 0; t < deeper; ++t) {
        const double* even = src + (src_base + t) * src_unit;
        const double* odd = src + (src_base + deeper + t) * src_unit;
        double* out = dst + (dst_base + t) * dst_unit;
        if (partial) {
          vec.add_rows(even, odd, out, w);
        } else {
          vec.sub_rows(even, odd, out, w);
        }
      }
    }
  }
}

// Chunk geometry of one group over a tensor with the group's entry
// extents: (outer slab, inner tile) decomposition, tile width under the
// scratch budget, and the per-buffer ping-pong size.
struct GroupGeom {
  uint64_t outer = 1;
  uint64_t inner = 1;
  uint64_t exit_volume = 1;   // window cells after the group
  uint64_t tile_width = 1;
  uint64_t tiles = 1;
  uint64_t chunks = 1;
  uint64_t scratch_cells = 0;  // per ping buffer
};

GroupGeom ComputeGeom(const std::vector<uint32_t>& entry_extents,
                      const Group& g, uint64_t budget) {
  GroupGeom geo;
  for (uint32_t m = 0; m < g.lo; ++m) geo.outer *= entry_extents[m];
  for (size_t m = g.hi + 1; m < entry_extents.size(); ++m) {
    geo.inner *= entry_extents[m];
  }
  geo.exit_volume = g.entry_volume >> g.count;
  geo.tile_width =
      std::clamp<uint64_t>(budget / (g.entry_volume / 2), 1, geo.inner);
  geo.tiles = (geo.inner + geo.tile_width - 1) / geo.tile_width;
  geo.chunks = geo.outer * geo.tiles;
  geo.scratch_cells = (g.entry_volume / 2) * geo.tile_width;
  return geo;
}

// Runs chunk `c` of group `g`: the whole pass pipeline for one
// (slab, tile) unit, ping-ponging intermediates through `bufs` (each
// >= geo.scratch_cells; untouched when the group is single-pass).
void RunChunk(const Group& g, const GroupGeom& geo, uint64_t c,
              const double* in_raw, double* out_raw, double* const bufs[2],
              const HaarVecOps& vec) {
  const uint64_t o = c / geo.tiles;
  const uint64_t j0 = (c % geo.tiles) * geo.tile_width;
  const uint64_t w = std::min(geo.tile_width, geo.inner - j0);
  const double* src = in_raw + o * g.entry_volume * geo.inner + j0;
  uint64_t src_unit = geo.inner;
  double* tensor_dst = out_raw + o * geo.exit_volume * geo.inner + j0;
  int flip = 0;
  for (size_t k = 0; k < g.passes.size(); ++k) {
    double* dst;
    uint64_t dst_unit;
    if (k + 1 == g.passes.size()) {
      dst = tensor_dst;
      dst_unit = geo.inner;
    } else {
      dst = bufs[flip];
      dst_unit = w;
      flip ^= 1;
    }
    RunPass(g.passes[k], src, src_unit, dst, dst_unit, w, vec);
    src = dst;
    src_unit = dst_unit;
  }
}

Result<Tensor> ExecuteFusedGroup(const Tensor& in, const Group& g,
                                 ThreadPool* pool, ScratchArena* arena,
                                 uint64_t budget, const QueryContext* ctx) {
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Uninitialized(g.exit_extents));

  const GroupGeom geo = ComputeGeom(in.extents(), g, budget);
  const uint64_t chunks = geo.chunks;
  const uint64_t scratch_cells = geo.scratch_cells;

  const double* in_raw = in.raw();
  double* out_raw = out.raw();
  const HaarVecOps& vec = VecOps();

  // Cooperative cancellation at tile granularity: each worker polls the
  // context once per (slab, tile) chunk and raises this flag instead of
  // starting the next chunk. The output tensor is abandoned wholesale on
  // unwind, so skipped chunks can never surface as partial results.
  std::atomic<bool> interrupted{false};

  // Chunks are disjoint (slab, tile) pairs with disjoint output regions;
  // per-cell association trees depend only on the step sequence, so the
  // result is bit-identical at any chunking.
  auto worker = [&](uint64_t begin, uint64_t end) {
    ScratchArena::Buffer handles[2];
    TensorBuffer local[2];
    double* bufs[2];
    for (int b = 0; b < 2; ++b) {
      if (arena != nullptr) {
        handles[b] = arena->Acquire(scratch_cells);
        bufs[b] = handles[b].data();
      } else {
        local[b].resize(scratch_cells);
        bufs[b] = local[b].data();
      }
    }
    for (uint64_t c = begin; c < end; ++c) {
      if (ctx != nullptr) {
        // order: relaxed — a stop hint between sibling workers; nothing
        // is published through it (the result is discarded on unwind).
        if (interrupted.load(std::memory_order_relaxed)) return;
        if (!ctx->Check().ok()) {
          // order: relaxed — see the load above.
          interrupted.store(true, std::memory_order_relaxed);
          return;
        }
      }
      RunChunk(g, geo, c, in_raw, out_raw, bufs, vec);
    }
  };

  if (pool != nullptr && pool->num_threads() > 1 && chunks > 1 &&
      in.size() >= kParallelKernelCells) {
    pool->ParallelFor(chunks, 1, worker);
  } else {
    worker(0, chunks);
  }
  // order: relaxed — ParallelFor's completion barrier already ordered
  // every worker's store before this load.
  if (interrupted.load(std::memory_order_relaxed)) {
    Status check = ctx->Check();
    // The flag only rises on a failed check, but re-polling can race a
    // deadline that has *just* not expired on this clock read; report a
    // definite status either way.
    return check.ok() ? Status::Cancelled("cascade interrupted") : check;
  }
  return out;
}

}  // namespace

namespace internal {

Status ExecuteCascadeSerial(const double* in,
                            const std::vector<uint32_t>& in_extents,
                            const std::vector<CascadeStep>& steps, double* out,
                            ShardScratch* scratch, const QueryContext* ctx) {
  uint64_t volume = 1;
  for (const uint32_t e : in_extents) volume *= e;
  if (steps.empty()) {
    std::copy(in, in + volume, out);
    return Status::OK();
  }
  const uint64_t budget = FusedBudgetCells();
  const std::vector<Group> groups = PlanGroups(in_extents, steps, budget);
  const HaarVecOps& vec = VecOps();

  // Size the ping-pong tiles for the largest group up front so every
  // group shares the same two grants.
  std::vector<GroupGeom> geoms;
  geoms.reserve(groups.size());
  uint64_t max_scratch = 0;
  std::vector<uint32_t> entry = in_extents;
  for (const Group& g : groups) {
    geoms.push_back(ComputeGeom(entry, g, budget));
    if (g.passes.size() >= 2) {
      max_scratch = std::max(max_scratch, geoms.back().scratch_cells);
    }
    entry = g.exit_extents;
  }
  double* bufs[2] = {nullptr, nullptr};
  if (max_scratch > 0) {
    bufs[0] = scratch->Take(max_scratch);
    bufs[1] = scratch->Take(max_scratch);
  }

  const double* cur = in;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& g = groups[gi];
    const GroupGeom& geo = geoms[gi];
    double* dst;
    if (gi + 1 == groups.size()) {
      dst = out;
    } else {
      uint64_t exit_cells = 1;
      for (const uint32_t e : g.exit_extents) exit_cells *= e;
      dst = scratch->Take(exit_cells);
    }
    for (uint64_t c = 0; c < geo.chunks; ++c) {
      if (ctx != nullptr) VECUBE_RETURN_NOT_OK(ctx->Check());
      RunChunk(g, geo, c, cur, dst, bufs, vec);
    }
    cur = dst;
  }
  return Status::OK();
}

}  // namespace internal

Result<Tensor> CascadeAnalysis(const Tensor& input,
                               const std::vector<CascadeStep>& steps,
                               OpCounter* ops, ThreadPool* pool,
                               ScratchArena* arena, const QueryContext* ctx) {
  // Validate the whole list up front against the evolving extents,
  // reporting exactly the Status the step-at-a-time kernels would.
  std::vector<uint32_t> extents = input.extents();
  for (const CascadeStep& step : steps) {
    if (step.dim >= extents.size()) {
      return Status::InvalidArgument("dimension " + std::to_string(step.dim) +
                                     " out of range for tensor of rank " +
                                     std::to_string(input.ndim()));
    }
    const uint32_t n = extents[step.dim];
    if (n < 2 || (n & 1) != 0) {
      return Status::FailedPrecondition(
          "partial aggregation along dimension " + std::to_string(step.dim) +
          " requires an even extent >= 2, got " + std::to_string(n));
    }
    extents[step.dim] /= 2;
  }
  if (steps.empty()) return input;

  const uint64_t budget = internal::FusedBudgetCells();
  const std::vector<Group> groups = PlanGroups(input.extents(), steps, budget);

  const Tensor* current = &input;
  Tensor owned;
  for (const Group& g : groups) {
    if (ctx != nullptr) VECUBE_RETURN_NOT_OK(ctx->Check());
    Tensor next;
    if (g.count == 1) {
      const CascadeStep& step = steps[g.first];
      if (step.kind == StepKind::kPartial) {
        VECUBE_ASSIGN_OR_RETURN(next,
                                PartialSum(*current, step.dim, nullptr, pool));
      } else {
        VECUBE_ASSIGN_OR_RETURN(
            next, PartialResidual(*current, step.dim, nullptr, pool));
      }
    } else {
      VECUBE_ASSIGN_OR_RETURN(
          next, ExecuteFusedGroup(*current, g, pool, arena, budget, ctx));
    }
    owned = std::move(next);
    current = &owned;
  }

  // Book the cascade analytically on the calling thread: each step costs
  // its output volume, exactly what the per-step kernels would book, so
  // totals are independent of grouping, tiling, and thread count.
  if (ops != nullptr) {
    uint64_t volume = input.size();
    for (size_t s = 0; s < steps.size(); ++s) {
      volume /= 2;
      ops->adds += volume;
    }
  }
  return owned;
}

Result<Tensor> CascadeSum(const Tensor& input, uint32_t dim, uint32_t levels,
                          OpCounter* ops, ThreadPool* pool,
                          ScratchArena* arena, const QueryContext* ctx) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension " + std::to_string(dim) +
                                   " out of range for tensor of rank " +
                                   std::to_string(input.ndim()));
  }
  std::vector<CascadeStep> steps(levels,
                                 CascadeStep{dim, StepKind::kPartial});
  return CascadeAnalysis(input, steps, ops, pool, arena, ctx);
}

}  // namespace vecube
