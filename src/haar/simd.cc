#include "haar/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace vecube {

namespace {

void AddRowsScalar(const double* a, const double* b, double* dst,
                   uint64_t n) {
  for (uint64_t j = 0; j < n; ++j) dst[j] = a[j] + b[j];
}

void SubRowsScalar(const double* a, const double* b, double* dst,
                   uint64_t n) {
  for (uint64_t j = 0; j < n; ++j) dst[j] = a[j] - b[j];
}

void AddSubRowsScalar(const double* a, const double* b, double* sum,
                      double* diff, uint64_t n) {
  for (uint64_t j = 0; j < n; ++j) {
    const double x = a[j];
    const double y = b[j];
    sum[j] = x + y;
    diff[j] = x - y;
  }
}

void SynthRowsScalar(const double* p, const double* r, double* even,
                     double* odd, uint64_t n) {
  for (uint64_t j = 0; j < n; ++j) {
    const double x = p[j];
    const double y = r[j];
    even[j] = 0.5 * (x + y);
    odd[j] = 0.5 * (x - y);
  }
}

void PairSumScalar(const double* in, double* sum, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) sum[i] = in[2 * i] + in[2 * i + 1];
}

void PairDiffScalar(const double* in, double* diff, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) diff[i] = in[2 * i] - in[2 * i + 1];
}

void PairBothScalar(const double* in, double* sum, double* diff,
                    uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    const double x = in[2 * i];
    const double y = in[2 * i + 1];
    sum[i] = x + y;
    diff[i] = x - y;
  }
}

void PairSynthScalar(const double* p, const double* r, double* out,
                     uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    const double x = p[i];
    const double y = r[i];
    out[2 * i] = 0.5 * (x + y);
    out[2 * i + 1] = 0.5 * (x - y);
  }
}

constexpr HaarVecOps kScalarOps = {
    AddRowsScalar, SubRowsScalar, AddSubRowsScalar, SynthRowsScalar,
    PairSumScalar, PairDiffScalar, PairBothScalar,  PairSynthScalar,
    "scalar",
};

const HaarVecOps* SelectAtStartup() {
  // The hook is consulted exactly once; both tables are bit-identical, so
  // this toggles scheduling, never results — determinism is preserved.
  if (internal::ParseDisableAvx2(
          std::getenv("VECUBE_DISABLE_AVX2"))) {  // vecube-lint: disable=no-nondeterminism
    return &kScalarOps;
  }
  if (const HaarVecOps* avx2 = internal::Avx2VecOpsOrNull()) return avx2;
  return &kScalarOps;
}

std::atomic<const HaarVecOps*> g_ops{nullptr};

}  // namespace

const HaarVecOps& VecOps() {
  // order: acquire — pairs with the release side of the CAS below so a
  // thread that observes the published pointer also sees the selected
  // ops table fully initialized.
  const HaarVecOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = SelectAtStartup();
    const HaarVecOps* expected = nullptr;
    // First selector wins; the selection is deterministic anyway.
    // order: acq_rel — release publishes the selected table; acquire on
    // the failure path makes the winner's table visible through
    // `expected` before we dereference it.
    if (!g_ops.compare_exchange_strong(expected, ops,
                                       std::memory_order_acq_rel)) {
      ops = expected;
    }
  }
  return *ops;
}

bool VecOpsAreAvx2() { return std::strcmp(VecOps().name, "avx2") == 0; }

namespace internal {

const HaarVecOps& ScalarVecOps() { return kScalarOps; }

bool ParseDisableAvx2(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

void OverrideVecOpsForTesting(const HaarVecOps* ops) {
  // order: release — publishes the override table to subsequent VecOps()
  // acquire loads; tests install overrides before spawning readers.
  g_ops.store(ops, std::memory_order_release);
}

}  // namespace internal

}  // namespace vecube
