#include "haar/cascade.h"

#include <string>

namespace vecube {

Result<Tensor> ApplyCascade(const Tensor& input,
                            const std::vector<CascadeStep>& steps,
                            OpCounter* ops) {
  Tensor current = input;
  for (const CascadeStep& step : steps) {
    Tensor next;
    if (step.kind == StepKind::kPartial) {
      VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, step.dim, ops));
    } else {
      VECUBE_ASSIGN_OR_RETURN(next, PartialResidual(current, step.dim, ops));
    }
    current = std::move(next);
  }
  return current;
}

Result<Tensor> PartialSumK(const Tensor& input, uint32_t dim, uint32_t k,
                           OpCounter* ops) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  if ((input.extent(dim) >> k) << k != input.extent(dim) ||
      (input.extent(dim) >> k) == 0) {
    return Status::FailedPrecondition(
        "extent " + std::to_string(input.extent(dim)) +
        " does not admit a depth-" + std::to_string(k) + " cascade");
  }
  Tensor current = input;
  for (uint32_t i = 0; i < k; ++i) {
    Tensor next;
    VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, dim, ops));
    current = std::move(next);
  }
  return current;
}

Result<Tensor> TotalAggregate(const Tensor& input, uint32_t dim,
                              OpCounter* ops) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  Tensor current = input;
  while (current.extent(dim) > 1) {
    Tensor next;
    VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, dim, ops));
    current = std::move(next);
  }
  return current;
}

Result<Tensor> AggregateDims(const Tensor& input,
                             const std::vector<uint32_t>& dims,
                             OpCounter* ops) {
  std::vector<bool> seen(input.ndim(), false);
  Tensor current = input;
  for (uint32_t dim : dims) {
    if (dim >= input.ndim()) {
      return Status::InvalidArgument("dimension out of range");
    }
    if (seen[dim]) {
      return Status::InvalidArgument("duplicate dimension " +
                                     std::to_string(dim));
    }
    seen[dim] = true;
    Tensor next;
    VECUBE_ASSIGN_OR_RETURN(next, TotalAggregate(current, dim, ops));
    current = std::move(next);
  }
  return current;
}

Result<double> GrandTotal(const Tensor& input, OpCounter* ops) {
  std::vector<uint32_t> all(input.ndim());
  for (uint32_t m = 0; m < input.ndim(); ++m) all[m] = m;
  Tensor total;
  VECUBE_ASSIGN_OR_RETURN(total, AggregateDims(input, all, ops));
  return total[0];
}

}  // namespace vecube
