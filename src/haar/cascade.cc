#include "haar/cascade.h"

#include <string>

#include "haar/fused.h"

namespace vecube {

namespace {

// Appends the steps TotalAggregate would execute along `dim`, simulating
// the evolving extent. A non-power-of-two extent appends the step whose
// validation fails, so CascadeAnalysis reports the same odd-extent
// precondition the step-at-a-time loop would hit.
void AppendTotalAggregateSteps(uint32_t dim, uint32_t extent,
                               std::vector<CascadeStep>* steps) {
  uint32_t e = extent;
  while (e > 1) {
    steps->push_back(CascadeStep{dim, StepKind::kPartial});
    if ((e & 1) != 0) break;
    e /= 2;
  }
}

}  // namespace

Result<Tensor> ApplyCascade(const Tensor& input,
                            const std::vector<CascadeStep>& steps,
                            OpCounter* ops, ThreadPool* pool,
                            ScratchArena* arena) {
  return CascadeAnalysis(input, steps, ops, pool, arena);
}

Result<Tensor> PartialSumK(const Tensor& input, uint32_t dim, uint32_t k,
                           OpCounter* ops, ThreadPool* pool,
                           ScratchArena* arena) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  if ((input.extent(dim) >> k) << k != input.extent(dim) ||
      (input.extent(dim) >> k) == 0) {
    return Status::FailedPrecondition(
        "extent " + std::to_string(input.extent(dim)) +
        " does not admit a depth-" + std::to_string(k) + " cascade");
  }
  return CascadeSum(input, dim, k, ops, pool, arena);
}

Result<Tensor> TotalAggregate(const Tensor& input, uint32_t dim,
                              OpCounter* ops, ThreadPool* pool,
                              ScratchArena* arena) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  std::vector<CascadeStep> steps;
  AppendTotalAggregateSteps(dim, input.extent(dim), &steps);
  return CascadeAnalysis(input, steps, ops, pool, arena);
}

Result<Tensor> AggregateDims(const Tensor& input,
                             const std::vector<uint32_t>& dims,
                             OpCounter* ops, ThreadPool* pool,
                             ScratchArena* arena) {
  std::vector<bool> seen(input.ndim(), false);
  std::vector<CascadeStep> steps;
  for (uint32_t dim : dims) {
    if (dim >= input.ndim()) {
      return Status::InvalidArgument("dimension out of range");
    }
    if (seen[dim]) {
      return Status::InvalidArgument("duplicate dimension " +
                                     std::to_string(dim));
    }
    seen[dim] = true;
    AppendTotalAggregateSteps(dim, input.extent(dim), &steps);
  }
  // One fused cascade over all dimensions, so runs of totally-aggregated
  // dimensions collapse into shared slab passes (Eq. 14 commutation).
  return CascadeAnalysis(input, steps, ops, pool, arena);
}

Result<double> GrandTotal(const Tensor& input, OpCounter* ops,
                          ThreadPool* pool, ScratchArena* arena) {
  std::vector<uint32_t> all(input.ndim());
  for (uint32_t m = 0; m < input.ndim(); ++m) all[m] = m;
  Tensor total;
  VECUBE_ASSIGN_OR_RETURN(total, AggregateDims(input, all, ops, pool, arena));
  return total[0];
}

}  // namespace vecube
