// ScratchArena: reusable, aligned kernel scratch buffers.
//
// The fused cascade kernels ping-pong intermediate levels through small
// scratch tiles; batch assembly runs thousands of such kernels per query
// wave. Allocating (and faulting) fresh buffers per kernel step costs
// more than the arithmetic, so sessions thread one arena through
// AssemblyEngine / Cascade / RangeEngine / DynamicAssembler and every
// kernel step borrows from it instead of allocating.
//
// Ownership and lifetime (see DESIGN.md §11):
//   * Acquire() hands out an exclusively owned Buffer (RAII); its payload
//     never aliases any live Tensor or any other outstanding Buffer —
//     enforced by an internal live-set invariant, not convention.
//   * Returning a Buffer (destruction / reset) recycles the payload into
//     the free pool; the pool is capped, overflow is simply freed.
//   * The arena must outlive its Buffers (sessions own the arena; buffers
//     live only inside kernel calls).
//
// Thread safety: all methods are safe to call concurrently; the free pool
// is mutex-protected. Contention is negligible — acquisition happens once
// per kernel chunk (>= tens of thousands of cells of work), not per cell.

#ifndef VECUBE_HAAR_SCRATCH_H_
#define VECUBE_HAAR_SCRATCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cube/tensor.h"
#include "util/sync.h"

namespace vecube {

class ScratchArena {
 public:
  /// RAII handle to an exclusively owned scratch payload. Cells are
  /// uninitialized on acquisition.
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept { *this = std::move(other); }
    Buffer& operator=(Buffer&& other) noexcept {
      if (this != &other) {
        Release();
        arena_ = other.arena_;
        storage_ = std::move(other.storage_);
        other.arena_ = nullptr;
        other.storage_.clear();
      }
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { Release(); }

    double* data() { return storage_.data(); }
    [[nodiscard]] const double* data() const { return storage_.data(); }
    [[nodiscard]] uint64_t size() const { return storage_.size(); }
    [[nodiscard]] bool valid() const { return arena_ != nullptr; }

    /// Returns the payload to the arena early (idempotent).
    void Release();

   private:
    friend class ScratchArena;
    Buffer(ScratchArena* arena, TensorBuffer storage)
        : arena_(arena), storage_(std::move(storage)) {}

    ScratchArena* arena_ = nullptr;
    TensorBuffer storage_;
  };

  /// `max_pooled_bytes` caps the idle pool; returned buffers beyond the
  /// cap are freed instead of pooled.
  explicit ScratchArena(uint64_t max_pooled_bytes = uint64_t{256} << 20);
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// An exclusively owned buffer of exactly `cells` uninitialized doubles
  /// (64-byte aligned). Reuses a pooled allocation when one is large
  /// enough (best fit); allocates otherwise.
  Buffer Acquire(uint64_t cells) VECUBE_EXCLUDES(mu_);

  /// Buffers currently handed out.
  [[nodiscard]] uint64_t outstanding() const VECUBE_EXCLUDES(mu_);
  /// Idle buffers in the pool.
  [[nodiscard]] uint64_t pooled() const VECUBE_EXCLUDES(mu_);
  /// Payload bytes currently idle in the pool.
  [[nodiscard]] uint64_t pooled_bytes() const VECUBE_EXCLUDES(mu_);
  /// Acquisitions served from the pool (vs fresh allocations).
  [[nodiscard]] uint64_t reuse_count() const VECUBE_EXCLUDES(mu_);

  /// Aliasing invariant: true iff [ptr, ptr + cells) overlaps no
  /// outstanding hand-out. Live tensors are allocated outside the arena,
  /// so this plus hand-out exclusivity is the full no-aliasing story.
  [[nodiscard]] bool DisjointFromOutstanding(const double* ptr,
                                             uint64_t cells) const
      VECUBE_EXCLUDES(mu_);

 private:
  friend class Buffer;

  void Return(TensorBuffer storage) VECUBE_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<TensorBuffer> pool_ VECUBE_GUARDED_BY(mu_);
  // base -> cells
  std::unordered_map<const double*, uint64_t> live_ VECUBE_GUARDED_BY(mu_);
  const uint64_t max_pooled_bytes_;
  uint64_t pooled_bytes_ VECUBE_GUARDED_BY(mu_) = 0;
  uint64_t reuse_count_ VECUBE_GUARDED_BY(mu_) = 0;
};

/// Per-lane kernel scratch for the shard-parallel path: a bump allocator
/// over pooled 64-byte-aligned slabs with NO internal synchronization.
///
/// The shard executor hands each execution lane (one thread at a time)
/// its own ShardScratch, which is what keeps the shard hot path free of
/// the shared arena's mutex: a lane's whole cascade — gather, every fused
/// group, ping-pong tiles — draws from its private slab.
///
/// Ownership rule (DESIGN.md §14): exactly one thread may touch an
/// instance at a time, and Take() pointers stay valid until the *owner*
/// calls Reset(). Reset() retains the underlying memory for reuse, so a
/// lane that executes many shards of the same geometry allocates once.
class ShardScratch {
 public:
  ShardScratch() = default;
  ShardScratch(const ShardScratch&) = delete;
  ShardScratch& operator=(const ShardScratch&) = delete;

  /// `cells` uninitialized doubles, 64-byte aligned. Valid until Reset().
  double* Take(uint64_t cells);

  /// Invalidates every outstanding Take() pointer; keeps capacity.
  void Reset();

  /// Total cells across all slabs (test/introspection hook).
  [[nodiscard]] uint64_t capacity_cells() const;

 private:
  // Slabs are append-only; Reset() rewinds the cursor to slab 0.
  std::vector<TensorBuffer> slabs_;
  size_t slab_ = 0;     // cursor: slab currently being bumped
  uint64_t used_ = 0;   // cells consumed in slabs_[slab_]
};

}  // namespace vecube

#endif  // VECUBE_HAAR_SCRATCH_H_
