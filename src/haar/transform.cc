#include "haar/transform.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"

namespace vecube {

namespace {

struct AxisGeometry {
  uint64_t outer = 0;  // product of extents before `dim`
  uint64_t n = 0;      // extent along `dim`
  uint64_t inner = 0;  // product of extents after `dim` (== stride of dim)
};

Result<AxisGeometry> CheckAnalysisArgs(const Tensor& input, uint32_t dim) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension " + std::to_string(dim) +
                                   " out of range for tensor of rank " +
                                   std::to_string(input.ndim()));
  }
  AxisGeometry g;
  g.n = input.extent(dim);
  if (g.n < 2 || (g.n & 1) != 0) {
    return Status::FailedPrecondition(
        "partial aggregation along dimension " + std::to_string(dim) +
        " requires an even extent >= 2, got " + std::to_string(g.n));
  }
  g.inner = input.stride(dim);
  g.outer = input.size() / (g.n * g.inner);
  return g;
}

std::vector<uint32_t> HalvedExtents(const Tensor& input, uint32_t dim) {
  std::vector<uint32_t> extents = input.extents();
  extents[dim] /= 2;
  return extents;
}

// Row indexing: with k = o * half + i ranging over [0, outer * half), the
// analysis kernels read input rows 2k and 2k+1 (each `inner` cells) and
// write output row k; synthesis is the transpose. The o/i loop nests of
// the serial kernels collapse to this single row loop, which is what the
// pool chunks over. Each row is >= `inner` cells of work, so the grain is
// chosen to keep every chunk at or above kParallelKernelCells cells.
void RunRows(ThreadPool* pool, uint64_t rows, uint64_t inner,
             uint64_t total_cells,
             const std::function<void(uint64_t, uint64_t)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      total_cells < kParallelKernelCells) {
    body(0, rows);
    return;
  }
  const uint64_t grain =
      std::max<uint64_t>(1, kParallelKernelCells / std::max<uint64_t>(inner, 1));
  pool->ParallelFor(rows, grain, body);
}

}  // namespace

Result<Tensor> PartialSum(const Tensor& input, uint32_t dim, OpCounter* ops,
                          ThreadPool* pool) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  RunRows(pool, rows, inner, out.size(), [=](uint64_t begin, uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      const double* even = src + (2 * k) * inner;
      const double* odd = even + inner;
      double* row = dst + k * inner;
      for (uint64_t j = 0; j < inner; ++j) row[j] = even[j] + odd[j];
    }
  });
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Result<Tensor> PartialResidual(const Tensor& input, uint32_t dim,
                               OpCounter* ops, ThreadPool* pool) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  RunRows(pool, rows, inner, out.size(), [=](uint64_t begin, uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      const double* even = src + (2 * k) * inner;
      const double* odd = even + inner;
      double* row = dst + k * inner;
      for (uint64_t j = 0; j < inner; ++j) row[j] = even[j] - odd[j];
    }
  });
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Status PartialPair(const Tensor& input, uint32_t dim, Tensor* partial,
                   Tensor* residual, OpCounter* ops, ThreadPool* pool) {
  if (partial == nullptr || residual == nullptr) {
    return Status::InvalidArgument("output pointers must be non-null");
  }
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  VECUBE_ASSIGN_OR_RETURN(*partial, Tensor::Zeros(HalvedExtents(input, dim)));
  VECUBE_ASSIGN_OR_RETURN(*residual, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst_p = partial->raw();
  double* dst_r = residual->raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  RunRows(pool, rows, inner, partial->size(),
          [=](uint64_t begin, uint64_t end) {
            for (uint64_t k = begin; k < end; ++k) {
              const double* even = src + (2 * k) * inner;
              const double* odd = even + inner;
              double* p_row = dst_p + k * inner;
              double* r_row = dst_r + k * inner;
              for (uint64_t j = 0; j < inner; ++j) {
                const double a = even[j];
                const double b = odd[j];
                p_row[j] = a + b;
                r_row[j] = a - b;
              }
            }
          });
  if (ops != nullptr) ops->adds += partial->size() + residual->size();
  return Status::OK();
}

Result<Tensor> SynthesizePair(const Tensor& partial, const Tensor& residual,
                              uint32_t dim, OpCounter* ops, ThreadPool* pool) {
  if (partial.extents() != residual.extents()) {
    return Status::InvalidArgument(
        "partial and residual children must have identical extents (" +
        partial.ShapeString() + " vs " + residual.ShapeString() + ")");
  }
  if (dim >= partial.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  std::vector<uint32_t> extents = partial.extents();
  extents[dim] *= 2;
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(std::move(extents)));

  const uint64_t inner = partial.stride(dim);
  const uint64_t half = partial.extent(dim);
  const uint64_t outer = partial.size() / (half * inner);
  const double* src_p = partial.raw();
  const double* src_r = residual.raw();
  double* dst = out.raw();
  const uint64_t rows = outer * half;
  RunRows(pool, rows, 2 * inner, out.size(), [=](uint64_t begin, uint64_t end) {
    for (uint64_t k = begin; k < end; ++k) {
      const double* p_row = src_p + k * inner;
      const double* r_row = src_r + k * inner;
      double* even = dst + (2 * k) * inner;
      double* odd = even + inner;
      for (uint64_t j = 0; j < inner; ++j) {
        const double p = p_row[j];
        const double r = r_row[j];
        even[j] = 0.5 * (p + r);
        odd[j] = 0.5 * (p - r);
      }
    }
  });
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

}  // namespace vecube
