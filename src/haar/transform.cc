#include "haar/transform.h"

#include <algorithm>
#include <string>
#include <vector>

#include "haar/simd.h"
#include "util/logging.h"

namespace vecube {

namespace {

struct AxisGeometry {
  uint64_t outer = 0;  // product of extents before `dim`
  uint64_t n = 0;      // extent along `dim`
  uint64_t inner = 0;  // product of extents after `dim` (== stride of dim)
};

Result<AxisGeometry> CheckAnalysisArgs(const Tensor& input, uint32_t dim) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension " + std::to_string(dim) +
                                   " out of range for tensor of rank " +
                                   std::to_string(input.ndim()));
  }
  AxisGeometry g;
  g.n = input.extent(dim);
  if (g.n < 2 || (g.n & 1) != 0) {
    return Status::FailedPrecondition(
        "partial aggregation along dimension " + std::to_string(dim) +
        " requires an even extent >= 2, got " + std::to_string(g.n));
  }
  g.inner = input.stride(dim);
  g.outer = input.size() / (g.n * g.inner);
  return g;
}

std::vector<uint32_t> HalvedExtents(const Tensor& input, uint32_t dim) {
  std::vector<uint32_t> extents = input.extents();
  extents[dim] /= 2;
  return extents;
}

// Row indexing: with k = o * half + i ranging over [0, outer * half), the
// analysis kernels read input rows 2k and 2k+1 (each `inner` cells) and
// write output row k; synthesis is the transpose. The o/i loop nests of
// the serial kernels collapse to this single row loop, which is what the
// pool chunks over. Each row is >= `inner` cells of work; the grain is
// the least row count per chunk carrying kParallelKernelCells cells
// (internal::KernelRowGrain).
void RunRows(ThreadPool* pool, uint64_t rows, uint64_t inner,
             uint64_t total_cells,
             const std::function<void(uint64_t, uint64_t)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      total_cells < kParallelKernelCells) {
    body(0, rows);
    return;
  }
  pool->ParallelFor(rows, internal::KernelRowGrain(inner), body);
}

}  // namespace

Result<Tensor> PartialSum(const Tensor& input, uint32_t dim, OpCounter* ops,
                          ThreadPool* pool) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Uninitialized(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  const HaarVecOps& vec = VecOps();
  RunRows(pool, rows, inner, out.size(), [=](uint64_t begin, uint64_t end) {
    if (inner == 1) {
      // Innermost dimension: adjacent even/odd pairs, one deinterleaving
      // sweep over the chunk.
      vec.pair_sum(src + 2 * begin, dst + begin, end - begin);
      return;
    }
    for (uint64_t k = begin; k < end; ++k) {
      const double* even = src + (2 * k) * inner;
      const double* odd = even + inner;
      vec.add_rows(even, odd, dst + k * inner, inner);
    }
  });
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Result<Tensor> PartialResidual(const Tensor& input, uint32_t dim,
                               OpCounter* ops, ThreadPool* pool) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Uninitialized(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  const HaarVecOps& vec = VecOps();
  RunRows(pool, rows, inner, out.size(), [=](uint64_t begin, uint64_t end) {
    if (inner == 1) {
      vec.pair_diff(src + 2 * begin, dst + begin, end - begin);
      return;
    }
    for (uint64_t k = begin; k < end; ++k) {
      const double* even = src + (2 * k) * inner;
      const double* odd = even + inner;
      vec.sub_rows(even, odd, dst + k * inner, inner);
    }
  });
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Status PartialPair(const Tensor& input, uint32_t dim, Tensor* partial,
                   Tensor* residual, OpCounter* ops, ThreadPool* pool) {
  if (partial == nullptr || residual == nullptr) {
    return Status::InvalidArgument("output pointers must be non-null");
  }
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  VECUBE_ASSIGN_OR_RETURN(*partial,
                          Tensor::Uninitialized(HalvedExtents(input, dim)));
  VECUBE_ASSIGN_OR_RETURN(*residual,
                          Tensor::Uninitialized(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst_p = partial->raw();
  double* dst_r = residual->raw();
  const uint64_t inner = g.inner;
  const uint64_t rows = g.outer * (g.n / 2);
  const HaarVecOps& vec = VecOps();
  RunRows(pool, rows, inner, partial->size(),
          [=](uint64_t begin, uint64_t end) {
            if (inner == 1) {
              vec.pair_both(src + 2 * begin, dst_p + begin, dst_r + begin,
                            end - begin);
              return;
            }
            for (uint64_t k = begin; k < end; ++k) {
              const double* even = src + (2 * k) * inner;
              const double* odd = even + inner;
              vec.addsub_rows(even, odd, dst_p + k * inner,
                              dst_r + k * inner, inner);
            }
          });
  if (ops != nullptr) ops->adds += partial->size() + residual->size();
  return Status::OK();
}

Result<Tensor> SynthesizePair(const Tensor& partial, const Tensor& residual,
                              uint32_t dim, OpCounter* ops, ThreadPool* pool) {
  if (partial.extents() != residual.extents()) {
    return Status::InvalidArgument(
        "partial and residual children must have identical extents (" +
        partial.ShapeString() + " vs " + residual.ShapeString() + ")");
  }
  if (dim >= partial.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  std::vector<uint32_t> extents = partial.extents();
  extents[dim] *= 2;
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Uninitialized(std::move(extents)));

  const uint64_t inner = partial.stride(dim);
  const uint64_t half = partial.extent(dim);
  const uint64_t outer = partial.size() / (half * inner);
  const double* src_p = partial.raw();
  const double* src_r = residual.raw();
  double* dst = out.raw();
  const uint64_t rows = outer * half;
  const HaarVecOps& vec = VecOps();
  RunRows(pool, rows, 2 * inner, out.size(), [=](uint64_t begin, uint64_t end) {
    if (inner == 1) {
      vec.pair_synth(src_p + begin, src_r + begin, dst + 2 * begin,
                     end - begin);
      return;
    }
    for (uint64_t k = begin; k < end; ++k) {
      double* even = dst + (2 * k) * inner;
      vec.synth_rows(src_p + k * inner, src_r + k * inner, even,
                     even + inner, inner);
    }
  });
  // Eqs. 3-4: one add/sub plus one halving per output cell. Halvings go
  // to `muls` so `adds` stays equal to the Procedure-3 plan cost (the
  // paper's cost model counts additive operations only).
  if (ops != nullptr) {
    ops->adds += out.size();
    ops->muls += out.size();
  }
  return out;
}

}  // namespace vecube
