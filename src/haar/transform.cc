#include "haar/transform.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace vecube {

namespace {

struct AxisGeometry {
  uint64_t outer = 0;  // product of extents before `dim`
  uint64_t n = 0;      // extent along `dim`
  uint64_t inner = 0;  // product of extents after `dim` (== stride of dim)
};

Result<AxisGeometry> CheckAnalysisArgs(const Tensor& input, uint32_t dim) {
  if (dim >= input.ndim()) {
    return Status::InvalidArgument("dimension " + std::to_string(dim) +
                                   " out of range for tensor of rank " +
                                   std::to_string(input.ndim()));
  }
  AxisGeometry g;
  g.n = input.extent(dim);
  if (g.n < 2 || (g.n & 1) != 0) {
    return Status::FailedPrecondition(
        "partial aggregation along dimension " + std::to_string(dim) +
        " requires an even extent >= 2, got " + std::to_string(g.n));
  }
  g.inner = input.stride(dim);
  g.outer = input.size() / (g.n * g.inner);
  return g;
}

std::vector<uint32_t> HalvedExtents(const Tensor& input, uint32_t dim) {
  std::vector<uint32_t> extents = input.extents();
  extents[dim] /= 2;
  return extents;
}

}  // namespace

Result<Tensor> PartialSum(const Tensor& input, uint32_t dim, OpCounter* ops) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t half = g.n / 2;
  for (uint64_t o = 0; o < g.outer; ++o) {
    const double* in_block = src + o * g.n * g.inner;
    double* out_block = dst + o * half * g.inner;
    for (uint64_t i = 0; i < half; ++i) {
      const double* even = in_block + (2 * i) * g.inner;
      const double* odd = even + g.inner;
      double* row = out_block + i * g.inner;
      for (uint64_t j = 0; j < g.inner; ++j) row[j] = even[j] + odd[j];
    }
  }
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Result<Tensor> PartialResidual(const Tensor& input, uint32_t dim,
                               OpCounter* ops) {
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst = out.raw();
  const uint64_t half = g.n / 2;
  for (uint64_t o = 0; o < g.outer; ++o) {
    const double* in_block = src + o * g.n * g.inner;
    double* out_block = dst + o * half * g.inner;
    for (uint64_t i = 0; i < half; ++i) {
      const double* even = in_block + (2 * i) * g.inner;
      const double* odd = even + g.inner;
      double* row = out_block + i * g.inner;
      for (uint64_t j = 0; j < g.inner; ++j) row[j] = even[j] - odd[j];
    }
  }
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

Status PartialPair(const Tensor& input, uint32_t dim, Tensor* partial,
                   Tensor* residual, OpCounter* ops) {
  if (partial == nullptr || residual == nullptr) {
    return Status::InvalidArgument("output pointers must be non-null");
  }
  AxisGeometry g;
  VECUBE_ASSIGN_OR_RETURN(g, CheckAnalysisArgs(input, dim));
  VECUBE_ASSIGN_OR_RETURN(*partial, Tensor::Zeros(HalvedExtents(input, dim)));
  VECUBE_ASSIGN_OR_RETURN(*residual, Tensor::Zeros(HalvedExtents(input, dim)));

  const double* src = input.raw();
  double* dst_p = partial->raw();
  double* dst_r = residual->raw();
  const uint64_t half = g.n / 2;
  for (uint64_t o = 0; o < g.outer; ++o) {
    const double* in_block = src + o * g.n * g.inner;
    double* p_block = dst_p + o * half * g.inner;
    double* r_block = dst_r + o * half * g.inner;
    for (uint64_t i = 0; i < half; ++i) {
      const double* even = in_block + (2 * i) * g.inner;
      const double* odd = even + g.inner;
      double* p_row = p_block + i * g.inner;
      double* r_row = r_block + i * g.inner;
      for (uint64_t j = 0; j < g.inner; ++j) {
        const double a = even[j];
        const double b = odd[j];
        p_row[j] = a + b;
        r_row[j] = a - b;
      }
    }
  }
  if (ops != nullptr) ops->adds += partial->size() + residual->size();
  return Status::OK();
}

Result<Tensor> SynthesizePair(const Tensor& partial, const Tensor& residual,
                              uint32_t dim, OpCounter* ops) {
  if (partial.extents() != residual.extents()) {
    return Status::InvalidArgument(
        "partial and residual children must have identical extents (" +
        partial.ShapeString() + " vs " + residual.ShapeString() + ")");
  }
  if (dim >= partial.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  std::vector<uint32_t> extents = partial.extents();
  extents[dim] *= 2;
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(std::move(extents)));

  const uint64_t inner = partial.stride(dim);
  const uint64_t half = partial.extent(dim);
  const uint64_t outer = partial.size() / (half * inner);
  const double* src_p = partial.raw();
  const double* src_r = residual.raw();
  double* dst = out.raw();
  for (uint64_t o = 0; o < outer; ++o) {
    const double* p_block = src_p + o * half * inner;
    const double* r_block = src_r + o * half * inner;
    double* out_block = dst + o * (2 * half) * inner;
    for (uint64_t i = 0; i < half; ++i) {
      const double* p_row = p_block + i * inner;
      const double* r_row = r_block + i * inner;
      double* even = out_block + (2 * i) * inner;
      double* odd = even + inner;
      for (uint64_t j = 0; j < inner; ++j) {
        const double p = p_row[j];
        const double r = r_row[j];
        even[j] = 0.5 * (p + r);
        odd[j] = 0.5 * (p - r);
      }
    }
  }
  if (ops != nullptr) ops->adds += out.size();
  return out;
}

}  // namespace vecube
