#include "haar/scratch.h"

#include <algorithm>

#include "util/logging.h"

namespace vecube {

void ScratchArena::Buffer::Release() {
  if (arena_ == nullptr) return;
  ScratchArena* arena = arena_;
  arena_ = nullptr;
  arena->Return(std::move(storage_));
  storage_.clear();
}

ScratchArena::ScratchArena(uint64_t max_pooled_bytes)
    : max_pooled_bytes_(max_pooled_bytes) {}

ScratchArena::~ScratchArena() {
  MutexLock lock(mu_);
  VECUBE_CHECK(live_.empty())
      << "ScratchArena destroyed with " << live_.size()
      << " buffer(s) still outstanding";
}

ScratchArena::Buffer ScratchArena::Acquire(uint64_t cells) {
  TensorBuffer storage;
  {
    MutexLock lock(mu_);
    // Best fit: the smallest pooled allocation that already holds `cells`.
    size_t best = pool_.size();
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].capacity() < cells) continue;
      if (best == pool_.size() ||
          pool_[i].capacity() < pool_[best].capacity()) {
        best = i;
      }
    }
    if (best < pool_.size()) {
      storage = std::move(pool_[best]);
      pool_[best] = std::move(pool_.back());
      pool_.pop_back();
      pooled_bytes_ -= storage.capacity() * sizeof(double);
      ++reuse_count_;
    }
  }
  storage.resize(cells);  // no-op construction: cells stay uninitialized

  MutexLock lock(mu_);
  if (storage.data() != nullptr) {
    const auto [it, inserted] = live_.emplace(storage.data(), cells);
    (void)it;
    VECUBE_CHECK(inserted) << "ScratchArena handed out an aliasing buffer";
  }
  return Buffer(this, std::move(storage));
}

void ScratchArena::Return(TensorBuffer storage) {
  MutexLock lock(mu_);
  if (storage.data() != nullptr) {
    VECUBE_CHECK(live_.erase(storage.data()) == 1)
        << "ScratchArena::Return of a buffer it does not track";
  }
  const uint64_t bytes = storage.capacity() * sizeof(double);
  if (pooled_bytes_ + bytes <= max_pooled_bytes_) {
    pooled_bytes_ += bytes;
    pool_.push_back(std::move(storage));
  }
  // Else: dropped on the floor; the allocator frees it.
}

uint64_t ScratchArena::outstanding() const {
  MutexLock lock(mu_);
  return live_.size();
}

uint64_t ScratchArena::pooled() const {
  MutexLock lock(mu_);
  return pool_.size();
}

uint64_t ScratchArena::pooled_bytes() const {
  MutexLock lock(mu_);
  return pooled_bytes_;
}

uint64_t ScratchArena::reuse_count() const {
  MutexLock lock(mu_);
  return reuse_count_;
}

bool ScratchArena::DisjointFromOutstanding(const double* ptr,
                                           uint64_t cells) const {
  MutexLock lock(mu_);
  const auto lo = reinterpret_cast<uintptr_t>(ptr);
  const uintptr_t hi = lo + cells * sizeof(double);
  for (const auto& [base, live_cells] : live_) {
    const auto b_lo = reinterpret_cast<uintptr_t>(base);
    const uintptr_t b_hi = b_lo + live_cells * sizeof(double);
    if (lo < b_hi && b_lo < hi) return false;
  }
  return true;
}

namespace {
// Slab floor: small Take()s coalesce into one allocation instead of one
// slab each. 1<<16 cells = 512 KiB, about one shard's working set at the
// default fused budget.
constexpr uint64_t kMinSlabCells = uint64_t{1} << 16;
// Keeps every Take() 64-byte aligned: slabs are 64-byte aligned and every
// grant is a multiple of 8 doubles.
constexpr uint64_t kGrantAlignCells = 8;
}  // namespace

double* ShardScratch::Take(uint64_t cells) {
  const uint64_t want =
      std::max<uint64_t>(cells + (kGrantAlignCells - 1), kGrantAlignCells) &
      ~(kGrantAlignCells - 1);
  while (slab_ < slabs_.size() &&
         used_ + want > slabs_[slab_].capacity()) {
    ++slab_;
    used_ = 0;
  }
  if (slab_ == slabs_.size()) {
    TensorBuffer slab;
    slab.resize(std::max(want, kMinSlabCells));
    slabs_.push_back(std::move(slab));
    used_ = 0;
  }
  double* out = slabs_[slab_].data() + used_;
  used_ += want;
  return out;
}

void ShardScratch::Reset() {
  slab_ = 0;
  used_ = 0;
}

uint64_t ShardScratch::capacity_cells() const {
  uint64_t total = 0;
  for (const TensorBuffer& slab : slabs_) total += slab.capacity();
  return total;
}

}  // namespace vecube
