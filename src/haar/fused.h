// Fused multi-level cascade kernels (DESIGN.md §11).
//
// A cascade of k P1/R1 steps executed one step at a time materializes k
// intermediate tensors and streams the whole (shrinking) cube through
// memory k times. But every step only combines cells that agree on all
// untouched coordinates, so the cascade factors over *slabs*: fix the
// coordinates of the dimensions before the touched window and a tile of
// the trailing (inner) cells, and the entire k-level reduction of that
// slab runs in a scratch tile that fits in cache. The fused engine
//
//   1. plans: validates the step list against the evolving extents
//      (reporting exactly the statuses the unfused kernels would), then
//      greedily groups consecutive steps whose combined dimension window
//      keeps the first intermediate within the scratch budget;
//   2. executes each multi-step group per (outer slab, inner tile),
//      ping-ponging intermediate levels through two ScratchArena buffers:
//      the first pass reads the input slab in place, middle passes stay
//      packed in scratch, and the last pass writes straight into the
//      output tensor. Single-step groups fall through to the plain
//      vectorized kernels.
//
// Bit-exactness: each output cell of a P1/R1 step is one add/subtract of
// two cells; the fused engine performs the same per-dimension step
// sequence, so every result cell is produced by the identical
// (a+b)+(c+d)-shaped association tree as the step-at-a-time path — fused
// results are bit-identical for any grouping, tile width, scratch budget,
// or thread count. OpCounter totals are derived analytically from the
// step volumes (the same totals the unfused kernels book), so plan costs
// and measured ops stay exact.

#ifndef VECUBE_HAAR_FUSED_H_
#define VECUBE_HAAR_FUSED_H_

#include <cstdint>
#include <vector>

#include "cube/tensor.h"
#include "haar/cascade.h"
#include "haar/scratch.h"
#include "haar/transform.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// Applies a sequence of P1/R1 steps left to right, fusing runs of steps
/// into single passes where the scratch budget allows. Semantically
/// identical to applying PartialSum / PartialResidual per step (bit-exact
/// results, identical OpCounter::adds), including the Status returned for
/// invalid steps. `pool` and `arena` are optional accelerators. `ctx`
/// (optional) is polled between groups and at (slab, tile) chunk
/// granularity inside fused groups; an expired/cancelled context unwinds
/// with its Check() status — results are never partially published.
Result<Tensor> CascadeAnalysis(const Tensor& input,
                               const std::vector<CascadeStep>& steps,
                               OpCounter* ops = nullptr,
                               ThreadPool* pool = nullptr,
                               ScratchArena* arena = nullptr,
                               const QueryContext* ctx = nullptr);

/// `levels` fused P1 steps along `dim` (the depth-k cascade of Eq. 7).
/// Requires extent(dim) divisible by 2^levels.
Result<Tensor> CascadeSum(const Tensor& input, uint32_t dim, uint32_t levels,
                          OpCounter* ops = nullptr,
                          ThreadPool* pool = nullptr,
                          ScratchArena* arena = nullptr,
                          const QueryContext* ctx = nullptr);

namespace internal {

/// Default per-buffer scratch budget, in cells: the largest first
/// intermediate a fused group may produce per inner tile. Two buffers of
/// this size (512 KiB total) keep the whole ping-pong resident in L2.
inline constexpr uint64_t kDefaultFusedBudgetCells = uint64_t{1} << 15;

/// Current budget (cells per ping buffer).
uint64_t FusedBudgetCells();

/// Overrides the scratch budget; 0 restores the default. Tests use tiny
/// budgets to force group splits and windowed tiling on small tensors.
/// Affects planning only — results are bit-identical at any budget.
void SetFusedBudgetForTesting(uint64_t cells);

/// Runs an already-validated cascade serially over raw row-major storage:
/// every fused group of `steps` applied to `in` (shape `in_extents`),
/// final level written to `out` (which must not alias `in` or any scratch
/// grant). All intermediates and ping-pong tiles draw from `scratch` —
/// no locks, no pool, no allocation once the lane's slabs are warm — so
/// this is the per-lane engine of the shard executor (DESIGN.md §14).
/// The caller owns the scratch Reset() cycle: grants made before the call
/// (e.g. a gathered input subrectangle) stay valid throughout. `ctx` is
/// polled per (slab, tile) chunk. Bit-identical to CascadeAnalysis over
/// the same step list; books nothing (callers account analytically).
[[nodiscard]] Status ExecuteCascadeSerial(
    const double* in, const std::vector<uint32_t>& in_extents,
    const std::vector<CascadeStep>& steps, double* out, ShardScratch* scratch,
    const QueryContext* ctx = nullptr);

}  // namespace internal

}  // namespace vecube

#endif  // VECUBE_HAAR_FUSED_H_
