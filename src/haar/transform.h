// The first partial aggregation operator pair (P1^m, R1^m) of Section 3.1
// and its perfect-reconstruction inverse.
//
//   P1^m(A)[.., i, ..] = A[.., 2i, ..] + A[.., 2i+1, ..]      (Eq. 1)
//   R1^m(A)[.., i, ..] = A[.., 2i, ..] - A[.., 2i+1, ..]      (Eq. 2)
//
//   A[.., 2i,   ..] = (P + R) / 2                             (Eq. 3)
//   A[.., 2i+1, ..] = (P - R) / 2                             (Eq. 4)
//
// This is the unnormalized two-tap Haar analysis/synthesis filter bank,
// applied separably along one dimension (Property 4). The pair is
// non-expansive: Vol(P) + Vol(R) = Vol(A) (Property 3).
//
// Operation accounting: each partial/residual output cell costs one
// addition/subtraction, and each synthesis output cell costs one — this is
// the unit in which the paper's processing costs (Eqs. 26-28, Procedure 3)
// are expressed, and all kernels optionally report it so that measured
// counts can be checked against the analytic cost model. Synthesis
// additionally performs one halving (multiplication by 0.5) per output
// cell (the "/2" of Eqs. 3-4); the paper's cost model is denominated in
// additive operations only, so halvings are booked in OpCounter::muls and
// deliberately excluded from `adds` — that keeps measured adds equal to
// the Procedure-3 plan cost T_n exactly, while still making the halving
// work visible to benchmarks and tests.
//
// Parallelism: every kernel is a gather over independent output rows
// (outer-block × half-extent pairs), so each optionally fans the row loop
// out over a ThreadPool. Chunks are disjoint output ranges and the op
// count is derived from the output volume on the calling thread, so
// results and counters are bit-identical to the serial path at any thread
// count. Tensors below kParallelKernelCells always run serially — the
// fork/join overhead dwarfs the arithmetic there.

#ifndef VECUBE_HAAR_TRANSFORM_H_
#define VECUBE_HAAR_TRANSFORM_H_

#include <cstdint>

#include "cube/tensor.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// Accumulates the operation counts of transform kernels. `adds` is the
/// paper's cost unit (additions/subtractions; equals Procedure-3 plan
/// costs); `muls` counts the synthesis halvings, which the cost model
/// treats as free (see the file comment).
struct OpCounter {
  uint64_t adds = 0;
  uint64_t muls = 0;

  void Reset() { *this = OpCounter{}; }
};

/// Minimum output cells before a kernel fans out over a thread pool.
inline constexpr uint64_t kParallelKernelCells = uint64_t{1} << 14;

namespace internal {
/// Rows per ParallelFor grain for rows of `inner` cells: the least row
/// count whose chunk carries at least kParallelKernelCells cells (ceiling
/// division — truncation used to undershoot the cell target whenever
/// `inner` did not divide it, over-chunking huge-row tensors down to
/// single rows below the threshold).
constexpr uint64_t KernelRowGrain(uint64_t inner) {
  const uint64_t row_cells = inner == 0 ? 1 : inner;
  return (kParallelKernelCells + row_cells - 1) / row_cells;
}
}  // namespace internal

/// First partial aggregation P1 along `dim` (Eq. 1). The input extent along
/// `dim` must be even; the output extent is halved. `ops` may be null;
/// `pool` (optional) parallelizes the row loop for large tensors.
Result<Tensor> PartialSum(const Tensor& input, uint32_t dim,
                          OpCounter* ops = nullptr,
                          ThreadPool* pool = nullptr);

/// First partial residual R1 along `dim` (Eq. 2). Same shape contract as
/// PartialSum.
Result<Tensor> PartialResidual(const Tensor& input, uint32_t dim,
                               OpCounter* ops = nullptr,
                               ThreadPool* pool = nullptr);

/// Computes P1 and R1 in a single pass over the input (one load pair per
/// output pair); cheaper than two separate calls when both are needed.
Status PartialPair(const Tensor& input, uint32_t dim, Tensor* partial,
                   Tensor* residual, OpCounter* ops = nullptr,
                   ThreadPool* pool = nullptr);

/// Perfect reconstruction (Eqs. 3-4): rebuilds the parent from the partial
/// and residual children along `dim`. `partial` and `residual` must have
/// identical extents; the output doubles the extent along `dim`.
Result<Tensor> SynthesizePair(const Tensor& partial, const Tensor& residual,
                              uint32_t dim, OpCounter* ops = nullptr,
                              ThreadPool* pool = nullptr);

}  // namespace vecube

#endif  // VECUBE_HAAR_TRANSFORM_H_
