// AVX2 implementations of the HaarVecOps table. This is the ONLY
// translation unit in the tree allowed to contain CPU intrinsics (lint
// rule simd-dispatch); it is compiled with -mavx2 where the compiler
// supports the flag and collapses to a null provider everywhere else.
// Nothing here is reachable unless the runtime CPU check in
// Avx2VecOpsOrNull() passes, so building with -mavx2 cannot crash
// non-AVX2 hosts.
//
// Bit-exactness contract: every output cell is computed by exactly the
// same single add / subtract / 0.5*(x±y) expression as the scalar table —
// SIMD only reschedules independent cells — so results, operation counts,
// and determinism are unchanged by dispatch.

#include "haar/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace vecube {
namespace {

void AddRowsAvx2(const double* a, const double* b, double* dst,
                 uint64_t n) {
  uint64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dst + j, _mm256_add_pd(_mm256_loadu_pd(a + j),
                                            _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) dst[j] = a[j] + b[j];
}

void SubRowsAvx2(const double* a, const double* b, double* dst,
                 uint64_t n) {
  uint64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(dst + j, _mm256_sub_pd(_mm256_loadu_pd(a + j),
                                            _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) dst[j] = a[j] - b[j];
}

void AddSubRowsAvx2(const double* a, const double* b, double* sum,
                    double* diff, uint64_t n) {
  uint64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(a + j);
    const __m256d y = _mm256_loadu_pd(b + j);
    _mm256_storeu_pd(sum + j, _mm256_add_pd(x, y));
    _mm256_storeu_pd(diff + j, _mm256_sub_pd(x, y));
  }
  for (; j < n; ++j) {
    const double x = a[j];
    const double y = b[j];
    sum[j] = x + y;
    diff[j] = x - y;
  }
}

void SynthRowsAvx2(const double* p, const double* r, double* even,
                   double* odd, uint64_t n) {
  const __m256d half = _mm256_set1_pd(0.5);
  uint64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(p + j);
    const __m256d y = _mm256_loadu_pd(r + j);
    _mm256_storeu_pd(even + j, _mm256_mul_pd(half, _mm256_add_pd(x, y)));
    _mm256_storeu_pd(odd + j, _mm256_mul_pd(half, _mm256_sub_pd(x, y)));
  }
  for (; j < n; ++j) {
    const double x = p[j];
    const double y = r[j];
    even[j] = 0.5 * (x + y);
    odd[j] = 0.5 * (x - y);
  }
}

// Deinterleave helper: from v0 = [a0 a1 a2 a3], v1 = [a4 a5 a6 a7]
// produce even = [a0 a2 a4 a6] and odd = [a1 a3 a5 a7] lane orders
// [e0 e2 e1 e3]-style intermediates; the 0xD8 permute restores index
// order after the per-128-bit-lane unpack.
inline __m256d RestoreOrder(__m256d v) {
  return _mm256_permute4x64_pd(v, 0xD8);  // lanes 0,2,1,3 -> 0,1,2,3
}

void PairSumAvx2(const double* in, double* sum, uint64_t n) {
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(in + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(in + 2 * i + 4);
    const __m256d even = _mm256_unpacklo_pd(v0, v1);  // a0 a4 a2 a6
    const __m256d odd = _mm256_unpackhi_pd(v0, v1);   // a1 a5 a3 a7
    _mm256_storeu_pd(sum + i, RestoreOrder(_mm256_add_pd(even, odd)));
  }
  for (; i < n; ++i) sum[i] = in[2 * i] + in[2 * i + 1];
}

void PairDiffAvx2(const double* in, double* diff, uint64_t n) {
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(in + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(in + 2 * i + 4);
    const __m256d even = _mm256_unpacklo_pd(v0, v1);
    const __m256d odd = _mm256_unpackhi_pd(v0, v1);
    _mm256_storeu_pd(diff + i, RestoreOrder(_mm256_sub_pd(even, odd)));
  }
  for (; i < n; ++i) diff[i] = in[2 * i] - in[2 * i + 1];
}

void PairBothAvx2(const double* in, double* sum, double* diff,
                  uint64_t n) {
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = _mm256_loadu_pd(in + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(in + 2 * i + 4);
    const __m256d even = _mm256_unpacklo_pd(v0, v1);
    const __m256d odd = _mm256_unpackhi_pd(v0, v1);
    _mm256_storeu_pd(sum + i, RestoreOrder(_mm256_add_pd(even, odd)));
    _mm256_storeu_pd(diff + i, RestoreOrder(_mm256_sub_pd(even, odd)));
  }
  for (; i < n; ++i) {
    const double x = in[2 * i];
    const double y = in[2 * i + 1];
    sum[i] = x + y;
    diff[i] = x - y;
  }
}

void PairSynthAvx2(const double* p, const double* r, double* out,
                   uint64_t n) {
  const __m256d half = _mm256_set1_pd(0.5);
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(p + i);
    const __m256d y = _mm256_loadu_pd(r + i);
    const __m256d even = _mm256_mul_pd(half, _mm256_add_pd(x, y));
    const __m256d odd = _mm256_mul_pd(half, _mm256_sub_pd(x, y));
    // Interleave [e0 e1 e2 e3] / [o0 o1 o2 o3] into
    // [e0 o0 e1 o1] and [e2 o2 e3 o3].
    const __m256d lo = _mm256_unpacklo_pd(even, odd);  // e0 o0 e2 o2
    const __m256d hi = _mm256_unpackhi_pd(even, odd);  // e1 o1 e3 o3
    _mm256_storeu_pd(out + 2 * i, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(out + 2 * i + 4,
                     _mm256_permute2f128_pd(lo, hi, 0x31));
  }
  for (; i < n; ++i) {
    const double x = p[i];
    const double y = r[i];
    out[2 * i] = 0.5 * (x + y);
    out[2 * i + 1] = 0.5 * (x - y);
  }
}

constexpr HaarVecOps kAvx2Ops = {
    AddRowsAvx2, SubRowsAvx2, AddSubRowsAvx2, SynthRowsAvx2,
    PairSumAvx2, PairDiffAvx2, PairBothAvx2,  PairSynthAvx2,
    "avx2",
};

bool CpuHasAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

namespace internal {

const HaarVecOps* Avx2VecOpsOrNull() {
  static const bool has_avx2 = CpuHasAvx2();
  return has_avx2 ? &kAvx2Ops : nullptr;
}

}  // namespace internal
}  // namespace vecube

#else  // !defined(__AVX2__)

namespace vecube {
namespace internal {

const HaarVecOps* Avx2VecOpsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace vecube

#endif  // defined(__AVX2__)
