// OlapSession: the one-stop public API.
//
// Wraps the full pipeline — cube construction, workload-driven view
// element selection (Algorithms 1 and 2), materialization, dynamic
// assembly, and range aggregation — behind a single object with sane
// defaults, for applications that do not need to compose the lower-level
// pieces themselves.
//
//   auto session = OlapSession::FromRelation(relation, shape);
//   session->DeclareWorkload(population);   // or just start querying
//   session->Optimize();                    // select + materialize
//   auto view = session->ViewByMask(0b101);
//   auto sum  = session->RangeSum(range);
//
// Thread safety (DESIGN.md §12): an OlapSession is a single-caller
// object — queries, updates, Optimize(), and Checkpoint() must not run
// concurrently. The planner memo tables and SessionStats are
// deliberately unsynchronized: planning is serial by contract, and
// concurrent serving is built by sharing the internally synchronized
// components (ViewCache, ScratchArena, BufferedAccessLog, WriteAheadLog,
// EpochDomain) across one AssemblyEngine per worker, not by hammering
// one session from many threads. Of the accessors, serve_metrics(),
// buffered_accesses(), and last_lsn() are safe to call from a monitoring
// thread while the owner is querying; stats(), access_tracker(), store()
// and cube() are not (they return references into unsynchronized state).

#ifndef VECUBE_API_SESSION_H_
#define VECUBE_API_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/assembly.h"
#include "core/io.h"
#include "core/repair.h"
#include "core/store.h"
#include "core/tracker.h"
#include "core/wal.h"
#include "cube/cube_builder.h"
#include "cube/relation.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "haar/scratch.h"
#include "range/range_engine.h"
#include "serve/serving.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "verify/invariants.h"
#include "workload/population.h"

namespace vecube {

/// Cumulative session accounting.
struct SessionStats {
  uint64_t queries = 0;
  uint64_t assembly_ops = 0;       ///< add/sub operations across queries
  uint64_t range_queries = 0;
  uint64_t range_cell_reads = 0;
  uint64_t optimizations = 0;      ///< times Optimize() rebuilt the store
  uint64_t wal_appends = 0;        ///< facts made durable before applying
  uint64_t wal_replayed = 0;       ///< records re-applied by OpenDurable()
  uint64_t checkpoints = 0;        ///< successful Checkpoint() calls
};

/// Durability configuration. Off by default: a session without durability
/// behaves exactly as before (no WAL, no snapshot files, no extra I/O).
struct DurabilityOptions {
  /// Master switch. When on, `directory` must name an existing directory;
  /// the session keeps its snapshot, base-cube, and WAL files there.
  bool enabled = false;
  std::string directory;
  /// fsync the WAL on every AddFact (full write-ahead durability). Off
  /// trades the fsync for throughput: a crash may lose the OS-buffered
  /// tail, but never corrupts what was flushed.
  bool sync_each_append = true;
  /// Auto-Checkpoint() after this many WAL records (0 = manual only).
  uint64_t checkpoint_every = 0;
};

/// Session construction options.
struct OlapSessionOptions {
  /// Extra storage (cells) the optimizer may spend on redundant
  /// elements beyond the non-expansive basis; 0 = non-expansive only.
  uint64_t redundancy_budget_cells = 0;
  /// Record queries so Optimize() can run against observed traffic when
  /// no workload was declared.
  bool track_accesses = true;
  /// Exponential decay of the access history.
  double access_decay = 0.98;
  /// Maintain a parallel COUNT cube/store so AvgByMask() is available.
  bool maintain_count_cube = false;
  /// Crash durability: WAL-before-apply on AddFact, checkpoint snapshots,
  /// OpenDurable() recovery. See DurabilityOptions.
  DurabilityOptions durability = {};
  /// Serving cache (src/serve): memoizes assembled SUM-side element
  /// tensors across Element()/ViewByMask()/RangeSum() with
  /// benefit-weighted eviction. Off unless view_cache.enabled. Cached
  /// answers are bit-exact with uncached ones (assembly is
  /// deterministic); the cache is flushed wholesale by AddFact()/WAL
  /// replay (a point delta stales every element) and by
  /// Optimize()/Repair() (the materialized set changes). The COUNT side
  /// (AvgByMask) is never cached — its elements share ids with SUM ones.
  ViewCacheOptions view_cache = {};
  /// Robustness knobs for the serving front end (serve/serving.h):
  /// deadline → op-budget conversion rate and follower retry policy.
  /// `verify_fill` is ignored — the session installs its own op-count
  /// invariant hook. Degradation is opted into per query via
  /// QueryContext::set_allow_degraded and surfaced only through Query()
  /// (never through Element()/ViewByMask(), which have no channel for
  /// an error bound).
  ServeQueryOptions serving = {};
  /// Execution lanes for assembly (Haar kernels chunk their row loops,
  /// batch assembly fans out across targets). 0 = hardware concurrency;
  /// 1 = fully serial, bit- and count-identical to the single-threaded
  /// engine (any thread count is, but 1 spawns no workers at all).
  uint32_t num_threads = 0;
  /// Dyadic shard budget for aggregate-descent cascades (DESIGN.md §14):
  /// large cascades split into up to this many disjoint-subrectangle
  /// sub-plans plus a log-depth combine stage, each shard running its
  /// whole cascade out of a private scratch slab. 0 = pool size (the
  /// default: one shard per execution lane); 1 disables sharding; other
  /// values round down to a power of two. Any setting is bit- and
  /// op-count-identical — this is a locality/parallelism knob only.
  uint32_t num_shards = 0;
  /// Run the InvariantChecker (src/verify) after each engine operation:
  /// (k,o) bounds, Haar round trip, non-expansive splits, op-count ==
  /// plan-cost, and store consistency after incremental maintenance. A
  /// violation surfaces as Status/Result Internal from the operation that
  /// exposed it. Defaults to ON when the tree is built with the
  /// VECUBE_VERIFY CMake option, OFF otherwise.
#ifdef VECUBE_VERIFY
  bool verify_invariants = true;
#else
  bool verify_invariants = false;
#endif
  /// Budgets for the checker when enabled.
  InvariantOptions verify_options = {};
};

class OlapSession {
 public:
  using Options = OlapSessionOptions;

  /// Drains the buffered access log so no observed-traffic history is
  /// lost (Checkpoint() and Optimize() also drain).
  ~OlapSession();

  /// Starts a session over an existing cube tensor (copied in).
  static Result<std::unique_ptr<OlapSession>> FromCube(const CubeShape& shape,
                                                       Tensor cube,
                                                       Options options = {});

  /// Builds the SUM cube from a relation first (see CubeBuilder).
  static Result<std::unique_ptr<OlapSession>> FromRelation(
      const Relation& relation, const CubeShape& shape,
      const CubeBuildOptions& build_options = {}, Options options = {});

  /// Reopens a durable session from options.durability.directory: loads
  /// the checkpoint snapshots, replays the committed WAL suffix onto each
  /// component (idempotently — each snapshot records the lsn it folded
  /// in, so a crash between checkpoint renames double-applies nothing),
  /// and truncates any torn WAL tail. Elements whose snapshot payload
  /// failed its checksum come back *quarantined*: the session keeps
  /// serving everything assemblable without them, and Repair() re-derives
  /// them. Fails only when the damage is global (unreadable directory or
  /// snapshot structure, base cube unrecoverable, WAL/lsn sequence gap).
  static Result<std::unique_ptr<OlapSession>> OpenDurable(Options options);

  /// Folds the current state into fresh snapshot files (written atomically
  /// via temp + rename) and truncates the WAL. Requires durability.
  Status Checkpoint();

  /// Re-derives quarantined elements (SUM and COUNT sides) from healthy
  /// ones via dynamic assembly; see RepairStore. The base cube is
  /// authoritative for a quarantined root element. Requires nothing —
  /// callable on any session; a clean store yields an empty report.
  Result<RepairReport> Repair();

  /// Declares the expected query distribution; used by Optimize().
  Status DeclareWorkload(QueryPopulation population);

  /// Selects the minimum-cost element set for the declared (or observed)
  /// workload — Algorithm 1, plus Algorithm 2 up to the redundancy budget
  /// — and materializes it. Without any workload information this is an
  /// error; the session serves queries from the raw cube until then.
  Status Optimize();

  /// Appends one fact: cube[coords] += amount, with every materialized
  /// element (and the COUNT side, if enabled) updated incrementally in
  /// O(#elements * d) — no rematerialization.
  Status AddFact(const std::vector<uint32_t>& coords, double amount);

  /// Aggregated view by dimension mask (bit m set = dim m aggregated).
  /// `ctx` (here and below) bounds the query: an expired or cancelled
  /// context unwinds assembly and every wait with kDeadlineExceeded /
  /// kCancelled; the default context is unbounded.
  Result<Tensor> ViewByMask(uint32_t aggregated_mask,
                            const QueryContext& ctx = QueryContext());

  /// AVG view: SUM / COUNT cell-wise (cells with zero count yield 0).
  /// Requires Options::maintain_count_cube.
  Result<Tensor> AvgByMask(uint32_t aggregated_mask,
                           const QueryContext& ctx = QueryContext());

  /// Any view element by id — always exact (degradation, if requested on
  /// `ctx`, is stripped: this signature has no channel for a bound).
  Result<Tensor> Element(const ElementId& id,
                         const QueryContext& ctx = QueryContext());

  /// Degradation-aware element query: like Element(), but when `ctx`
  /// opted in via set_allow_degraded and the budget falls short, returns
  /// an approximate answer whose `l2_bound` soundly bounds its L2 error.
  /// Degraded answers are never cached.
  Result<QueryAnswer> Query(const ElementId& id,
                            const QueryContext& ctx = QueryContext());

  /// Range-aggregation (Section 6); missing intermediate elements are
  /// assembled on demand and cached.
  Result<double> RangeSum(const RangeSpec& range,
                          const QueryContext& ctx = QueryContext());

  [[nodiscard]] const CubeShape& shape() const { return shape_; }
  [[nodiscard]] const ElementStore& store() const { return store_; }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }
  [[nodiscard]] const Tensor& cube() const { return cube_; }
  /// True when durability is active (a WAL is open).
  [[nodiscard]] bool durable() const { return wal_ != nullptr; }
  /// Lsn of the last durable fact; 0 before any. Requires durable().
  [[nodiscard]] uint64_t last_lsn() const {
    return wal_ != nullptr ? wal_->last_lsn() : 0;
  }
  /// Violation accounting when Options::verify_invariants is on; null
  /// otherwise.
  [[nodiscard]] const InvariantChecker* invariant_checker() const { return checker_.get(); }
  /// True when the serving cache is active.
  [[nodiscard]] bool caching() const { return cache_ != nullptr; }
  /// Applies every buffered access record to the tracker immediately.
  /// Called automatically by Optimize(), Checkpoint(), and the
  /// destructor; exposed so tools/tests can observe up-to-date history.
  void DrainAccessHistory() { access_log_.Drain(); }
  /// Access records buffered but not yet applied to the tracker.
  [[nodiscard]] size_t buffered_accesses() const {
    return access_log_.buffered();
  }
  /// The observed-traffic tracker. Lags by up to buffered_accesses()
  /// records until DrainAccessHistory() (or Optimize/Checkpoint) runs.
  [[nodiscard]] const AccessTracker& access_tracker() const {
    return tracker_;
  }
  /// Serving-cache counters; a zeroed struct when the cache is disabled.
  [[nodiscard]] ServeMetrics serve_metrics() const {
    return cache_ != nullptr ? cache_->Metrics() : ServeMetrics{};
  }

 private:
  OlapSession(CubeShape shape, Tensor cube, Options options);

  /// Opens (or creates) the WAL and writes the initial checkpoint; called
  /// by the fresh-start constructors when durability is requested.
  Status InitDurability();
  /// Saves `cube` as a single-root-element v2 snapshot at `path`.
  Status SaveCubeSnapshot(const std::string& path, const Tensor& cube,
                          uint64_t wal_seq) const;

  void RebuildEngines();
  /// Full invariant sweep (bounds, round trip, splits, consistency,
  /// reconstruction) over the SUM store — and the COUNT store when
  /// maintained. No-op returning OK when verification is off.
  Status VerifyFullState();
  /// Light per-update sweep: bounds + sampled store/cube consistency.
  Status VerifyAfterUpdate();
  /// Measured-vs-planned op check for one assembled target.
  Status VerifyOpCount(const ElementId& target, uint64_t measured_ops);

  CubeShape shape_;
  Tensor cube_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  // null when running serial
  /// Kernel scratch shared by all of this session's engines (and their
  /// rebuilds); declared before the engines so it outlives them.
  ScratchArena scratch_;
  ElementStore store_;
  std::optional<Tensor> count_cube_;
  std::optional<ElementStore> count_store_;
  std::unique_ptr<AssemblyEngine> engine_;
  std::unique_ptr<AssemblyEngine> count_engine_;
  std::unique_ptr<RangeEngine> range_engine_;
  std::unique_ptr<ViewCache> cache_;  // null unless view_cache.enabled
  /// Serving front end for Element()/Query(); rebuilt with the engines.
  std::unique_ptr<ElementServer> server_;
  AccessTracker tracker_;
  /// Write-behind buffer in front of tracker_ keeping Record() off the
  /// serving hit path; declared after tracker_ so it drains cleanly
  /// first during destruction.
  BufferedAccessLog access_log_{&tracker_};
  std::optional<QueryPopulation> declared_workload_;
  std::unique_ptr<WriteAheadLog> wal_;  // null unless durability enabled
  SessionStats stats_;
  std::unique_ptr<InvariantChecker> checker_;  // null when verification off
};

}  // namespace vecube

#endif  // VECUBE_API_SESSION_H_
