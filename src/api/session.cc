#include "api/session.h"

#include <algorithm>

#include "core/basis.h"
#include "core/computer.h"
#include "core/update.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "util/io_file.h"
#include "util/logging.h"

namespace vecube {

namespace {

// File set inside DurabilityOptions::directory. Each snapshot records the
// last WAL lsn it folded in, so the components recover independently: a
// crash between checkpoint renames leaves them at different seqs, and
// replay applies to each component exactly the records it is missing.
constexpr char kStoreFile[] = "store.vecube";
constexpr char kCubeFile[] = "cube.vecube";
constexpr char kCountStoreFile[] = "store.count.vecube";
constexpr char kCountCubeFile[] = "cube.count.vecube";
constexpr char kWalFile[] = "wal.log";

std::string JoinPath(const std::string& dir, const char* file) {
  if (!dir.empty() && dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

// Extracts the root element out of a base-cube snapshot store.
Result<Tensor> TakeRoot(ElementStore* store) {
  Tensor* root;
  VECUBE_ASSIGN_OR_RETURN(
      root, store->GetMutable(ElementId::Root(store->shape().ndim())));
  return std::move(*root);
}

}  // namespace

OlapSession::OlapSession(CubeShape shape, Tensor cube, Options options)
    : shape_(std::move(shape)),
      cube_(std::move(cube)),
      options_(options),
      store_(shape_),
      tracker_(options.access_decay) {
  const uint32_t threads = options.num_threads == 0
                               ? ThreadPool::DefaultThreadCount()
                               : options.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (options.verify_invariants) {
    checker_ =
        std::make_unique<InvariantChecker>(shape_, options.verify_options);
  }
  if (options.view_cache.enabled) {
    cache_ = std::make_unique<ViewCache>(options.view_cache);
  }
}

OlapSession::~OlapSession() {
  // Observed-traffic history buffered on the serving path must not be
  // lost: anything still reading the tracker (advisors, tooling holding
  // a reference) sees the complete record.
  access_log_.Drain();
}

Status OlapSession::VerifyFullState() {
  if (checker_ == nullptr) return Status::OK();
  VECUBE_RETURN_NOT_OK(checker_->CheckAll(store_, cube_));
  if (count_store_.has_value()) {
    VECUBE_RETURN_NOT_OK(checker_->CheckAll(*count_store_, *count_cube_));
  }
  return Status::OK();
}

Status OlapSession::VerifyAfterUpdate() {
  if (checker_ == nullptr) return Status::OK();
  VECUBE_RETURN_NOT_OK(checker_->CheckElementBounds(store_));
  VECUBE_RETURN_NOT_OK(checker_->CheckStoreAccounting(store_));
  VECUBE_RETURN_NOT_OK(checker_->CheckStoreConsistency(store_, cube_));
  if (count_store_.has_value()) {
    VECUBE_RETURN_NOT_OK(
        checker_->CheckStoreConsistency(*count_store_, *count_cube_));
  }
  return Status::OK();
}

Status OlapSession::VerifyOpCount(const ElementId& target,
                                  uint64_t measured_ops) {
  if (checker_ == nullptr) return Status::OK();
  // PlanCost is memoized from the assembly that just ran, so this is a
  // table lookup, not a second planning pass.
  return checker_->CheckOpCount(engine_->PlanCost(target), measured_ops);
}

Result<std::unique_ptr<OlapSession>> OlapSession::FromCube(
    const CubeShape& shape, Tensor cube, Options options) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  if (options.access_decay <= 0.0 || options.access_decay > 1.0) {
    return Status::InvalidArgument("access_decay must be in (0, 1]");
  }
  std::unique_ptr<OlapSession> session(
      new OlapSession(shape, std::move(cube), options));
  VECUBE_RETURN_NOT_OK(
      session->store_.Put(ElementId::Root(shape.ndim()), session->cube_));
  if (options.maintain_count_cube) {
    // Without a relation the per-cell record counts are unknown; start an
    // empty COUNT side that AddFact() maintains going forward.
    Tensor counts;
    VECUBE_ASSIGN_OR_RETURN(counts, Tensor::Zeros(shape.extents()));
    session->count_cube_ = std::move(counts);
    ElementStore count_store(shape);
    VECUBE_RETURN_NOT_OK(count_store.Put(ElementId::Root(shape.ndim()),
                                         *session->count_cube_));
    session->count_store_ = std::move(count_store);
  }
  session->RebuildEngines();
  VECUBE_RETURN_NOT_OK(session->VerifyFullState());
  if (options.durability.enabled) {
    VECUBE_RETURN_NOT_OK(session->InitDurability());
  }
  return session;
}

Result<std::unique_ptr<OlapSession>> OlapSession::FromRelation(
    const Relation& relation, const CubeShape& shape,
    const CubeBuildOptions& build_options, Options options) {
  BuiltCube built;
  VECUBE_ASSIGN_OR_RETURN(built,
                          CubeBuilder::Build(relation, shape, build_options));
  std::unique_ptr<OlapSession> session;
  VECUBE_ASSIGN_OR_RETURN(
      session, FromCube(shape, std::move(built.cube), options));
  if (options.maintain_count_cube) {
    CubeBuildOptions count_options = build_options;
    count_options.count_instead_of_sum = true;
    BuiltCube counts;
    VECUBE_ASSIGN_OR_RETURN(
        counts, CubeBuilder::Build(relation, shape, count_options));
    session->count_cube_ = std::move(counts.cube);
    ElementStore count_store(shape);
    VECUBE_RETURN_NOT_OK(count_store.Put(ElementId::Root(shape.ndim()),
                                         *session->count_cube_));
    session->count_store_ = std::move(count_store);
    session->RebuildEngines();
    VECUBE_RETURN_NOT_OK(session->VerifyFullState());
    if (options.durability.enabled) {
      // FromCube checkpointed before the COUNT side held real data;
      // refresh the on-disk state to match.
      VECUBE_RETURN_NOT_OK(session->Checkpoint());
    }
  }
  return session;
}

Status OlapSession::InitDurability() {
  const DurabilityOptions& d = options_.durability;
  if (d.directory.empty()) {
    return Status::InvalidArgument(
        "durability.directory must be set when durability is enabled");
  }
  // Fresh start: a stale log from a previous incarnation (possibly a
  // different shape) is discarded, not replayed — reopening existing
  // durable state is OpenDurable()'s job.
  const std::string wal_path = JoinPath(d.directory, kWalFile);
  RemoveFileIfExists(wal_path);
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(wal_path, shape_, nullptr, d.sync_each_append);
  VECUBE_RETURN_NOT_OK(wal.status());
  wal_ = std::move(wal).value();
  return Checkpoint();
}

Status OlapSession::SaveCubeSnapshot(const std::string& path,
                                     const Tensor& cube,
                                     uint64_t wal_seq) const {
  ElementStore snap(shape_);
  VECUBE_RETURN_NOT_OK(snap.Put(ElementId::Root(shape_.ndim()), cube));
  SnapshotMeta meta;
  meta.wal_seq = wal_seq;
  meta.flags = kSnapshotRootIsCube;
  return SaveStoreV2(snap, path, meta);
}

Status OlapSession::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "durability is not enabled for this session");
  }
  // Fold buffered access records into the tracker at every durability
  // boundary so the reconfigure/advisor loop never works from a
  // truncated history.
  access_log_.Drain();
  // Quarantined elements carry no data to persist; repair before
  // checkpointing to keep them in the materialized set.
  const std::string& dir = options_.durability.directory;
  const uint64_t seq = wal_->last_lsn();
  SnapshotMeta meta;
  meta.wal_seq = seq;
  VECUBE_RETURN_NOT_OK(SaveCubeSnapshot(JoinPath(dir, kCubeFile), cube_, seq));
  VECUBE_RETURN_NOT_OK(SaveStoreV2(store_, JoinPath(dir, kStoreFile), meta));
  if (count_cube_.has_value()) {
    VECUBE_RETURN_NOT_OK(
        SaveCubeSnapshot(JoinPath(dir, kCountCubeFile), *count_cube_, seq));
    VECUBE_RETURN_NOT_OK(
        SaveStoreV2(*count_store_, JoinPath(dir, kCountStoreFile), meta));
  }
  // Every snapshot now durably records seq; records up to it can go. A
  // crash before this point replays onto the old snapshots; after it, the
  // new ones skip everything.
  VECUBE_RETURN_NOT_OK(wal_->Reset());
  ++stats_.checkpoints;
  return Status::OK();
}

Result<std::unique_ptr<OlapSession>> OlapSession::OpenDurable(
    Options options) {
  const DurabilityOptions& d = options.durability;
  if (!d.enabled || d.directory.empty()) {
    return Status::InvalidArgument(
        "OpenDurable requires durability.enabled and a directory");
  }
  if (options.access_decay <= 0.0 || options.access_decay > 1.0) {
    return Status::InvalidArgument("access_decay must be in (0, 1]");
  }

  // The SUM element store is the shape authority. Per-element corruption
  // comes back as quarantine marks, not as a load failure.
  SnapshotReport store_report;
  Result<ElementStore> loaded =
      LoadStoreV2(JoinPath(d.directory, kStoreFile), &store_report);
  VECUBE_RETURN_NOT_OK(loaded.status());
  ElementStore store = std::move(loaded).value();
  const CubeShape shape = store.shape();
  const uint64_t store_seq = store_report.meta.wal_seq;

  // The base cube snapshot; when it is unusable, self-heal by assembling
  // the root from the element store's healthy residents.
  Tensor cube;
  uint64_t cube_seq = 0;
  bool cube_loaded = false;
  {
    SnapshotReport cube_report;
    Result<ElementStore> cube_store =
        LoadStoreV2(JoinPath(d.directory, kCubeFile), &cube_report);
    if (cube_store.ok() &&
        cube_store->shape().extents() == shape.extents()) {
      Result<Tensor> root = TakeRoot(&*cube_store);
      if (root.ok()) {
        cube = std::move(root).value();
        cube_seq = cube_report.meta.wal_seq;
        cube_loaded = true;
      }
    }
  }
  if (!cube_loaded) {
    AssemblyEngine engine(&store);
    Result<Tensor> rebuilt = engine.Assemble(ElementId::Root(shape.ndim()));
    if (!rebuilt.ok()) {
      return Status::Internal(
          "base cube snapshot is unusable and the element store cannot "
          "reconstruct it: " +
          rebuilt.status().ToString());
    }
    cube = std::move(rebuilt).value();
    // The assembled cube is exactly as current as the store it came from.
    cube_seq = store_seq;
  }

  std::unique_ptr<OlapSession> session(
      new OlapSession(shape, std::move(cube), options));
  session->store_ = std::move(store);

  // COUNT side, when requested: same snapshot + fallback structure.
  uint64_t count_store_seq = 0;
  uint64_t count_cube_seq = 0;
  if (options.maintain_count_cube) {
    SnapshotReport count_report;
    Result<ElementStore> count_store =
        LoadStoreV2(JoinPath(d.directory, kCountStoreFile), &count_report);
    VECUBE_RETURN_NOT_OK(count_store.status());
    if (count_store->shape().extents() != shape.extents()) {
      return Status::Internal("COUNT store shape disagrees with SUM store");
    }
    count_store_seq = count_report.meta.wal_seq;
    Tensor count_cube;
    bool count_cube_loaded = false;
    {
      SnapshotReport ccube_report;
      Result<ElementStore> ccube_store =
          LoadStoreV2(JoinPath(d.directory, kCountCubeFile), &ccube_report);
      if (ccube_store.ok() &&
          ccube_store->shape().extents() == shape.extents()) {
        Result<Tensor> root = TakeRoot(&*ccube_store);
        if (root.ok()) {
          count_cube = std::move(root).value();
          count_cube_seq = ccube_report.meta.wal_seq;
          count_cube_loaded = true;
        }
      }
    }
    if (!count_cube_loaded) {
      AssemblyEngine engine(&*count_store);
      Result<Tensor> rebuilt =
          engine.Assemble(ElementId::Root(shape.ndim()));
      if (!rebuilt.ok()) {
        return Status::Internal(
            "COUNT cube snapshot is unusable and the COUNT store cannot "
            "reconstruct it: " +
            rebuilt.status().ToString());
      }
      count_cube = std::move(rebuilt).value();
      count_cube_seq = count_store_seq;
    }
    session->count_cube_ = std::move(count_cube);
    session->count_store_ = std::move(count_store).value();
  }

  // Open the WAL and replay the committed suffix onto each component,
  // skipping what its snapshot already folded in.
  uint64_t min_seq = std::min(store_seq, cube_seq);
  uint64_t max_seq = std::max(store_seq, cube_seq);
  if (options.maintain_count_cube) {
    min_seq = std::min({min_seq, count_store_seq, count_cube_seq});
    max_seq = std::max({max_seq, count_store_seq, count_cube_seq});
  }
  WalScan scan;
  Result<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(
      JoinPath(d.directory, kWalFile), shape, &scan, d.sync_each_append,
      /*create_base_lsn=*/max_seq + 1);
  VECUBE_RETURN_NOT_OK(wal.status());
  if (scan.base_lsn > min_seq + 1) {
    return Status::Internal(
        "WAL gap: log starts at lsn " + std::to_string(scan.base_lsn) +
        " but a snapshot has only folded in lsn " + std::to_string(min_seq));
  }
  if ((*wal)->last_lsn() < max_seq) {
    return Status::Internal(
        "WAL ends at lsn " + std::to_string((*wal)->last_lsn()) +
        " but a snapshot claims lsn " + std::to_string(max_seq) +
        " was logged; the log was replaced or rolled back");
  }
  for (const WalRecord& record : scan.records) {
    const std::vector<uint32_t>& coords = record.delta.coords;
    if (record.lsn > cube_seq) {
      session->cube_[session->cube_.FlatIndex(coords)] += record.delta.delta;
    }
    if (record.lsn > store_seq) {
      VECUBE_RETURN_NOT_OK(
          ApplyPointDelta(&session->store_, coords, record.delta.delta));
    }
    if (session->count_cube_.has_value()) {
      if (record.lsn > count_cube_seq) {
        (*session->count_cube_)[session->count_cube_->FlatIndex(coords)] +=
            1.0;
      }
      if (record.lsn > count_store_seq) {
        VECUBE_RETURN_NOT_OK(
            ApplyPointDelta(&*session->count_store_, coords, 1.0));
      }
    }
    ++session->stats_.wal_replayed;
  }
  session->wal_ = std::move(wal).value();
  // Replayed deltas staled any answers cached before the crash; the cache
  // is in-memory only, but flush defensively in case construction warmed it.
  if (session->cache_ != nullptr) session->cache_->InvalidateAll();
  session->RebuildEngines();
  VECUBE_RETURN_NOT_OK(session->VerifyFullState());
  return session;
}

Result<RepairReport> OlapSession::Repair() {
  RepairReport report;
  const ElementId root = ElementId::Root(shape_.ndim());
  // The in-memory base cube is authoritative for the root element: it was
  // recovered (and WAL-replayed) independently of the store snapshot.
  if (store_.IsQuarantined(root)) {
    VECUBE_RETURN_NOT_OK(store_.Put(root, cube_));
    report.repaired.push_back(root);
  }
  RepairReport sum_report;
  VECUBE_ASSIGN_OR_RETURN(sum_report, RepairStore(&store_, pool_.get()));
  report.repaired.insert(report.repaired.end(), sum_report.repaired.begin(),
                         sum_report.repaired.end());
  report.unrepaired = std::move(sum_report.unrepaired);
  report.assembly_ops += sum_report.assembly_ops;
  if (count_store_.has_value()) {
    if (count_store_->IsQuarantined(root)) {
      VECUBE_RETURN_NOT_OK(count_store_->Put(root, *count_cube_));
      report.repaired.push_back(root);
    }
    RepairReport count_report;
    VECUBE_ASSIGN_OR_RETURN(count_report,
                            RepairStore(&*count_store_, pool_.get()));
    report.repaired.insert(report.repaired.end(),
                           count_report.repaired.begin(),
                           count_report.repaired.end());
    report.unrepaired.insert(report.unrepaired.end(),
                             count_report.unrepaired.begin(),
                             count_report.unrepaired.end());
    report.assembly_ops += count_report.assembly_ops;
  }
  std::sort(report.repaired.begin(), report.repaired.end());
  if (cache_ != nullptr) cache_->InvalidateAll();
  RebuildEngines();
  VECUBE_RETURN_NOT_OK(VerifyFullState());
  return report;
}

void OlapSession::RebuildEngines() {
  engine_ = std::make_unique<AssemblyEngine>(&store_, pool_.get(), &scratch_,
                                             options_.num_shards);
  range_engine_ = std::make_unique<RangeEngine>(
      &store_, MissingElementPolicy::kAssemble, pool_.get(), cache_.get(),
      &scratch_, options_.num_shards);
  if (count_store_.has_value()) {
    count_engine_ = std::make_unique<AssemblyEngine>(
        &*count_store_, pool_.get(), &scratch_, options_.num_shards);
  }
  ServeQueryOptions serve_options = options_.serving;
  // Degradation is a per-query opt-in via QueryContext (Query() only);
  // the server-level default stays exact.
  serve_options.allow_degraded = false;
  // Every fill runs under the session's op-count invariant regardless of
  // what the caller put in Options::serving.
  serve_options.verify_fill = [this](const ElementId& id,
                                     uint64_t measured_ops) {
    return VerifyOpCount(id, measured_ops);
  };
  server_ = std::make_unique<ElementServer>(engine_.get(), &store_,
                                            cache_.get(), serve_options);
}

Status OlapSession::DeclareWorkload(QueryPopulation population) {
  for (const QuerySpec& q : population.queries()) {
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked,
                            ElementId::Make(q.view.codes(), shape_));
  }
  declared_workload_ = std::move(population);
  return Status::OK();
}

Status OlapSession::Optimize() {
  // The tracker must reflect every query recorded so far, including
  // records still sitting in the write-behind buffer.
  access_log_.Drain();
  QueryPopulation population;
  if (declared_workload_.has_value()) {
    population = *declared_workload_;
  } else if (options_.track_accesses && tracker_.total_accesses() > 0) {
    VECUBE_ASSIGN_OR_RETURN(
        population, FixedPopulation(tracker_.Distribution(), shape_));
  } else {
    return Status::FailedPrecondition(
        "no workload declared and no queries observed yet");
  }

  BasisSelection selection;
  VECUBE_ASSIGN_OR_RETURN(selection, SelectMinCostBasis(shape_, population));
  std::vector<ElementId> target_set = selection.basis;

  const uint64_t budget =
      StorageVolume(target_set, shape_) + options_.redundancy_budget_cells;
  if (options_.redundancy_budget_cells > 0) {
    GreedyOptions greedy;
    greedy.storage_target_cells = budget;
    greedy.pool = CandidatePool::kAggregatedViews;
    std::vector<GreedyStep> frontier;
    VECUBE_ASSIGN_OR_RETURN(
        frontier, GreedySelect(shape_, population, target_set, greedy));
    target_set = frontier.back().selected;
  }

  // Materialize the new set from the cube (shared-prefix cascades).
  ElementComputer computer(shape_, &cube_);
  ElementStore next(shape_);
  VECUBE_ASSIGN_OR_RETURN(next, computer.Materialize(target_set));
  store_ = std::move(next);
  if (count_cube_.has_value()) {
    // The COUNT side mirrors the SUM side's element set.
    ElementComputer count_computer(shape_, &*count_cube_);
    ElementStore next_counts(shape_);
    VECUBE_ASSIGN_OR_RETURN(next_counts,
                            count_computer.Materialize(target_set));
    count_store_ = std::move(next_counts);
  }
  // The materialized set changed wholesale; cached entries keep correct
  // values but stale rebuild costs, so flush rather than patch.
  if (cache_ != nullptr) cache_->InvalidateAll();
  RebuildEngines();
  ++stats_.optimizations;
  VECUBE_RETURN_NOT_OK(VerifyFullState());
  if (wal_ != nullptr) {
    // The element set changed wholesale; a recovery replay onto the old
    // snapshot would resurrect it, so fold the new one in now.
    VECUBE_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status OlapSession::AddFact(const std::vector<uint32_t>& coords,
                            double amount) {
  if (coords.size() != shape_.ndim()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (coords[m] >= shape_.extent(m)) {
      return Status::OutOfRange("coordinate outside cube extent");
    }
  }
  if (wal_ != nullptr) {
    // Write-ahead: the fact is durable before anything mutates, so a
    // crash at any later point replays it; a failed append mutates
    // nothing, so memory and disk stay consistent either way.
    CellDelta delta;
    delta.coords = coords;
    delta.delta = amount;
    uint64_t lsn;
    VECUBE_ASSIGN_OR_RETURN(lsn, wal_->Append(delta));
    (void)lsn;
    ++stats_.wal_appends;
  }
  cube_[cube_.FlatIndex(coords)] += amount;
  VECUBE_RETURN_NOT_OK(ApplyPointDelta(&store_, coords, amount));
  if (count_cube_.has_value()) {
    (*count_cube_)[count_cube_->FlatIndex(coords)] += 1.0;
    VECUBE_RETURN_NOT_OK(ApplyPointDelta(&*count_store_, coords, 1.0));
  }
  // Element data changed in place; plans (which depend only on which
  // elements exist) remain valid, so no engine invalidation is needed.
  // Cached *answers* are another story: every view element is a linear
  // functional of the cube, so this delta staled every one of them — as
  // are the stored norms the degradation bounds are computed from.
  if (cache_ != nullptr) cache_->InvalidateAll();
  server_->InvalidateApprox();
  VECUBE_RETURN_NOT_OK(VerifyAfterUpdate());
  if (wal_ != nullptr && options_.durability.checkpoint_every > 0 &&
      wal_->records_in_log() >= options_.durability.checkpoint_every) {
    VECUBE_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Result<Tensor> OlapSession::AvgByMask(uint32_t aggregated_mask,
                                      const QueryContext& ctx) {
  if (!count_store_.has_value()) {
    return Status::FailedPrecondition(
        "session was created without maintain_count_cube");
  }
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  OpCounter ops;
  Tensor sums, counts;
  VECUBE_ASSIGN_OR_RETURN(sums, engine_->Assemble(view, &ops, &ctx));
  VECUBE_ASSIGN_OR_RETURN(counts, count_engine_->Assemble(view, &ops, &ctx));
  if (checker_ != nullptr) {
    // Both assemblies accrued into one counter; each engine's measured
    // ops must equal its own memoized plan cost, so the sum must too.
    VECUBE_RETURN_NOT_OK(checker_->CheckOpCount(
        engine_->PlanCost(view) + count_engine_->PlanCost(view), ops.adds));
  }
  ++stats_.queries;
  stats_.assembly_ops += ops.adds;
  if (options_.track_accesses) access_log_.Record(view);
  Tensor avg = sums;
  for (uint64_t i = 0; i < avg.size(); ++i) {
    avg[i] = counts[i] > 0.0 ? sums[i] / counts[i] : 0.0;
  }
  return avg;
}

Result<Tensor> OlapSession::ViewByMask(uint32_t aggregated_mask,
                                       const QueryContext& ctx) {
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  return Element(view, ctx);
}

Result<Tensor> OlapSession::Element(const ElementId& id,
                                    const QueryContext& ctx) {
  // This signature returns a bare Tensor — no channel for an error
  // bound — so degradation must not leak through it even if the caller
  // set allow_degraded on the context. Query() is the degradation-aware
  // entry point.
  QueryContext exact = ctx;
  exact.set_allow_degraded(false);
  QueryAnswer answer;
  VECUBE_ASSIGN_OR_RETURN(answer, server_->Serve(id, exact));
  ++stats_.queries;
  stats_.assembly_ops += answer.ops;
  if (options_.track_accesses) access_log_.Record(id);
  return std::move(answer.data);
}

Result<QueryAnswer> OlapSession::Query(const ElementId& id,
                                       const QueryContext& ctx) {
  QueryAnswer answer;
  VECUBE_ASSIGN_OR_RETURN(answer, server_->Serve(id, ctx));
  ++stats_.queries;
  stats_.assembly_ops += answer.ops;
  if (options_.track_accesses) access_log_.Record(id);
  return answer;
}

Result<double> OlapSession::RangeSum(const RangeSpec& range,
                                     const QueryContext& ctx) {
  RangeQueryStats range_stats;
  double sum;
  VECUBE_ASSIGN_OR_RETURN(
      sum, range_engine_->RangeSum(range, &range_stats, ctx));
  ++stats_.range_queries;
  stats_.range_cell_reads += range_stats.cell_reads;
  stats_.assembly_ops += range_stats.assembly_ops;
  return sum;
}

}  // namespace vecube
