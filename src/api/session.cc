#include "api/session.h"

#include "core/basis.h"
#include "core/computer.h"
#include "core/update.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "util/logging.h"

namespace vecube {

OlapSession::OlapSession(CubeShape shape, Tensor cube, Options options)
    : shape_(std::move(shape)),
      cube_(std::move(cube)),
      options_(options),
      store_(shape_),
      tracker_(options.access_decay) {
  const uint32_t threads = options.num_threads == 0
                               ? ThreadPool::DefaultThreadCount()
                               : options.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (options.verify_invariants) {
    checker_ =
        std::make_unique<InvariantChecker>(shape_, options.verify_options);
  }
}

Status OlapSession::VerifyFullState() {
  if (checker_ == nullptr) return Status::OK();
  VECUBE_RETURN_NOT_OK(checker_->CheckAll(store_, cube_));
  if (count_store_.has_value()) {
    VECUBE_RETURN_NOT_OK(checker_->CheckAll(*count_store_, *count_cube_));
  }
  return Status::OK();
}

Status OlapSession::VerifyAfterUpdate() {
  if (checker_ == nullptr) return Status::OK();
  VECUBE_RETURN_NOT_OK(checker_->CheckElementBounds(store_));
  VECUBE_RETURN_NOT_OK(checker_->CheckStoreConsistency(store_, cube_));
  if (count_store_.has_value()) {
    VECUBE_RETURN_NOT_OK(
        checker_->CheckStoreConsistency(*count_store_, *count_cube_));
  }
  return Status::OK();
}

Status OlapSession::VerifyOpCount(const ElementId& target,
                                  uint64_t measured_ops) {
  if (checker_ == nullptr) return Status::OK();
  // PlanCost is memoized from the assembly that just ran, so this is a
  // table lookup, not a second planning pass.
  return checker_->CheckOpCount(engine_->PlanCost(target), measured_ops);
}

Result<std::unique_ptr<OlapSession>> OlapSession::FromCube(
    const CubeShape& shape, Tensor cube, Options options) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  if (options.access_decay <= 0.0 || options.access_decay > 1.0) {
    return Status::InvalidArgument("access_decay must be in (0, 1]");
  }
  std::unique_ptr<OlapSession> session(
      new OlapSession(shape, std::move(cube), options));
  VECUBE_RETURN_NOT_OK(
      session->store_.Put(ElementId::Root(shape.ndim()), session->cube_));
  if (options.maintain_count_cube) {
    // Without a relation the per-cell record counts are unknown; start an
    // empty COUNT side that AddFact() maintains going forward.
    Tensor counts;
    VECUBE_ASSIGN_OR_RETURN(counts, Tensor::Zeros(shape.extents()));
    session->count_cube_ = std::move(counts);
    ElementStore count_store(shape);
    VECUBE_RETURN_NOT_OK(count_store.Put(ElementId::Root(shape.ndim()),
                                         *session->count_cube_));
    session->count_store_ = std::move(count_store);
  }
  session->RebuildEngines();
  VECUBE_RETURN_NOT_OK(session->VerifyFullState());
  return session;
}

Result<std::unique_ptr<OlapSession>> OlapSession::FromRelation(
    const Relation& relation, const CubeShape& shape,
    const CubeBuildOptions& build_options, Options options) {
  BuiltCube built;
  VECUBE_ASSIGN_OR_RETURN(built,
                          CubeBuilder::Build(relation, shape, build_options));
  std::unique_ptr<OlapSession> session;
  VECUBE_ASSIGN_OR_RETURN(
      session, FromCube(shape, std::move(built.cube), options));
  if (options.maintain_count_cube) {
    CubeBuildOptions count_options = build_options;
    count_options.count_instead_of_sum = true;
    BuiltCube counts;
    VECUBE_ASSIGN_OR_RETURN(
        counts, CubeBuilder::Build(relation, shape, count_options));
    session->count_cube_ = std::move(counts.cube);
    ElementStore count_store(shape);
    VECUBE_RETURN_NOT_OK(count_store.Put(ElementId::Root(shape.ndim()),
                                         *session->count_cube_));
    session->count_store_ = std::move(count_store);
    session->RebuildEngines();
    VECUBE_RETURN_NOT_OK(session->VerifyFullState());
  }
  return session;
}

void OlapSession::RebuildEngines() {
  engine_ = std::make_unique<AssemblyEngine>(&store_, pool_.get());
  range_engine_ = std::make_unique<RangeEngine>(
      &store_, MissingElementPolicy::kAssemble, pool_.get());
  if (count_store_.has_value()) {
    count_engine_ =
        std::make_unique<AssemblyEngine>(&*count_store_, pool_.get());
  }
}

Status OlapSession::DeclareWorkload(QueryPopulation population) {
  for (const QuerySpec& q : population.queries()) {
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked,
                            ElementId::Make(q.view.codes(), shape_));
  }
  declared_workload_ = std::move(population);
  return Status::OK();
}

Status OlapSession::Optimize() {
  QueryPopulation population;
  if (declared_workload_.has_value()) {
    population = *declared_workload_;
  } else if (options_.track_accesses && tracker_.total_accesses() > 0) {
    VECUBE_ASSIGN_OR_RETURN(
        population, FixedPopulation(tracker_.Distribution(), shape_));
  } else {
    return Status::FailedPrecondition(
        "no workload declared and no queries observed yet");
  }

  BasisSelection selection;
  VECUBE_ASSIGN_OR_RETURN(selection, SelectMinCostBasis(shape_, population));
  std::vector<ElementId> target_set = selection.basis;

  const uint64_t budget =
      StorageVolume(target_set, shape_) + options_.redundancy_budget_cells;
  if (options_.redundancy_budget_cells > 0) {
    GreedyOptions greedy;
    greedy.storage_target_cells = budget;
    greedy.pool = CandidatePool::kAggregatedViews;
    std::vector<GreedyStep> frontier;
    VECUBE_ASSIGN_OR_RETURN(
        frontier, GreedySelect(shape_, population, target_set, greedy));
    target_set = frontier.back().selected;
  }

  // Materialize the new set from the cube (shared-prefix cascades).
  ElementComputer computer(shape_, &cube_);
  ElementStore next(shape_);
  VECUBE_ASSIGN_OR_RETURN(next, computer.Materialize(target_set));
  store_ = std::move(next);
  if (count_cube_.has_value()) {
    // The COUNT side mirrors the SUM side's element set.
    ElementComputer count_computer(shape_, &*count_cube_);
    ElementStore next_counts(shape_);
    VECUBE_ASSIGN_OR_RETURN(next_counts,
                            count_computer.Materialize(target_set));
    count_store_ = std::move(next_counts);
  }
  RebuildEngines();
  ++stats_.optimizations;
  VECUBE_RETURN_NOT_OK(VerifyFullState());
  return Status::OK();
}

Status OlapSession::AddFact(const std::vector<uint32_t>& coords,
                            double amount) {
  if (coords.size() != shape_.ndim()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (coords[m] >= shape_.extent(m)) {
      return Status::OutOfRange("coordinate outside cube extent");
    }
  }
  cube_[cube_.FlatIndex(coords)] += amount;
  VECUBE_RETURN_NOT_OK(ApplyPointDelta(&store_, coords, amount));
  if (count_cube_.has_value()) {
    (*count_cube_)[count_cube_->FlatIndex(coords)] += 1.0;
    VECUBE_RETURN_NOT_OK(ApplyPointDelta(&*count_store_, coords, 1.0));
  }
  // Element data changed in place; plans (which depend only on which
  // elements exist) remain valid, so no engine invalidation is needed.
  VECUBE_RETURN_NOT_OK(VerifyAfterUpdate());
  return Status::OK();
}

Result<Tensor> OlapSession::AvgByMask(uint32_t aggregated_mask) {
  if (!count_store_.has_value()) {
    return Status::FailedPrecondition(
        "session was created without maintain_count_cube");
  }
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  OpCounter ops;
  Tensor sums, counts;
  VECUBE_ASSIGN_OR_RETURN(sums, engine_->Assemble(view, &ops));
  VECUBE_ASSIGN_OR_RETURN(counts, count_engine_->Assemble(view, &ops));
  if (checker_ != nullptr) {
    // Both assemblies accrued into one counter; each engine's measured
    // ops must equal its own memoized plan cost, so the sum must too.
    VECUBE_RETURN_NOT_OK(checker_->CheckOpCount(
        engine_->PlanCost(view) + count_engine_->PlanCost(view), ops.adds));
  }
  ++stats_.queries;
  stats_.assembly_ops += ops.adds;
  if (options_.track_accesses) tracker_.Record(view);
  Tensor avg = sums;
  for (uint64_t i = 0; i < avg.size(); ++i) {
    avg[i] = counts[i] > 0.0 ? sums[i] / counts[i] : 0.0;
  }
  return avg;
}

Result<Tensor> OlapSession::ViewByMask(uint32_t aggregated_mask) {
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  return Element(view);
}

Result<Tensor> OlapSession::Element(const ElementId& id) {
  OpCounter ops;
  Tensor answer;
  VECUBE_ASSIGN_OR_RETURN(answer, engine_->Assemble(id, &ops));
  VECUBE_RETURN_NOT_OK(VerifyOpCount(id, ops.adds));
  ++stats_.queries;
  stats_.assembly_ops += ops.adds;
  if (options_.track_accesses) tracker_.Record(id);
  return answer;
}

Result<double> OlapSession::RangeSum(const RangeSpec& range) {
  RangeQueryStats range_stats;
  double sum;
  VECUBE_ASSIGN_OR_RETURN(sum, range_engine_->RangeSum(range, &range_stats));
  ++stats_.range_queries;
  stats_.range_cell_reads += range_stats.cell_reads;
  stats_.assembly_ops += range_stats.assembly_ops;
  return sum;
}

}  // namespace vecube
