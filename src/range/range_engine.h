// RangeEngine: answers range-sum queries from intermediate view elements.
//
// The canonical dyadic decomposition turns a d-dimensional range into a
// cartesian product of per-dimension aligned blocks; each block
// combination is exactly one cell of the intermediate view element whose
// per-dimension levels are the block sizes (Eq. 40). Over a materialized
// Gaussian pyramid this answers any range in O(Π 2 log2 n_m) cell reads
// instead of O(Π w_m) base-cell additions.

#ifndef VECUBE_RANGE_RANGE_ENGINE_H_
#define VECUBE_RANGE_RANGE_ENGINE_H_

#include <cstdint>

#include "core/assembly.h"
#include "core/store.h"
#include "cube/tensor.h"
#include "range/range.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/result.h"

namespace vecube {

/// What to do when a needed intermediate element is not materialized.
enum class MissingElementPolicy {
  kError,     ///< fail with Status::NotFound
  kAssemble,  ///< assemble it from the store (counted in stats.assembly_ops)
};

/// Per-query accounting.
struct RangeQueryStats {
  uint64_t cell_reads = 0;      ///< intermediate-element cells touched
  uint64_t additions = 0;       ///< adds combining the cells
  uint64_t elements_missing = 0;
  uint64_t assembly_ops = 0;    ///< ops spent assembling missing elements

  void Reset() { *this = RangeQueryStats{}; }
};

class RangeEngine {
 public:
  /// Borrows the store (and pool, cache, and arena, if given); the caller
  /// keeps them all alive. The pool parallelizes on-demand assembly of
  /// missing elements; `arena` recycles assembly kernel scratch. When
  /// `cache` is non-null, missing intermediate elements are looked up /
  /// retained there (sharing the serving layer's benefit-weighted
  /// residency and metrics with view queries) instead of in the engine's
  /// private unbounded store.
  /// `num_shards` is forwarded to the embedded AssemblyEngine's dyadic
  /// shard decomposition (0 = pool size); it never changes answers or
  /// the plan costs this engine exposes.
  explicit RangeEngine(const ElementStore* store,
                       MissingElementPolicy policy =
                           MissingElementPolicy::kAssemble,
                       ThreadPool* pool = nullptr,
                       ViewCache* cache = nullptr,
                       ScratchArena* arena = nullptr,
                       uint32_t num_shards = 0);

  /// S(G(A)) of Eq. 36 via the dyadic decomposition. `stats` optional.
  /// `ctx` is polled at every odometer step (and threaded into on-demand
  /// assemblies and cache waits); expiry or cancellation unwinds the
  /// query with kDeadlineExceeded / kCancelled.
  Result<double> RangeSum(const RangeSpec& range,
                          RangeQueryStats* stats = nullptr,
                          const QueryContext& ctx = QueryContext());

 private:
  const ElementStore* store_;
  MissingElementPolicy policy_;
  AssemblyEngine engine_;
  ViewCache* cache_;  // shared serving cache; null = private store below
  /// Elements assembled on demand under kAssemble when no shared cache
  /// was supplied, kept across queries (unbounded).
  ElementStore assembled_cache_;
};

/// Baseline: direct summation over the base cube (`cube` must be the root
/// tensor). `cells_read` (optional) counts touched cells.
Result<double> NaiveRangeSum(const Tensor& cube, const CubeShape& shape,
                             const RangeSpec& range,
                             uint64_t* cells_read = nullptr);

}  // namespace vecube

#endif  // VECUBE_RANGE_RANGE_ENGINE_H_
