// Range-aggregation queries (Section 6).
//
// A range is an embedded sub-cube G(A) = A[x0:w0, ..., x_{d-1}:w_{d-1}]
// (Eq. 35) and the range-aggregation S(G(A)) sums the measure over it
// (Eq. 36). The commutativity P1^m ∘ G^m = G2^m ∘ P1^m (Eq. 39) means a
// range aligned to powers of two can be read directly from the k-th
// partial-aggregation intermediate element (Eq. 40); a general range
// decomposes into maximal aligned dyadic blocks, each a single cell of
// some intermediate element.

#ifndef VECUBE_RANGE_RANGE_H_
#define VECUBE_RANGE_RANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cube/shape.h"
#include "util/result.h"

namespace vecube {

/// A half-open hyper-rectangular range: per dimension [start, start+width).
struct RangeSpec {
  std::vector<uint32_t> start;
  std::vector<uint32_t> width;

  /// Validates bounds against the shape; widths must be >= 1.
  static Result<RangeSpec> Make(std::vector<uint32_t> start,
                                std::vector<uint32_t> width,
                                const CubeShape& shape);

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(start.size()); }

  /// Number of base cells in the range.
  uint64_t Volume() const;

  std::string ToString() const;
};

/// One maximal aligned dyadic block of a 1-D interval: covers
/// [index << level, (index + 1) << level), i.e. cell `index` of the
/// level-`level` partial aggregation along that dimension.
struct DyadicBlock {
  uint32_t level = 0;
  uint32_t index = 0;

  bool operator==(const DyadicBlock&) const = default;
};

/// Canonical greedy decomposition of [start, start+width) into maximal
/// aligned dyadic blocks; at most 2*log2(n) blocks. `log_extent` bounds
/// the block size by the dimension's extent.
std::vector<DyadicBlock> DecomposeInterval(uint32_t start, uint32_t width,
                                           uint32_t log_extent);

}  // namespace vecube

#endif  // VECUBE_RANGE_RANGE_H_
