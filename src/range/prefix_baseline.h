// Prefix-sum cube baseline for range aggregation (Ho et al. [9] style).
//
// The classic comparator the paper cites for range queries: precompute
// the d-dimensional inclusive prefix-sum cube P, then any range sum is an
// inclusion-exclusion over its 2^d corners. Storage Vol(A); query cost
// 2^d reads regardless of range size — but the structure is rigid, while
// the view element pyramid shares storage with ordinary view assembly.

#ifndef VECUBE_RANGE_PREFIX_BASELINE_H_
#define VECUBE_RANGE_PREFIX_BASELINE_H_

#include <cstdint>

#include "cube/shape.h"
#include "cube/tensor.h"
#include "range/range.h"
#include "util/result.h"

namespace vecube {

class PrefixSumCube {
 public:
  /// Builds the inclusive prefix-sum cube in O(d * Vol(A)) additions.
  static Result<PrefixSumCube> Build(const CubeShape& shape,
                                     const Tensor& cube);

  /// Range sum via inclusion-exclusion; exactly 2^d cell reads.
  /// `cell_reads` optional accounting.
  Result<double> RangeSum(const RangeSpec& range,
                          uint64_t* cell_reads = nullptr) const;

  [[nodiscard]] const Tensor& prefix() const { return prefix_; }

 private:
  PrefixSumCube(CubeShape shape, Tensor prefix)
      : shape_(std::move(shape)), prefix_(std::move(prefix)) {}

  CubeShape shape_;
  Tensor prefix_;
};

}  // namespace vecube

#endif  // VECUBE_RANGE_PREFIX_BASELINE_H_
