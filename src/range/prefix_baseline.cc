#include "range/prefix_baseline.h"

#include <vector>

namespace vecube {

Result<PrefixSumCube> PrefixSumCube::Build(const CubeShape& shape,
                                           const Tensor& cube) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  Tensor prefix = cube;
  // Running sums along each dimension in turn.
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    const uint64_t n = prefix.extent(m);
    const uint64_t inner = prefix.stride(m);
    const uint64_t outer = prefix.size() / (n * inner);
    double* data = prefix.raw();
    for (uint64_t o = 0; o < outer; ++o) {
      double* block = data + o * n * inner;
      for (uint64_t i = 1; i < n; ++i) {
        double* current = block + i * inner;
        const double* previous = current - inner;
        for (uint64_t j = 0; j < inner; ++j) current[j] += previous[j];
      }
    }
  }
  return PrefixSumCube(shape, std::move(prefix));
}

Result<double> PrefixSumCube::RangeSum(const RangeSpec& range,
                                       uint64_t* cell_reads) const {
  RangeSpec checked;
  VECUBE_ASSIGN_OR_RETURN(
      checked, RangeSpec::Make(range.start, range.width, shape_));

  const uint32_t d = shape_.ndim();
  double total = 0.0;
  uint64_t reads = 0;
  // Inclusion-exclusion over the 2^d corners: corner bit m picks the
  // lower (exclusive) face along dimension m.
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    std::vector<uint32_t> coords(d);
    int sign = +1;
    bool skip = false;
    for (uint32_t m = 0; m < d; ++m) {
      if ((mask >> m) & 1u) {
        if (range.start[m] == 0) {
          skip = true;  // empty lower face contributes zero
          break;
        }
        coords[m] = range.start[m] - 1;
        sign = -sign;
      } else {
        coords[m] = range.start[m] + range.width[m] - 1;
      }
    }
    if (skip) continue;
    total += sign * prefix_.At(coords);
    ++reads;
  }
  if (cell_reads != nullptr) *cell_reads += reads;
  return total;
}

}  // namespace vecube
