#include "range/range_engine.h"

#include <optional>
#include <vector>

#include "util/failpoint.h"
#include "util/logging.h"

namespace vecube {

namespace {
/// Follower retries after leader-local aborts before the abort cause
/// surfaces (prevents retry livelock on a repeatedly failing leader).
constexpr uint32_t kMaxFollowerRetries = 3;
}  // namespace

RangeEngine::RangeEngine(const ElementStore* store,
                         MissingElementPolicy policy, ThreadPool* pool,
                         ViewCache* cache, ScratchArena* arena,
                         uint32_t num_shards)
    : store_(store),
      policy_(policy),
      engine_(store, pool, arena, num_shards),
      cache_(cache),
      assembled_cache_(store->shape()) {
  VECUBE_CHECK(store != nullptr);
}

Result<double> RangeEngine::RangeSum(const RangeSpec& range,
                                     RangeQueryStats* stats,
                                     const QueryContext& ctx) {
  const CubeShape& shape = store_->shape();
  if (range.ndim() != shape.ndim()) {
    return Status::InvalidArgument("range arity does not match store");
  }
  RangeSpec checked;
  VECUBE_ASSIGN_OR_RETURN(
      checked, RangeSpec::Make(range.start, range.width, shape));

  const uint32_t d = shape.ndim();
  std::vector<std::vector<DyadicBlock>> blocks(d);
  for (uint32_t m = 0; m < d; ++m) {
    blocks[m] =
        DecomposeInterval(range.start[m], range.width[m], shape.log_extent(m));
  }

  // Odometer over block combinations.
  std::vector<size_t> pick(d, 0);
  std::vector<uint32_t> levels(d);
  std::vector<uint32_t> coords(d);
  double total = 0.0;
  uint64_t terms = 0;
  uint32_t follower_retries = 0;
  for (;;) {
    VECUBE_RETURN_NOT_OK(ctx.Check());
    for (uint32_t m = 0; m < d; ++m) {
      levels[m] = blocks[m][pick[m]].level;
      coords[m] = blocks[m][pick[m]].index;
    }
    ElementId id;
    VECUBE_ASSIGN_OR_RETURN(id, ElementId::Intermediate(levels, shape));

    const Tensor* element = nullptr;
    std::shared_ptr<const Tensor> cached;      // keeps a filled answer alive
    ViewCache::ReadHandle pinned;              // keeps a cache hit alive
    if (store_->Contains(id)) {
      VECUBE_ASSIGN_OR_RETURN(element, store_->Get(id));
    } else if (cache_ != nullptr &&
               policy_ == MissingElementPolicy::kAssemble) {
      // Single-flight through the serving cache: a hit is a pinned,
      // refcount-free read scoped to this odometer step; concurrent
      // misses on the same intermediate assemble it exactly once.
      while (element == nullptr) {
        ViewCache::LookupOutcome outcome = cache_->LookupOrBegin(id);
        if (outcome.hit) {
          pinned = std::move(outcome.hit);
          element = pinned.get();
          break;
        }
        if (!outcome.fill.leader()) {
          ViewCache::FillWait wait = cache_->WaitFill(outcome.fill, ctx);
          if (wait.status.ok()) {
            cached = std::move(wait.data);
            element = cached.get();
            break;
          }
          VECUBE_RETURN_NOT_OK(ctx.Check());  // our own budget ran out
          // Leader-local aborts are retried a bounded number of times;
          // the element's own failure — or exhausted retries — surfaces.
          const bool leader_local = wait.status.IsDeadlineExceeded() ||
                                    wait.status.IsCancelled() ||
                                    wait.status.IsUnavailable();
          if (!leader_local || follower_retries >= kMaxFollowerRetries) {
            return wait.status;
          }
          ++follower_retries;
          cache_->RecordFollowerRetry();
          continue;
        }
        if (std::optional<FailpointAction> fp =
                Failpoints::HitWithDelay("range.fill");
            fp.has_value() && fp->kind == FailpointAction::Kind::kError) {
          Status injected = Status::Internal(
              "injected fill failure (failpoint range.fill)");
          cache_->AbortFill(std::move(outcome.fill), injected);
          return injected;
        }
        if (stats != nullptr) ++stats->elements_missing;
        OpCounter ops;
        Result<Tensor> data = engine_.Assemble(id, &ops, &ctx);
        if (!data.ok()) {
          cache_->AbortFill(std::move(outcome.fill), data.status());
          return data.status();
        }
        if (stats != nullptr) stats->assembly_ops += ops.adds;
        cached = cache_->CompleteFill(std::move(outcome.fill),
                                      std::move(data).value(),
                                      engine_.PlanCost(id));
        element = cached.get();
      }
    } else if (assembled_cache_.Contains(id)) {
      VECUBE_ASSIGN_OR_RETURN(element, assembled_cache_.Get(id));
    } else if (policy_ == MissingElementPolicy::kAssemble) {
      if (stats != nullptr) ++stats->elements_missing;
      OpCounter ops;
      Tensor data;
      VECUBE_ASSIGN_OR_RETURN(data, engine_.Assemble(id, &ops, &ctx));
      if (stats != nullptr) stats->assembly_ops += ops.adds;
      VECUBE_RETURN_NOT_OK(assembled_cache_.Put(id, std::move(data)));
      VECUBE_ASSIGN_OR_RETURN(element, assembled_cache_.Get(id));
    } else {
      return Status::NotFound("intermediate element " + id.ToString() +
                              " not materialized");
    }

    total += element->At(coords);
    ++terms;
    if (stats != nullptr) ++stats->cell_reads;

    // Advance the odometer.
    uint32_t m = 0;
    for (; m < d; ++m) {
      if (++pick[m] < blocks[m].size()) break;
      pick[m] = 0;
    }
    if (m == d) break;
  }
  if (stats != nullptr && terms > 0) stats->additions += terms - 1;
  return total;
}

Result<double> NaiveRangeSum(const Tensor& cube, const CubeShape& shape,
                             const RangeSpec& range, uint64_t* cells_read) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  RangeSpec checked;
  VECUBE_ASSIGN_OR_RETURN(
      checked, RangeSpec::Make(range.start, range.width, shape));

  const uint32_t d = shape.ndim();
  std::vector<uint32_t> coords(range.start);
  double total = 0.0;
  uint64_t reads = 0;
  for (;;) {
    total += cube.At(coords);
    ++reads;
    uint32_t m = 0;
    for (; m < d; ++m) {
      if (++coords[m] < range.start[m] + range.width[m]) break;
      coords[m] = range.start[m];
    }
    if (m == d) break;
  }
  if (cells_read != nullptr) *cells_read += reads;
  return total;
}

}  // namespace vecube
