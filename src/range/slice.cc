#include "range/slice.h"

#include <vector>

namespace vecube {

Result<Tensor> ExtractSubcube(const Tensor& cube, const CubeShape& shape,
                              const RangeSpec& range) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  RangeSpec checked;
  VECUBE_ASSIGN_OR_RETURN(
      checked, RangeSpec::Make(range.start, range.width, shape));

  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Zeros(range.width));
  const uint32_t d = shape.ndim();
  std::vector<uint32_t> src(range.start);
  std::vector<uint32_t> dst(d, 0);
  for (;;) {
    out[out.FlatIndex(dst)] = cube.At(src);
    uint32_t m = 0;
    for (; m < d; ++m) {
      if (++dst[m] < range.width[m]) {
        src[m] = range.start[m] + dst[m];
        break;
      }
      dst[m] = 0;
      src[m] = range.start[m];
    }
    if (m == d) break;
  }
  return out;
}

Result<Tensor> ExtractSlice(const Tensor& cube, const CubeShape& shape,
                            uint32_t dim, uint32_t coordinate) {
  if (dim >= shape.ndim()) {
    return Status::InvalidArgument("dimension out of range");
  }
  if (coordinate >= shape.extent(dim)) {
    return Status::OutOfRange("slice coordinate outside extent");
  }
  std::vector<uint32_t> start(shape.ndim(), 0);
  std::vector<uint32_t> width(shape.extents());
  start[dim] = coordinate;
  width[dim] = 1;
  RangeSpec range;
  VECUBE_ASSIGN_OR_RETURN(range, RangeSpec::Make(start, width, shape));
  return ExtractSubcube(cube, shape, range);
}

}  // namespace vecube
