#include "range/range.h"

#include "util/bits.h"
#include "util/logging.h"

namespace vecube {

Result<RangeSpec> RangeSpec::Make(std::vector<uint32_t> start,
                                  std::vector<uint32_t> width,
                                  const CubeShape& shape) {
  if (start.size() != shape.ndim() || width.size() != shape.ndim()) {
    return Status::InvalidArgument("range arity does not match cube");
  }
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if (width[m] == 0) {
      return Status::InvalidArgument("range width must be >= 1");
    }
    if (static_cast<uint64_t>(start[m]) + width[m] > shape.extent(m)) {
      return Status::OutOfRange(
          "range exceeds extent of dimension " + std::to_string(m));
    }
  }
  return RangeSpec{std::move(start), std::move(width)};
}

uint64_t RangeSpec::Volume() const {
  uint64_t volume = 1;
  for (uint32_t w : width) volume *= w;
  return volume;
}

std::string RangeSpec::ToString() const {
  std::string out = "{";
  for (uint32_t m = 0; m < ndim(); ++m) {
    if (m > 0) out += ", ";
    out += '[';
    out += std::to_string(start[m]);
    out += ':';
    out += std::to_string(start[m] + width[m]);
    out += ')';
  }
  out += "}";
  return out;
}

std::vector<DyadicBlock> DecomposeInterval(uint32_t start, uint32_t width,
                                           uint32_t log_extent) {
  std::vector<DyadicBlock> blocks;
  uint64_t pos = start;
  uint64_t remaining = width;
  while (remaining > 0) {
    // Largest power of two both aligning with pos and fitting in remaining.
    uint32_t level = (pos == 0) ? log_extent
                                : ExactLog2(LargestDyadicFactor(pos));
    if (level > log_extent) level = log_extent;
    while ((uint64_t{1} << level) > remaining) --level;
    blocks.push_back(
        DyadicBlock{level, static_cast<uint32_t>(pos >> level)});
    pos += uint64_t{1} << level;
    remaining -= uint64_t{1} << level;
  }
  return blocks;
}

}  // namespace vecube
