// Sub-cube extraction (slice / dice).
//
// The range engine of Section 6 answers *aggregations* over a range; OLAP
// front-ends also need the un-aggregated sub-cube itself (dice) and
// single-coordinate slices for drill-through. These are plain tensor
// operations, provided here so applications do not hand-roll indexing.

#ifndef VECUBE_RANGE_SLICE_H_
#define VECUBE_RANGE_SLICE_H_

#include <cstdint>

#include "cube/shape.h"
#include "cube/tensor.h"
#include "range/range.h"
#include "util/result.h"

namespace vecube {

/// Copies the embedded sub-cube G(A) (Eq. 35) into its own tensor of
/// extents `range.width`.
Result<Tensor> ExtractSubcube(const Tensor& cube, const CubeShape& shape,
                              const RangeSpec& range);

/// Fixes dimension `dim` at `coordinate` and returns the slice with that
/// dimension reduced to extent 1.
Result<Tensor> ExtractSlice(const Tensor& cube, const CubeShape& shape,
                            uint32_t dim, uint32_t coordinate);

}  // namespace vecube

#endif  // VECUBE_RANGE_SLICE_H_
