// Wavelet-packet best-basis selection for cube compression.
//
// Section 4.3: "by selecting the bases that best isolate the non-zero
// data from the zero areas of the data cube, the view element wavelet
// packet basis can represent the data cube in a compact form." The paper
// leaves this unexplored; we implement the Coifman-Wickerhauser [5]
// best-basis search with a significance-count cost: choose the complete,
// non-redundant tiling of the frequency plane minimizing the number of
// coefficients whose magnitude exceeds a threshold.

#ifndef VECUBE_SELECT_BEST_BASIS_H_
#define VECUBE_SELECT_BEST_BASIS_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

struct CompressionBasis {
  /// The selected non-redundant basis (a wavelet packet basis).
  std::vector<ElementId> basis;
  /// Coefficients with |value| > threshold across the basis — what a
  /// sparse encoding would need to store.
  uint64_t significant_coefficients = 0;
  /// Non-zero cells of the original cube, for comparison.
  uint64_t cube_nonzeros = 0;
};

/// Runs the best-basis DP: cost(V) = #significant coefficients of V's
/// data, minimized over all recursive tilings. Exponential in the graph
/// size; intended for cubes whose full element graph fits in memory
/// (N_ve <= ~2^22).
Result<CompressionBasis> SelectCompressionBasis(const CubeShape& shape,
                                                const Tensor& cube,
                                                double threshold);

}  // namespace vecube

#endif  // VECUBE_SELECT_BEST_BASIS_H_
