#include "select/algorithm2.h"

#include <algorithm>
#include <unordered_set>

#include "core/basis.h"
#include "core/graph.h"
#include "select/procedure3.h"
#include "util/logging.h"

namespace vecube {

namespace {

constexpr uint64_t kMaxCandidates = uint64_t{1} << 20;

Result<double> EvaluateCost(const CubeShape& shape,
                            const std::vector<ElementId>& selected,
                            const QueryPopulation& population) {
  auto calc = Procedure3Calculator::Make(shape, selected);
  if (!calc.ok()) return calc.status();
  return calc->TotalCost(population);
}

// The Section 7.2.2 refinement: drop selected elements that no optimal
// plan references. Removing an unused element changes no plan, so the
// total processing cost is exactly preserved while storage shrinks.
Result<std::vector<ElementId>> RemoveObsolete(
    const CubeShape& shape, const std::vector<ElementId>& selected,
    const QueryPopulation& population) {
  auto calc = Procedure3Calculator::Make(shape, selected);
  if (!calc.ok()) return calc.status();
  return calc->UsedElements(population);
}

}  // namespace

Result<std::vector<GreedyStep>> GreedySelect(const CubeShape& shape,
                                             const QueryPopulation& population,
                                             std::vector<ElementId> initial,
                                             const GreedyOptions& options) {
  ViewElementGraph graph(shape);

  // Candidate pool.
  std::vector<ElementId> candidates;
  if (options.pool == CandidatePool::kAggregatedViews) {
    candidates = graph.AggregatedViews();
  } else {
    if (graph.NumElements() > kMaxCandidates) {
      return Status::InvalidArgument(
          "graph too large to enumerate as an Algorithm-2 candidate pool");
    }
    candidates.reserve(graph.NumElements());
    graph.ForEachElement(
        [&](const ElementId& id) { candidates.push_back(id); });
  }

  std::unordered_set<ElementId, ElementIdHash> selected_set(initial.begin(),
                                                            initial.end());

  std::vector<GreedyStep> frontier;
  GreedyStep step0;
  step0.storage_cells = StorageVolume(initial, shape);
  {
    double cost;
    VECUBE_ASSIGN_OR_RETURN(cost, EvaluateCost(shape, initial, population));
    if (cost >= static_cast<double>(kInfiniteCost)) {
      return Status::FailedPrecondition(
          "initial set is not complete for the query population");
    }
    step0.processing_cost = cost;
  }
  step0.selected = initial;
  frontier.push_back(step0);

  std::vector<ElementId> selected = std::move(initial);
  uint64_t storage = step0.storage_cells;
  double cost = step0.processing_cost;

  struct Improvement {
    double new_cost;
    const ElementId* candidate;
  };

  while (cost > 0.0) {
    // Evaluate every admissible-looking candidate's resulting cost.
    std::vector<Improvement> improvements;
    for (const ElementId& candidate : candidates) {
      if (selected_set.count(candidate) > 0) continue;
      const uint64_t vol = candidate.DataVolume(shape);
      if (options.prune_obsolete) {
        // Even after pruning, the candidate itself must fit.
        if (vol > options.storage_target_cells) continue;
      } else {
        if (storage + vol > options.storage_target_cells) continue;
      }
      selected.push_back(candidate);
      double new_cost;
      VECUBE_ASSIGN_OR_RETURN(new_cost,
                              EvaluateCost(shape, selected, population));
      selected.pop_back();
      if (new_cost < cost) {
        improvements.push_back(Improvement{new_cost, &candidate});
      }
    }
    std::sort(improvements.begin(), improvements.end(),
              [](const Improvement& a, const Improvement& b) {
                return a.new_cost < b.new_cost;
              });

    // Accept the best improvement whose (possibly pruned) set fits.
    bool accepted = false;
    for (const Improvement& improvement : improvements) {
      std::vector<ElementId> next = selected;
      next.push_back(*improvement.candidate);
      if (options.prune_obsolete) {
        VECUBE_ASSIGN_OR_RETURN(next,
                                RemoveObsolete(shape, next, population));
      }
      const uint64_t next_storage = StorageVolume(next, shape);
      if (next_storage > options.storage_target_cells) continue;

      GreedyStep step;
      step.added = *improvement.candidate;
      step.added_valid = true;
      step.storage_cells = next_storage;
      step.processing_cost = improvement.new_cost;
      step.selected = next;
      frontier.push_back(step);

      selected = std::move(next);
      selected_set = std::unordered_set<ElementId, ElementIdHash>(
          selected.begin(), selected.end());
      storage = next_storage;
      cost = improvement.new_cost;
      accepted = true;
      break;
    }
    if (!accepted) break;  // no admissible improvement
  }
  return frontier;
}

}  // namespace vecube
