// The pairwise processing-cost model of Eqs. 26-28.
//
// For a stored element Va supporting a query element Vk, both must be
// aggregated down to their largest common descendant Vl, whose volume is
// the frequency-rectangle intersection I(Va, Vk) (Eq. 25):
//
//   F(a, l) = Σ_{j=log2 I}^{log2 Vol(a) − 1} 2^j = Vol(a) − I     (Eq. 28)
//   C(a, k) = F(a, l) + F(k, l)  if the rectangles intersect       (Eq. 27)
//           = 0                  otherwise
//
// i.e. one addition/subtraction per output cell of the telescoping
// cascade on each side. The per-element support cost against a population
// is C_n = Σ_k f_k C(n, k) (Eq. 29), and the population cost of a
// non-redundant basis is the sum of its members' support costs.

#ifndef VECUBE_SELECT_PAIR_COST_H_
#define VECUBE_SELECT_PAIR_COST_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "workload/population.h"

namespace vecube {

/// C(a, k) of Eq. 27, in add/subtract operations.
uint64_t PairCost(const ElementId& a, const ElementId& k,
                  const CubeShape& shape);

/// C_n(V) of Eq. 29: frequency-weighted support cost of element `v`.
double SupportCost(const ElementId& v, const QueryPopulation& population,
                   const CubeShape& shape);

/// Σ_n C_n over the set — the population processing cost of a
/// non-redundant basis under the pair model (the quantity plotted in
/// Figure 8).
double PopulationPairCost(const std::vector<ElementId>& set,
                          const QueryPopulation& population,
                          const CubeShape& shape);

/// Same, but with unit query weights (Σ_k Σ_n C(n,k)): the raw operation
/// total for answering each view once, which is how the paper's Table 2
/// tabulates the pedagogical example.
uint64_t UnweightedPairCost(const std::vector<ElementId>& set,
                            const std::vector<ElementId>& queries,
                            const CubeShape& shape);

}  // namespace vecube

#endif  // VECUBE_SELECT_PAIR_COST_H_
