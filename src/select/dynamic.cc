#include "select/dynamic.h"

#include <optional>

#include "core/basis.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "workload/population.h"

namespace vecube {

namespace {
/// Follower retries after leader-local aborts before the abort cause
/// surfaces (prevents retry livelock on a repeatedly failing leader).
constexpr uint32_t kMaxFollowerRetries = 3;
}  // namespace

Result<std::unique_ptr<DynamicAssembler>> DynamicAssembler::Make(
    const CubeShape& shape, const Tensor& cube, DynamicOptions options) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  std::unique_ptr<DynamicAssembler> assembler(
      new DynamicAssembler(shape, options));
  VECUBE_RETURN_NOT_OK(
      assembler->store_.Put(ElementId::Root(shape.ndim()), cube));
  assembler->engine_ = std::make_unique<AssemblyEngine>(
      &assembler->store_, nullptr, &assembler->arena_, options.num_shards);
  if (options.cache.enabled) {
    assembler->cache_ = std::make_unique<ViewCache>(options.cache);
  }
  return assembler;
}

DynamicAssembler::~DynamicAssembler() {
  // Buffered observations must reach the tracker before anything still
  // holding a reference reads the final history.
  access_log_.Drain();
}

Result<Tensor> DynamicAssembler::Query(const ElementId& view, OpCounter* ops,
                                       const QueryContext& ctx) {
  VECUBE_RETURN_NOT_OK(ctx.Check());
  Tensor answer;
  if (cache_ == nullptr) {
    VECUBE_ASSIGN_OR_RETURN(answer, engine_->Assemble(view, ops, &ctx));
  } else {
    uint32_t follower_retries = 0;
    for (;;) {
      ViewCache::LookupOutcome outcome = cache_->LookupOrBegin(view);
      if (outcome.hit) {
        answer = *outcome.hit;
        break;
      }
      if (!outcome.fill.leader()) {
        // Another caller is assembling this view; coalesce onto its
        // result instead of duplicating the work.
        ViewCache::FillWait wait = cache_->WaitFill(outcome.fill, ctx);
        if (wait.status.ok()) {
          answer = *wait.data;
          break;
        }
        VECUBE_RETURN_NOT_OK(ctx.Check());  // our own budget ran out
        // A leader-local abort (its deadline, its cancellation, an
        // unspecified abort) is retried a bounded number of times; the
        // element's own failure — or exhausted retries — propagates, so
        // a repeatedly failing leader can never spin followers forever.
        const bool leader_local = wait.status.IsDeadlineExceeded() ||
                                  wait.status.IsCancelled() ||
                                  wait.status.IsUnavailable();
        if (!leader_local || follower_retries >= kMaxFollowerRetries) {
          return wait.status;
        }
        ++follower_retries;
        cache_->RecordFollowerRetry();
        continue;
      }
      if (std::optional<FailpointAction> fp =
              Failpoints::HitWithDelay("dynamic.fill");
          fp.has_value() && fp->kind == FailpointAction::Kind::kError) {
        Status injected = Status::Internal(
            "injected fill failure (failpoint dynamic.fill)");
        cache_->AbortFill(std::move(outcome.fill), injected);
        return injected;
      }
      Result<Tensor> assembled = engine_->Assemble(view, ops, &ctx);
      if (!assembled.ok()) {
        cache_->AbortFill(std::move(outcome.fill), assembled.status());
        return assembled.status();
      }
      // PlanCost is memoized from the assembly that just ran — a table
      // lookup, and exactly the ops a future hit will save.
      std::shared_ptr<const Tensor> served = cache_->CompleteFill(
          std::move(outcome.fill), std::move(assembled).value(),
          engine_->PlanCost(view));
      answer = *served;
      break;
    }
  }
  access_log_.Record(view);
  ++queries_served_;
  // The query was answered; a failed adaptation is a background-health
  // event, not a query error. Record it and return the answer anyway.
  if (Status reconfig = MaybeReconfigure(); !reconfig.ok()) {
    last_reconfig_error_ = std::move(reconfig);
    ++reconfig_failures_;
  }
  return answer;
}

Status DynamicAssembler::MaybeReconfigure() {
  if (queries_served_ - queries_at_last_reconfig_ <
      options_.min_queries_between_reconfigs) {
    return Status::OK();
  }
  // Drift must be evaluated against the complete observed history,
  // including records still in the write-behind buffer.
  access_log_.Drain();
  if (tracker_.L1Drift(baseline_distribution_) < options_.drift_threshold) {
    return Status::OK();
  }
  return Reconfigure();
}

Status DynamicAssembler::Reconfigure() {
  if (Failpoints::Hit("dynamic.reconfigure").has_value()) {
    return Status::Internal(
        "injected reconfiguration failure (failpoint dynamic.reconfigure)");
  }
  access_log_.Drain();
  const auto distribution = tracker_.Distribution();
  if (distribution.empty()) {
    return Status::FailedPrecondition("no accesses observed yet");
  }
  QueryPopulation population;
  VECUBE_ASSIGN_OR_RETURN(population,
                          FixedPopulation(distribution, shape_));

  BasisSelection selection;
  VECUBE_ASSIGN_OR_RETURN(selection, SelectMinCostBasis(shape_, population));
  std::vector<ElementId> target_set = selection.basis;

  if (options_.storage_budget_cells > StorageVolume(target_set, shape_)) {
    GreedyOptions greedy;
    greedy.storage_target_cells = options_.storage_budget_cells;
    // Online reconfiguration must be cheap: restrict the redundancy pass
    // to the 2^d aggregated views (the objects queries actually name)
    // rather than scanning the whole element graph per greedy stage.
    greedy.pool = CandidatePool::kAggregatedViews;
    std::vector<GreedyStep> frontier;
    VECUBE_ASSIGN_OR_RETURN(
        frontier, GreedySelect(shape_, population, target_set, greedy));
    // An empty frontier (budget already satisfied, or no admissible
    // candidates at all) means the greedy pass selected nothing beyond
    // the basis; frontier.back() would be undefined behavior. The
    // Algorithm-1 basis stays the target set in that case.
    if (!frontier.empty()) {
      target_set = frontier.back().selected;
    }
  }

  // Migrate: assemble every element of the new set from the current store
  // (complete by construction), then swap.
  ElementStore next(shape_);
  for (const ElementId& id : target_set) {
    Tensor data;
    VECUBE_ASSIGN_OR_RETURN(data, engine_->Assemble(id));
    VECUBE_RETURN_NOT_OK(next.Put(id, std::move(data)));
  }
  store_ = std::move(next);
  engine_ = std::make_unique<AssemblyEngine>(&store_, nullptr, &arena_,
                                             options_.num_shards);
  // The materialized set changed wholesale: every cached entry's rebuild
  // cost (its eviction score) is stale, so flush rather than patch.
  if (cache_ != nullptr) cache_->InvalidateAll();
  baseline_distribution_ = distribution;
  queries_at_last_reconfig_ = queries_served_;
  ++reconfigurations_;
  last_reconfig_error_ = Status::OK();
  return Status::OK();
}

}  // namespace vecube
