// Procedure 3: total processing cost of a (possibly redundant) view
// element set (Section 5.3).
//
//   F_n = min over stored ancestors s of (Vol(s) − Vol(n))   [aggregation]
//   R_n = Vol(n) + min_m (T_p^m + T_r^m)                     [synthesis]
//   T_n = min(F_n, R_n),     T = Σ_k f_k T_k                 (Eqs. 32-34)
//
// This is the cost the executable AssemblyEngine realizes; the calculator
// here evaluates it for *hypothetical* sets without materializing data,
// which is what the greedy Algorithm 2 needs.

#ifndef VECUBE_SELECT_PROCEDURE3_H_
#define VECUBE_SELECT_PROCEDURE3_H_

#include <cstdint>
#include <vector>

#include "core/assembly.h"
#include "core/element_id.h"
#include "core/graph.h"
#include "cube/shape.h"
#include "util/result.h"
#include "workload/population.h"

namespace vecube {

/// Evaluates Procedure-3 costs for a fixed selected set. Construction is
/// cheap; per-target evaluations are memoized across calls.
class Procedure3Calculator {
 public:
  /// The graph must be small enough for dense memo arrays (<= 2^24 nodes).
  static Result<Procedure3Calculator> Make(const CubeShape& shape,
                                           std::vector<ElementId> selected);

  /// T_n for one target; kInfiniteCost when the set cannot reconstruct it.
  uint64_t Cost(const ElementId& target);

  /// T = Σ_k f_k T_k. Infinity (kInfiniteCost as double) if any query is
  /// unreachable.
  double TotalCost(const QueryPopulation& population);

  /// The selected elements referenced by the optimal plans of the
  /// population's queries. Elements NOT in this set are obsolete: removing
  /// them leaves every optimal plan — and hence the total cost — intact
  /// (the "remove the obsolete view elements" refinement of Section
  /// 7.2.2). Errors if any query is unreachable.
  Result<std::vector<ElementId>> UsedElements(
      const QueryPopulation& population);

  [[nodiscard]] const std::vector<ElementId>& selected() const { return selected_; }

 private:
  Procedure3Calculator(const CubeShape& shape,
                       std::vector<ElementId> selected);

  // Allocation-free DP recursions over raw per-dimension code buffers.
  uint64_t EncodeRaw(const DimCode* codes) const;
  uint64_t VolumeRaw(const DimCode* codes) const;
  // Minimum volume over stored ancestors (inclusive); kInfiniteCost if none.
  uint64_t MinAncestorVolumeRaw(DimCode* codes);
  uint64_t SolveTRaw(DimCode* codes);
  void TraceUsedRaw(DimCode* codes, std::vector<uint8_t>* used);

  CubeShape shape_;
  std::vector<ElementId> selected_;
  ElementIndexer indexer_;
  std::vector<uint8_t> is_selected_;
  std::vector<uint64_t> g_memo_;  // min ancestor volume; 0 == unvisited
  std::vector<uint64_t> g_arg_;   // encoded index of the argmin ancestor
  std::vector<uint64_t> t_memo_;  // T_n + 1; 0 == unvisited
};

}  // namespace vecube

#endif  // VECUBE_SELECT_PROCEDURE3_H_
