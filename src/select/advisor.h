// Configuration advisor: what-if analysis across storage budgets.
//
// A database administrator tuning a cube wants the whole trade-off curve,
// not a single point: for each candidate storage budget, what element set
// would be chosen, what would queries cost, and where do diminishing
// returns set in. The advisor wraps Algorithm 1 + Algorithm 2 across a
// budget sweep and summarizes the frontier, including the canned
// alternatives (cube-only, wavelet basis, full view hierarchy) for
// context.

#ifndef VECUBE_SELECT_ADVISOR_H_
#define VECUBE_SELECT_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"
#include "workload/population.h"

namespace vecube {

/// One advised configuration.
struct AdvisorPoint {
  uint64_t storage_cells = 0;
  double relative_storage = 0.0;   ///< storage / Vol(A)
  double processing_cost = 0.0;    ///< Procedure-3 weighted cost
  std::vector<ElementId> selected;
};

struct AdvisorReport {
  /// The non-expansive optimum (Algorithm 1) — always present.
  AdvisorPoint basis;
  /// One point per requested budget (those above the basis storage).
  std::vector<AdvisorPoint> budget_points;
  /// Canned comparators, evaluated under the same cost model.
  double cube_only_cost = 0.0;
  double wavelet_cost = 0.0;
  double view_hierarchy_cost = 0.0;
  uint64_t view_hierarchy_storage = 0;
  /// Smallest storage achieving zero processing cost within the sweep,
  /// or 0 if never reached.
  uint64_t zero_cost_storage = 0;

  /// Human-readable multi-line summary.
  std::string ToString() const;
};

struct AdvisorOptions {
  /// Storage budgets (in cells) to evaluate, in addition to the
  /// non-expansive basis. Unsorted and duplicate values are fine.
  std::vector<uint64_t> budgets;
  /// Candidate pool for the greedy additions.
  bool elements_pool = true;  ///< false = aggregated views only
  /// Apply the obsolete-element pruning refinement at each greedy stage.
  bool prune_obsolete = true;
};

/// Runs the sweep. The cube's element graph must fit the dense selection
/// machinery (see Algorithm 1 limits).
Result<AdvisorReport> AdviseConfiguration(const CubeShape& shape,
                                          const QueryPopulation& population,
                                          const AdvisorOptions& options);

}  // namespace vecube

#endif  // VECUBE_SELECT_ADVISOR_H_
