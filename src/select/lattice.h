// The classical view lattice of Harinarayan, Rajaraman & Ullman
// (SIGMOD'96) — the framework the paper positions view elements against.
//
// In the HRU model, views form a dependency lattice: view u can answer
// view v iff u's grouping attributes are a superset of v's (here: u's
// aggregated-dimension mask is a subset of v's), and answering v from u
// costs Vol(u) — a linear scan of the materialized ancestor. The HRU
// greedy repeatedly materializes the view of maximum *benefit* (total
// scan-cost reduction over all views, optionally per unit of space).
//
// This module exists as an executed baseline: the same workloads can be
// optimized under the HRU model and under the view element model, and
// the benches compare the resulting storage/processing trade-offs. It
// also documents the structural difference the paper stresses — lattice
// dependencies are one-way, so the cube itself must always stay
// materialized, while view element bases need not retain it.

#ifndef VECUBE_SELECT_LATTICE_H_
#define VECUBE_SELECT_LATTICE_H_

#include <cstdint>
#include <vector>

#include "cube/shape.h"
#include "util/result.h"

namespace vecube {

/// A node of the view lattice, identified by its aggregation mask.
struct LatticeView {
  uint32_t mask = 0;       ///< bit m set = dimension m aggregated away
  uint64_t volume = 0;     ///< Vol of the view (its row count)
};

/// The full lattice for a cube shape: all 2^d views with volumes.
std::vector<LatticeView> BuildLattice(const CubeShape& shape);

/// True iff the view with `ancestor_mask` can answer the view with
/// `descendant_mask` (ancestor aggregates a subset of the dimensions).
constexpr bool LatticeAnswers(uint32_t ancestor_mask,
                              uint32_t descendant_mask) {
  return (ancestor_mask & descendant_mask) == ancestor_mask;
}

/// HRU linear cost model: the cost of answering view `query_mask` from a
/// materialized set is the volume of the smallest materialized ancestor
/// (the cube, mask 0, is always materialized).
uint64_t LatticeAnswerCost(const CubeShape& shape, uint32_t query_mask,
                           const std::vector<uint32_t>& materialized_masks);

struct LatticeSelection {
  /// Materialized views in selection order (mask 0 implicit, not listed).
  std::vector<uint32_t> selected_masks;
  /// Σ per-view answer costs (unweighted, as in HRU's formulation).
  uint64_t total_cost = 0;
  /// Storage of the selected views, excluding the always-present cube.
  uint64_t extra_storage_cells = 0;
};

struct LatticeGreedyOptions {
  /// Number of views to materialize (HRU's k), or 0 for "until no
  /// positive benefit or budget exhausted".
  uint32_t max_views = 0;
  /// Storage ceiling for the extra views (cells); 0 = unlimited.
  uint64_t storage_budget_cells = 0;
  /// Rank candidates by benefit per unit space (the BPUS variant) rather
  /// than raw benefit.
  bool benefit_per_unit_space = false;
};

/// Runs the HRU greedy over the lattice for a uniform query load (every
/// view queried once — the setting of the original paper's analysis).
Result<LatticeSelection> HruGreedySelect(const CubeShape& shape,
                                         const LatticeGreedyOptions& options);

}  // namespace vecube

#endif  // VECUBE_SELECT_LATTICE_H_
