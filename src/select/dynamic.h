// DynamicAssembler: the paper's titular loop — dynamic assembly of views
// with online adaptation of the materialized view element set.
//
// Section 5: "the frequencies of access can be observed on-line, allowing
// the system to dynamically reconfigure." The assembler serves queries
// from the current element store, tracks the observed access
// distribution, and when it drifts far enough from the distribution the
// current basis was selected for, re-runs Algorithm 1 (and optionally the
// greedy Algorithm 2 under a storage budget) and migrates: every element
// of the new set is *assembled from the current store* — never recomputed
// from base data — exploiting the two-way dependencies of the view
// element graph.

#ifndef VECUBE_SELECT_DYNAMIC_H_
#define VECUBE_SELECT_DYNAMIC_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/assembly.h"
#include "core/element_id.h"
#include "core/store.h"
#include "core/tracker.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/result.h"

namespace vecube {

struct DynamicOptions {
  /// Reconfigure when the observed distribution's L1 distance from the
  /// distribution the current basis was selected for exceeds this.
  double drift_threshold = 0.5;
  /// Never reconfigure more often than this many queries.
  uint64_t min_queries_between_reconfigs = 16;
  /// Exponential decay applied to access history (1.0 = plain counts).
  double access_decay = 0.98;
  /// If > 0, after Algorithm 1 run the greedy Algorithm 2 up to this
  /// storage budget (in cells) to add redundant elements.
  uint64_t storage_budget_cells = 0;
  /// Serving cache in front of the assembly loop (src/serve): memoizes
  /// assembled answers with benefit-weighted eviction. Off unless
  /// cache.enabled; flushed wholesale on every reconfiguration.
  ViewCacheOptions cache = {};
  /// Dyadic shard budget forwarded to the assembly engines this
  /// assembler (re)builds (DESIGN.md §14). The assembler runs its
  /// engines without a pool today, so this only takes effect when set
  /// explicitly (> 1); it never changes answers or plan costs.
  uint32_t num_shards = 0;
};

/// Serves aggregated-view queries over an adaptively chosen element basis.
class DynamicAssembler {
 public:
  /// Starts with the trivial basis {A} materialized from `cube`.
  static Result<std::unique_ptr<DynamicAssembler>> Make(
      const CubeShape& shape, const Tensor& cube, DynamicOptions options);

  /// Drains the buffered access log so no observed history is lost.
  ~DynamicAssembler();

  /// Answers a query for `view`, records the access, and possibly
  /// reconfigures *after* answering. `ops` accrues assembly operations
  /// (nothing on a cache hit). A failed reconfiguration never discards
  /// the already-assembled answer: it is recorded in
  /// last_reconfig_error() / reconfiguration_failures() and the answer
  /// is returned; only the assembly itself failing yields an error.
  /// `ctx` bounds the query: expiry/cancellation unwinds the assembly
  /// and every wait with kDeadlineExceeded / kCancelled; a leader abort
  /// for a leader-local cause is retried a bounded number of times, then
  /// surfaces the cause.
  Result<Tensor> Query(const ElementId& view, OpCounter* ops = nullptr,
                       const QueryContext& ctx = QueryContext());

  /// Forces reselection against the currently observed distribution.
  /// Instrumented with the "dynamic.reconfigure" failpoint so tests can
  /// inject deterministic failures.
  Status Reconfigure();

  [[nodiscard]] const ElementStore& store() const { return store_; }
  [[nodiscard]] uint64_t reconfiguration_count() const { return reconfigurations_; }
  [[nodiscard]] uint64_t queries_served() const { return queries_served_; }
  /// The observed-traffic tracker. Query() buffers its records; they are
  /// applied before every drift evaluation and by DrainAccessHistory(),
  /// so the tracker lags by at most the records of the current batch.
  [[nodiscard]] const AccessTracker& tracker() const { return tracker_; }
  /// Applies every buffered access record to the tracker immediately.
  void DrainAccessHistory() { access_log_.Drain(); }
  /// Access records buffered but not yet applied to the tracker.
  [[nodiscard]] size_t buffered_accesses() const {
    return access_log_.buffered();
  }
  /// Status of the most recent reconfiguration attempt triggered from
  /// Query(); OK when none has failed since the last success.
  [[nodiscard]] const Status& last_reconfig_error() const {
    return last_reconfig_error_;
  }
  /// Reconfiguration attempts (from Query()) that failed.
  [[nodiscard]] uint64_t reconfiguration_failures() const {
    return reconfig_failures_;
  }
  /// Null when DynamicOptions::cache.enabled was false.
  [[nodiscard]] const ViewCache* cache() const { return cache_.get(); }
  /// Serving counters; a zeroed struct when the cache is disabled.
  [[nodiscard]] ServeMetrics serve_metrics() const {
    return cache_ != nullptr ? cache_->Metrics() : ServeMetrics{};
  }

 private:
  DynamicAssembler(CubeShape shape, DynamicOptions options)
      : shape_(std::move(shape)),
        options_(options),
        store_(shape_),
        tracker_(options.access_decay) {}

  Status MaybeReconfigure();

  CubeShape shape_;
  DynamicOptions options_;
  ElementStore store_;
  /// Kernel scratch shared by every engine this assembler creates across
  /// reconfigurations; declared before `engine_` so it outlives it.
  ScratchArena arena_;
  std::unique_ptr<AssemblyEngine> engine_;
  std::unique_ptr<ViewCache> cache_;  // null unless options.cache.enabled
  AccessTracker tracker_;
  /// Write-behind buffer keeping tracker bookkeeping off the serving hit
  /// path; declared after tracker_ so destruction drains first.
  BufferedAccessLog access_log_{&tracker_};
  /// Distribution the current basis was selected against.
  std::vector<std::pair<ElementId, double>> baseline_distribution_;
  uint64_t queries_served_ = 0;
  uint64_t queries_at_last_reconfig_ = 0;
  uint64_t reconfigurations_ = 0;
  uint64_t reconfig_failures_ = 0;
  Status last_reconfig_error_ = Status::OK();
};

}  // namespace vecube

#endif  // VECUBE_SELECT_DYNAMIC_H_
