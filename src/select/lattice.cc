#include "select/lattice.h"

#include <algorithm>

#include "core/element_id.h"
#include "util/logging.h"

namespace vecube {

std::vector<LatticeView> BuildLattice(const CubeShape& shape) {
  std::vector<LatticeView> lattice;
  const uint32_t d = shape.ndim();
  lattice.reserve(size_t{1} << d);
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    LatticeView view;
    view.mask = mask;
    view.volume = 1;
    for (uint32_t m = 0; m < d; ++m) {
      if (((mask >> m) & 1u) == 0) view.volume *= shape.extent(m);
    }
    lattice.push_back(view);
  }
  return lattice;
}

uint64_t LatticeAnswerCost(const CubeShape& shape, uint32_t query_mask,
                           const std::vector<uint32_t>& materialized_masks) {
  // The cube (mask 0) answers everything at Vol(A).
  uint64_t best = shape.volume();
  for (uint32_t mask : materialized_masks) {
    if (!LatticeAnswers(mask, query_mask)) continue;
    uint64_t volume = 1;
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      if (((mask >> m) & 1u) == 0) volume *= shape.extent(m);
    }
    best = std::min(best, volume);
  }
  return best;
}

Result<LatticeSelection> HruGreedySelect(
    const CubeShape& shape, const LatticeGreedyOptions& options) {
  if (shape.ndim() > 20) {
    return Status::InvalidArgument("lattice of 2^d views too large");
  }
  const std::vector<LatticeView> lattice = BuildLattice(shape);

  LatticeSelection selection;
  // Current per-view answer costs, starting from cube-only.
  std::vector<uint64_t> cost(lattice.size(), shape.volume());

  auto total = [&]() {
    uint64_t t = 0;
    for (uint64_t c : cost) t += c;
    return t;
  };

  for (;;) {
    if (options.max_views > 0 &&
        selection.selected_masks.size() >= options.max_views) {
      break;
    }
    double best_score = 0.0;
    const LatticeView* best_view = nullptr;
    for (const LatticeView& candidate : lattice) {
      if (candidate.mask == 0) continue;  // the cube is already present
      if (std::find(selection.selected_masks.begin(),
                    selection.selected_masks.end(),
                    candidate.mask) != selection.selected_masks.end()) {
        continue;
      }
      if (options.storage_budget_cells > 0 &&
          selection.extra_storage_cells + candidate.volume >
              options.storage_budget_cells) {
        continue;
      }
      // Benefit: total reduction in answer costs if materialized.
      uint64_t benefit = 0;
      for (const LatticeView& query : lattice) {
        if (!LatticeAnswers(candidate.mask, query.mask)) continue;
        if (candidate.volume < cost[query.mask]) {
          benefit += cost[query.mask] - candidate.volume;
        }
      }
      if (benefit == 0) continue;
      const double score =
          options.benefit_per_unit_space
              ? static_cast<double>(benefit) /
                    static_cast<double>(candidate.volume)
              : static_cast<double>(benefit);
      if (score > best_score) {
        best_score = score;
        best_view = &candidate;
      }
    }
    if (best_view == nullptr) break;

    selection.selected_masks.push_back(best_view->mask);
    selection.extra_storage_cells += best_view->volume;
    for (const LatticeView& query : lattice) {
      if (LatticeAnswers(best_view->mask, query.mask)) {
        cost[query.mask] = std::min(cost[query.mask], best_view->volume);
      }
    }
  }
  selection.total_cost = total();
  return selection;
}

}  // namespace vecube
