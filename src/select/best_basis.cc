#include "select/best_basis.h"

#include <cmath>
#include <unordered_map>

#include "core/graph.h"
#include "haar/transform.h"
#include "util/logging.h"

namespace vecube {

namespace {

constexpr uint64_t kMaxGraphNodes = uint64_t{1} << 22;

uint64_t CountSignificant(const Tensor& data, double threshold) {
  uint64_t count = 0;
  for (uint64_t i = 0; i < data.size(); ++i) {
    if (std::fabs(data[i]) > threshold) ++count;
  }
  return count;
}

// The best-basis DP shares the analysis work through `data_cache`: each
// element's tensor is computed once from its parent (the last split
// dimension in id order), like ElementComputer but scoped to this search.
class BestBasisSearch {
 public:
  BestBasisSearch(const CubeShape& shape, const Tensor& cube,
                  double threshold)
      : shape_(shape), cube_(cube), threshold_(threshold), indexer_(shape) {
    cost_.assign(indexer_.size(), kUnvisited);
    choice_.assign(indexer_.size(), kKeep);
  }

  uint64_t Solve(const ElementId& id, const Tensor& data) {
    const uint64_t index = indexer_.Encode(id);
    if (cost_[index] != kUnvisited) return cost_[index];

    uint64_t best = CountSignificant(data, threshold_);
    int8_t best_choice = kKeep;
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (!id.CanSplit(m, shape_)) continue;
      Tensor p, r;
      VECUBE_CHECK(PartialPair(data, m, &p, &r).ok());
      auto p_id = id.Child(m, StepKind::kPartial, shape_);
      auto r_id = id.Child(m, StepKind::kResidual, shape_);
      VECUBE_CHECK(p_id.ok() && r_id.ok());
      const uint64_t split = Solve(*p_id, p) + Solve(*r_id, r);
      if (split < best) {
        best = split;
        best_choice = static_cast<int8_t>(m);
      }
    }
    cost_[index] = best;
    choice_[index] = best_choice;
    return best;
  }

  void Extract(const ElementId& id, std::vector<ElementId>* out) const {
    const uint64_t index = indexer_.Encode(id);
    VECUBE_CHECK(cost_[index] != kUnvisited);
    if (choice_[index] == kKeep) {
      out->push_back(id);
      return;
    }
    const uint32_t m = static_cast<uint32_t>(choice_[index]);
    auto p_id = id.Child(m, StepKind::kPartial, shape_);
    auto r_id = id.Child(m, StepKind::kResidual, shape_);
    VECUBE_CHECK(p_id.ok() && r_id.ok());
    Extract(*p_id, out);
    Extract(*r_id, out);
  }

 private:
  static constexpr uint64_t kUnvisited = ~uint64_t{0};
  static constexpr int8_t kKeep = -1;

  const CubeShape& shape_;
  const Tensor& cube_;
  double threshold_;
  ElementIndexer indexer_;
  std::vector<uint64_t> cost_;
  std::vector<int8_t> choice_;
};

}  // namespace

Result<CompressionBasis> SelectCompressionBasis(const CubeShape& shape,
                                                const Tensor& cube,
                                                double threshold) {
  if (cube.extents() != shape.extents()) {
    return Status::InvalidArgument("cube extents do not match shape");
  }
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  if (ViewElementGraph(shape).NumElements() > kMaxGraphNodes) {
    return Status::InvalidArgument(
        "view element graph too large for the best-basis search");
  }
  BestBasisSearch search(shape, cube, threshold);
  CompressionBasis result;
  result.significant_coefficients =
      search.Solve(ElementId::Root(shape.ndim()), cube);
  search.Extract(ElementId::Root(shape.ndim()), &result.basis);
  result.cube_nonzeros = CountSignificant(cube, 0.0);
  return result;
}

}  // namespace vecube
