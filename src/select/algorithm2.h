// Algorithm 2: greedy redundant selection for a target storage cost
// (Section 5.3), and the greedy *view* materialization baseline of
// Section 7.2.2 ([D]: "start by materializing the data cube, then add
// views in a greedy fashion", following Harinarayan et al. [8]).
//
// Both are the same machinery: starting from an initial set, repeatedly
// add the candidate whose addition most reduces the Procedure-3 total
// processing cost, while total storage stays within the target. The
// candidate pool is either every view element of the graph (Algorithm 2
// proper) or only the 2^d aggregated views (the HRU-style baseline).

#ifndef VECUBE_SELECT_ALGORITHM2_H_
#define VECUBE_SELECT_ALGORITHM2_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"
#include "workload/population.h"

namespace vecube {

/// Which elements the greedy loop may add.
enum class CandidatePool {
  kAllElements,      ///< Algorithm 2: any view element of the graph
  kAggregatedViews,  ///< baseline [D]: only the 2^d views
};

struct GreedyOptions {
  /// Storage ceiling S_T in cells. Additions keeping
  /// storage <= storage_target_cells are admissible.
  uint64_t storage_target_cells = 0;
  CandidatePool pool = CandidatePool::kAllElements;
  /// Paper's Section 7.2.2 refinement: after each addition, drop selected
  /// elements that have become obsolete (removable without changing the
  /// total processing cost). Off by default for Algorithm-2 fidelity.
  bool prune_obsolete = false;
};

/// One point of the storage/processing frontier.
struct GreedyStep {
  /// The element added at this step; for step 0 it is meaningless (the
  /// initial set) and `added_valid` is false.
  ElementId added;
  bool added_valid = false;
  uint64_t storage_cells = 0;
  double processing_cost = 0.0;
  /// The selected set after this step.
  std::vector<ElementId> selected;
};

/// Runs the greedy loop from `initial` until the target storage is
/// reached, the cost hits zero, or no candidate improves the cost.
/// Returns the frontier including step 0. `initial` must be complete
/// (otherwise the initial cost would be infinite).
Result<std::vector<GreedyStep>> GreedySelect(const CubeShape& shape,
                                             const QueryPopulation& population,
                                             std::vector<ElementId> initial,
                                             const GreedyOptions& options);

}  // namespace vecube

#endif  // VECUBE_SELECT_ALGORITHM2_H_
