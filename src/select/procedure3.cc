#include "select/procedure3.h"

#include <algorithm>
#include <array>

#include "util/logging.h"

namespace vecube {

namespace {
constexpr uint64_t kMaxGraphNodes = uint64_t{1} << 24;
constexpr uint32_t kMaxDims = 16;
}  // namespace

Result<Procedure3Calculator> Procedure3Calculator::Make(
    const CubeShape& shape, std::vector<ElementId> selected) {
  if (shape.ndim() > kMaxDims) {
    return Status::InvalidArgument("at most 16 dimensions supported");
  }
  if (ViewElementGraph(shape).NumElements() > kMaxGraphNodes) {
    return Status::InvalidArgument(
        "view element graph too large for dense Procedure-3 memos");
  }
  for (const ElementId& id : selected) {
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(id.codes(), shape));
  }
  return Procedure3Calculator(shape, std::move(selected));
}

Procedure3Calculator::Procedure3Calculator(const CubeShape& shape,
                                           std::vector<ElementId> selected)
    : shape_(shape), selected_(std::move(selected)), indexer_(shape) {
  is_selected_.assign(indexer_.size(), 0);
  for (const ElementId& id : selected_) {
    is_selected_[indexer_.Encode(id)] = 1;
  }
  g_memo_.assign(indexer_.size(), 0);
  g_arg_.assign(indexer_.size(), kInfiniteCost);
  t_memo_.assign(indexer_.size(), 0);
}

// The DP recursions below work on raw DimCode buffers to avoid per-node
// ElementId allocations: the greedy Algorithm 2 evaluates these memos for
// thousands of candidate sets, so the inner loops must not allocate.

uint64_t Procedure3Calculator::EncodeRaw(const DimCode* codes) const {
  uint64_t index = 0;
  uint64_t weight = 1;
  for (uint32_t m = shape_.ndim(); m-- > 0;) {
    index += (((uint64_t{1} << codes[m].level) - 1) + codes[m].offset) * weight;
    weight *= 2ull * shape_.extent(m) - 1;
  }
  return index;
}

uint64_t Procedure3Calculator::VolumeRaw(const DimCode* codes) const {
  uint64_t volume = 1;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    volume *= shape_.extent(m) >> codes[m].level;
  }
  return volume;
}

uint64_t Procedure3Calculator::MinAncestorVolumeRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (g_memo_[index] != 0) return g_memo_[index];

  uint64_t best = kInfiniteCost;
  uint64_t best_arg = kInfiniteCost;
  if (is_selected_[index]) {
    best = VolumeRaw(codes);
    best_arg = index;
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (codes[m].level == 0) continue;
    const DimCode saved = codes[m];
    codes[m] = DimCode{saved.level - 1, saved.offset >> 1};
    const uint64_t parent_best = MinAncestorVolumeRaw(codes);
    const uint64_t parent_index = EncodeRaw(codes);
    codes[m] = saved;
    if (parent_best < best) {
      best = parent_best;
      best_arg = g_arg_[parent_index];
    }
  }
  g_memo_[index] = best;
  g_arg_[index] = best_arg;
  return best;
}

uint64_t Procedure3Calculator::SolveTRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (t_memo_[index] != 0) {
    return t_memo_[index] == kInfiniteCost ? kInfiniteCost
                                           : t_memo_[index] - 1;
  }

  const uint64_t vol = VolumeRaw(codes);
  const uint64_t min_ancestor = MinAncestorVolumeRaw(codes);
  uint64_t best =
      (min_ancestor == kInfiniteCost) ? kInfiniteCost : min_ancestor - vol;

  // Synthesis costs at least Vol(n) (Eq. 32's leading term), so when the
  // aggregation option is already that cheap, the children cones need not
  // be explored — an exact pruning that keeps greedy evaluations fast.
  // A cheap first pass bounds each dimension by the children's
  // aggregation-only costs; when that reaches the Vol(n) floor (both
  // children stored), the recursive pass is skipped entirely.
  if (best > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const uint64_t gp = MinAncestorVolumeRaw(codes);
      const uint64_t child_vol = VolumeRaw(codes);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const uint64_t gr = MinAncestorVolumeRaw(codes);
      codes[m] = saved;
      if (gp == kInfiniteCost || gr == kInfiniteCost) continue;
      best = std::min(best, vol + (gp - child_vol) + (gr - child_vol));
      if (best <= vol) break;
    }
  }
  if (best > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const uint64_t tp = SolveTRaw(codes);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const uint64_t tr = SolveTRaw(codes);
      codes[m] = saved;
      if (tp == kInfiniteCost || tr == kInfiniteCost) continue;
      best = std::min(best, vol + tp + tr);
      if (best <= vol) break;
    }
  }

  t_memo_[index] = (best == kInfiniteCost) ? kInfiniteCost : best + 1;
  return best;
}

void Procedure3Calculator::TraceUsedRaw(DimCode* codes,
                                        std::vector<uint8_t>* used) {
  const uint64_t t = SolveTRaw(codes);
  VECUBE_CHECK(t != kInfiniteCost);
  const uint64_t vol = VolumeRaw(codes);
  const uint64_t min_ancestor = MinAncestorVolumeRaw(codes);
  // The aggregation option is preferred on ties, matching SolveTRaw's min.
  if (min_ancestor != kInfiniteCost && t == min_ancestor - vol) {
    const uint64_t arg = g_arg_[EncodeRaw(codes)];
    VECUBE_CHECK(arg != kInfiniteCost);
    (*used)[arg] = 1;
    return;
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (codes[m].level >= shape_.log_extent(m)) continue;
    const DimCode saved = codes[m];
    codes[m] = DimCode{saved.level + 1, saved.offset * 2};
    const uint64_t tp = SolveTRaw(codes);
    codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
    const uint64_t tr = SolveTRaw(codes);
    codes[m] = saved;
    if (tp == kInfiniteCost || tr == kInfiniteCost) continue;
    if (t == vol + tp + tr) {
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      TraceUsedRaw(codes, used);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      TraceUsedRaw(codes, used);
      codes[m] = saved;
      return;
    }
  }
  VECUBE_CHECK(false && "no plan branch achieves the memoized cost");
}

uint64_t Procedure3Calculator::Cost(const ElementId& target) {
  if (target.ndim() != shape_.ndim()) return kInfiniteCost;
  std::array<DimCode, kMaxDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  return SolveTRaw(codes.data());
}

double Procedure3Calculator::TotalCost(const QueryPopulation& population) {
  double total = 0.0;
  for (const QuerySpec& q : population.queries()) {
    const uint64_t t = Cost(q.view);
    if (t == kInfiniteCost) return static_cast<double>(kInfiniteCost);
    total += q.frequency * static_cast<double>(t);
  }
  return total;
}

Result<std::vector<ElementId>> Procedure3Calculator::UsedElements(
    const QueryPopulation& population) {
  std::vector<uint8_t> used(indexer_.size(), 0);
  for (const QuerySpec& q : population.queries()) {
    if (Cost(q.view) == kInfiniteCost) {
      return Status::Incomplete("selected set cannot reconstruct " +
                                q.view.ToString());
    }
    std::array<DimCode, kMaxDims> codes{};
    std::copy(q.view.codes().begin(), q.view.codes().end(), codes.begin());
    TraceUsedRaw(codes.data(), &used);
  }
  std::vector<ElementId> out;
  for (const ElementId& id : selected_) {
    if (used[indexer_.Encode(id)]) out.push_back(id);
  }
  return out;
}

}  // namespace vecube
