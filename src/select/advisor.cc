#include "select/advisor.h"

#include <algorithm>
#include <cstdio>

#include "core/basis.h"
#include "select/algorithm1.h"
#include "select/algorithm2.h"
#include "select/pair_cost.h"
#include "select/procedure3.h"

namespace vecube {

namespace {

Result<double> Procedure3Total(const CubeShape& shape,
                               const std::vector<ElementId>& set,
                               const QueryPopulation& population) {
  auto calc = Procedure3Calculator::Make(shape, set);
  if (!calc.ok()) return calc.status();
  return calc->TotalCost(population);
}

}  // namespace

std::string AdvisorReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "baseline comparators (processing cost, Procedure 3):\n"
                "  cube only       : %.2f (storage 1.00x)\n"
                "  wavelet basis   : %.2f (storage 1.00x)\n"
                "  view hierarchy  : %.2f (storage %llu cells)\n",
                cube_only_cost, wavelet_cost, view_hierarchy_cost,
                static_cast<unsigned long long>(view_hierarchy_storage));
  out += line;
  std::snprintf(line, sizeof(line),
                "optimal non-expansive basis: cost %.2f, %zu elements, "
                "storage %.2fx\n",
                basis.processing_cost, basis.selected.size(),
                basis.relative_storage);
  out += line;
  for (const AdvisorPoint& point : budget_points) {
    std::snprintf(line, sizeof(line),
                  "  with %llu cells -> cost %.2f (%zu elements, %.2fx)\n",
                  static_cast<unsigned long long>(point.storage_cells),
                  point.processing_cost, point.selected.size(),
                  point.relative_storage);
    out += line;
  }
  if (zero_cost_storage > 0) {
    std::snprintf(line, sizeof(line),
                  "zero processing cost reachable at %llu cells\n",
                  static_cast<unsigned long long>(zero_cost_storage));
    out += line;
  }
  return out;
}

Result<AdvisorReport> AdviseConfiguration(const CubeShape& shape,
                                          const QueryPopulation& population,
                                          const AdvisorOptions& options) {
  AdvisorReport report;
  const double vol = static_cast<double>(shape.volume());

  // Comparators.
  VECUBE_ASSIGN_OR_RETURN(
      report.cube_only_cost,
      Procedure3Total(shape, CubeOnlySet(shape), population));
  VECUBE_ASSIGN_OR_RETURN(
      report.wavelet_cost,
      Procedure3Total(shape, WaveletBasisSet(shape), population));
  const auto hierarchy = ViewHierarchySet(shape);
  VECUBE_ASSIGN_OR_RETURN(report.view_hierarchy_cost,
                          Procedure3Total(shape, hierarchy, population));
  report.view_hierarchy_storage = StorageVolume(hierarchy, shape);

  // The non-expansive optimum.
  BasisSelection selection;
  VECUBE_ASSIGN_OR_RETURN(selection, SelectMinCostBasis(shape, population));
  report.basis.selected = selection.basis;
  report.basis.storage_cells = StorageVolume(selection.basis, shape);
  report.basis.relative_storage =
      static_cast<double>(report.basis.storage_cells) / vol;
  VECUBE_ASSIGN_OR_RETURN(
      report.basis.processing_cost,
      Procedure3Total(shape, selection.basis, population));
  if (report.basis.processing_cost == 0.0) {
    report.zero_cost_storage = report.basis.storage_cells;
  }

  // Budget sweep (ascending, deduplicated).
  std::vector<uint64_t> budgets = options.budgets;
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  for (uint64_t budget : budgets) {
    if (budget <= report.basis.storage_cells) continue;
    GreedyOptions greedy;
    greedy.storage_target_cells = budget;
    greedy.pool = options.elements_pool ? CandidatePool::kAllElements
                                        : CandidatePool::kAggregatedViews;
    greedy.prune_obsolete = options.prune_obsolete;
    std::vector<GreedyStep> frontier;
    VECUBE_ASSIGN_OR_RETURN(
        frontier, GreedySelect(shape, population, selection.basis, greedy));

    AdvisorPoint point;
    point.selected = frontier.back().selected;
    point.storage_cells = frontier.back().storage_cells;
    point.relative_storage = static_cast<double>(point.storage_cells) / vol;
    point.processing_cost = frontier.back().processing_cost;
    if (point.processing_cost == 0.0 &&
        (report.zero_cost_storage == 0 ||
         point.storage_cells < report.zero_cost_storage)) {
      report.zero_cost_storage = point.storage_cells;
    }
    report.budget_points.push_back(std::move(point));
  }
  return report;
}

}  // namespace vecube
