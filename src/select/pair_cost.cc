#include "select/pair_cost.h"

#include "core/freq_rect.h"

namespace vecube {

uint64_t PairCost(const ElementId& a, const ElementId& k,
                  const CubeShape& shape) {
  const uint64_t overlap = OverlapCells(a, k, shape);
  if (overlap == 0) return 0;
  const uint64_t vol_a = a.DataVolume(shape);
  const uint64_t vol_k = k.DataVolume(shape);
  return (vol_a - overlap) + (vol_k - overlap);
}

double SupportCost(const ElementId& v, const QueryPopulation& population,
                   const CubeShape& shape) {
  double cost = 0.0;
  for (const QuerySpec& q : population.queries()) {
    cost += q.frequency * static_cast<double>(PairCost(v, q.view, shape));
  }
  return cost;
}

double PopulationPairCost(const std::vector<ElementId>& set,
                          const QueryPopulation& population,
                          const CubeShape& shape) {
  double cost = 0.0;
  for (const ElementId& v : set) {
    cost += SupportCost(v, population, shape);
  }
  return cost;
}

uint64_t UnweightedPairCost(const std::vector<ElementId>& set,
                            const std::vector<ElementId>& queries,
                            const CubeShape& shape) {
  uint64_t cost = 0;
  for (const ElementId& v : set) {
    for (const ElementId& q : queries) {
      cost += PairCost(v, q, shape);
    }
  }
  return cost;
}

}  // namespace vecube
