#include "select/algorithm1.h"

#include <algorithm>
#include <array>

#include "core/graph.h"
#include "util/logging.h"

namespace vecube {

namespace {

constexpr uint32_t kMaxDims = 16;
constexpr uint64_t kMaxGraphNodes = uint64_t{1} << 24;

// Allocation-free description of one query's frequency rectangle.
struct QueryGeom {
  std::array<uint64_t, kMaxDims> lo;
  std::array<uint64_t, kMaxDims> hi;
  uint64_t volume;
  double frequency;
};

// The DP works on raw per-dimension codes to avoid per-node allocation.
class SpaceFrequencyDp {
 public:
  SpaceFrequencyDp(const CubeShape& shape, const QueryPopulation& population)
      : shape_(shape), indexer_(shape) {
    d_ = shape.ndim();
    for (uint32_t m = 0; m < d_; ++m) {
      log_extent_[m] = shape.log_extent(m);
      extent_[m] = shape.extent(m);
    }
    for (const QuerySpec& q : population.queries()) {
      QueryGeom geom;
      geom.volume = 1;
      for (uint32_t m = 0; m < d_; ++m) {
        const DimCode& c = q.view.dim(m);
        const uint32_t shift = log_extent_[m] - c.level;
        geom.lo[m] = static_cast<uint64_t>(c.offset) << shift;
        geom.hi[m] = static_cast<uint64_t>(c.offset + 1) << shift;
        geom.volume *= geom.hi[m] - geom.lo[m];
      }
      geom.frequency = q.frequency;
      queries_.push_back(geom);
    }
    dcost_.assign(indexer_.size(), -1.0);  // -1 == unvisited
    choice_.assign(indexer_.size(), kKeep);
  }

  double SolveRoot() {
    std::array<DimCode, kMaxDims> codes{};
    return Solve(codes.data());
  }

  void Extract(std::vector<ElementId>* out) const {
    std::array<DimCode, kMaxDims> codes{};
    ExtractRec(codes.data(), out);
  }

 private:
  static constexpr int8_t kKeep = -1;

  uint64_t EncodeIndex(const DimCode* codes) const {
    uint64_t index = 0;
    uint64_t weight = 1;
    for (uint32_t m = d_; m-- > 0;) {
      const uint64_t code_index =
          ((uint64_t{1} << codes[m].level) - 1) + codes[m].offset;
      index += code_index * weight;
      weight *= 2ull * extent_[m] - 1;
    }
    return index;
  }

  // C_n of Eq. 29 against all queries, allocation-free.
  double SupportCostOf(const DimCode* codes) const {
    // Element geometry in 2^-K units.
    std::array<uint64_t, kMaxDims> lo, hi;
    uint64_t volume = 1;
    for (uint32_t m = 0; m < d_; ++m) {
      const uint32_t shift = log_extent_[m] - codes[m].level;
      lo[m] = static_cast<uint64_t>(codes[m].offset) << shift;
      hi[m] = static_cast<uint64_t>(codes[m].offset + 1) << shift;
      volume *= hi[m] - lo[m];
    }
    double cost = 0.0;
    for (const QueryGeom& q : queries_) {
      uint64_t overlap = 1;
      for (uint32_t m = 0; m < d_; ++m) {
        const uint64_t olo = std::max(lo[m], q.lo[m]);
        const uint64_t ohi = std::min(hi[m], q.hi[m]);
        if (ohi <= olo) {
          overlap = 0;
          break;
        }
        overlap *= ohi - olo;
      }
      if (overlap == 0) continue;
      cost += q.frequency *
              static_cast<double>((volume - overlap) + (q.volume - overlap));
    }
    return cost;
  }

  double Solve(DimCode* codes) {
    const uint64_t index = EncodeIndex(codes);
    if (dcost_[index] >= 0.0) return dcost_[index];

    double best = SupportCostOf(codes);
    int8_t best_choice = kKeep;
    for (uint32_t m = 0; m < d_; ++m) {
      if (codes[m].level >= log_extent_[m]) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const double tp = Solve(codes);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const double tr = Solve(codes);
      codes[m] = saved;
      const double tm = tp + tr;
      if (tm < best) {
        best = tm;
        best_choice = static_cast<int8_t>(m);
      }
    }
    dcost_[index] = best;
    choice_[index] = best_choice;
    return best;
  }

  void ExtractRec(DimCode* codes, std::vector<ElementId>* out) const {
    const uint64_t index = EncodeIndex(codes);
    VECUBE_CHECK(dcost_[index] >= 0.0);
    if (choice_[index] == kKeep) {
      std::vector<DimCode> vec(codes, codes + d_);
      auto id = ElementId::Make(std::move(vec), shape_);
      VECUBE_CHECK(id.ok());
      out->push_back(*id);
      return;
    }
    const uint32_t m = static_cast<uint32_t>(choice_[index]);
    const DimCode saved = codes[m];
    codes[m] = DimCode{saved.level + 1, saved.offset * 2};
    ExtractRec(codes, out);
    codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
    ExtractRec(codes, out);
    codes[m] = saved;
  }

  const CubeShape& shape_;
  ElementIndexer indexer_;
  uint32_t d_ = 0;
  std::array<uint32_t, kMaxDims> log_extent_{};
  std::array<uint32_t, kMaxDims> extent_{};
  std::vector<QueryGeom> queries_;
  std::vector<double> dcost_;
  std::vector<int8_t> choice_;
};

}  // namespace

Result<BasisSelection> SelectMinCostBasis(const CubeShape& shape,
                                          const QueryPopulation& population) {
  if (shape.ndim() > kMaxDims) {
    return Status::InvalidArgument("at most 16 dimensions supported");
  }
  if (ViewElementGraph(shape).NumElements() > kMaxGraphNodes) {
    return Status::InvalidArgument(
        "view element graph too large for the dense DP (> 2^24 nodes)");
  }
  for (const QuerySpec& q : population.queries()) {
    if (q.view.ndim() != shape.ndim()) {
      return Status::InvalidArgument("query arity does not match cube");
    }
  }
  SpaceFrequencyDp dp(shape, population);
  BasisSelection selection;
  selection.predicted_cost = dp.SolveRoot();
  dp.Extract(&selection.basis);
  std::sort(selection.basis.begin(), selection.basis.end());
  return selection;
}

}  // namespace vecube
