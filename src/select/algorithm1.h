// Algorithm 1: minimum-cost non-redundant basis selection (Section 5.2).
//
// Assign every view element its support cost C_n (Eq. 29), then solve the
// space-frequency DP
//
//   D(V) = min( C(V),  min_m  D(P1^m V) + D(R1^m V) )          (Eqs. 30-31)
//
// and extract the argmin tiling with Procedure 2. The result is the
// complete, non-redundant view element basis of minimum pair-model cost
// among all bases reachable by recursive splitting (see DESIGN.md for the
// d >= 3 guillotine caveat). The DP touches each of the N_ve nodes once,
// which is the O((d+1) N_ve) bound the paper quotes.

#ifndef VECUBE_SELECT_ALGORITHM1_H_
#define VECUBE_SELECT_ALGORITHM1_H_

#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"
#include "workload/population.h"

namespace vecube {

/// Result of basis selection.
struct BasisSelection {
  /// The selected complete, non-redundant basis (sorted by id).
  std::vector<ElementId> basis;
  /// D(root): the predicted pair-model processing cost (Eq. 29 weighted).
  double predicted_cost = 0.0;
};

/// Runs Algorithm 1. Cube dimensionality is limited to 16 and the graph
/// size N_ve must fit in memory (about 2^24 nodes).
Result<BasisSelection> SelectMinCostBasis(const CubeShape& shape,
                                          const QueryPopulation& population);

}  // namespace vecube

#endif  // VECUBE_SELECT_ALGORITHM1_H_
