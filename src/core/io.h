// Binary persistence for materialized element stores.
//
// A production deployment selects a view element set once (or rarely) and
// serves queries from it across process restarts; these helpers write and
// read the complete store — shape, element ids, and cell data — in a
// simple versioned little-endian binary format.
//
// Layout:
//   magic "VECUBE01" (8 bytes)
//   u32 ndim, u32 extents[ndim]
//   u64 element_count
//   per element: u32 (level, offset)[ndim], u64 cell_count,
//                f64 cells[cell_count]

#ifndef VECUBE_CORE_IO_H_
#define VECUBE_CORE_IO_H_

#include <string>

#include "core/store.h"
#include "util/result.h"

namespace vecube {

/// Writes the store to `path`, replacing any existing file.
Status SaveStore(const ElementStore& store, const std::string& path);

/// Reads a store previously written by SaveStore. Fails with
/// InvalidArgument on a malformed or truncated file.
Result<ElementStore> LoadStore(const std::string& path);

}  // namespace vecube

#endif  // VECUBE_CORE_IO_H_
