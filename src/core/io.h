// Binary persistence for materialized element stores.
//
// A production deployment selects a view element set once (or rarely) and
// serves queries from it across process restarts; these helpers write and
// read the complete store — shape, element ids, and cell data — in a
// versioned little-endian binary format. Two format versions exist:
//
// v1 ("VECUBE01") — legacy, no checksums:
//   magic (8 bytes)
//   u32 ndim, u32 extents[ndim]
//   u64 element_count
//   per element: u32 (level, offset)[ndim], u64 cell_count,
//                f64 cells[cell_count]
//
// v2 ("VECUBE02") — checksummed, degradable:
//   magic (8 bytes)
//   u32 ndim, u32 extents[ndim]
//   u64 element_count
//   u64 wal_seq            (last WAL lsn folded into this snapshot)
//   u32 flags              (application bits, see SnapshotMeta)
//   u32 header_crc         (masked CRC32C of all preceding bytes)
//   directory, element_count entries:
//     u32 (level, offset)[ndim], u64 cell_count, u32 data_crc (masked)
//   u32 directory_crc      (masked CRC32C of the directory bytes)
//   data: f64 cells[...] concatenated in directory order
//
// The header and directory are each covered by a section CRC; every
// element's payload is covered by its own CRC. A v2 load can therefore
// localize damage: a bad element is *quarantined* in the returned store
// (core/store.h) and reported per-element, while every healthy element
// keeps serving — the degraded mode that RepairStore (core/repair.h)
// heals via dynamic assembly. Only header/directory damage, which removes
// the ability to even locate elements, fails the whole load.
//
// Both writers are crash-safe: data goes to "<path>.tmp", is fsynced, and
// is atomically renamed over the destination, so a crash at any point
// leaves either the complete old snapshot or the complete new one.
// Failpoints (util/failpoint.h): "snapshot", "snapshot.sync",
// "snapshot.rename".

#ifndef VECUBE_CORE_IO_H_
#define VECUBE_CORE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/store.h"
#include "util/result.h"

namespace vecube {

/// Application metadata carried (checksummed) in a v2 snapshot header.
struct SnapshotMeta {
  /// Last write-ahead-log sequence number whose effects are included in
  /// the snapshot; replay skips records with lsn <= wal_seq.
  uint64_t wal_seq = 0;
  /// Application-defined bits (OlapSession uses kSnapshotRootIsCube).
  uint32_t flags = 0;
};

/// Flag bit: the root element in this snapshot is the session's base cube,
/// persisted for durability, and was not part of the logical element set.
inline constexpr uint32_t kSnapshotRootIsCube = 1u << 0;

/// Per-element outcome of a v2 load.
struct ElementDiagnostic {
  ElementId id;
  bool corrupt = false;
  std::string detail;  ///< empty when healthy
};

/// Full diagnostics of a v2 load.
struct SnapshotReport {
  int version = 0;
  SnapshotMeta meta;
  std::vector<ElementDiagnostic> elements;  ///< one per directory entry
  uint64_t corrupt_elements = 0;
  [[nodiscard]] bool clean() const { return corrupt_elements == 0; }
};

/// Writes the store to `path` in the legacy v1 format (no checksums),
/// atomically (temp file + fsync + rename).
Status SaveStore(const ElementStore& store, const std::string& path);

/// Writes the store to `path` in the checksummed v2 format, atomically.
Status SaveStoreV2(const ElementStore& store, const std::string& path,
                   const SnapshotMeta& meta = {});

/// Reads a store written by SaveStore or SaveStoreV2 (the version is
/// auto-detected), strictly: ANY detected corruption fails with
/// InvalidArgument — no partial store escapes.
Result<ElementStore> LoadStore(const std::string& path);

/// Reads a v2 store with per-element diagnostics. Elements whose payload
/// fails its CRC (or is truncated away) are quarantined in the returned
/// store and described in `report`; the rest load normally. Fails only
/// when the header or directory is unusable. `report` may be null.
Result<ElementStore> LoadStoreV2(const std::string& path,
                                 SnapshotReport* report);

}  // namespace vecube

#endif  // VECUBE_CORE_IO_H_
