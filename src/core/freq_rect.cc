#include "core/freq_rect.h"

#include <algorithm>

#include "util/logging.h"

namespace vecube {

FreqRect FreqRect::Of(const ElementId& id, const CubeShape& shape) {
  VECUBE_DCHECK(id.ndim() == shape.ndim());
  FreqRect rect;
  rect.intervals_.resize(id.ndim());
  for (uint32_t m = 0; m < id.ndim(); ++m) {
    const DimCode& c = id.dim(m);
    const uint32_t shift = shape.log_extent(m) - c.level;
    rect.intervals_[m].lo = static_cast<uint64_t>(c.offset) << shift;
    rect.intervals_[m].hi = static_cast<uint64_t>(c.offset + 1) << shift;
  }
  return rect;
}

uint64_t FreqRect::Volume() const {
  uint64_t volume = 1;
  for (const FreqInterval& iv : intervals_) volume *= iv.width();
  return volume;
}

uint64_t FreqRect::Overlap(const FreqRect& other) const {
  VECUBE_DCHECK(ndim() == other.ndim());
  uint64_t volume = 1;
  for (uint32_t m = 0; m < ndim(); ++m) {
    const uint64_t lo = std::max(intervals_[m].lo, other.intervals_[m].lo);
    const uint64_t hi = std::min(intervals_[m].hi, other.intervals_[m].hi);
    if (hi <= lo) return 0;
    volume *= hi - lo;
  }
  return volume;
}

bool FreqRect::Contains(const FreqRect& other) const {
  VECUBE_DCHECK(ndim() == other.ndim());
  for (uint32_t m = 0; m < ndim(); ++m) {
    if (other.intervals_[m].lo < intervals_[m].lo ||
        other.intervals_[m].hi > intervals_[m].hi) {
      return false;
    }
  }
  return true;
}

std::string FreqRect::ToString() const {
  std::string out = "{";
  for (uint32_t m = 0; m < ndim(); ++m) {
    if (m > 0) out += " x ";
    out += '[';
    out += std::to_string(intervals_[m].lo);
    out += ',';
    out += std::to_string(intervals_[m].hi);
    out += ')';
  }
  out += "}";
  return out;
}

bool IsAncestorOf(const ElementId& ancestor, const ElementId& descendant) {
  VECUBE_DCHECK(ancestor.ndim() == descendant.ndim());
  for (uint32_t m = 0; m < ancestor.ndim(); ++m) {
    const DimCode& a = ancestor.dim(m);
    const DimCode& d = descendant.dim(m);
    if (a.level > d.level) return false;
    if ((d.offset >> (d.level - a.level)) != a.offset) return false;
  }
  return true;
}

uint64_t OverlapCells(const ElementId& a, const ElementId& b,
                      const CubeShape& shape) {
  return FreqRect::Of(a, shape).Overlap(FreqRect::Of(b, shape));
}

}  // namespace vecube
