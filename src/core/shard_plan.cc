#include "core/shard_plan.h"

#include <algorithm>
#include <utility>

#include "haar/fused.h"
#include "util/bits.h"
#include "util/logging.h"

namespace vecube {

// Unqualified so the shard hot path's call graph stays visible to
// vecube_check's lexer backend (no-shared-scratch-on-shard-path).
using internal::ExecuteCascadeSerial;

namespace {

std::vector<uint64_t> RowMajorStrides(const std::vector<uint32_t>& extents) {
  std::vector<uint64_t> strides(extents.size(), 1);
  for (size_t m = extents.size(); m-- > 1;) {
    strides[m - 1] = strides[m] * extents[m];
  }
  return strides;
}

uint64_t Volume(const std::vector<uint32_t>& extents) {
  uint64_t v = 1;
  for (const uint32_t e : extents) v *= e;
  return v;
}

// True iff every `local`-shaped subrectangle of a `global`-shaped
// row-major tensor is one contiguous run: all dimensions after the first
// restricted one are full, and nothing iterates before it.
bool SubrectContiguous(const std::vector<uint32_t>& global,
                       const std::vector<uint32_t>& local) {
  size_t first = global.size();
  for (size_t m = 0; m < global.size(); ++m) {
    if (local[m] != global[m]) {
      first = m;
      break;
    }
  }
  if (first == global.size()) return true;
  for (size_t m = 0; m < first; ++m) {
    if (global[m] != 1) return false;
  }
  for (size_t m = first + 1; m < global.size(); ++m) {
    if (local[m] != global[m]) return false;
  }
  return true;
}

// Copies the `local`-shaped subrectangle of `src` at `begin` into packed
// row-major `dst`. Runs are maximal contiguous spans (trailing full
// dimensions fold into the innermost restricted one).
void PackSubrect(const double* src, const std::vector<uint32_t>& src_extents,
                 const std::vector<uint32_t>& begin,
                 const std::vector<uint32_t>& local, double* dst) {
  const std::vector<uint64_t> strides = RowMajorStrides(src_extents);
  size_t last = 0;  // innermost restricted dimension
  for (size_t m = 0; m < src_extents.size(); ++m) {
    if (local[m] != src_extents[m]) last = m;
  }
  uint64_t run = local.empty() ? 1 : strides[last] * local[last];
  uint64_t base = 0;
  for (size_t m = 0; m < begin.size(); ++m) base += begin[m] * strides[m];
  // Odometer over the dimensions outside the run.
  std::vector<uint32_t> idx(last, 0);
  double* out = dst;
  for (;;) {
    uint64_t off = base;
    for (size_t m = 0; m < last; ++m) off += idx[m] * strides[m];
    std::copy(src + off, src + off + run, out);
    out += run;
    size_t m = last;
    while (m-- > 0) {
      if (++idx[m] < local[m]) break;
      idx[m] = 0;
      if (m == 0) return;
    }
    if (last == 0) return;
  }
}

// Inverse of PackSubrect: packed `local`-shaped `src` into the
// subrectangle of `dst` at `begin`.
void ScatterSubrect(const double* src, const std::vector<uint32_t>& dst_extents,
                    const std::vector<uint32_t>& begin,
                    const std::vector<uint32_t>& local, double* dst) {
  const std::vector<uint64_t> strides = RowMajorStrides(dst_extents);
  size_t last = 0;
  for (size_t m = 0; m < dst_extents.size(); ++m) {
    if (local[m] != dst_extents[m]) last = m;
  }
  const uint64_t run = local.empty() ? 1 : strides[last] * local[last];
  uint64_t base = 0;
  for (size_t m = 0; m < begin.size(); ++m) base += begin[m] * strides[m];
  std::vector<uint32_t> idx(last, 0);
  const double* in = src;
  for (;;) {
    uint64_t off = base;
    for (size_t m = 0; m < last; ++m) off += idx[m] * strides[m];
    std::copy(in, in + run, dst + off);
    in += run;
    size_t m = last;
    while (m-- > 0) {
      if (++idx[m] < local[m]) break;
      idx[m] = 0;
      if (m == 0) return;
    }
    if (last == 0) return;
  }
}

}  // namespace

ShardPlan ShardPlan::Build(const std::vector<uint32_t>& extents,
                           const std::vector<CascadeStep>& steps,
                           uint32_t max_shards) {
  ShardPlan plan;
  plan.in_extents_ = extents;
  const size_t nd = extents.size();

  // Apply the steps to a copy: yields the output shape and confirms the
  // list is valid for this shape (the engine's planner guarantees it; a
  // failed check just degrades to a single task and the unsharded path).
  std::vector<uint32_t> cur = extents;
  bool valid = true;
  for (const CascadeStep& step : steps) {
    if (step.dim >= nd || cur[step.dim] < 2 || cur[step.dim] % 2 != 0) {
      valid = false;
      break;
    }
    cur[step.dim] /= 2;
  }
  plan.out_extents_ = valid ? cur : extents;

  bool dyadic = valid && nd > 0;
  for (const uint32_t e : extents) {
    if (!IsPowerOfTwo(e)) dyadic = false;
  }

  uint32_t shards = 1;
  if (dyadic && !steps.empty() && max_shards > 1) {
    shards = uint32_t{1} << FloorLog2(max_shards);
  }

  // Concat splits: greedy outermost-first over the output extents, so a
  // split confined to dimension 0 keeps subrectangles contiguous.
  std::vector<uint32_t> split(nd, 1);
  uint32_t rem = shards;
  for (size_t m = 0; m < nd && rem > 1; ++m) {
    split[m] = std::min(rem, plan.out_extents_[m]);
    rem /= split[m];
  }

  // Merge split: only along the dimension of the LAST step, and only as
  // deep as its trailing run — the deferred steps must be a suffix of the
  // global order or the per-cell association trees would change.
  uint32_t mstar = 0;
  uint32_t merge = 1;
  if (rem > 1) {
    mstar = steps.back().dim;
    uint32_t trail = 0;
    for (auto it = steps.rbegin(); it != steps.rend() && it->dim == mstar;
         ++it) {
      ++trail;
    }
    // rem > 1 implies every output extent is fully split, so the lane
    // extent cap along mstar is 2^levels[mstar].
    const uint32_t lane_cap = extents[mstar] / split[mstar];
    const uint32_t trail_cap =
        trail >= 31 ? (uint32_t{1} << 31) : (uint32_t{1} << trail);
    merge = std::min({rem, trail_cap, lane_cap});
  }
  const uint32_t dlev = ExactLog2(merge);
  plan.merge_levels_ = dlev;
  plan.merge_kinds_.reserve(dlev);
  for (uint32_t l = 0; l < dlev; ++l) {
    plan.merge_kinds_.push_back(steps[steps.size() - dlev + l].kind);
  }
  plan.local_steps_.assign(steps.begin(), steps.end() - dlev);

  plan.local_in_extents_.resize(nd);
  for (size_t m = 0; m < nd; ++m) {
    plan.local_in_extents_[m] = extents[m] / split[m];
  }
  if (merge > 1) plan.local_in_extents_[mstar] /= merge;
  plan.local_out_extents_ = plan.local_in_extents_;
  for (const CascadeStep& step : plan.local_steps_) {
    plan.local_out_extents_[step.dim] /= 2;
  }
  plan.local_volume_ = Volume(plan.local_in_extents_);
  plan.local_out_volume_ = Volume(plan.local_out_extents_);
  {
    uint64_t v = plan.local_volume_;
    for (size_t s = 0; s < plan.local_steps_.size(); ++s) {
      v /= 2;
      plan.local_cost_ += v;
    }
  }

  uint32_t groups = 1;
  for (size_t m = 0; m < nd; ++m) groups *= split[m];
  const uint32_t num_tasks = groups * merge;
  for (uint32_t l = 0; l < dlev; ++l) {
    plan.combine_cost_ +=
        uint64_t{groups} * (merge >> (l + 1)) * plan.local_out_volume_;
  }

  if (valid) {
    // The decomposition must book exactly what the unsharded cascade
    // books — this is the ops-invariance contract shard_test pins.
    uint64_t global_cost = 0;
    uint64_t v = Volume(extents);
    for (size_t s = 0; s < steps.size(); ++s) {
      v /= 2;
      global_cost += v;
    }
    VECUBE_CHECK(uint64_t{num_tasks} * plan.local_cost_ +
                     plan.combine_cost_ ==
                 global_cost)
        << "shard decomposition does not partition the cascade cost";
  }

  plan.in_contiguous_ = SubrectContiguous(extents, plan.local_in_extents_);
  plan.out_contiguous_ =
      merge == 1 &&
      SubrectContiguous(plan.out_extents_, plan.local_out_extents_);

  const std::vector<uint64_t> in_strides = RowMajorStrides(extents);
  const std::vector<uint64_t> out_strides =
      RowMajorStrides(plan.out_extents_);
  plan.tasks_.reserve(num_tasks);
  std::vector<uint32_t> g(nd, 0);
  for (uint32_t grid = 0; grid < groups; ++grid) {
    uint32_t idx = grid;
    for (size_t m = nd; m-- > 0;) {
      g[m] = idx % split[m];
      idx /= split[m];
    }
    for (uint32_t lane = 0; lane < merge; ++lane) {
      ShardTask task;
      task.group = grid;
      task.lane = lane;
      task.in_begin.resize(nd);
      task.out_begin.resize(nd);
      for (size_t m = 0; m < nd; ++m) {
        task.in_begin[m] = g[m] * plan.local_in_extents_[m];
        task.out_begin[m] = g[m] * plan.local_out_extents_[m];
      }
      if (merge > 1) {
        task.in_begin[mstar] =
            (g[mstar] * merge + lane) * plan.local_in_extents_[mstar];
      }
      for (size_t m = 0; m < nd; ++m) {
        task.in_offset += task.in_begin[m] * in_strides[m];
        task.out_offset += task.out_begin[m] * out_strides[m];
      }
      plan.tasks_.push_back(std::move(task));
    }
  }
  return plan;
}

ThreadedShardExecutor::ThreadedShardExecutor(ThreadPool* pool) : pool_(pool) {
  // One lane per pool participant plus one for an external caller; extra
  // concurrent callers fall back to a transient slab.
  const uint32_t lanes = (pool_ != nullptr ? pool_->num_threads() : 0) + 1;
  lanes_.reserve(lanes);
  for (uint32_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

ShardScratch* ThreadedShardExecutor::ClaimLane(uint32_t* slot) {
  for (uint32_t i = 0; i < lanes_.size(); ++i) {
    bool expected = false;
    // order: acquire — pairs with the release in ReleaseLane so the
    // lane's slab bookkeeping written by the previous owner is visible.
    if (lanes_[i]->busy.compare_exchange_strong(expected, true,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
      *slot = i;
      return &lanes_[i]->scratch;
    }
  }
  *slot = kNoLane;
  return nullptr;
}

void ThreadedShardExecutor::ReleaseLane(uint32_t slot) {
  if (slot == kNoLane) return;
  // order: release — publishes this owner's slab bookkeeping to the next
  // ClaimLane acquire.
  lanes_[slot]->busy.store(false, std::memory_order_release);
}

Status ThreadedShardExecutor::RunTask(const Tensor& source,
                                      const ShardPlan& plan,
                                      const ShardTask& task, double* out_raw,
                                      double* lane_buf, ShardScratch* scratch,
                                      const QueryContext* ctx) const {
  // Gather the task's subrectangle — or read the source in place when the
  // decomposition kept it contiguous (the common dimension-0 split).
  const double* lane_in;
  if (plan.in_contiguous()) {
    lane_in = source.raw() + task.in_offset;
  } else {
    double* gathered = scratch->Take(plan.local_volume());
    PackSubrect(source.raw(), plan.in_extents(), task.in_begin,
                plan.local_in_extents(), gathered);
    lane_in = gathered;
  }

  double* dst;
  if (plan.merge_levels() > 0) {
    // Combine lane: results land group-major in the lane buffer; tasks
    // are enumerated group-major too, so the slot index is the task's
    // position.
    const uint64_t slot =
        (uint64_t{task.group} << plan.merge_levels()) + task.lane;
    dst = lane_buf + slot * plan.local_out_volume();
  } else if (plan.out_contiguous()) {
    dst = out_raw + task.out_offset;
  } else {
    dst = scratch->Take(plan.local_out_volume());
  }

  VECUBE_RETURN_NOT_OK(ExecuteCascadeSerial(lane_in, plan.local_in_extents(),
                                            plan.local_steps(), dst, scratch,
                                            ctx));

  if (plan.merge_levels() == 0 && !plan.out_contiguous()) {
    ScatterSubrect(dst, plan.out_extents(), task.out_begin,
                   plan.local_out_extents(), out_raw);
  }
  return Status::OK();
}

Result<Tensor> ThreadedShardExecutor::Execute(const Tensor& source,
                                              const ShardPlan& plan,
                                              OpCounter* ops,
                                              const QueryContext* ctx) {
  if (source.extents() != plan.in_extents()) {
    return Status::InvalidArgument(
        "shard plan was built for a different source shape");
  }
  Tensor out;
  VECUBE_ASSIGN_OR_RETURN(out, Tensor::Uninitialized(plan.out_extents()));
  double* out_raw = out.raw();
  const std::vector<ShardTask>& tasks = plan.tasks();

  const uint32_t lanes_per_group = uint32_t{1} << plan.merge_levels();
  TensorBuffer lane_storage;
  double* lane_buf = nullptr;
  if (plan.merge_levels() > 0) {
    lane_storage.resize(tasks.size() * plan.local_out_volume());
    lane_buf = lane_storage.data();
  }

  // First failure wins deterministically: statuses land in per-task slots
  // (no lock on the shard path) and are scanned in task order after the
  // fan-in barrier.
  std::vector<Status> task_status(tasks.size());
  std::atomic<bool> interrupted{false};

  auto worker = [&](uint64_t begin, uint64_t end) {
    uint32_t slot = kNoLane;
    ShardScratch* scratch = ClaimLane(&slot);
    std::unique_ptr<ShardScratch> transient;
    if (scratch == nullptr) {
      transient = std::make_unique<ShardScratch>();
      scratch = transient.get();
    }
    for (uint64_t t = begin; t < end; ++t) {
      // order: relaxed — a stop hint between sibling workers; nothing is
      // published through it (the output is abandoned on unwind).
      if (interrupted.load(std::memory_order_relaxed)) break;
      scratch->Reset();
      Status status =
          RunTask(source, plan, tasks[t], out_raw, lane_buf, scratch, ctx);
      if (!status.ok()) {
        task_status[t] = std::move(status);
        // order: relaxed — see the load above.
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
    }
    ReleaseLane(slot);
  };

  if (pool_ != nullptr && pool_->num_threads() > 1 && tasks.size() > 1) {
    pool_->ParallelFor(tasks.size(), 1, worker);
  } else {
    worker(0, tasks.size());
  }

  // order: relaxed — ParallelFor's completion barrier already ordered
  // every worker's stores before this load.
  if (interrupted.load(std::memory_order_relaxed)) {
    for (Status& status : task_status) {
      if (!status.ok()) return std::move(status);
    }
    return Status::Cancelled("shard execution interrupted");
  }

  // Combine DAG: merge_levels pairwise elementwise levels, front-packed
  // in place (slot p <- slot 2p ± slot 2p+1; every slot is read at
  // iteration p/2, before iteration p overwrites it). Lane order is the
  // coordinate order along the merge dimension, so left = lower
  // coordinate, exactly the deferred steps' operand order.
  if (plan.merge_levels() > 0) {
    const uint64_t cells = plan.local_out_volume();
    const uint64_t groups = tasks.size() >> plan.merge_levels();
    uint32_t lanes = lanes_per_group;
    for (uint32_t l = 0; l < plan.merge_levels(); ++l) {
      const bool add = plan.merge_kinds()[l] == StepKind::kPartial;
      const uint32_t half = lanes / 2;
      for (uint64_t g = 0; g < groups; ++g) {
        double* base = lane_buf + (g << plan.merge_levels()) * cells;
        for (uint32_t p = 0; p < half; ++p) {
          const double* left = base + uint64_t{2} * p * cells;
          const double* right = left + cells;
          double* dst = base + uint64_t{p} * cells;
          if (add) {
            for (uint64_t i = 0; i < cells; ++i) dst[i] = left[i] + right[i];
          } else {
            for (uint64_t i = 0; i < cells; ++i) dst[i] = left[i] - right[i];
          }
        }
      }
      lanes = half;
    }
    for (uint64_t g = 0; g < groups; ++g) {
      const ShardTask& head = tasks[g << plan.merge_levels()];
      const double* result = lane_buf + (g << plan.merge_levels()) * cells;
      if (cells == 1) {
        out_raw[head.out_offset] = result[0];
      } else {
        ScatterSubrect(result, plan.out_extents(), head.out_begin,
                       plan.local_out_extents(), out_raw);
      }
    }
  }

  // Book the whole cascade analytically on the calling thread: the plan's
  // partitioned total equals the unsharded total by construction, so
  // OpCounter stays invariant at every (shards, threads) point.
  if (ops != nullptr) ops->adds += plan.total_cost();
  return out;
}

}  // namespace vecube
