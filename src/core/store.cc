#include "core/store.h"

#include <algorithm>

namespace vecube {

Status ElementStore::Put(const ElementId& id, Tensor data) {
  if (id.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match store shape");
  }
  if (data.extents() != id.DataExtents(shape_)) {
    return Status::InvalidArgument("tensor extents " + data.ShapeString() +
                                   " do not match element " + id.ToString());
  }
  auto it = map_.find(id);
  if (it != map_.end()) {
    // Replace in place: the extents check above guarantees the volume is
    // unchanged, so storage_cells_ must NOT be touched.
    it->second = std::move(data);
    quarantine_.erase(id);
    return Status::OK();
  }
  storage_cells_ += id.DataVolume(shape_);
  map_.emplace(id, std::move(data));
  quarantine_.erase(id);  // a successful Put is a repair
  return Status::OK();
}

Status ElementStore::Erase(const ElementId& id) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    // Erasing a quarantined-only id drops the mark (accepting the loss);
    // it never held resident cells, so accounting is untouched.
    if (quarantine_.erase(id) > 0) return Status::OK();
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  storage_cells_ -= id.DataVolume(shape_);
  map_.erase(it);
  quarantine_.erase(id);
  return Status::OK();
}

Status ElementStore::Quarantine(const ElementId& id) {
  if (id.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match store shape");
  }
  auto it = map_.find(id);
  if (it != map_.end()) {
    storage_cells_ -= id.DataVolume(shape_);
    map_.erase(it);
  }
  quarantine_.insert(id);
  return Status::OK();
}

std::vector<ElementId> ElementStore::QuarantinedIds() const {
  std::vector<ElementId> ids;
  ids.reserve(quarantine_.size());
  for (const ElementId& id : quarantine_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<const Tensor*> ElementStore::Get(const ElementId& id) const {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  return &it->second;
}

Result<Tensor*> ElementStore::GetMutable(const ElementId& id) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  return &it->second;
}

std::vector<ElementId> ElementStore::Ids() const {
  std::vector<ElementId> ids;
  ids.reserve(map_.size());
  for (const auto& [id, tensor] : map_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace vecube
