#include "core/store.h"

#include <algorithm>

namespace vecube {

Status ElementStore::Put(const ElementId& id, Tensor data) {
  if (id.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match store shape");
  }
  if (data.extents() != id.DataExtents(shape_)) {
    return Status::InvalidArgument("tensor extents " + data.ShapeString() +
                                   " do not match element " + id.ToString());
  }
  auto it = map_.find(id);
  if (it != map_.end()) {
    it->second = std::move(data);
    return Status::OK();
  }
  storage_cells_ += id.DataVolume(shape_);
  map_.emplace(id, std::move(data));
  return Status::OK();
}

Status ElementStore::Erase(const ElementId& id) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  storage_cells_ -= id.DataVolume(shape_);
  map_.erase(it);
  return Status::OK();
}

Result<const Tensor*> ElementStore::Get(const ElementId& id) const {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  return &it->second;
}

Result<Tensor*> ElementStore::GetMutable(const ElementId& id) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return Status::NotFound("element " + id.ToString() + " not in store");
  }
  return &it->second;
}

std::vector<ElementId> ElementStore::Ids() const {
  std::vector<ElementId> ids;
  ids.reserve(map_.size());
  for (const auto& [id, tensor] : map_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace vecube
