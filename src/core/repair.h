// Self-healing of quarantined view elements via dynamic assembly.
//
// The paper's central result — any view element is assemblable from
// other elements (Procedure 3) — doubles as a repair primitive: an
// element whose persisted bytes were lost to corruption is not data loss
// as long as a reconstruction path (a stored ancestor to aggregate, or
// the P/R children to synthesize) survives. RepairStore walks the
// quarantine list and re-derives each element from the healthy ones,
// iterating to a fixpoint so repaired elements can in turn unlock
// further repairs. Elements beyond the assembly engine's planning arity
// fall back to direct recomputation from the base cuboid when it is
// resident. Whatever remains unreachable stays quarantined and is
// reported — never silently zeroed.

#ifndef VECUBE_CORE_REPAIR_H_
#define VECUBE_CORE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "core/store.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// Outcome of one repair pass.
struct RepairReport {
  std::vector<ElementId> repaired;    ///< re-derived and reinstated
  std::vector<ElementId> unrepaired;  ///< no surviving reconstruction path
  uint64_t assembly_ops = 0;          ///< add/sub operations spent
  [[nodiscard]] bool complete() const { return unrepaired.empty(); }
};

/// Re-derives every quarantined element of `store` that has a surviving
/// reconstruction path, reinstating it via Put (which clears the
/// quarantine mark). Deterministic: elements are attempted in sorted
/// order, and repeated passes run until no pass makes progress.
Result<RepairReport> RepairStore(ElementStore* store,
                                 ThreadPool* pool = nullptr);

}  // namespace vecube

#endif  // VECUBE_CORE_REPAIR_H_
