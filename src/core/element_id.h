// ElementId: canonical identity of a view element (Definitions 2-4).
//
// Every view element of a cube A corresponds, per dimension m, to a node
// of the dyadic cascade tree: a (level, offset) pair with
// 0 <= level <= K_m = log2(n_m) and 0 <= offset < 2^level. The partial
// aggregation P1^m maps (k, o) -> (k+1, 2o) and the residual R1^m maps
// (k, o) -> (k+1, 2o+1), exactly mirroring the frequency-plane positions
// of Eq. 23: the element occupies the dyadic frequency interval
// [offset / 2^level, (offset+1) / 2^level) along dimension m.
//
// Classification (Definitions 1, 3, 4):
//  * aggregated view: every dimension untouched (0,0) or totally
//    aggregated (K_m, 0);
//  * intermediate element: every offset is 0 (no residual ever applied);
//  * residual element: some offset != 0.

#ifndef VECUBE_CORE_ELEMENT_ID_H_
#define VECUBE_CORE_ELEMENT_ID_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "cube/shape.h"
#include "haar/cascade.h"
#include "util/result.h"

namespace vecube {

/// Per-dimension cascade position.
struct DimCode {
  uint32_t level = 0;   ///< number of P1/R1 applications along this dim
  uint32_t offset = 0;  ///< dyadic frequency position, in [0, 2^level)

  auto operator<=>(const DimCode&) const = default;
};

/// Immutable identity of a view element of a given cube shape.
class ElementId {
 public:
  ElementId() = default;

  /// The root element: the data cube A itself (all levels 0).
  static ElementId Root(uint32_t ndim);

  /// Validates levels/offsets against the shape.
  static Result<ElementId> Make(std::vector<DimCode> codes,
                                const CubeShape& shape);

  /// The aggregated view that totally aggregates exactly the dimensions in
  /// `aggregated_mask` (bit m set -> dimension m aggregated). Eq. 16 /
  /// Definition 1. Mask 0 is the cube itself.
  static Result<ElementId> AggregatedView(uint32_t aggregated_mask,
                                          const CubeShape& shape);

  /// The intermediate element with the given per-dimension levels (all
  /// offsets zero) — a cell of the Gaussian pyramid (Section 4.3).
  static Result<ElementId> Intermediate(const std::vector<uint32_t>& levels,
                                        const CubeShape& shape);

  /// Constructs an id from raw codes WITHOUT validating them against any
  /// shape. For corruption-injection tests of the invariant checker
  /// (src/verify) only — invalid codes are caught by the checker, not
  /// here. Production code must use Make().
  static ElementId UnsafeFromCodes(std::vector<DimCode> codes) {
    return ElementId(std::move(codes));
  }

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(codes_.size()); }
  [[nodiscard]] const DimCode& dim(uint32_t m) const { return codes_[m]; }
  [[nodiscard]] const std::vector<DimCode>& codes() const { return codes_; }

  /// True iff `level < log2(n_dim)` so the children along `dim` exist.
  bool CanSplit(uint32_t dim, const CubeShape& shape) const;

  /// Partial (P) or residual (R) child along `dim` (Eq. 23 mapping).
  Result<ElementId> Child(uint32_t dim, StepKind kind,
                          const CubeShape& shape) const;

  /// Parent along `dim`; requires level > 0 along `dim`.
  Result<ElementId> Parent(uint32_t dim) const;

  /// Sibling along `dim` (P <-> R); requires level > 0 along `dim`.
  Result<ElementId> Sibling(uint32_t dim) const;

  /// True iff this element is the P child of its parent along `dim`.
  bool IsPartialChild(uint32_t dim) const {
    return (codes_[dim].offset & 1u) == 0;
  }

  bool IsRoot() const;
  bool IsAggregatedView(const CubeShape& shape) const;
  bool IsIntermediate() const;
  [[nodiscard]] bool IsResidual() const { return !IsIntermediate(); }

  /// Extents of the element's data array: n_m >> level_m.
  std::vector<uint32_t> DataExtents(const CubeShape& shape) const;

  /// Vol(V): number of cells of the element's data array.
  uint64_t DataVolume(const CubeShape& shape) const;

  /// Sum of levels over dimensions — the cascade depth; children are
  /// always strictly deeper, which recursive algorithms rely on.
  uint32_t TotalLevel() const;

  /// The analysis cascade that generates this element from the root cube:
  /// along each dimension, offset bits MSB-first select P (0) or R (1).
  std::vector<CascadeStep> PathFromRoot() const;

  /// e.g. "(2@0, 0@0, 1@1)" — level@offset per dimension.
  std::string ToString() const;

  bool operator==(const ElementId& other) const {
    return codes_ == other.codes_;
  }
  bool operator!=(const ElementId& other) const { return !(*this == other); }
  /// Lexicographic; a total order for deterministic iteration.
  bool operator<(const ElementId& other) const { return codes_ < other.codes_; }

 private:
  explicit ElementId(std::vector<DimCode> codes) : codes_(std::move(codes)) {}

  std::vector<DimCode> codes_;
};

/// FNV-1a style hash for unordered containers.
struct ElementIdHash {
  size_t operator()(const ElementId& id) const;
};

}  // namespace vecube

#endif  // VECUBE_CORE_ELEMENT_ID_H_
