#include "core/element_id.h"

#include "util/logging.h"

namespace vecube {

ElementId ElementId::Root(uint32_t ndim) {
  return ElementId(std::vector<DimCode>(ndim));
}

Result<ElementId> ElementId::Make(std::vector<DimCode> codes,
                                  const CubeShape& shape) {
  if (codes.size() != shape.ndim()) {
    return Status::InvalidArgument("element arity does not match cube");
  }
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if (codes[m].level > shape.log_extent(m)) {
      return Status::InvalidArgument(
          "level " + std::to_string(codes[m].level) + " exceeds cascade depth " +
          std::to_string(shape.log_extent(m)) + " of dimension " +
          std::to_string(m));
    }
    if (codes[m].offset >= (1u << codes[m].level)) {
      return Status::InvalidArgument(
          "offset " + std::to_string(codes[m].offset) +
          " out of range for level " + std::to_string(codes[m].level));
    }
  }
  return ElementId(std::move(codes));
}

Result<ElementId> ElementId::AggregatedView(uint32_t aggregated_mask,
                                            const CubeShape& shape) {
  if (shape.ndim() < 32 && (aggregated_mask >> shape.ndim()) != 0) {
    return Status::InvalidArgument("aggregation mask has extra bits");
  }
  std::vector<DimCode> codes(shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if ((aggregated_mask >> m) & 1u) {
      codes[m] = DimCode{shape.log_extent(m), 0};
    }
  }
  return ElementId(std::move(codes));
}

Result<ElementId> ElementId::Intermediate(const std::vector<uint32_t>& levels,
                                          const CubeShape& shape) {
  if (levels.size() != shape.ndim()) {
    return Status::InvalidArgument("level arity does not match cube");
  }
  std::vector<DimCode> codes(shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if (levels[m] > shape.log_extent(m)) {
      return Status::InvalidArgument("level exceeds cascade depth");
    }
    codes[m] = DimCode{levels[m], 0};
  }
  return ElementId(std::move(codes));
}

bool ElementId::CanSplit(uint32_t dim, const CubeShape& shape) const {
  VECUBE_DCHECK(dim < ndim());
  return codes_[dim].level < shape.log_extent(dim);
}

Result<ElementId> ElementId::Child(uint32_t dim, StepKind kind,
                                   const CubeShape& shape) const {
  if (dim >= ndim()) return Status::InvalidArgument("dimension out of range");
  if (!CanSplit(dim, shape)) {
    return Status::FailedPrecondition(
        "element is fully aggregated along dimension " + std::to_string(dim));
  }
  std::vector<DimCode> codes = codes_;
  codes[dim].level += 1;
  codes[dim].offset =
      codes[dim].offset * 2 + (kind == StepKind::kResidual ? 1 : 0);
  return ElementId(std::move(codes));
}

Result<ElementId> ElementId::Parent(uint32_t dim) const {
  if (dim >= ndim()) return Status::InvalidArgument("dimension out of range");
  if (codes_[dim].level == 0) {
    return Status::FailedPrecondition("root has no parent along dimension " +
                                      std::to_string(dim));
  }
  std::vector<DimCode> codes = codes_;
  codes[dim].level -= 1;
  codes[dim].offset >>= 1;
  return ElementId(std::move(codes));
}

Result<ElementId> ElementId::Sibling(uint32_t dim) const {
  if (dim >= ndim()) return Status::InvalidArgument("dimension out of range");
  if (codes_[dim].level == 0) {
    return Status::FailedPrecondition("root has no sibling");
  }
  std::vector<DimCode> codes = codes_;
  codes[dim].offset ^= 1u;
  return ElementId(std::move(codes));
}

bool ElementId::IsRoot() const {
  for (const DimCode& c : codes_) {
    if (c.level != 0) return false;
  }
  return true;
}

bool ElementId::IsAggregatedView(const CubeShape& shape) const {
  for (uint32_t m = 0; m < ndim(); ++m) {
    const DimCode& c = codes_[m];
    const bool untouched = (c.level == 0);
    const bool total = (c.level == shape.log_extent(m) && c.offset == 0);
    if (!untouched && !total) return false;
  }
  return true;
}

bool ElementId::IsIntermediate() const {
  for (const DimCode& c : codes_) {
    if (c.offset != 0) return false;
  }
  return true;
}

std::vector<uint32_t> ElementId::DataExtents(const CubeShape& shape) const {
  VECUBE_DCHECK(ndim() == shape.ndim());
  std::vector<uint32_t> extents(ndim());
  for (uint32_t m = 0; m < ndim(); ++m) {
    extents[m] = shape.extent(m) >> codes_[m].level;
  }
  return extents;
}

uint64_t ElementId::DataVolume(const CubeShape& shape) const {
  VECUBE_DCHECK(ndim() == shape.ndim());
  uint64_t volume = 1;
  for (uint32_t m = 0; m < ndim(); ++m) {
    volume *= shape.extent(m) >> codes_[m].level;
  }
  return volume;
}

uint32_t ElementId::TotalLevel() const {
  uint32_t total = 0;
  for (const DimCode& c : codes_) total += c.level;
  return total;
}

std::vector<CascadeStep> ElementId::PathFromRoot() const {
  std::vector<CascadeStep> steps;
  for (uint32_t m = 0; m < ndim(); ++m) {
    const DimCode& c = codes_[m];
    for (uint32_t bit = c.level; bit-- > 0;) {
      const bool residual = ((c.offset >> bit) & 1u) != 0;
      steps.push_back(
          CascadeStep{m, residual ? StepKind::kResidual : StepKind::kPartial});
    }
  }
  return steps;
}

std::string ElementId::ToString() const {
  std::string out = "(";
  for (uint32_t m = 0; m < ndim(); ++m) {
    if (m > 0) out += ", ";
    out += std::to_string(codes_[m].level);
    out += "@";
    out += std::to_string(codes_[m].offset);
  }
  out += ")";
  return out;
}

size_t ElementIdHash::operator()(const ElementId& id) const {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const DimCode& c : id.codes()) {
    h ^= (static_cast<uint64_t>(c.level) << 32) | c.offset;
    h *= 1099511628211ULL;  // FNV prime
  }
  return static_cast<size_t>(h);
}

}  // namespace vecube
