// View element sets and bases (Definitions 5-9, Sections 4.2-4.3).
//
// A set is *non-redundant* iff its frequency rectangles are pairwise
// disjoint, and *complete* (a basis) iff they cover the frequency plane.
// The canonical completeness test here is coverage-based (Section 4.2);
// we also provide the paper's recursive Procedure 1 verbatim, which is a
// sufficient test that coincides with coverage for d <= 2 and for all
// guillotine-decomposable sets (see DESIGN.md for the d >= 3 caveat).
//
// The named bases of Section 4.3 — wavelet basis, Gaussian pyramid, view
// hierarchy, wavelet packets — are constructed here.

#ifndef VECUBE_CORE_BASIS_H_
#define VECUBE_CORE_BASIS_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"

namespace vecube {

/// Σ Vol(V) over the set: total cells stored when the set is materialized.
uint64_t StorageVolume(const std::vector<ElementId>& set,
                       const CubeShape& shape);

/// Definition 7 via the frequency-plane criterion: pairwise-disjoint
/// rectangles.
bool IsNonRedundant(const std::vector<ElementId>& set, const CubeShape& shape);

/// Completeness with respect to `target` via frequency coverage: the set's
/// rectangles (clipped to target) cover target's rectangle. This is the
/// necessary-and-sufficient criterion of Section 4.2.
bool IsCompleteFor(const std::vector<ElementId>& set, const ElementId& target,
                   const CubeShape& shape);

/// Completeness with respect to the whole cube (Definition 8).
bool IsComplete(const std::vector<ElementId>& set, const CubeShape& shape);

/// The paper's Procedure 1, verbatim: `target` is in the set, or the set is
/// complete w.r.t. both children along at least one dimension. Sufficient
/// but (for d >= 3, redundant covers) not necessary; kept for fidelity and
/// cross-checking.
bool IsCompleteProcedure1(const std::vector<ElementId>& set,
                          const ElementId& target, const CubeShape& shape);

/// Definition 9: complete and non-redundant.
bool IsNonRedundantBasis(const std::vector<ElementId>& set,
                         const CubeShape& shape);

// ---------------------------------------------------------------------------
// Named element sets of Section 4.3.

/// The (non-redundant) Haar wavelet basis: recursively decompose the
/// all-partial element jointly on every splittable dimension; keep every
/// child combination except the all-partial one; finish with the total
/// aggregation. Volume = Vol(A).
std::vector<ElementId> WaveletBasisSet(const CubeShape& shape);

/// The (redundant) Gaussian pyramid: the chain of joint partial
/// aggregations from the cube down to the total aggregation.
std::vector<ElementId> GaussianPyramidSet(const CubeShape& shape);

/// The (redundant) view hierarchy of Harinarayan et al. [8]: all 2^d
/// aggregated views, including the cube. Volume = Π(n_m + 1).
std::vector<ElementId> ViewHierarchySet(const CubeShape& shape);

/// Just the data cube itself — the trivial non-redundant basis.
std::vector<ElementId> CubeOnlySet(const CubeShape& shape);

}  // namespace vecube

#endif  // VECUBE_CORE_BASIS_H_
