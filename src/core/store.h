// ElementStore: the materialized view elements backing query answering.

#ifndef VECUBE_CORE_STORE_H_
#define VECUBE_CORE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

/// Holds materialized element data keyed by ElementId. The store does not
/// enforce completeness — AssemblyEngine reports Incomplete when a target
/// cannot be reconstructed from what is present.
///
/// Degraded mode: an element whose persisted bytes failed their checksum
/// is *quarantined* — known to belong to the store but carrying no
/// trusted data. Quarantined ids are not resident (Contains/Get/Ids see
/// only healthy elements, so assembly honestly reports Incomplete for
/// targets that need them) until RepairStore (core/repair.h) re-derives
/// them; a successful Put clears the mark. StorageCells() counts resident
/// cells only.
class ElementStore {
 public:
  explicit ElementStore(CubeShape shape) : shape_(std::move(shape)) {}

  [[nodiscard]] const CubeShape& shape() const { return shape_; }

  /// Inserts (or replaces) an element. The tensor extents must match the
  /// id's data extents for this shape.
  Status Put(const ElementId& id, Tensor data);

  /// Removes an element; NotFound if absent.
  Status Erase(const ElementId& id);

  [[nodiscard]] bool Contains(const ElementId& id) const { return map_.count(id) > 0; }

  /// Borrowed pointer to the element data; NotFound if absent.
  Result<const Tensor*> Get(const ElementId& id) const;

  /// Mutable access for in-place maintenance (extents must not change).
  Result<Tensor*> GetMutable(const ElementId& id);

  [[nodiscard]] size_t size() const { return map_.size(); }

  /// Σ Vol over stored elements — the storage cost axis of Section 7.2.2.
  [[nodiscard]] uint64_t StorageCells() const { return storage_cells_; }

  /// Storage relative to the cube volume (the paper's Figure 9 axis).
  double RelativeStorage() const {
    return static_cast<double>(storage_cells_) /
           static_cast<double>(shape_.volume());
  }

  /// Stored ids in deterministic (sorted) order.
  std::vector<ElementId> Ids() const;

  /// Marks `id` as present-but-untrusted. Any resident data for `id` is
  /// dropped (and its cells leave StorageCells()).
  Status Quarantine(const ElementId& id);

  [[nodiscard]] bool IsQuarantined(const ElementId& id) const {
    return quarantine_.count(id) > 0;
  }
  [[nodiscard]] size_t quarantined_count() const { return quarantine_.size(); }

  /// Quarantined ids in deterministic (sorted) order.
  std::vector<ElementId> QuarantinedIds() const;

 private:
  CubeShape shape_;
  std::unordered_map<ElementId, Tensor, ElementIdHash> map_;
  std::unordered_set<ElementId, ElementIdHash> quarantine_;
  uint64_t storage_cells_ = 0;
};

}  // namespace vecube

#endif  // VECUBE_CORE_STORE_H_
