#include "core/basis.h"

#include <functional>

#include "core/freq_rect.h"
#include "core/graph.h"
#include "util/logging.h"

namespace vecube {

uint64_t StorageVolume(const std::vector<ElementId>& set,
                       const CubeShape& shape) {
  uint64_t total = 0;
  for (const ElementId& id : set) total += id.DataVolume(shape);
  return total;
}

bool IsNonRedundant(const std::vector<ElementId>& set,
                    const CubeShape& shape) {
  std::vector<FreqRect> rects;
  rects.reserve(set.size());
  for (const ElementId& id : set) rects.push_back(FreqRect::Of(id, shape));
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      if (rects[i].Intersects(rects[j])) return false;
    }
  }
  return true;
}

namespace {

// Coverage check by recursive dyadic splitting with candidate pruning.
// `candidates` holds the rects of set members that intersect `target_id`'s
// rectangle. Invariant maintained on recursion.
bool Covered(const ElementId& target_id, const std::vector<FreqRect>& candidates,
             const CubeShape& shape) {
  const FreqRect target = FreqRect::Of(target_id, shape);
  for (const FreqRect& c : candidates) {
    if (c.Contains(target)) return true;
  }
  // Find a splittable dimension.
  uint32_t split_dim = target_id.ndim();
  for (uint32_t m = 0; m < target_id.ndim(); ++m) {
    if (target_id.CanSplit(m, shape)) {
      split_dim = m;
      break;
    }
  }
  if (split_dim == target_id.ndim()) return false;  // minimal cell uncovered

  auto p = target_id.Child(split_dim, StepKind::kPartial, shape);
  auto r = target_id.Child(split_dim, StepKind::kResidual, shape);
  VECUBE_CHECK(p.ok() && r.ok());
  for (const ElementId* child : {&p.value(), &r.value()}) {
    const FreqRect child_rect = FreqRect::Of(*child, shape);
    std::vector<FreqRect> pruned;
    for (const FreqRect& c : candidates) {
      if (c.Intersects(child_rect)) pruned.push_back(c);
    }
    if (pruned.empty()) return false;
    if (!Covered(*child, pruned, shape)) return false;
  }
  return true;
}

}  // namespace

bool IsCompleteFor(const std::vector<ElementId>& set, const ElementId& target,
                   const CubeShape& shape) {
  const FreqRect target_rect = FreqRect::Of(target, shape);
  std::vector<FreqRect> candidates;
  for (const ElementId& id : set) {
    const FreqRect rect = FreqRect::Of(id, shape);
    if (rect.Intersects(target_rect)) candidates.push_back(rect);
  }
  if (candidates.empty()) return false;
  return Covered(target, candidates, shape);
}

bool IsComplete(const std::vector<ElementId>& set, const CubeShape& shape) {
  return IsCompleteFor(set, ElementId::Root(shape.ndim()), shape);
}

bool IsCompleteProcedure1(const std::vector<ElementId>& set,
                          const ElementId& target, const CubeShape& shape) {
  for (const ElementId& id : set) {
    if (id == target) return true;
  }
  for (uint32_t m = 0; m < target.ndim(); ++m) {
    if (!target.CanSplit(m, shape)) continue;
    auto p = target.Child(m, StepKind::kPartial, shape);
    auto r = target.Child(m, StepKind::kResidual, shape);
    VECUBE_CHECK(p.ok() && r.ok());
    if (IsCompleteProcedure1(set, *p, shape) &&
        IsCompleteProcedure1(set, *r, shape)) {
      return true;
    }
  }
  return false;
}

bool IsNonRedundantBasis(const std::vector<ElementId>& set,
                         const CubeShape& shape) {
  return IsNonRedundant(set, shape) && IsComplete(set, shape);
}

namespace {

// All child combinations of `id` over the splittable dimensions, each
// dimension taking P or R. The all-partial combination is returned in
// `all_partial`; the others are appended to `out`.
void JointChildren(const ElementId& id, const CubeShape& shape,
                   std::vector<ElementId>* out, ElementId* all_partial) {
  std::vector<uint32_t> splittable;
  for (uint32_t m = 0; m < id.ndim(); ++m) {
    if (id.CanSplit(m, shape)) splittable.push_back(m);
  }
  VECUBE_CHECK(!splittable.empty());
  const uint32_t combos = 1u << splittable.size();
  for (uint32_t mask = 0; mask < combos; ++mask) {
    ElementId child = id;
    for (size_t i = 0; i < splittable.size(); ++i) {
      const StepKind kind =
          ((mask >> i) & 1u) ? StepKind::kResidual : StepKind::kPartial;
      auto next = child.Child(splittable[i], kind, shape);
      VECUBE_CHECK(next.ok());
      child = *next;
    }
    if (mask == 0) {
      *all_partial = child;
    } else {
      out->push_back(child);
    }
  }
}

bool AnySplittable(const ElementId& id, const CubeShape& shape) {
  for (uint32_t m = 0; m < id.ndim(); ++m) {
    if (id.CanSplit(m, shape)) return true;
  }
  return false;
}

}  // namespace

std::vector<ElementId> WaveletBasisSet(const CubeShape& shape) {
  std::vector<ElementId> basis;
  ElementId current = ElementId::Root(shape.ndim());
  while (AnySplittable(current, shape)) {
    ElementId all_partial;
    JointChildren(current, shape, &basis, &all_partial);
    current = all_partial;
  }
  basis.push_back(current);  // the total aggregation
  return basis;
}

std::vector<ElementId> GaussianPyramidSet(const CubeShape& shape) {
  std::vector<ElementId> pyramid;
  ElementId current = ElementId::Root(shape.ndim());
  pyramid.push_back(current);
  while (AnySplittable(current, shape)) {
    for (uint32_t m = 0; m < current.ndim(); ++m) {
      if (!current.CanSplit(m, shape)) continue;
      auto next = current.Child(m, StepKind::kPartial, shape);
      VECUBE_CHECK(next.ok());
      current = *next;
    }
    pyramid.push_back(current);
  }
  return pyramid;
}

std::vector<ElementId> ViewHierarchySet(const CubeShape& shape) {
  return ViewElementGraph(shape).AggregatedViews();
}

std::vector<ElementId> CubeOnlySet(const CubeShape& shape) {
  return {ElementId::Root(shape.ndim())};
}

}  // namespace vecube
