#include "core/assembly.h"

#include <algorithm>
#include <array>

#include "util/logging.h"

namespace vecube {

namespace {
constexpr uint32_t kMaxDims = 16;
// Flat memo arrays up to this many graph nodes (~0.5 GiB of memo state);
// larger graphs fall back to hash maps over the touched nodes.
constexpr uint64_t kDenseMemoLimit = uint64_t{1} << 24;
}  // namespace

AssemblyEngine::AssemblyEngine(const ElementStore* store)
    : store_(store), shape_(store->shape()), indexer_(shape_) {
  VECUBE_CHECK(store != nullptr);
  dense_memos_ = indexer_.size() <= kDenseMemoLimit;
  Invalidate();
}

void AssemblyEngine::Invalidate() {
  is_stored_.clear();
  for (const ElementId& id : store_->Ids()) {
    is_stored_[indexer_.Encode(id)] = 1;
  }
  ancestor_memo_.Init(indexer_.size(), dense_memos_);
  plan_memo_.Init(indexer_.size(), dense_memos_);
}

uint64_t AssemblyEngine::EncodeRaw(const DimCode* codes) const {
  uint64_t index = 0;
  uint64_t weight = 1;
  for (uint32_t m = shape_.ndim(); m-- > 0;) {
    index += (((uint64_t{1} << codes[m].level) - 1) + codes[m].offset) * weight;
    weight *= 2ull * shape_.extent(m) - 1;
  }
  return index;
}

uint64_t AssemblyEngine::VolumeRaw(const DimCode* codes) const {
  uint64_t volume = 1;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    volume *= shape_.extent(m) >> codes[m].level;
  }
  return volume;
}

AssemblyEngine::AncestorInfo AssemblyEngine::MinAncestorRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (const AncestorInfo* hit = ancestor_memo_.Find(index)) return *hit;
  AncestorInfo info;
  if (is_stored_.count(index) > 0) {
    info.volume = VolumeRaw(codes);
    info.arg = index;
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (codes[m].level == 0) continue;
    const DimCode saved = codes[m];
    codes[m] = DimCode{saved.level - 1, saved.offset >> 1};
    const AncestorInfo parent = MinAncestorRaw(codes);
    codes[m] = saved;
    if (parent.volume < info.volume) info = parent;
  }
  return ancestor_memo_.Insert(index, info);
}

AssemblyEngine::PlanNode AssemblyEngine::PlanRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (const PlanNode* hit = plan_memo_.Find(index)) return *hit;

  PlanNode node;
  const uint64_t vol = VolumeRaw(codes);
  // F option: aggregate down from the smallest stored ancestor (a stored
  // target is the ancestor==self case with cost 0).
  const AncestorInfo ancestor = MinAncestorRaw(codes);
  if (ancestor.volume != kInfiniteCost) {
    node.cost = ancestor.volume - vol;
    node.choice = Choice::kAggregate;
    node.source = ancestor.arg;
  }

  // R option: synthesize from the P/R children along the best dimension.
  // Any synthesis costs at least Vol(n) (the final stage alone), so when
  // aggregation already achieves that, the children cones need not be
  // explored at all — this prunes most of the graph for stores containing
  // coarse elements.
  //
  // Cheap first pass: bound each dimension's synthesis option by the
  // children's *aggregation-only* costs (no recursive exploration). This
  // often establishes the Vol(n) floor immediately — e.g. when both
  // children are stored — and lets the deep pass be skipped entirely.
  if (node.cost > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const AncestorInfo ap = MinAncestorRaw(codes);
      const uint64_t child_vol = VolumeRaw(codes);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const AncestorInfo ar = MinAncestorRaw(codes);
      codes[m] = saved;
      if (ap.volume == kInfiniteCost || ar.volume == kInfiniteCost) continue;
      const uint64_t cost =
          vol + (ap.volume - child_vol) + (ar.volume - child_vol);
      if (cost < node.cost) {
        node.cost = cost;
        node.choice = Choice::kSynthesize;
        node.split_dim = m;
      }
      if (node.cost <= vol) break;
    }
  }
  if (node.cost > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const uint64_t tp = PlanRaw(codes).cost;
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const uint64_t tr = PlanRaw(codes).cost;
      codes[m] = saved;
      if (tp == kInfiniteCost || tr == kInfiniteCost) continue;
      const uint64_t cost = vol + tp + tr;
      if (cost < node.cost) {
        node.cost = cost;
        node.choice = Choice::kSynthesize;
        node.split_dim = m;
      }
      if (node.cost <= vol) break;
    }
  }

  return plan_memo_.Insert(index, node);
}

uint64_t AssemblyEngine::PlanCost(const ElementId& target) {
  if (target.ndim() != shape_.ndim()) return kInfiniteCost;
  std::array<DimCode, kMaxDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  return PlanRaw(codes.data()).cost;
}

Result<Tensor> AssemblyEngine::Execute(
    const ElementId& target, OpCounter* ops,
    std::unordered_map<uint64_t, Tensor>* shared) {
  std::array<DimCode, kMaxDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  const uint64_t target_index = EncodeRaw(codes.data());
  if (shared != nullptr) {
    if (auto it = shared->find(target_index); it != shared->end()) {
      return it->second;
    }
  }
  const PlanNode node = PlanRaw(codes.data());  // copy: map may rehash below
  switch (node.choice) {
    case Choice::kAggregate: {
      const ElementId source = indexer_.Decode(node.source);
      const Tensor* data;
      VECUBE_ASSIGN_OR_RETURN(data, store_->Get(source));
      if (source == target) return *data;
      // Cascade from the ancestor to the target: per dimension, follow the
      // remaining bits of the target's offset below the ancestor's level.
      Tensor current = *data;
      for (uint32_t m = 0; m < target.ndim(); ++m) {
        const DimCode& from = source.dim(m);
        const DimCode& to = target.dim(m);
        for (uint32_t bit = to.level - from.level; bit-- > 0;) {
          const bool residual = ((to.offset >> bit) & 1u) != 0;
          Tensor next;
          if (residual) {
            VECUBE_ASSIGN_OR_RETURN(next, PartialResidual(current, m, ops));
          } else {
            VECUBE_ASSIGN_OR_RETURN(next, PartialSum(current, m, ops));
          }
          current = std::move(next);
        }
      }
      if (shared != nullptr) shared->emplace(target_index, current);
      return current;
    }
    case Choice::kSynthesize: {
      ElementId p_id, r_id;
      VECUBE_ASSIGN_OR_RETURN(
          p_id, target.Child(node.split_dim, StepKind::kPartial, shape_));
      VECUBE_ASSIGN_OR_RETURN(
          r_id, target.Child(node.split_dim, StepKind::kResidual, shape_));
      Tensor p, r;
      VECUBE_ASSIGN_OR_RETURN(p, Execute(p_id, ops, shared));
      VECUBE_ASSIGN_OR_RETURN(r, Execute(r_id, ops, shared));
      Tensor out;
      VECUBE_ASSIGN_OR_RETURN(out,
                              SynthesizePair(p, r, node.split_dim, ops));
      if (shared != nullptr) shared->emplace(target_index, out);
      return out;
    }
    case Choice::kNone:
      break;
  }
  return Status::Incomplete("stored element set cannot reconstruct " +
                            target.ToString());
}

Result<Tensor> AssemblyEngine::Assemble(const ElementId& target,
                                        OpCounter* ops) {
  if (target.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match store");
  }
  ElementId checked;
  VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(target.codes(), shape_));
  return Execute(target, ops, nullptr);
}

Result<std::vector<Tensor>> AssemblyEngine::AssembleBatch(
    const std::vector<ElementId>& targets, OpCounter* ops) {
  std::unordered_map<uint64_t, Tensor> shared;
  std::vector<Tensor> out;
  out.reserve(targets.size());
  for (const ElementId& target : targets) {
    if (target.ndim() != shape_.ndim()) {
      return Status::InvalidArgument("element arity does not match store");
    }
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked,
                            ElementId::Make(target.codes(), shape_));
    Tensor tensor;
    VECUBE_ASSIGN_OR_RETURN(tensor, Execute(target, ops, &shared));
    out.push_back(std::move(tensor));
  }
  return out;
}

Result<Tensor> AssemblyEngine::AssembleView(uint32_t aggregated_mask,
                                            OpCounter* ops) {
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  return Assemble(view, ops);
}

}  // namespace vecube
