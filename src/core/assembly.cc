#include "core/assembly.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <optional>

#include "haar/fused.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/sync.h"

namespace vecube {

namespace {
// Flat memo arrays up to this many graph nodes (~0.5 GiB of memo state);
// larger graphs fall back to hash maps over the touched nodes.
constexpr uint64_t kDenseMemoLimit = uint64_t{1} << 24;

Status TooManyDims() {
  return Status::InvalidArgument(
      "at most 16 dimensions supported for assembly planning");
}

// The P1/R1 steps that cascade a stored ancestor down to `target`: per
// dimension, the remaining bits of the target's offset below the
// ancestor's level, most significant first. Executed as one fused
// cascade, the whole descent runs through scratch tiles instead of
// materializing a tensor per level; results and op totals are identical
// to the per-step loop this replaces.
std::vector<CascadeStep> DescentSteps(const ElementId& source,
                                      const ElementId& target) {
  std::vector<CascadeStep> steps;
  for (uint32_t m = 0; m < target.ndim(); ++m) {
    const DimCode& from = source.dim(m);
    const DimCode& to = target.dim(m);
    for (uint32_t bit = to.level - from.level; bit-- > 0;) {
      const bool residual = ((to.offset >> bit) & 1u) != 0;
      steps.push_back(CascadeStep{
          m, residual ? StepKind::kResidual : StepKind::kPartial});
    }
  }
  return steps;
}
}  // namespace

// Latched cross-target sub-result cache (see header). Entries are owned by
// shared_ptr so the map can grow while other threads hold their entry.
struct AssemblyEngine::BatchCache {
  struct Entry {
    Mutex mu;
    CondVar cv;
    bool ready VECUBE_GUARDED_BY(mu) = false;
    // non-OK when the owning computation failed
    Status status VECUBE_GUARDED_BY(mu);
    Tensor tensor VECUBE_GUARDED_BY(mu);
  };
  Mutex mu;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> map
      VECUBE_GUARDED_BY(mu);
};

AssemblyEngine::AssemblyEngine(const ElementStore* store, ThreadPool* pool,
                               ScratchArena* arena, uint32_t num_shards)
    : store_(store),
      pool_(pool),
      arena_(arena),
      num_shards_(num_shards != 0
                      ? num_shards
                      : (pool != nullptr ? pool->num_threads() : 1)),
      shape_(store->shape()),
      indexer_(shape_) {
  VECUBE_CHECK(store != nullptr);
  if (num_shards_ > 1) {
    shard_exec_ = std::make_unique<ThreadedShardExecutor>(pool_);
  }
  dense_memos_ = indexer_.size() <= kDenseMemoLimit;
  Invalidate();
}

Result<Tensor> AssemblyEngine::RunCascade(const Tensor& source,
                                          const std::vector<CascadeStep>& steps,
                                          OpCounter* ops,
                                          const QueryContext* ctx) {
  // Shard only cascades with enough cells to amortize the per-task setup
  // (same threshold the kernels use for pool fan-out); tiny descents and
  // degenerate decompositions take the pooled fused path unchanged.
  if (shard_exec_ != nullptr && !steps.empty() &&
      source.size() >= kParallelKernelCells) {
    const ShardPlan plan =
        ShardPlan::Build(source.extents(), steps, num_shards_);
    if (plan.parallelism() > 1) {
      return shard_exec_->Execute(source, plan, ops, ctx);
    }
  }
  return CascadeAnalysis(source, steps, ops, pool_, arena_, ctx);
}

void AssemblyEngine::Invalidate() {
  is_stored_.clear();
  for (const ElementId& id : store_->Ids()) {
    is_stored_[indexer_.Encode(id)] = 1;
  }
  ancestor_memo_.Init(indexer_.size(), dense_memos_);
  plan_memo_.Init(indexer_.size(), dense_memos_);
}

uint64_t AssemblyEngine::EncodeRaw(const DimCode* codes) const {
  uint64_t index = 0;
  uint64_t weight = 1;
  for (uint32_t m = shape_.ndim(); m-- > 0;) {
    index += (((uint64_t{1} << codes[m].level) - 1) + codes[m].offset) * weight;
    weight *= 2ull * shape_.extent(m) - 1;
  }
  return index;
}

uint64_t AssemblyEngine::VolumeRaw(const DimCode* codes) const {
  uint64_t volume = 1;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    volume *= shape_.extent(m) >> codes[m].level;
  }
  return volume;
}

AssemblyEngine::AncestorInfo AssemblyEngine::MinAncestorRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (const AncestorInfo* hit = ancestor_memo_.Find(index)) return *hit;
  AncestorInfo info;
  if (is_stored_.count(index) > 0) {
    info.volume = VolumeRaw(codes);
    info.arg = index;
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (codes[m].level == 0) continue;
    const DimCode saved = codes[m];
    codes[m] = DimCode{saved.level - 1, saved.offset >> 1};
    const AncestorInfo parent = MinAncestorRaw(codes);
    codes[m] = saved;
    if (parent.volume < info.volume) info = parent;
  }
  return ancestor_memo_.Insert(index, info);
}

AssemblyEngine::PlanNode AssemblyEngine::PlanRaw(DimCode* codes) {
  const uint64_t index = EncodeRaw(codes);
  if (const PlanNode* hit = plan_memo_.Find(index)) return *hit;

  PlanNode node;
  const uint64_t vol = VolumeRaw(codes);
  // F option: aggregate down from the smallest stored ancestor (a stored
  // target is the ancestor==self case with cost 0).
  const AncestorInfo ancestor = MinAncestorRaw(codes);
  if (ancestor.volume != kInfiniteCost) {
    node.cost = ancestor.volume - vol;
    node.choice = Choice::kAggregate;
    node.source = ancestor.arg;
  }

  // R option: synthesize from the P/R children along the best dimension.
  // Any synthesis costs at least Vol(n) (the final stage alone), so when
  // aggregation already achieves that, the children cones need not be
  // explored at all — this prunes most of the graph for stores containing
  // coarse elements.
  //
  // Cheap first pass: bound each dimension's synthesis option by the
  // children's *aggregation-only* costs (no recursive exploration). This
  // often establishes the Vol(n) floor immediately — e.g. when both
  // children are stored — and lets the deep pass be skipped entirely.
  if (node.cost > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const AncestorInfo ap = MinAncestorRaw(codes);
      const uint64_t child_vol = VolumeRaw(codes);
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const AncestorInfo ar = MinAncestorRaw(codes);
      codes[m] = saved;
      if (ap.volume == kInfiniteCost || ar.volume == kInfiniteCost) continue;
      const uint64_t cost =
          vol + (ap.volume - child_vol) + (ar.volume - child_vol);
      if (cost < node.cost) {
        node.cost = cost;
        node.choice = Choice::kSynthesize;
        node.split_dim = m;
      }
      if (node.cost <= vol) break;
    }
  }
  if (node.cost > vol) {
    for (uint32_t m = 0; m < shape_.ndim(); ++m) {
      if (codes[m].level >= shape_.log_extent(m)) continue;
      const DimCode saved = codes[m];
      codes[m] = DimCode{saved.level + 1, saved.offset * 2};
      const uint64_t tp = PlanRaw(codes).cost;
      codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
      const uint64_t tr = PlanRaw(codes).cost;
      codes[m] = saved;
      if (tp == kInfiniteCost || tr == kInfiniteCost) continue;
      const uint64_t cost = vol + tp + tr;
      if (cost < node.cost) {
        node.cost = cost;
        node.choice = Choice::kSynthesize;
        node.split_dim = m;
      }
      if (node.cost <= vol) break;
    }
  }

  return plan_memo_.Insert(index, node);
}

void AssemblyEngine::WarmPlanRaw(DimCode* codes,
                                 std::unordered_set<uint64_t>* visited) {
  const uint64_t index = EncodeRaw(codes);
  if (!visited->insert(index).second) return;
  const PlanNode node = PlanRaw(codes);
  if (node.choice != Choice::kSynthesize) return;
  // Execution will recurse into exactly these two children. (The cheap
  // first pass of PlanRaw can choose kSynthesize without ever having
  // planned the children, so warming must descend explicitly.)
  const uint32_t m = node.split_dim;
  const DimCode saved = codes[m];
  codes[m] = DimCode{saved.level + 1, saved.offset * 2};
  WarmPlanRaw(codes, visited);
  codes[m] = DimCode{saved.level + 1, saved.offset * 2 + 1};
  WarmPlanRaw(codes, visited);
  codes[m] = saved;
}

uint64_t AssemblyEngine::PlanCost(const ElementId& target) {
  // Guard the fixed-arity code buffers below: a shape beyond kMaxAssemblyDims
  // must not reach the std::array copy (stack overflow otherwise).
  if (shape_.ndim() > kMaxAssemblyDims) return kInfiniteCost;
  if (target.ndim() != shape_.ndim()) return kInfiniteCost;
  std::array<DimCode, kMaxAssemblyDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  return PlanRaw(codes.data()).cost;
}

Result<Tensor> AssemblyEngine::ExecuteSolo(const ElementId& target,
                                           OpCounter* ops,
                                           const QueryContext* ctx) {
  if (ctx != nullptr) VECUBE_RETURN_NOT_OK(ctx->Check());
  // Chaos hook: lets latency tests stall every plan node (kDelay) or fail
  // the assembly mid-plan (kError). Unarmed cost: one relaxed load.
  if (std::optional<FailpointAction> fp =
          Failpoints::HitWithDelay("assembly.node");
      fp.has_value() && fp->kind == FailpointAction::Kind::kError) {
    return Status::Internal(
        "injected assembly failure (failpoint assembly.node)");
  }
  std::array<DimCode, kMaxAssemblyDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  const PlanNode node = PlanRaw(codes.data());  // copy: map may rehash below
  switch (node.choice) {
    case Choice::kAggregate: {
      const ElementId source = indexer_.Decode(node.source);
      const Tensor* data;
      VECUBE_ASSIGN_OR_RETURN(data, store_->Get(source));
      if (source == target) return *data;
      return RunCascade(*data, DescentSteps(source, target), ops, ctx);
    }
    case Choice::kSynthesize: {
      ElementId p_id, r_id;
      VECUBE_ASSIGN_OR_RETURN(
          p_id, target.Child(node.split_dim, StepKind::kPartial, shape_));
      VECUBE_ASSIGN_OR_RETURN(
          r_id, target.Child(node.split_dim, StepKind::kResidual, shape_));
      Tensor p, r;
      VECUBE_ASSIGN_OR_RETURN(p, ExecuteSolo(p_id, ops, ctx));
      VECUBE_ASSIGN_OR_RETURN(r, ExecuteSolo(r_id, ops, ctx));
      Tensor out;
      VECUBE_ASSIGN_OR_RETURN(
          out, SynthesizePair(p, r, node.split_dim, ops, pool_));
      return out;
    }
    case Choice::kNone:
      break;
  }
  return Status::Incomplete("stored element set cannot reconstruct " +
                            target.ToString());
}

Result<Tensor> AssemblyEngine::ExecuteShared(const ElementId& target,
                                             BatchCache* cache,
                                             std::atomic<uint64_t>* adds,
                                             const QueryContext* ctx) {
  if (ctx != nullptr) VECUBE_RETURN_NOT_OK(ctx->Check());
  std::array<DimCode, kMaxAssemblyDims> codes{};
  std::copy(target.codes().begin(), target.codes().end(), codes.begin());
  const uint64_t target_index = EncodeRaw(codes.data());

  std::shared_ptr<BatchCache::Entry> entry;
  bool owner = false;
  {
    MutexLock lock(cache->mu);
    auto [it, inserted] = cache->map.try_emplace(target_index, nullptr);
    if (inserted) {
      it->second = std::make_shared<BatchCache::Entry>();
      owner = true;
    }
    entry = it->second;
  }
  if (!owner) {
    // Another thread owns this node. Waits follow child edges of the plan
    // DAG only, and owners are always running threads, so this terminates;
    // the timed slices bound each wait (no-unbounded-wait) and let an
    // expired context unwind instead of riding out a slow owner.
    MutexLock lock(entry->mu);
    while (!entry->ready) {
      if (ctx != nullptr) {
        Status live = ctx->Check();
        if (!live.ok()) return live;
      }
      entry->cv.WaitFor(entry->mu, std::chrono::milliseconds(100));
    }
    if (!entry->status.ok()) return entry->status;
    return entry->tensor;
  }

  // This node's kernel work lands in a local counter and is published
  // once, keeping the batch total an order-independent sum of per-node
  // costs — identical at every thread count.
  OpCounter local;
  Result<Tensor> result = [&]() -> Result<Tensor> {
    // Plans were warmed serially by AssembleBatch; this is a memo read.
    const PlanNode node = PlanRaw(codes.data());
    switch (node.choice) {
      case Choice::kAggregate: {
        const ElementId source = indexer_.Decode(node.source);
        const Tensor* data;
        VECUBE_ASSIGN_OR_RETURN(data, store_->Get(source));
        if (source == target) return *data;
        return RunCascade(*data, DescentSteps(source, target), &local, ctx);
      }
      case Choice::kSynthesize: {
        ElementId p_id, r_id;
        VECUBE_ASSIGN_OR_RETURN(
            p_id, target.Child(node.split_dim, StepKind::kPartial, shape_));
        VECUBE_ASSIGN_OR_RETURN(
            r_id, target.Child(node.split_dim, StepKind::kResidual, shape_));
        Tensor p, r;
        VECUBE_ASSIGN_OR_RETURN(p, ExecuteShared(p_id, cache, adds, ctx));
        VECUBE_ASSIGN_OR_RETURN(r, ExecuteShared(r_id, cache, adds, ctx));
        Tensor out;
        VECUBE_ASSIGN_OR_RETURN(
            out, SynthesizePair(p, r, node.split_dim, &local, pool_));
        return out;
      }
      case Choice::kNone:
        break;
    }
    return Status::Incomplete("stored element set cannot reconstruct " +
                              target.ToString());
  }();
  // order: relaxed — pure op accounting; the total is read only after
  // ParallelFor's completion barrier has ordered all chunk writes.
  adds->fetch_add(local.adds, std::memory_order_relaxed);

  {
    MutexLock lock(entry->mu);
    if (result.ok()) {
      entry->tensor = *result;
    } else {
      entry->status = result.status();
    }
    entry->ready = true;
  }
  entry->cv.NotifyAll();
  return result;
}

Result<Tensor> AssemblyEngine::Assemble(const ElementId& target,
                                        OpCounter* ops,
                                        const QueryContext* ctx) {
  if (shape_.ndim() > kMaxAssemblyDims) return TooManyDims();
  if (target.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match store");
  }
  ElementId checked;
  VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(target.codes(), shape_));
  return ExecuteSolo(target, ops, ctx);
}

Result<std::vector<Tensor>> AssemblyEngine::AssembleBatch(
    const std::vector<ElementId>& targets, OpCounter* ops,
    const QueryContext* ctx) {
  if (shape_.ndim() > kMaxAssemblyDims) return TooManyDims();
  for (const ElementId& target : targets) {
    if (target.ndim() != shape_.ndim()) {
      return Status::InvalidArgument("element arity does not match store");
    }
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(target.codes(), shape_));
  }

  // Phase 1 — serial planning: memoize the plan of every node execution
  // can touch. The memo tables are unlocked, so the concurrent phase must
  // only ever read them.
  std::unordered_set<uint64_t> visited;
  for (const ElementId& target : targets) {
    std::array<DimCode, kMaxAssemblyDims> codes{};
    std::copy(target.codes().begin(), target.codes().end(), codes.begin());
    WarmPlanRaw(codes.data(), &visited);
  }

  // Phase 2 — execution, fanned out across targets when a pool is
  // available. The latched cache makes every distinct sub-element compute
  // exactly once regardless of scheduling.
  BatchCache cache;
  std::atomic<uint64_t> adds{0};
  const uint64_t count = targets.size();
  std::vector<std::optional<Result<Tensor>>> results(count);

  // Cost-weighted scheduling: fan targets out largest-Procedure-3-cost
  // first (plans are already memoized, so PlanCost is a table read). The
  // grain-1 dynamic claiming then keeps every straggler small instead of
  // letting a heavyweight target land last on a skewed batch. Order
  // affects timing only — the latched cache computes each sub-element
  // once regardless, so results and op totals are scheduling-invariant.
  std::vector<uint64_t> order(count);
  for (uint64_t i = 0; i < count; ++i) order[i] = i;
  const bool fan_out = pool_ != nullptr && pool_->num_threads() > 1 &&
                       count > 1;
  if (fan_out) {
    std::vector<uint64_t> costs(count);
    for (uint64_t i = 0; i < count; ++i) costs[i] = PlanCost(targets[i]);
    std::stable_sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
      return costs[a] > costs[b];
    });
  }
  auto run_targets = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t t = order[i];
      results[t] = ExecuteShared(targets[t], &cache, &adds, ctx);
    }
  };
  if (fan_out) {
    pool_->ParallelFor(count, 1, run_targets);
  } else {
    run_targets(0, count);
  }

  std::vector<Tensor> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!results[i]->ok()) return results[i]->status();
    out.push_back(std::move(**results[i]));
  }
  // order: relaxed — every contributor finished inside ParallelFor's
  // acq_rel completion barrier, which ordered their fetch_adds here.
  if (ops != nullptr) ops->adds += adds.load(std::memory_order_relaxed);
  return out;
}

Result<Tensor> AssemblyEngine::AssembleView(uint32_t aggregated_mask,
                                            OpCounter* ops,
                                            const QueryContext* ctx) {
  ElementId view;
  VECUBE_ASSIGN_OR_RETURN(view,
                          ElementId::AggregatedView(aggregated_mask, shape_));
  return Assemble(view, ops, ctx);
}

}  // namespace vecube
