#include "core/tracker.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

namespace vecube {

double AccessTracker::DecayedWeight(const Entry& entry) const {
  if (decay_ >= 1.0 || entry.weight == 0.0) return entry.weight;
  const uint64_t gap = generation_ - entry.touched;
  if (gap == 0) return entry.weight;
  return entry.weight * std::pow(decay_, static_cast<double>(gap));
}

void AccessTracker::Record(const ElementId& id) {
  ++generation_;
  Entry& entry = weights_[id];
  entry.weight = DecayedWeight(entry) + 1.0;
  entry.touched = generation_;
  ++total_;
  // Amortized sweep: the map holds at most the sweep's survivors plus
  // one interval of fresh entries, so a long-tailed workload over
  // millions of distinct views stays bounded. Decay 1.0 never shrinks
  // weights, so pruning would silently drop real history — skip it.
  if (decay_ < 1.0 && generation_ % kPruneInterval == 0) Prune();
}

void AccessTracker::Prune() {
  for (auto it = weights_.begin(); it != weights_.end();) {
    if (DecayedWeight(it->second) < kPruneEpsilon) {
      it = weights_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<ElementId, double>> AccessTracker::Distribution() const {
  std::vector<std::pair<ElementId, double>> dist;
  dist.reserve(weights_.size());
  for (const auto& [id, entry] : weights_) {
    dist.emplace_back(id, DecayedWeight(entry));
  }
  std::sort(dist.begin(), dist.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (const auto& [id, w] : dist) total += w;
  if (total > 0.0) {
    for (auto& [id, w] : dist) w /= total;
  }
  return dist;
}

double AccessTracker::L1Drift(
    const std::vector<std::pair<ElementId, double>>& reference) const {
  const auto mine = Distribution();
  std::unordered_map<ElementId, double, ElementIdHash> merged;
  for (const auto& [id, f] : mine) merged[id] += f;
  for (const auto& [id, f] : reference) merged[id] -= f;
  double drift = 0.0;
  for (const auto& [id, delta] : merged) drift += std::fabs(delta);
  return drift;
}

void AccessTracker::Reset() {
  weights_.clear();
  total_ = 0;
  generation_ = 0;
}

BufferedAccessLog::BufferedAccessLog(AccessTracker* sink, size_t batch_size)
    : sink_(sink), batch_size_(batch_size == 0 ? 1 : batch_size) {}

BufferedAccessLog::Stripe& BufferedAccessLog::StripeForThisThread() {
  // Thread identity only picks a stripe — any stable per-thread value
  // works; collisions merely share a (still tiny) critical section.
  const size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % kStripes];
}

void BufferedAccessLog::Record(const ElementId& id) {
  Stripe& stripe = StripeForThisThread();
  std::vector<ElementId> batch;
  {
    MutexLock lock(stripe.mu);
    stripe.pending.push_back(id);
    if (stripe.pending.size() < batch_size_) return;
    batch.swap(stripe.pending);
    stripe.pending.reserve(batch_size_);
  }
  ApplyToSink(batch);
}

void BufferedAccessLog::Drain() {
  for (Stripe& stripe : stripes_) {
    std::vector<ElementId> batch;
    {
      MutexLock lock(stripe.mu);
      batch.swap(stripe.pending);
    }
    if (!batch.empty()) ApplyToSink(batch);
  }
}

size_t BufferedAccessLog::buffered() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    total += stripe.pending.size();
  }
  return total;
}

void BufferedAccessLog::ApplyToSink(const std::vector<ElementId>& records) {
  MutexLock lock(sink_mu_);
  for (const ElementId& id : records) sink_->Record(id);
}

}  // namespace vecube
