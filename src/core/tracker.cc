#include "core/tracker.h"

#include <algorithm>
#include <cmath>

namespace vecube {

double AccessTracker::DecayedWeight(const Entry& entry) const {
  if (decay_ >= 1.0 || entry.weight == 0.0) return entry.weight;
  const uint64_t gap = generation_ - entry.touched;
  if (gap == 0) return entry.weight;
  return entry.weight * std::pow(decay_, static_cast<double>(gap));
}

void AccessTracker::Record(const ElementId& id) {
  ++generation_;
  Entry& entry = weights_[id];
  entry.weight = DecayedWeight(entry) + 1.0;
  entry.touched = generation_;
  ++total_;
  // Amortized sweep: the map holds at most the sweep's survivors plus
  // one interval of fresh entries, so a long-tailed workload over
  // millions of distinct views stays bounded. Decay 1.0 never shrinks
  // weights, so pruning would silently drop real history — skip it.
  if (decay_ < 1.0 && generation_ % kPruneInterval == 0) Prune();
}

void AccessTracker::Prune() {
  for (auto it = weights_.begin(); it != weights_.end();) {
    if (DecayedWeight(it->second) < kPruneEpsilon) {
      it = weights_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<ElementId, double>> AccessTracker::Distribution() const {
  std::vector<std::pair<ElementId, double>> dist;
  dist.reserve(weights_.size());
  for (const auto& [id, entry] : weights_) {
    dist.emplace_back(id, DecayedWeight(entry));
  }
  std::sort(dist.begin(), dist.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (const auto& [id, w] : dist) total += w;
  if (total > 0.0) {
    for (auto& [id, w] : dist) w /= total;
  }
  return dist;
}

double AccessTracker::L1Drift(
    const std::vector<std::pair<ElementId, double>>& reference) const {
  const auto mine = Distribution();
  std::unordered_map<ElementId, double, ElementIdHash> merged;
  for (const auto& [id, f] : mine) merged[id] += f;
  for (const auto& [id, f] : reference) merged[id] -= f;
  double drift = 0.0;
  for (const auto& [id, delta] : merged) drift += std::fabs(delta);
  return drift;
}

void AccessTracker::Reset() {
  weights_.clear();
  total_ = 0;
  generation_ = 0;
}

}  // namespace vecube
