#include "core/tracker.h"

#include <algorithm>
#include <cmath>

namespace vecube {

void AccessTracker::Record(const ElementId& id) {
  if (decay_ < 1.0) {
    for (auto& [key, weight] : weights_) weight *= decay_;
  }
  weights_[id] += 1.0;
  ++total_;
}

std::vector<std::pair<ElementId, double>> AccessTracker::Distribution() const {
  std::vector<std::pair<ElementId, double>> dist(weights_.begin(),
                                                 weights_.end());
  std::sort(dist.begin(), dist.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (const auto& [id, w] : dist) total += w;
  if (total > 0.0) {
    for (auto& [id, w] : dist) w /= total;
  }
  return dist;
}

double AccessTracker::L1Drift(
    const std::vector<std::pair<ElementId, double>>& reference) const {
  const auto mine = Distribution();
  std::unordered_map<ElementId, double, ElementIdHash> merged;
  for (const auto& [id, f] : mine) merged[id] += f;
  for (const auto& [id, f] : reference) merged[id] -= f;
  double drift = 0.0;
  for (const auto& [id, delta] : merged) drift += std::fabs(delta);
  return drift;
}

void AccessTracker::Reset() {
  weights_.clear();
  total_ = 0;
}

}  // namespace vecube
