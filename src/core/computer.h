// ElementComputer: materializes view elements from the data cube.
//
// Generation follows the analysis cascade (Sections 3.1-3.2): each
// element's data is obtained by applying its P/R path from the root. A
// memo cache of cascade prefixes lets a set of related elements (a basis,
// a pyramid) be materialized with shared work, mirroring the paper's
// block-at-a-time generation of the view element graph (Section 4.1).

#ifndef VECUBE_CORE_COMPUTER_H_
#define VECUBE_CORE_COMPUTER_H_

#include <unordered_map>
#include <vector>

#include "core/element_id.h"
#include "core/store.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "haar/transform.h"
#include "util/result.h"

namespace vecube {

class ElementComputer {
 public:
  /// Borrows the cube; the caller keeps it alive.
  ElementComputer(const CubeShape& shape, const Tensor* cube);

  /// Data of a single element, computed by cascading from the cube (or a
  /// cached prefix). `ops` (optional) accrues analysis operation counts.
  Result<Tensor> Compute(const ElementId& id, OpCounter* ops = nullptr);

  /// Materializes every element of `set` into a fresh store.
  Result<ElementStore> Materialize(const std::vector<ElementId>& set,
                                   OpCounter* ops = nullptr);

  /// Drops cached cascade prefixes (the root cube is retained).
  void ClearCache() { cache_.clear(); }
  [[nodiscard]] size_t CacheSize() const { return cache_.size(); }

 private:
  CubeShape shape_;
  const Tensor* cube_;
  std::unordered_map<ElementId, Tensor, ElementIdHash> cache_;
};

}  // namespace vecube

#endif  // VECUBE_CORE_COMPUTER_H_
