#include "core/repair.h"

#include <algorithm>
#include <utility>

#include "core/assembly.h"
#include "core/computer.h"

namespace vecube {

namespace {

// Direct recomputation from the resident base cuboid, for targets the
// assembly engine cannot plan (arity beyond kMaxAssemblyDims).
Result<Tensor> RecomputeFromRoot(const ElementStore& store,
                                 const ElementId& id) {
  const ElementId root = ElementId::Root(store.shape().ndim());
  const Tensor* cube;
  VECUBE_ASSIGN_OR_RETURN(cube, store.Get(root));
  ElementComputer computer(store.shape(), cube);
  return computer.Compute(id);
}

}  // namespace

Result<RepairReport> RepairStore(ElementStore* store, ThreadPool* pool) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must be non-null");
  }
  RepairReport report;
  const bool engine_usable = store->shape().ndim() <= kMaxAssemblyDims;

  // Fixpoint iteration: a pass that repairs anything may open paths for
  // elements that previously had none (e.g. a repaired sibling enables a
  // synthesis). Each pass rebuilds the engine so new residents plan.
  bool progressed = true;
  while (progressed && store->quarantined_count() > 0) {
    progressed = false;
    AssemblyEngine engine(store, pool);
    std::vector<std::pair<ElementId, Tensor>> derived;
    for (const ElementId& id : store->QuarantinedIds()) {
      Result<Tensor> data = Status::Incomplete("not attempted");
      if (engine_usable) {
        OpCounter ops;
        data = engine.Assemble(id, &ops);
        report.assembly_ops += ops.adds;
      }
      if (!data.ok()) {
        Result<Tensor> recomputed = RecomputeFromRoot(*store, id);
        if (recomputed.ok()) data = std::move(recomputed);
      }
      if (!data.ok()) continue;  // retried next pass if others repair
      derived.emplace_back(id, std::move(data).value());
    }
    // Reinstate after the scan: the engine borrows the store, and a Put
    // mid-scan would invalidate its memoized plans.
    for (auto& [id, tensor] : derived) {
      VECUBE_RETURN_NOT_OK(store->Put(id, std::move(tensor)));
      report.repaired.push_back(id);
      progressed = true;
    }
  }
  report.unrepaired = store->QuarantinedIds();
  std::sort(report.repaired.begin(), report.repaired.end());
  return report;
}

}  // namespace vecube
