#include "core/counts.h"

#include "core/graph.h"

namespace vecube {

ElementCensus CensusClosedForm(const CubeShape& shape) {
  ViewElementGraph graph(shape);
  ElementCensus census;
  census.total = graph.NumElements();
  census.aggregated = graph.NumAggregatedViews();
  census.intermediate = graph.NumIntermediate();
  census.residual = graph.NumResidual();
  return census;
}

ElementCensus CensusByEnumeration(const CubeShape& shape) {
  ViewElementGraph graph(shape);
  ElementCensus census;
  graph.ForEachElement([&](const ElementId& id) {
    ++census.total;
    if (id.IsAggregatedView(shape)) ++census.aggregated;
    if (id.IsIntermediate()) {
      ++census.intermediate;
    } else {
      ++census.residual;
    }
  });
  return census;
}

}  // namespace vecube
