#include "core/approximate.h"

#include <cmath>
#include <limits>
#include <utility>

#include "haar/transform.h"

namespace vecube {

Result<ElementStore> ThresholdResiduals(const ElementStore& store,
                                        double threshold,
                                        ThresholdSummary* summary) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  ElementStore out(store.shape());
  ThresholdSummary local;
  for (const ElementId& id : store.Ids()) {
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    Tensor copy = *data;
    if (id.IsResidual()) {
      for (uint64_t i = 0; i < copy.size(); ++i) {
        if (copy[i] != 0.0 && std::fabs(copy[i]) <= threshold) {
          copy[i] = 0.0;
          ++local.zeroed;
        }
      }
    }
    for (uint64_t i = 0; i < copy.size(); ++i) {
      if (copy[i] != 0.0) ++local.retained_nonzero;
    }
    local.total_cells += copy.size();
    VECUBE_RETURN_NOT_OK(out.Put(id, std::move(copy)));
  }
  if (summary != nullptr) *summary = local;
  return out;
}

Result<ApproxError> CompareTensors(const Tensor& exact,
                                   const Tensor& approximate) {
  if (exact.extents() != approximate.extents()) {
    return Status::InvalidArgument("tensor extents differ");
  }
  ApproxError error;
  double sum_sq = 0.0;
  double sum_abs_err = 0.0;
  double sum_abs_exact = 0.0;
  for (uint64_t i = 0; i < exact.size(); ++i) {
    const double err = std::fabs(exact[i] - approximate[i]);
    error.max_abs = std::max(error.max_abs, err);
    sum_sq += err * err;
    sum_abs_err += err;
    sum_abs_exact += std::fabs(exact[i]);
  }
  error.rms = std::sqrt(sum_sq / static_cast<double>(exact.size()));
  error.relative_l1 =
      sum_abs_exact > 0.0 ? sum_abs_err / sum_abs_exact : 0.0;
  return error;
}

namespace {

constexpr double kInfNorm = std::numeric_limits<double>::infinity();

double TensorL2(const Tensor& t) {
  double sum_sq = 0.0;
  for (uint64_t i = 0; i < t.size(); ++i) sum_sq += t[i] * t[i];
  return std::sqrt(sum_sq);
}

// True iff `a` is an ancestor of `id` in the synthesis lattice (per
// dimension: a's dyadic interval contains id's); on success `depth` is
// the total cascade distance from a down to id.
bool IsAncestor(const ElementId& a, const ElementId& id, uint32_t* depth) {
  uint32_t k = 0;
  for (uint32_t m = 0; m < id.ndim(); ++m) {
    const DimCode& ac = a.dim(m);
    const DimCode& tc = id.dim(m);
    if (ac.level > tc.level) return false;
    const uint32_t drop = tc.level - ac.level;
    if (ac.offset != (tc.offset >> drop)) return false;
    k += drop;
  }
  *depth = k;
  return true;
}

}  // namespace

ApproxAssembler::ApproxAssembler(AssemblyEngine* engine,
                                 const ElementStore* store)
    : engine_(engine), store_(store) {
  Refresh();
}

void ApproxAssembler::Refresh() {
  stored_norms_.clear();
  for (const ElementId& id : store_->Ids()) {
    Result<const Tensor*> data = store_->Get(id);
    if (data.ok()) stored_norms_.emplace(id, TensorL2(**data));
  }
}

double ApproxAssembler::NormBound(const ElementId& id) const {
  double best = kInfNorm;
  for (const auto& [stored, norm] : stored_norms_) {
    uint32_t depth = 0;
    if (!IsAncestor(stored, id, &depth)) continue;
    // ||child||₂ ≤ √2·||parent||₂ per P1/R1 step, composed `depth` times.
    best = std::min(best, std::exp2(0.5 * static_cast<double>(depth)) * norm);
  }
  return best;
}

Result<DegradedAnswer> ApproxAssembler::AssembleWithin(
    const ElementId& target, uint64_t op_budget, const QueryContext* ctx) {
  if (engine_->PlanCost(target) == kInfiniteCost) {
    return Status::Incomplete("stored element set cannot reconstruct " +
                              target.ToString());
  }
  return Recurse(target, op_budget, ctx);
}

Result<DegradedAnswer> ApproxAssembler::Recurse(const ElementId& target,
                                                uint64_t budget,
                                                const QueryContext* ctx) {
  if (ctx != nullptr) VECUBE_RETURN_NOT_OK(ctx->Check());
  const CubeShape& shape = store_->shape();

  // The plan fits: answer exactly. (PlanCost is memoized; kInfiniteCost
  // means only synthesis below can reach this node, handled underneath.)
  const uint64_t exact_cost = engine_->PlanCost(target);
  if (exact_cost != kInfiniteCost && exact_cost <= budget) {
    OpCounter ops;
    DegradedAnswer answer;
    VECUBE_ASSIGN_OR_RETURN(answer.data,
                            engine_->Assemble(target, &ops, ctx));
    answer.ops = ops.adds;
    return answer;
  }

  // Too expensive. Descend one synthesis level: spend the budget on the
  // partial child, zero the residual child if it cannot be afforded.
  const uint64_t volume = target.DataVolume(shape);
  uint32_t split_dim = 0;
  uint64_t split_cost = kInfiniteCost;
  bool can_split = false;
  for (uint32_t m = 0; m < target.ndim(); ++m) {
    if (!target.CanSplit(m, shape)) continue;
    ElementId p_id;
    VECUBE_ASSIGN_OR_RETURN(p_id,
                            target.Child(m, StepKind::kPartial, shape));
    const uint64_t p_cost = engine_->PlanCost(p_id);
    if (!can_split || p_cost < split_cost) {
      can_split = true;
      split_dim = m;
      split_cost = p_cost;
    }
  }

  if (!can_split || budget < volume) {
    // A leaf of the lattice, or not even the synthesis pass is payable:
    // the whole element's mass is skipped. Bound it from a stored
    // ancestor; with none, no bounded answer exists at this budget.
    const double bound = NormBound(target);
    if (bound == kInfNorm) {
      return Status::DeadlineExceeded(
          "op budget cannot cover a bounded answer for " +
          target.ToString());
    }
    DegradedAnswer answer;
    VECUBE_ASSIGN_OR_RETURN(answer.data,
                            Tensor::Zeros(target.DataExtents(shape)));
    answer.l2_bound = bound;
    answer.degraded = true;
    return answer;
  }

  ElementId p_id, r_id;
  VECUBE_ASSIGN_OR_RETURN(
      p_id, target.Child(split_dim, StepKind::kPartial, shape));
  VECUBE_ASSIGN_OR_RETURN(
      r_id, target.Child(split_dim, StepKind::kResidual, shape));

  DegradedAnswer partial;
  VECUBE_ASSIGN_OR_RETURN(partial, Recurse(p_id, budget - volume, ctx));

  // Whatever the partial child left over goes to the residual child.
  const uint64_t r_budget =
      budget - volume - std::min(budget - volume, partial.ops);
  const uint64_t r_cost = engine_->PlanCost(r_id);
  DegradedAnswer residual;
  if (r_cost != kInfiniteCost && r_cost <= r_budget) {
    OpCounter ops;
    VECUBE_ASSIGN_OR_RETURN(residual.data,
                            engine_->Assemble(r_id, &ops, ctx));
    residual.ops = ops.adds;
  } else {
    const double bound = NormBound(r_id);
    if (bound != kInfNorm) {
      VECUBE_ASSIGN_OR_RETURN(residual.data,
                              Tensor::Zeros(r_id.DataExtents(shape)));
      residual.l2_bound = bound;
      residual.degraded = true;
    } else {
      // No stored ancestor bounds the residual mass; recurse so its own
      // partial children (which always plan from somewhere — the target
      // is reconstructible) produce a bounded approximation.
      VECUBE_ASSIGN_OR_RETURN(residual, Recurse(r_id, r_budget, ctx));
    }
  }

  OpCounter synth_ops;
  DegradedAnswer answer;
  VECUBE_ASSIGN_OR_RETURN(
      answer.data, SynthesizePair(partial.data, residual.data, split_dim,
                                  &synth_ops, nullptr));
  // Synthesis is linear: errors combine as (a±e)/2 pairs, so
  // ||E||₂² = (||E_p||₂² + ||E_r||₂²) / 2.
  answer.l2_bound = std::sqrt(
      (partial.l2_bound * partial.l2_bound +
       residual.l2_bound * residual.l2_bound) / 2.0);
  answer.ops = partial.ops + residual.ops + synth_ops.adds;
  answer.degraded = partial.degraded || residual.degraded;
  return answer;
}

}  // namespace vecube
