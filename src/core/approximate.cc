#include "core/approximate.h"

#include <cmath>

namespace vecube {

Result<ElementStore> ThresholdResiduals(const ElementStore& store,
                                        double threshold,
                                        ThresholdSummary* summary) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  ElementStore out(store.shape());
  ThresholdSummary local;
  for (const ElementId& id : store.Ids()) {
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    Tensor copy = *data;
    if (id.IsResidual()) {
      for (uint64_t i = 0; i < copy.size(); ++i) {
        if (copy[i] != 0.0 && std::fabs(copy[i]) <= threshold) {
          copy[i] = 0.0;
          ++local.zeroed;
        }
      }
    }
    for (uint64_t i = 0; i < copy.size(); ++i) {
      if (copy[i] != 0.0) ++local.retained_nonzero;
    }
    local.total_cells += copy.size();
    VECUBE_RETURN_NOT_OK(out.Put(id, std::move(copy)));
  }
  if (summary != nullptr) *summary = local;
  return out;
}

Result<ApproxError> CompareTensors(const Tensor& exact,
                                   const Tensor& approximate) {
  if (exact.extents() != approximate.extents()) {
    return Status::InvalidArgument("tensor extents differ");
  }
  ApproxError error;
  double sum_sq = 0.0;
  double sum_abs_err = 0.0;
  double sum_abs_exact = 0.0;
  for (uint64_t i = 0; i < exact.size(); ++i) {
    const double err = std::fabs(exact[i] - approximate[i]);
    error.max_abs = std::max(error.max_abs, err);
    sum_sq += err * err;
    sum_abs_err += err;
    sum_abs_exact += std::fabs(exact[i]);
  }
  error.rms = std::sqrt(sum_sq / static_cast<double>(exact.size()));
  error.relative_l1 =
      sum_abs_exact > 0.0 ? sum_abs_err / sum_abs_exact : 0.0;
  return error;
}

}  // namespace vecube
