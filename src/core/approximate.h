// Approximate query answering via coefficient thresholding.
//
// The residual view elements are exactly the Haar detail coefficients of
// the cube; zeroing the small ones yields a lossy-but-compact store from
// which views are assembled *approximately* — the classic wavelet synopsis
// follow-up to the paper's framework (cf. its §4.3 compression remark).
// Intermediate elements and aggregated views are never thresholded, so
// any view that only needs partial aggregations of stored elements stays
// exact; error enters only through synthesis from truncated residuals.

#ifndef VECUBE_CORE_APPROXIMATE_H_
#define VECUBE_CORE_APPROXIMATE_H_

#include <cstdint>

#include "core/store.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

struct ThresholdSummary {
  /// Coefficients zeroed across residual elements.
  uint64_t zeroed = 0;
  /// Non-zero coefficients remaining across the whole store.
  uint64_t retained_nonzero = 0;
  /// Total cells in the store (unchanged by thresholding).
  uint64_t total_cells = 0;

  /// Fraction of cells still non-zero (a sparse encoding's payload).
  double RetainedFraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(retained_nonzero) /
                     static_cast<double>(total_cells);
  }
};

/// Returns a copy of `store` with residual-element coefficients of
/// magnitude <= `threshold` set to zero. Intermediate elements (including
/// the cube and aggregated views) are copied untouched.
Result<ElementStore> ThresholdResiduals(const ElementStore& store,
                                        double threshold,
                                        ThresholdSummary* summary = nullptr);

/// Error metrics between an exact and an approximate tensor of equal
/// extents.
struct ApproxError {
  double max_abs = 0.0;
  double rms = 0.0;
  /// Σ|err| / Σ|exact| (0 if the exact tensor is all zero).
  double relative_l1 = 0.0;
};

Result<ApproxError> CompareTensors(const Tensor& exact,
                                   const Tensor& approximate);

}  // namespace vecube

#endif  // VECUBE_CORE_APPROXIMATE_H_
