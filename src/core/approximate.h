// Approximate query answering via coefficient thresholding.
//
// The residual view elements are exactly the Haar detail coefficients of
// the cube; zeroing the small ones yields a lossy-but-compact store from
// which views are assembled *approximately* — the classic wavelet synopsis
// follow-up to the paper's framework (cf. its §4.3 compression remark).
// Intermediate elements and aggregated views are never thresholded, so
// any view that only needs partial aggregations of stored elements stays
// exact; error enters only through synthesis from truncated residuals.

#ifndef VECUBE_CORE_APPROXIMATE_H_
#define VECUBE_CORE_APPROXIMATE_H_

#include <cstdint>
#include <unordered_map>

#include "core/assembly.h"
#include "core/store.h"
#include "cube/tensor.h"
#include "util/query_context.h"
#include "util/result.h"

namespace vecube {

struct ThresholdSummary {
  /// Coefficients zeroed across residual elements.
  uint64_t zeroed = 0;
  /// Non-zero coefficients remaining across the whole store.
  uint64_t retained_nonzero = 0;
  /// Total cells in the store (unchanged by thresholding).
  uint64_t total_cells = 0;

  /// Fraction of cells still non-zero (a sparse encoding's payload).
  double RetainedFraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(retained_nonzero) /
                     static_cast<double>(total_cells);
  }
};

/// Returns a copy of `store` with residual-element coefficients of
/// magnitude <= `threshold` set to zero. Intermediate elements (including
/// the cube and aggregated views) are copied untouched.
Result<ElementStore> ThresholdResiduals(const ElementStore& store,
                                        double threshold,
                                        ThresholdSummary* summary = nullptr);

/// Error metrics between an exact and an approximate tensor of equal
/// extents.
struct ApproxError {
  double max_abs = 0.0;
  double rms = 0.0;
  /// Σ|err| / Σ|exact| (0 if the exact tensor is all zero).
  double relative_l1 = 0.0;
};

Result<ApproxError> CompareTensors(const Tensor& exact,
                                   const Tensor& approximate);

/// An answer that may be approximate, with a sound error bound.
struct DegradedAnswer {
  Tensor data;
  /// Upper bound on ||exact − data||₂ (0 when the answer is exact).
  double l2_bound = 0.0;
  /// Kernel add/subtract operations actually spent.
  uint64_t ops = 0;
  /// False iff the full Procedure-3 plan ran (the answer is bit-exact).
  bool degraded = false;
};

/// Budget-bounded assembly for graceful degradation (DESIGN.md §13).
///
/// When a query's remaining deadline cannot cover the Procedure-3 plan
/// cost, AssembleWithin() answers approximately by *truncated synthesis*:
/// it recursively descends the synthesis lattice, spends its op budget on
/// the partial (sum) children — which carry the view's mass — and zeroes
/// whichever residual children it cannot afford, substituting a sound
/// per-element L2 norm bound for their contribution. Zeroing a residual
/// child r introduces error exactly ||r||₂; synthesis is linear with
/// ||S(x,y)||₂² = (||x||₂² + ||y||₂²) / 2, so bounds compose upward as
/// B = sqrt((B_p² + B_r²)/2). ||r||₂ itself is bounded without assembling
/// r: every P1/R1 step satisfies ||child||₂ ≤ √2·||parent||₂, so
/// ||r||₂ ≤ min over stored ancestors a of 2^(k/2)·||a||₂ (k = cascade
/// depth from a to r). Stored-element norms are precomputed in one pass.
///
/// The bound is loose (it never reads the data it skips) but always
/// sound, and the returned tensor is always a plausible view: partial
/// sums are exact wherever the budget reached. Degraded answers must
/// never be cached (serve/serving.h enforces this).
class ApproxAssembler {
 public:
  /// Borrows both; the caller keeps them alive and calls Refresh() after
  /// mutating the store.
  ApproxAssembler(AssemblyEngine* engine, const ElementStore* store);

  /// Recomputes stored-element norms (one O(storage) pass).
  void Refresh();

  /// Materializes `target` spending at most ~`op_budget` kernel ops.
  /// Returns an exact answer (bound 0) when the plan fits the budget.
  /// Status Incomplete if the store cannot reconstruct the target at all,
  /// DeadlineExceeded if no bounded answer exists within the budget (no
  /// stored ancestor to bound the skipped mass). `ctx` is polled at every
  /// recursion node.
  Result<DegradedAnswer> AssembleWithin(const ElementId& target,
                                        uint64_t op_budget,
                                        const QueryContext* ctx = nullptr);

  /// min over stored ancestors a of 2^(k/2)·||a||₂ — a sound upper bound
  /// on ||target||₂ computed without assembling it. +inf if no stored
  /// ancestor exists.
  [[nodiscard]] double NormBound(const ElementId& id) const;

 private:
  Result<DegradedAnswer> Recurse(const ElementId& target, uint64_t budget,
                                 const QueryContext* ctx);

  AssemblyEngine* engine_;
  const ElementStore* store_;
  /// L2 norms of resident stored elements.
  std::unordered_map<ElementId, double, ElementIdHash> stored_norms_;
};

}  // namespace vecube

#endif  // VECUBE_CORE_APPROXIMATE_H_
