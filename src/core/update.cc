#include "core/update.h"

#include "cube/tensor.h"
#include "util/logging.h"

namespace vecube {

Result<PointProjection> ProjectPoint(const ElementId& id,
                                     const std::vector<uint32_t>& coords,
                                     const CubeShape& shape) {
  if (id.ndim() != shape.ndim() || coords.size() != shape.ndim()) {
    return Status::InvalidArgument("arity mismatch");
  }
  PointProjection projection;
  uint64_t flat = 0;
  uint64_t stride = 1;
  int sign = +1;
  // Row-major over the element's data extents, last dimension contiguous.
  for (uint32_t m = shape.ndim(); m-- > 0;) {
    if (coords[m] >= shape.extent(m)) {
      return Status::OutOfRange("coordinate outside cube extent");
    }
    const DimCode& c = id.dim(m);
    // Analysis step t consumes coordinate bit t; its kind is offset bit
    // (level - 1 - t). Residual steps negate when the consumed bit is 1.
    for (uint32_t t = 0; t < c.level; ++t) {
      const bool residual = ((c.offset >> (c.level - 1 - t)) & 1u) != 0;
      if (residual && ((coords[m] >> t) & 1u) != 0) sign = -sign;
    }
    const uint64_t cell = coords[m] >> c.level;
    flat += cell * stride;
    stride *= shape.extent(m) >> c.level;
  }
  projection.flat_index = flat;
  projection.sign = sign;
  return projection;
}

Status ApplyPointDelta(ElementStore* store,
                       const std::vector<uint32_t>& coords, double delta) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must be non-null");
  }
  const CubeShape& shape = store->shape();
  // Two phases: validate every projection before touching any element.
  // A mid-loop failure must not leave the store partially updated — the
  // elements would then disagree with the base cube and with each other.
  struct Pending {
    Tensor* data;
    uint64_t flat_index;
    int sign;
  };
  const std::vector<ElementId> ids = store->Ids();
  std::vector<Pending> pending;
  pending.reserve(ids.size());
  for (const ElementId& id : ids) {
    PointProjection projection;
    VECUBE_ASSIGN_OR_RETURN(projection, ProjectPoint(id, coords, shape));
    Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store->GetMutable(id));
    pending.push_back(Pending{data, projection.flat_index, projection.sign});
  }
  for (const Pending& p : pending) {
    (*p.data)[p.flat_index] += p.sign * delta;
  }
  return Status::OK();
}

Status ApplyDeltas(ElementStore* store,
                   const std::vector<CellDelta>& deltas) {
  for (const CellDelta& d : deltas) {
    VECUBE_RETURN_NOT_OK(ApplyPointDelta(store, d.coords, d.delta));
  }
  return Status::OK();
}

}  // namespace vecube
