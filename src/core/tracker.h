// AccessTracker: observed view-access frequencies for dynamic adaptation.
//
// Section 5: "the frequencies of access can be observed on-line, allowing
// the system to dynamically reconfigure." The tracker keeps exponentially
// decayed access weights per view element so the selection algorithms can
// be re-run against the live distribution.
//
// Decay is lazy: Record() only touches the accessed entry, stamping it
// with the current access generation; an entry's effective weight is
// scaled by decay^(generation gap) when it is read or re-touched. This
// keeps the query hot path O(1) per recorded access instead of the
// O(#distinct elements) eager sweep, with identical semantics (up to
// floating-point rounding of pow vs. repeated multiplication).
//
// Memory is bounded under decaying workloads: every kPruneInterval
// recorded accesses, entries whose decayed weight has fallen below
// kPruneEpsilon are erased (their contribution to the normalized
// distribution is below any drift threshold's resolution). A long tail
// of once-touched views therefore occupies O(survivors + interval)
// map slots instead of growing without bound. With decay == 1.0 weights
// never shrink, so nothing is ever pruned (plain counting keeps exact
// history by design).

#ifndef VECUBE_CORE_TRACKER_H_
#define VECUBE_CORE_TRACKER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/element_id.h"
#include "util/sync.h"

namespace vecube {

class AccessTracker {
 public:
  /// `decay` in (0, 1]: weight multiplier applied to all history per
  /// recorded access. 1.0 = plain counting.
  explicit AccessTracker(double decay = 1.0) : decay_(decay) {}

  /// Records one access to `id`.
  void Record(const ElementId& id);

  [[nodiscard]] uint64_t total_accesses() const { return total_; }

  /// Number of distinct ids currently holding a map slot. Bounded under
  /// decay < 1 by the amortized prune in Record().
  [[nodiscard]] size_t tracked_count() const { return weights_.size(); }

  /// Normalized frequency distribution over observed ids (sums to 1);
  /// empty if nothing recorded. Deterministically ordered by id.
  std::vector<std::pair<ElementId, double>> Distribution() const;

  /// L1 distance between this tracker's distribution and `reference`
  /// (a normalized id->frequency list). Ranges [0, 2]; the drift signal
  /// used by DynamicAssembler to trigger reselection.
  double L1Drift(
      const std::vector<std::pair<ElementId, double>>& reference) const;

  void Reset();

  /// Decayed weights below this are treated as vanished and pruned.
  static constexpr double kPruneEpsilon = 1e-10;
  /// Recorded accesses between amortized prune sweeps.
  static constexpr uint64_t kPruneInterval = 512;

 private:
  struct Entry {
    double weight = 0.0;     ///< weight as of generation `touched`
    uint64_t touched = 0;    ///< generation of the last Record/rescale
  };

  /// `entry`'s weight decayed to the current generation.
  double DecayedWeight(const Entry& entry) const;

  /// Erases entries whose decayed weight is below kPruneEpsilon.
  void Prune();

  double decay_;
  uint64_t total_ = 0;
  uint64_t generation_ = 0;  ///< one tick per Record()
  std::unordered_map<ElementId, Entry, ElementIdHash> weights_;
};

/// Thread-safe write-behind front for AccessTracker, keeping tracker
/// bookkeeping off the serving hit path. Record() appends to a striped
/// (thread-hashed) buffer under a stripe-local mutex — uncontended in
/// the common case and never touching the shared tracker map — and the
/// stripe is applied to the tracker in one batch when it reaches
/// `batch_size` (or on Drain()).
///
/// Semantics: every recorded access is applied exactly once; none are
/// lost (Drain() flushes the tail). What buffering relaxes is global
/// interleaving order — with decay == 1.0 the drained tracker state is
/// IDENTICAL to eager recording (counting is order-independent); with
/// decay < 1.0 the decayed weights differ by at most the reordering
/// window of one batch, which is noise against the drift threshold.
///
/// Readers of the underlying tracker (Distribution, L1Drift,
/// total_accesses) must Drain() first and not race further Record()
/// calls — the tracker itself stays single-writer.
class BufferedAccessLog {
 public:
  static constexpr size_t kDefaultBatchSize = 256;

  /// `sink` must outlive the log. `batch_size` >= 1.
  explicit BufferedAccessLog(AccessTracker* sink,
                             size_t batch_size = kDefaultBatchSize);

  /// Buffers one access; applies the calling thread's stripe to the
  /// sink when it reaches the batch size. Thread-safe.
  void Record(const ElementId& id);

  /// Applies every buffered record to the sink. Thread-safe; records
  /// buffered by other threads are included.
  void Drain();

  /// Records currently buffered (snapshot; exact when quiescent).
  [[nodiscard]] size_t buffered() const;

 private:
  // Stripes are cache-line separated so concurrent recorders on
  // different stripes never false-share.
  struct alignas(64) Stripe {
    mutable Mutex mu;
    std::vector<ElementId> pending VECUBE_GUARDED_BY(mu);
  };
  static constexpr size_t kStripes = 16;

  Stripe& StripeForThisThread();
  void ApplyToSink(const std::vector<ElementId>& records)
      VECUBE_EXCLUDES(sink_mu_);

  AccessTracker* const sink_ VECUBE_PT_GUARDED_BY(sink_mu_);
  const size_t batch_size_;
  Mutex sink_mu_;  ///< serializes batch application to the sink
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace vecube

#endif  // VECUBE_CORE_TRACKER_H_
