#include "core/graph.h"

#include "util/logging.h"

namespace vecube {

namespace {

// Enumerates all dyadic (level, offset) codes of one dimension with
// log-extent K: (0,0), (1,0), (1,1), (2,0), ... — 2^{K+1} − 1 codes.
std::vector<DimCode> AllDimCodes(uint32_t log_extent) {
  std::vector<DimCode> codes;
  for (uint32_t level = 0; level <= log_extent; ++level) {
    for (uint32_t offset = 0; offset < (1u << level); ++offset) {
      codes.push_back(DimCode{level, offset});
    }
  }
  return codes;
}

void EnumerateRec(const CubeShape& shape, uint32_t dim,
                  std::vector<DimCode>* prefix,
                  const std::function<void(const ElementId&)>& fn) {
  if (dim == shape.ndim()) {
    auto id = ElementId::Make(*prefix, shape);
    VECUBE_CHECK(id.ok());
    fn(*id);
    return;
  }
  for (const DimCode& code : AllDimCodes(shape.log_extent(dim))) {
    (*prefix)[dim] = code;
    EnumerateRec(shape, dim + 1, prefix, fn);
  }
}

}  // namespace

uint64_t ViewElementGraph::NumElements() const {
  uint64_t n = 1;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    n *= 2ull * shape_.extent(m) - 1;
  }
  return n;
}

uint64_t ViewElementGraph::NumAggregatedViews() const {
  return uint64_t{1} << shape_.ndim();
}

uint64_t ViewElementGraph::NumIntermediate() const {
  uint64_t n = 1;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    n *= shape_.log_extent(m) + 1;
  }
  return n;
}

uint64_t ViewElementGraph::NumResidual() const {
  return NumElements() - NumIntermediate();
}

uint64_t ViewElementGraph::NumBlocks() const { return NumIntermediate(); }

void ViewElementGraph::ForEachElement(
    const std::function<void(const ElementId&)>& fn) const {
  std::vector<DimCode> prefix(shape_.ndim());
  EnumerateRec(shape_, 0, &prefix, fn);
}

std::vector<ElementId> ViewElementGraph::AggregatedViews() const {
  std::vector<ElementId> views;
  const uint32_t d = shape_.ndim();
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    auto view = ElementId::AggregatedView(mask, shape_);
    VECUBE_CHECK(view.ok());
    views.push_back(*view);
  }
  return views;
}

std::vector<ElementId> ViewElementGraph::IntermediateElements() const {
  std::vector<ElementId> elements;
  std::vector<uint32_t> levels(shape_.ndim(), 0);
  for (;;) {
    auto id = ElementId::Intermediate(levels, shape_);
    VECUBE_CHECK(id.ok());
    elements.push_back(*id);
    // Odometer increment over per-dimension levels.
    uint32_t m = 0;
    for (; m < shape_.ndim(); ++m) {
      if (levels[m] < shape_.log_extent(m)) {
        ++levels[m];
        for (uint32_t j = 0; j < m; ++j) levels[j] = 0;
        break;
      }
    }
    if (m == shape_.ndim()) break;
  }
  return elements;
}

Result<std::vector<ElementId>> ViewElementGraph::Children(const ElementId& id,
                                                          uint32_t dim) const {
  ElementId p, r;
  VECUBE_ASSIGN_OR_RETURN(p, id.Child(dim, StepKind::kPartial, shape_));
  VECUBE_ASSIGN_OR_RETURN(r, id.Child(dim, StepKind::kResidual, shape_));
  return std::vector<ElementId>{p, r};
}

std::vector<ElementId> ViewElementGraph::Ancestors(const ElementId& id) const {
  // Per dimension, the ancestors' codes are the prefixes of the code.
  std::vector<std::vector<DimCode>> options(shape_.ndim());
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    const DimCode& c = id.dim(m);
    for (uint32_t level = 0; level <= c.level; ++level) {
      options[m].push_back(DimCode{level, c.offset >> (c.level - level)});
    }
  }
  std::vector<ElementId> out;
  std::vector<DimCode> current(shape_.ndim());
  std::function<void(uint32_t)> rec = [&](uint32_t dim) {
    if (dim == shape_.ndim()) {
      auto candidate = ElementId::Make(current, shape_);
      VECUBE_CHECK(candidate.ok());
      if (*candidate != id) out.push_back(*candidate);
      return;
    }
    for (const DimCode& code : options[dim]) {
      current[dim] = code;
      rec(dim + 1);
    }
  };
  rec(0);
  return out;
}

std::vector<ElementId> ViewElementGraph::Descendants(
    const ElementId& id) const {
  // Per dimension, descendants extend the code with any bit suffix.
  std::vector<std::vector<DimCode>> options(shape_.ndim());
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    const DimCode& c = id.dim(m);
    for (uint32_t level = c.level; level <= shape_.log_extent(m); ++level) {
      const uint32_t extra = level - c.level;
      const uint32_t base = c.offset << extra;
      for (uint32_t suffix = 0; suffix < (1u << extra); ++suffix) {
        options[m].push_back(DimCode{level, base + suffix});
      }
    }
  }
  std::vector<ElementId> out;
  std::vector<DimCode> current(shape_.ndim());
  std::function<void(uint32_t)> rec = [&](uint32_t dim) {
    if (dim == shape_.ndim()) {
      auto candidate = ElementId::Make(current, shape_);
      VECUBE_CHECK(candidate.ok());
      if (*candidate != id) out.push_back(*candidate);
      return;
    }
    for (const DimCode& code : options[dim]) {
      current[dim] = code;
      rec(dim + 1);
    }
  };
  rec(0);
  return out;
}

ElementIndexer::ElementIndexer(CubeShape shape) : shape_(std::move(shape)) {
  radix_.resize(shape_.ndim());
  weight_.resize(shape_.ndim());
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    radix_[m] = 2ull * shape_.extent(m) - 1;
  }
  uint64_t w = 1;
  for (uint32_t m = shape_.ndim(); m-- > 0;) {
    weight_[m] = w;
    w *= radix_[m];
  }
  size_ = w;
}

uint64_t ElementIndexer::Encode(const ElementId& id) const {
  VECUBE_DCHECK(id.ndim() == shape_.ndim());
  uint64_t index = 0;
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    const DimCode& c = id.dim(m);
    const uint64_t code_index = ((uint64_t{1} << c.level) - 1) + c.offset;
    VECUBE_DCHECK(code_index < radix_[m]);
    index += code_index * weight_[m];
  }
  return index;
}

ElementId ElementIndexer::Decode(uint64_t index) const {
  VECUBE_DCHECK(index < size_);
  std::vector<DimCode> codes(shape_.ndim());
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    const uint64_t code_index = index / weight_[m];
    index %= weight_[m];
    // Invert (1 << level) - 1 + offset: level = floor(log2(code_index + 1)).
    uint32_t level = 0;
    while ((uint64_t{2} << level) - 1 <= code_index) ++level;
    codes[m].level = level;
    codes[m].offset =
        static_cast<uint32_t>(code_index - ((uint64_t{1} << level) - 1));
  }
  auto id = ElementId::Make(std::move(codes), shape_);
  VECUBE_CHECK(id.ok());
  return *id;
}

}  // namespace vecube
