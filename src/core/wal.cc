#include "core/wal.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "util/crc32c.h"
#include "util/sync.h"

namespace vecube {

namespace {

constexpr char kWalMagic[8] = {'V', 'E', 'C', 'U', 'B', 'E', 'W', 'L'};
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kMaxDims = 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void AppendScalarTo(std::vector<uint8_t>* buf, T value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  buf->insert(buf->end(), p, p + sizeof(T));
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, 1, sizeof(T), f) == sizeof(T);
}

std::vector<uint8_t> HeaderBytes(const CubeShape& shape, uint64_t base_lsn) {
  std::vector<uint8_t> header;
  // Byte-wise append: GCC 12's -Wstringop-overflow misfires on a
  // char*-range vector::insert here under -O2.
  for (const char byte : kWalMagic) {
    header.push_back(static_cast<uint8_t>(byte));
  }
  AppendScalarTo<uint32_t>(&header, kWalVersion);
  AppendScalarTo<uint32_t>(&header, shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    AppendScalarTo<uint32_t>(&header, shape.extent(m));
  }
  AppendScalarTo<uint64_t>(&header, base_lsn);
  AppendScalarTo<uint32_t>(&header,
                           MaskCrc32c(Crc32c(header.data(), header.size())));
  return header;
}

std::vector<uint8_t> RecordBytes(const CubeShape& shape, uint64_t lsn,
                                 const CellDelta& delta) {
  std::vector<uint8_t> payload;
  AppendScalarTo<uint64_t>(&payload, lsn);
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    AppendScalarTo<uint32_t>(&payload, delta.coords[m]);
  }
  AppendScalarTo<double>(&payload, delta.delta);
  std::vector<uint8_t> record;
  AppendScalarTo<uint32_t>(&record, static_cast<uint32_t>(payload.size()));
  AppendScalarTo<uint32_t>(&record,
                           MaskCrc32c(Crc32c(payload.data(), payload.size())));
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

// Writes a fresh log containing only a header to `path` atomically.
Status WriteEmptyLog(const std::string& path, const CubeShape& shape,
                     uint64_t base_lsn, const char* scope) {
  const std::string tmp = path + ".tmp";
  const std::vector<uint8_t> header = HeaderBytes(shape, base_lsn);
  WritableFile file;
  VECUBE_ASSIGN_OR_RETURN(file, WritableFile::Create(tmp, scope));
  VECUBE_RETURN_NOT_OK(file.Append(header.data(), header.size()));
  VECUBE_RETURN_NOT_OK(file.Sync());
  VECUBE_RETURN_NOT_OK(file.Close());
  return AtomicRename(tmp, path, scope);
}

}  // namespace

Result<WalScan> WriteAheadLog::Scan(const std::string& path,
                                    const CubeShape& shape) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::FILE* f = file.get();

  char magic[8];
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a vecube WAL file");
  }
  uint32_t version = 0;
  uint32_t ndim = 0;
  if (!ReadScalar(f, &version) || version != kWalVersion) {
    return Status::InvalidArgument(path + ": unsupported WAL version");
  }
  if (!ReadScalar(f, &ndim) || ndim == 0 || ndim > kMaxDims ||
      ndim != shape.ndim()) {
    return Status::InvalidArgument(path + ": WAL dimensionality mismatch");
  }
  for (uint32_t m = 0; m < ndim; ++m) {
    uint32_t extent = 0;
    if (!ReadScalar(f, &extent) || extent != shape.extent(m)) {
      return Status::InvalidArgument(path + ": WAL extent mismatch");
    }
  }
  uint64_t base_lsn = 0;
  uint32_t header_crc = 0;
  if (!ReadScalar(f, &base_lsn) || !ReadScalar(f, &header_crc)) {
    return Status::InvalidArgument(path + ": truncated WAL header");
  }
  const std::vector<uint8_t> expected = HeaderBytes(shape, base_lsn);
  // The rebuilt header ends with its own CRC; compare the whole block.
  std::vector<uint8_t> actual = expected;
  std::memcpy(actual.data() + actual.size() - 4, &header_crc, 4);
  if (actual != expected) {
    return Status::InvalidArgument(path + ": WAL header checksum mismatch");
  }

  WalScan scan;
  scan.base_lsn = base_lsn;
  scan.committed_bytes = expected.size();
  const uint32_t payload_bytes_expected =
      8 + 4 * ndim + 8;  // lsn + coords + delta
  uint64_t expect_lsn = base_lsn;
  for (;;) {
    uint32_t payload_bytes = 0;
    uint32_t payload_crc = 0;
    if (!ReadScalar(f, &payload_bytes)) break;  // clean EOF or torn length
    if (payload_bytes != payload_bytes_expected) {
      scan.torn_tail = true;
      break;
    }
    if (!ReadScalar(f, &payload_crc)) {
      scan.torn_tail = true;
      break;
    }
    std::vector<uint8_t> payload(payload_bytes);
    if (std::fread(payload.data(), 1, payload_bytes, f) != payload_bytes) {
      scan.torn_tail = true;
      break;
    }
    if (MaskCrc32c(Crc32c(payload.data(), payload.size())) != payload_crc) {
      scan.torn_tail = true;
      break;
    }
    WalRecord record;
    std::memcpy(&record.lsn, payload.data(), 8);
    if (record.lsn != expect_lsn) {
      scan.torn_tail = true;  // sequence break: do not trust the tail
      break;
    }
    record.delta.coords.resize(ndim);
    std::memcpy(record.delta.coords.data(), payload.data() + 8,
                size_t{4} * ndim);
    std::memcpy(&record.delta.delta, payload.data() + 8 + size_t{4} * ndim,
                8);
    for (uint32_t m = 0; m < ndim; ++m) {
      if (record.delta.coords[m] >= shape.extent(m)) {
        scan.torn_tail = true;
        break;
      }
    }
    if (scan.torn_tail) break;
    scan.records.push_back(std::move(record));
    scan.committed_bytes += 8 + payload_bytes;
    ++expect_lsn;
  }
  // A short length prefix at EOF is also a torn tail; detect it by
  // comparing the committed offset against the file size.
  const long end = std::fseek(f, 0, SEEK_END) == 0 ? std::ftell(f) : -1;  // NOLINT(google-runtime-int)
  if (end >= 0 && static_cast<uint64_t>(end) != scan.committed_bytes) {
    scan.torn_tail = true;
  }
  return scan;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const CubeShape& shape, WalScan* scan_out,
    bool sync_each_append, uint64_t create_base_lsn) {
  WalScan scan;
  Result<WalScan> scanned = Scan(path, shape);
  if (scanned.ok()) {
    scan = std::move(scanned).value();
  } else if (scanned.status().IsNotFound()) {
    VECUBE_RETURN_NOT_OK(
        WriteEmptyLog(path, shape, create_base_lsn, "wal.reset"));
    scan.base_lsn = create_base_lsn;
    VECUBE_ASSIGN_OR_RETURN(scan.committed_bytes, FileSize(path));
  } else {
    return scanned.status();
  }

  // make_unique cannot reach the private constructor.
  std::unique_ptr<WriteAheadLog> log(
      new WriteAheadLog());  // vecube-lint: disable=no-naked-new
  log->path_ = path;
  log->shape_ = shape;
  log->sync_each_append_ = sync_each_append;
  // The object is not yet shared, but initializing its guarded fields
  // under the lock keeps the annotated contract unconditional.
  MutexLock lock(log->mu_);
  log->next_lsn_ = scan.base_lsn + scan.records.size();
  log->records_in_log_ = scan.records.size();
  VECUBE_ASSIGN_OR_RETURN(log->file_,
                          WritableFile::OpenForAppend(path, "wal.append"));
  if (log->file_.offset() != scan.committed_bytes) {
    // Torn tail (or garbage after the committed prefix): cut it away so
    // the next append starts on a record boundary.
    VECUBE_RETURN_NOT_OK(log->file_.TruncateTo(scan.committed_bytes));
  }
  if (scan_out != nullptr) *scan_out = std::move(scan);
  return log;
}

Result<uint64_t> WriteAheadLog::Append(const CellDelta& delta) {
  MutexLock lock(mu_);
  if (broken_) {
    return Status::FailedPrecondition(
        "WAL " + path_ + " is broken (failed rollback of a torn append)");
  }
  if (!file_.is_open()) {
    return Status::FailedPrecondition("WAL " + path_ + " is not open");
  }
  if (delta.coords.size() != shape_.ndim()) {
    return Status::InvalidArgument("delta arity mismatch");
  }
  for (uint32_t m = 0; m < shape_.ndim(); ++m) {
    if (delta.coords[m] >= shape_.extent(m)) {
      return Status::OutOfRange("delta coordinate outside cube extent");
    }
  }
  const uint64_t committed = file_.offset();
  const uint64_t lsn = next_lsn_;
  const std::vector<uint8_t> record = RecordBytes(shape_, lsn, delta);
  Status status = file_.Append(record.data(), record.size());
  if (status.ok() && sync_each_append_) status = file_.Sync();
  if (!status.ok()) {
    // Undo the torn bytes so a later append cannot land after them. If
    // the rollback itself fails the log file is unusable for appending
    // (recovery via Scan still works — it stops at the committed prefix).
    Status rollback = file_.TruncateTo(committed);
    if (!rollback.ok()) broken_ = true;
    return status;
  }
  next_lsn_ = lsn + 1;
  ++records_in_log_;
  return lsn;
}

Status WriteAheadLog::Reset() {
  MutexLock lock(mu_);
  if (!file_.is_open() && !broken_) {
    return Status::FailedPrecondition("WAL " + path_ + " is not open");
  }
  // The new header continues the lsn sequence; records folded into the
  // snapshot are dropped.
  VECUBE_RETURN_NOT_OK(file_.Close());
  Status status = WriteEmptyLog(path_, shape_, next_lsn_, "wal.reset");
  if (!status.ok()) {
    // The old (complete) log is still in place; reopen it for appending.
    Result<WritableFile> reopened =
        WritableFile::OpenForAppend(path_, "wal.append");
    if (reopened.ok()) {
      file_ = std::move(reopened).value();
    } else {
      broken_ = true;
    }
    return status;
  }
  VECUBE_ASSIGN_OR_RETURN(file_,
                          WritableFile::OpenForAppend(path_, "wal.append"));
  records_in_log_ = 0;
  broken_ = false;
  return Status::OK();
}

uint64_t WriteAheadLog::last_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_ - 1;
}

uint64_t WriteAheadLog::records_in_log() const {
  MutexLock lock(mu_);
  return records_in_log_;
}

}  // namespace vecube
