// Incremental maintenance of materialized view elements.
//
// Every view element is a linear functional of the data cube, and the
// unnormalized Haar pair has ±1 coefficients, so a single-cell update
// A[x] += delta touches exactly ONE cell of every view element, with a
// sign determined by the element's residual steps:
//
//   * along dimension m with code (k, o), the touched cell index is
//     x_m >> k;
//   * analysis step t of the cascade consumes bit t of x_m (P1 pairs
//     neighbors, halving the coordinate each stage); a residual step
//     contributes -1 when that coordinate bit is 1, a partial step always
//     contributes +1. Step t's kind is offset bit (k-1-t).
//
// This turns fact-table appends into O(#elements * d) store maintenance —
// no recomputation — which is what makes a long-lived materialized
// element set practical under a trickle of updates.

#ifndef VECUBE_CORE_UPDATE_H_
#define VECUBE_CORE_UPDATE_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "core/store.h"
#include "cube/shape.h"
#include "util/result.h"

namespace vecube {

/// Where a base-cube point lands inside one element, and with what sign.
struct PointProjection {
  uint64_t flat_index = 0;
  int sign = +1;  ///< +1 or -1
};

/// Projects base-cube coordinates into element `id`: the single affected
/// cell and the ±1 Haar coefficient.
Result<PointProjection> ProjectPoint(const ElementId& id,
                                     const std::vector<uint32_t>& coords,
                                     const CubeShape& shape);

/// Applies `A[coords] += delta` to every element materialized in `store`
/// (including the root cube itself if stored). The store stays exactly
/// consistent with the updated cube.
Status ApplyPointDelta(ElementStore* store,
                       const std::vector<uint32_t>& coords, double delta);

/// Batch form: one record per (coords, delta), e.g. a fact-table append.
struct CellDelta {
  std::vector<uint32_t> coords;
  double delta = 0.0;
};
Status ApplyDeltas(ElementStore* store, const std::vector<CellDelta>& deltas);

}  // namespace vecube

#endif  // VECUBE_CORE_UPDATE_H_
