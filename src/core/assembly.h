// AssemblyEngine: dynamic assembly of views from stored view elements.
//
// This is the operational heart of the paper: any view (element) is
// produced from a stored set either by *aggregating* a stored ancestor
// down (forward dependency) or by *synthesizing* it from its P/R children
// (reverse dependency, via perfect reconstruction), recursively. The
// planner chooses the cheapest option per node — exactly the recursion of
// Procedure 3:
//
//   F_n = min over stored ancestors s of (Vol(s) − Vol(n))
//   R_n = Vol(n) + min_m (T_p^m + T_r^m)
//   T_n = min(F_n, R_n)
//
// The engine then executes the chosen plan with the real Haar kernels and
// counts operations, so the analytic cost and the measured cost are the
// same quantity — a tested invariant of this reproduction.
//
// Implementation note: planning recursions run on raw per-dimension code
// buffers with memo tables keyed by the element's mixed-radix index
// (ElementIndexer), so planning over graphs of ~10^6 nodes stays in the
// tens of milliseconds. Only nodes actually reached by a plan are stored.
// The raw buffers are fixed kMaxDims arrays; every public entry point
// rejects stores of higher arity up front (CubeShape admits up to 24
// dimensions, so the check is load-bearing, not decorative).
//
// Threading model: planning is always serial (memo tables are unlocked).
// Execution fans out on an optional ThreadPool at two levels — the Haar
// kernels chunk their row loops, and AssembleBatch() runs independent
// targets concurrently over a latched shared-subresult cache that computes
// every distinct sub-element exactly once. Both levels are deterministic:
// outputs and measured op counts are identical at every thread count.

#ifndef VECUBE_CORE_ASSEMBLY_H_
#define VECUBE_CORE_ASSEMBLY_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/element_id.h"
#include "core/graph.h"
#include "core/shard_plan.h"
#include "core/store.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "haar/scratch.h"
#include "haar/transform.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// Cost value for unreachable targets.
inline constexpr uint64_t kInfiniteCost =
    std::numeric_limits<uint64_t>::max();

/// Highest store arity the engine's fixed planning buffers support.
inline constexpr uint32_t kMaxAssemblyDims = 16;

/// Plans and executes assemblies of view elements over an ElementStore.
/// The planner memo is tied to the store's contents; call Invalidate()
/// after mutating the store.
class AssemblyEngine {
 public:
  /// Borrows the store (and the pool and arena, when given); the caller
  /// keeps all three alive. A null or single-threaded pool reproduces the
  /// serial engine exactly; `arena` only recycles kernel scratch and never
  /// changes results. `num_shards` bounds the dyadic shard decomposition
  /// of aggregate-descent cascades (DESIGN.md §14): 0 means "pool size",
  /// 1 disables sharding, larger values round down to a power of two.
  /// Sharding never changes results or OpCounter totals.
  explicit AssemblyEngine(const ElementStore* store,
                          ThreadPool* pool = nullptr,
                          ScratchArena* arena = nullptr,
                          uint32_t num_shards = 0);

  /// Procedure-3 cost T_n of producing `target` from the store, in
  /// add/subtract operations. kInfiniteCost if unreachable (store not
  /// complete w.r.t. target, or arity beyond kMaxAssemblyDims).
  uint64_t PlanCost(const ElementId& target);

  /// Materializes `target`. Status Incomplete if the stored set cannot
  /// reconstruct it. `ops` (optional) accrues the executed operation
  /// count, which equals PlanCost(target). `ctx` (optional) is polled at
  /// every plan node and inside the fused cascade loops at tile
  /// granularity; an expired or cancelled context unwinds the execution
  /// with kDeadlineExceeded / kCancelled (no partial tensor escapes).
  Result<Tensor> Assemble(const ElementId& target, OpCounter* ops = nullptr,
                          const QueryContext* ctx = nullptr);

  /// Convenience: the aggregated view for `aggregated_mask` (bit m set =
  /// dimension m totally aggregated).
  Result<Tensor> AssembleView(uint32_t aggregated_mask,
                              OpCounter* ops = nullptr,
                              const QueryContext* ctx = nullptr);

  /// Multi-query assembly: materializes all targets while sharing every
  /// common sub-result (common descendants are synthesized once, cascade
  /// results reused). Returns tensors in target order; `ops` counts the
  /// *shared* work, which is at most the sum of individual plan costs and
  /// often much less for overlapping targets. With a multi-threaded pool
  /// the targets execute concurrently; the shared cache latches each
  /// sub-element so it is still computed exactly once, keeping outputs and
  /// op counts identical to the single-threaded batch.
  Result<std::vector<Tensor>> AssembleBatch(
      const std::vector<ElementId>& targets, OpCounter* ops = nullptr,
      const QueryContext* ctx = nullptr);

  /// Drops all memoized plans (call after the store changes).
  void Invalidate();

  /// Resolved shard budget (after the "0 = pool size" default).
  [[nodiscard]] uint32_t num_shards() const { return num_shards_; }

 private:
  enum class Choice : uint8_t { kAggregate, kSynthesize, kNone };

  struct PlanNode {
    uint64_t cost = kInfiniteCost;
    Choice choice = Choice::kNone;
    uint64_t source = 0;     // kAggregate: encoded index of the ancestor
    uint32_t split_dim = 0;  // kSynthesize
  };

  struct AncestorInfo {
    uint64_t volume = kInfiniteCost;  // min volume over stored ancestors
    uint64_t arg = 0;                 // encoded index achieving it
  };

  // Memo table that is a flat array for graphs that fit in memory and a
  // hash map for larger ones; planning visits each node at most once.
  template <typename T>
  class MemoTable {
   public:
    void Init(uint64_t universe, bool dense) {
      dense_ = dense;
      if (dense_) {
        values_.assign(universe, T{});
        present_.assign(universe, 0);
      }
      map_.clear();
    }
    const T* Find(uint64_t index) const {
      if (dense_) return present_[index] ? &values_[index] : nullptr;
      auto it = map_.find(index);
      return it == map_.end() ? nullptr : &it->second;
    }
    const T& Insert(uint64_t index, T value) {
      if (dense_) {
        present_[index] = 1;
        values_[index] = value;
        return values_[index];
      }
      return map_.insert_or_assign(index, value).first->second;
    }

   private:
    bool dense_ = false;
    std::vector<T> values_;
    std::vector<uint8_t> present_;
    std::unordered_map<uint64_t, T> map_;
  };

  // Cross-target cache of sub-results for AssembleBatch. Each entry is a
  // latch: the first thread to insert it owns the computation; later
  // arrivals block on `cv` until `ready`. Sub-element dependencies form a
  // DAG (children are strictly deeper), so waits cannot cycle.
  struct BatchCache;

  uint64_t EncodeRaw(const DimCode* codes) const;
  uint64_t VolumeRaw(const DimCode* codes) const;
  AncestorInfo MinAncestorRaw(DimCode* codes);
  PlanNode PlanRaw(DimCode* codes);
  // Memoizes the plan of every node the execution of `codes` will visit
  // (serially), so concurrent batch execution only reads the memo tables.
  void WarmPlanRaw(DimCode* codes, std::unordered_set<uint64_t>* visited);
  // Single-target execution; no sub-result caching, so the measured ops
  // equal the analytic PlanCost (which also counts shared descendants of a
  // single plan once per use).
  Result<Tensor> ExecuteSolo(const ElementId& target, OpCounter* ops,
                             const QueryContext* ctx);
  // Batch execution against the latched cache. `adds` accrues each
  // computed node's kernel ops exactly once, at the computing thread.
  Result<Tensor> ExecuteShared(const ElementId& target, BatchCache* cache,
                               std::atomic<uint64_t>* adds,
                               const QueryContext* ctx);
  // Aggregate-descent cascade: shard-decomposed when the shard budget and
  // source size allow, otherwise the pooled fused path. Bit-identical
  // either way, with identical analytic booking into `ops`.
  Result<Tensor> RunCascade(const Tensor& source,
                            const std::vector<CascadeStep>& steps,
                            OpCounter* ops, const QueryContext* ctx);

  const ElementStore* store_;
  ThreadPool* pool_;
  ScratchArena* arena_;
  uint32_t num_shards_;
  std::unique_ptr<ThreadedShardExecutor> shard_exec_;
  CubeShape shape_;
  ElementIndexer indexer_;
  bool dense_memos_ = false;
  std::unordered_map<uint64_t, uint8_t> is_stored_;
  MemoTable<AncestorInfo> ancestor_memo_;
  MemoTable<PlanNode> plan_memo_;
};

}  // namespace vecube

#endif  // VECUBE_CORE_ASSEMBLY_H_
