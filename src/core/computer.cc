#include "core/computer.h"

#include "util/logging.h"

namespace vecube {

ElementComputer::ElementComputer(const CubeShape& shape, const Tensor* cube)
    : shape_(shape), cube_(cube) {
  VECUBE_CHECK(cube != nullptr);
  VECUBE_CHECK(cube->extents() == shape.extents());
}

Result<Tensor> ElementComputer::Compute(const ElementId& id, OpCounter* ops) {
  if (id.ndim() != shape_.ndim()) {
    return Status::InvalidArgument("element arity does not match cube");
  }
  // Validate codes against the shape.
  ElementId checked;
  VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(id.codes(), shape_));

  if (id.IsRoot()) return *cube_;
  if (auto it = cache_.find(id); it != cache_.end()) return it->second;

  // Recurse via the parent along the last dimension with nonzero level, so
  // cascade prefixes are shared through the cache.
  uint32_t dim = id.ndim();
  for (uint32_t m = id.ndim(); m-- > 0;) {
    if (id.dim(m).level > 0) {
      dim = m;
      break;
    }
  }
  VECUBE_CHECK(dim < id.ndim());
  ElementId parent;
  VECUBE_ASSIGN_OR_RETURN(parent, id.Parent(dim));
  Tensor parent_data;
  VECUBE_ASSIGN_OR_RETURN(parent_data, Compute(parent, ops));

  Tensor data;
  if (id.IsPartialChild(dim)) {
    VECUBE_ASSIGN_OR_RETURN(data, PartialSum(parent_data, dim, ops));
  } else {
    VECUBE_ASSIGN_OR_RETURN(data, PartialResidual(parent_data, dim, ops));
  }
  cache_.emplace(id, data);
  return data;
}

Result<ElementStore> ElementComputer::Materialize(
    const std::vector<ElementId>& set, OpCounter* ops) {
  ElementStore store(shape_);
  for (const ElementId& id : set) {
    Tensor data;
    VECUBE_ASSIGN_OR_RETURN(data, Compute(id, ops));
    VECUBE_RETURN_NOT_OK(store.Put(id, std::move(data)));
  }
  return store;
}

}  // namespace vecube
