// Dyadic shard decomposition of assembly cascades (DESIGN.md §14).
//
// A cascade of P1/R1 steps computes every output cell through a fixed
// binary add/subtract tree determined solely by the step sequence, and the
// frequency plane is dyadic, so a cube decomposes *naturally* into
// disjoint dyadic subrectangles whose cascades are fully independent:
//
//   * Concat splits partition the OUTPUT along any dimension whose
//     post-cascade extent is >= 2. Each shard runs the entire step list
//     on its subrectangle and its result is the matching block of the
//     global output — no cross-shard arithmetic at all.
//   * Merge splits go further along the dimension of the *last* step:
//     lanes run every step except the final d steps along that dimension,
//     and those deferred steps — which are a suffix of the global step
//     order, so every association tree is preserved — become a combine
//     DAG of d = log2(lanes) pairwise elementwise merge levels
//     (left ± right, lower-coordinate lane on the left).
//
// Both splits keep results bit-identical to the unsharded cascade at any
// (shards, threads, dispatch) point, and the analytic cost partitions
// exactly: sum of per-shard costs + combine cost == the unsharded
// OpCounter total (checked at plan construction).
//
// ShardPlan is pure geometry — deterministic, data-independent, cheap.
// ShardExecutor is the execution boundary: the in-process
// ThreadedShardExecutor below runs each shard's whole cascade (gather,
// every fused group, ping-pong tiles) on one claimed execution lane with
// a private ShardScratch slab before any cross-shard traffic; the same
// interface later backs multi-process sharding.

#ifndef VECUBE_CORE_SHARD_PLAN_H_
#define VECUBE_CORE_SHARD_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cube/tensor.h"
#include "haar/cascade.h"
#include "haar/scratch.h"
#include "haar/transform.h"
#include "util/query_context.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace vecube {

/// One independent sub-cascade of a ShardPlan. Every task of a plan
/// shares the same local shape, step list, and cost; only the origin and
/// combine coordinates differ.
struct ShardTask {
  std::vector<uint32_t> in_begin;   // subrectangle origin, source coords
  std::vector<uint32_t> out_begin;  // group-result origin, target coords
  uint64_t in_offset = 0;           // flat source offset of in_begin
  uint64_t out_offset = 0;          // flat target offset of out_begin
  uint32_t group = 0;   // combine group (== task index when no merges)
  uint32_t lane = 0;    // lane within the group, in [0, 1 << merge_levels)
};

/// Splits one cascade into independent dyadic-subrectangle sub-plans plus
/// a log-depth combine stage.
class ShardPlan {
 public:
  /// Decomposes `steps` over a row-major tensor of shape `extents` into
  /// at most `max_shards` tasks (rounded down to a power of two). The
  /// step list must already be valid for `extents` (AssemblyEngine plans
  /// are); non-dyadic shapes degrade to a single task. Concat splits are
  /// taken greedily outermost-dimension-first (so a dimension-0 split
  /// keeps source subrectangles contiguous); merge splits are added only
  /// once every output extent is exhausted.
  static ShardPlan Build(const std::vector<uint32_t>& extents,
                         const std::vector<CascadeStep>& steps,
                         uint32_t max_shards);

  [[nodiscard]] const std::vector<uint32_t>& in_extents() const {
    return in_extents_;
  }
  [[nodiscard]] const std::vector<uint32_t>& out_extents() const {
    return out_extents_;
  }
  [[nodiscard]] const std::vector<uint32_t>& local_in_extents() const {
    return local_in_extents_;
  }
  [[nodiscard]] const std::vector<uint32_t>& local_out_extents() const {
    return local_out_extents_;
  }
  /// The per-shard step list: the global list minus the deferred suffix.
  [[nodiscard]] const std::vector<CascadeStep>& local_steps() const {
    return local_steps_;
  }
  [[nodiscard]] const std::vector<ShardTask>& tasks() const { return tasks_; }
  /// Degree of available parallelism (number of independent tasks).
  [[nodiscard]] uint32_t parallelism() const {
    return static_cast<uint32_t>(tasks_.size());
  }
  /// Combine depth d: lanes per group == 1 << d.
  [[nodiscard]] uint32_t merge_levels() const { return merge_levels_; }
  /// Kind of each combine level, outermost deferred step first.
  [[nodiscard]] const std::vector<StepKind>& merge_kinds() const {
    return merge_kinds_;
  }
  /// True iff each task's source subrectangle is one contiguous run (the
  /// executor then reads the source in place instead of gathering).
  [[nodiscard]] bool in_contiguous() const { return in_contiguous_; }
  /// True iff each task's output block is one contiguous run.
  [[nodiscard]] bool out_contiguous() const { return out_contiguous_; }
  [[nodiscard]] uint64_t local_volume() const { return local_volume_; }
  [[nodiscard]] uint64_t local_out_volume() const { return local_out_volume_; }
  /// Analytic adds per task (every task costs the same).
  [[nodiscard]] uint64_t local_cost() const { return local_cost_; }
  /// Analytic adds of the combine stage.
  [[nodiscard]] uint64_t combine_cost() const { return combine_cost_; }
  /// tasks * local_cost + combine_cost == the unsharded cascade cost;
  /// the equality is checked in Build, so booking this keeps OpCounter
  /// totals invariant across every shard count.
  [[nodiscard]] uint64_t total_cost() const {
    return tasks_.size() * local_cost_ + combine_cost_;
  }

 private:
  ShardPlan() = default;

  std::vector<uint32_t> in_extents_;
  std::vector<uint32_t> out_extents_;
  std::vector<uint32_t> local_in_extents_;
  std::vector<uint32_t> local_out_extents_;
  std::vector<CascadeStep> local_steps_;
  std::vector<ShardTask> tasks_;
  std::vector<StepKind> merge_kinds_;
  uint32_t merge_levels_ = 0;
  bool in_contiguous_ = false;
  bool out_contiguous_ = false;
  uint64_t local_volume_ = 0;
  uint64_t local_out_volume_ = 0;
  uint64_t local_cost_ = 0;
  uint64_t combine_cost_ = 0;
};

/// Execution boundary for shard plans. Implementations must be
/// bit-identical to running the plan's global step list unsharded and
/// must book exactly the plan's analytic total into `ops` — the contract
/// that lets a multi-process executor drop in behind the same interface.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  /// Materializes the cascade described by `plan` over `source` (whose
  /// shape must equal plan.in_extents()). `ops` and `ctx` are optional;
  /// an expired/cancelled context unwinds with its Check() status and
  /// never publishes partial results.
  virtual Result<Tensor> Execute(const Tensor& source, const ShardPlan& plan,
                                 OpCounter* ops, const QueryContext* ctx) = 0;
};

/// In-process executor: fans tasks over a ThreadPool (cost order is the
/// caller's — tasks of one plan are equal-cost by construction), each on
/// a claimed execution lane owning a private ShardScratch slab, then runs
/// the combine DAG on the calling thread. Safe for concurrent Execute()
/// calls; a null pool runs everything serially on the caller.
class ThreadedShardExecutor final : public ShardExecutor {
 public:
  explicit ThreadedShardExecutor(ThreadPool* pool);

  Result<Tensor> Execute(const Tensor& source, const ShardPlan& plan,
                         OpCounter* ops, const QueryContext* ctx) override;

 private:
  // An execution lane: a claimable private scratch slab. Lanes are
  // claimed for the duration of one worker's task run, so a lane's slabs
  // stay hot on whichever core the pool pinned that worker to.
  struct Lane {
    std::atomic<bool> busy{false};
    ShardScratch scratch;
  };

  static constexpr uint32_t kNoLane = UINT32_MAX;

  // The shard hot path: gather the task's subrectangle, run its whole
  // cascade serially out of `scratch`, and place the result (output
  // block, or combine-lane slot in `lane_buf`). Lock-free and
  // shared-arena-free by construction — enforced by vecube_check's
  // no-shared-scratch-on-shard-path rule.
  [[nodiscard]] Status RunTask(const Tensor& source, const ShardPlan& plan,
                               const ShardTask& task, double* out_raw,
                               double* lane_buf, ShardScratch* scratch,
                               const QueryContext* ctx) const;

  ShardScratch* ClaimLane(uint32_t* slot);
  void ReleaseLane(uint32_t slot);

  ThreadPool* pool_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace vecube

#endif  // VECUBE_CORE_SHARD_PLAN_H_
