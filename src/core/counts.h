// Closed-form view element census (Section 4.1, Table 1) and the
// brute-force enumeration used to validate it.

#ifndef VECUBE_CORE_COUNTS_H_
#define VECUBE_CORE_COUNTS_H_

#include <cstdint>

#include "cube/shape.h"

namespace vecube {

/// Census of a view element graph.
struct ElementCensus {
  uint64_t total = 0;         ///< N_ve (Eq. 17)
  uint64_t aggregated = 0;    ///< N_av (Eq. 18)
  uint64_t intermediate = 0;  ///< N_iv (Eq. 19)
  uint64_t residual = 0;      ///< N_rv (Eq. 20)

  bool operator==(const ElementCensus&) const = default;
};

/// Closed forms of Eqs. 17-20.
ElementCensus CensusClosedForm(const CubeShape& shape);

/// Walks every element and classifies it. Exponential; only for shapes
/// small enough to enumerate (used by tests and bench_table1 validation).
ElementCensus CensusByEnumeration(const CubeShape& shape);

}  // namespace vecube

#endif  // VECUBE_CORE_COUNTS_H_
