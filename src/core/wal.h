// Write-ahead log for incremental cube maintenance.
//
// Incremental updates (OlapSession::AddFact -> ApplyPointDelta) mutate
// every materialized element in place; a crash mid-update would leave the
// only copy of the store silently inconsistent. The WAL makes each fact
// durable *before* it is applied: a record is appended and fsynced, then
// the in-memory stores mutate. Recovery replays the committed suffix of
// the log over the last snapshot.
//
// File layout (little-endian):
//   magic "VECUBEWL" (8 bytes)
//   u32 version (1), u32 ndim, u32 extents[ndim]
//   u64 base_lsn            (lsn of the first record in this file)
//   u32 header_crc          (masked CRC32C of all preceding bytes)
//   records, each:
//     u32 payload_bytes
//     u32 payload_crc       (masked CRC32C of the payload)
//     payload: u64 lsn, u32 coords[ndim], f64 delta
//
// Properties the recovery path relies on:
//   * every record carries its own CRC: a torn append (crash mid-write)
//     is detected and the scan stops at the last whole record — the
//     committed prefix;
//   * records carry monotonically increasing lsns starting at base_lsn;
//     a snapshot stores the lsn it folded in (SnapshotMeta::wal_seq), so
//     replay is idempotent: records with lsn <= wal_seq are skipped, and
//     a crash *between* "snapshot renamed" and "log reset" double-applies
//     nothing;
//   * Reset() (checkpoint truncation) writes a fresh header to a temp
//     file and atomically renames it over the log.
//
// Failpoints: "wal.append", "wal.append.sync", "wal.reset",
// "wal.reset.sync", "wal.reset.rename".
//
// Thread safety: Append/Reset/last_lsn/records_in_log are internally
// serialized on one mutex, so concurrent writers get unique lsns and a
// torn-append rollback can never interleave with another append. The
// log is non-movable (the mutex pins it); Open hands out a unique_ptr.

#ifndef VECUBE_CORE_WAL_H_
#define VECUBE_CORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/update.h"
#include "cube/shape.h"
#include "util/io_file.h"
#include "util/result.h"
#include "util/sync.h"

namespace vecube {

/// One committed log record.
struct WalRecord {
  uint64_t lsn = 0;
  CellDelta delta;
};

/// Result of scanning a log file.
struct WalScan {
  std::vector<WalRecord> records;  ///< committed records, lsn ascending
  uint64_t base_lsn = 1;           ///< first lsn this file can hold
  bool torn_tail = false;          ///< trailing torn/corrupt record found
  uint64_t committed_bytes = 0;    ///< file offset after the last good record
};

/// Append-only write-ahead log of point deltas for one cube shape.
class WriteAheadLog {
 public:
  /// Scans `path` without opening it for writing. NotFound if absent.
  static Result<WalScan> Scan(const std::string& path, const CubeShape& shape);

  /// Opens the log for appending, creating it (at `create_base_lsn`) if
  /// absent. An existing log is scanned first; a torn tail is truncated
  /// away so new records always follow the committed prefix. `scan_out`
  /// (optional) receives the scan, so open-for-recovery is a single pass.
  /// Pass create_base_lsn = snapshot wal_seq + 1 when recovering, so a
  /// lost log file cannot restart the lsn sequence below what snapshots
  /// have already folded in (which would make future replays skip records).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const CubeShape& shape,
      WalScan* scan_out = nullptr, bool sync_each_append = true,
      uint64_t create_base_lsn = 1);

  // Non-movable: the internal mutex pins the object, and a move racing a
  // concurrent Append would tear the file handle.
  WriteAheadLog(WriteAheadLog&&) = delete;
  WriteAheadLog& operator=(WriteAheadLog&&) = delete;

  /// Appends (and by default fsyncs) one record, assigning the next lsn.
  /// On failure the file is rolled back to the previous committed length,
  /// so a later append cannot land after torn bytes; if even the rollback
  /// fails the log is marked broken and every later append fails fast.
  Result<uint64_t> Append(const CellDelta& delta) VECUBE_EXCLUDES(mu_);

  /// Checkpoint truncation: atomically replaces the log with an empty one
  /// whose base_lsn continues the sequence. Call only after a snapshot
  /// with wal_seq >= last_lsn() has been durably renamed into place.
  Status Reset() VECUBE_EXCLUDES(mu_);

  /// Lsn of the most recently appended (or scanned) record; base_lsn - 1
  /// when the log is empty.
  [[nodiscard]] uint64_t last_lsn() const VECUBE_EXCLUDES(mu_);
  [[nodiscard]] uint64_t records_in_log() const VECUBE_EXCLUDES(mu_);
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  WriteAheadLog() = default;

  // path_ / shape_ / sync_each_append_ are immutable after Open().
  std::string path_;
  CubeShape shape_;
  bool sync_each_append_ = true;
  mutable Mutex mu_;
  WritableFile file_ VECUBE_GUARDED_BY(mu_);
  uint64_t next_lsn_ VECUBE_GUARDED_BY(mu_) = 1;
  uint64_t records_in_log_ VECUBE_GUARDED_BY(mu_) = 0;
  bool broken_ VECUBE_GUARDED_BY(mu_) = false;
};

}  // namespace vecube

#endif  // VECUBE_CORE_WAL_H_
