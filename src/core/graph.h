// ViewElementGraph: the two-way dependency graph of Section 4.
//
// The graph is *virtual*: its nodes are all Π(2n_m − 1) ElementIds of a
// cube shape, and edges are the P/R child (aggregation) and parent
// (synthesis) relations that ElementId navigation already provides. This
// class supplies the graph-level services: counting (Section 4.1, Table 1),
// enumeration, and materialization order helpers. It never stores the
// element data itself — that is ElementStore's job.

#ifndef VECUBE_CORE_GRAPH_H_
#define VECUBE_CORE_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"

namespace vecube {

class ViewElementGraph {
 public:
  explicit ViewElementGraph(CubeShape shape) : shape_(std::move(shape)) {}

  [[nodiscard]] const CubeShape& shape() const { return shape_; }

  /// N_ve = Π(2 n_m − 1)   (Eq. 17)
  uint64_t NumElements() const;
  /// N_av = 2^d            (Eq. 18)
  uint64_t NumAggregatedViews() const;
  /// N_iv = Π(log2 n_m + 1) (Eq. 19)
  uint64_t NumIntermediate() const;
  /// N_rv = N_ve − N_iv    (Eq. 20)
  uint64_t NumResidual() const;
  /// N_b = Π(log2 n_m + 1): blocks of the cascade (Section 4.1).
  uint64_t NumBlocks() const;

  /// Visits every element of the graph in lexicographic id order. Beware:
  /// the graph is exponentially large; intended for small shapes and for
  /// cross-checking the closed forms.
  void ForEachElement(const std::function<void(const ElementId&)>& fn) const;

  /// All 2^d aggregated views, in mask order (mask 0 == the cube itself).
  std::vector<ElementId> AggregatedViews() const;

  /// All Π(K_m+1) intermediate elements (the Gaussian pyramid cells).
  std::vector<ElementId> IntermediateElements() const;

  /// Both children of `id` along `dim` ({P, R} order).
  Result<std::vector<ElementId>> Children(const ElementId& id,
                                          uint32_t dim) const;

  /// All ancestors of `id` (elements that can generate it by aggregation),
  /// excluding `id` itself. Exponential in d; for small shapes.
  std::vector<ElementId> Ancestors(const ElementId& id) const;

  /// All descendants of `id` (elements it can generate), excluding itself.
  std::vector<ElementId> Descendants(const ElementId& id) const;

 private:
  CubeShape shape_;
};

/// Dense bijection between the N_ve elements of a shape and [0, N_ve),
/// used by the selection DPs to replace hash maps with flat arrays.
/// Per-dimension code index: (1 << level) - 1 + offset, in [0, 2n_m - 1);
/// element index: mixed-radix combination over dimensions.
class ElementIndexer {
 public:
  explicit ElementIndexer(CubeShape shape);

  [[nodiscard]] const CubeShape& shape() const { return shape_; }
  [[nodiscard]] uint64_t size() const { return size_; }

  uint64_t Encode(const ElementId& id) const;
  ElementId Decode(uint64_t index) const;

 private:
  CubeShape shape_;
  std::vector<uint64_t> radix_;   // 2n_m - 1 per dimension
  std::vector<uint64_t> weight_;  // mixed-radix place values
  uint64_t size_ = 1;
};

}  // namespace vecube

#endif  // VECUBE_CORE_GRAPH_H_
