#include "core/io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "util/crc32c.h"
#include "util/io_file.h"

namespace vecube {

namespace {

constexpr char kMagicV1[8] = {'V', 'E', 'C', 'U', 'B', 'E', '0', '1'};
constexpr char kMagicV2[8] = {'V', 'E', 'C', 'U', 'B', 'E', '0', '2'};
constexpr char kFailpointScope[] = "snapshot";
constexpr uint32_t kMaxDims = 24;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

// Reads `size` bytes and also appends them to `raw` (for section CRCs).
bool ReadTracked(std::FILE* f, void* data, size_t size,
                 std::vector<uint8_t>* raw) {
  if (!ReadBytes(f, data, size)) return false;
  const auto* p = static_cast<const uint8_t*>(data);
  raw->insert(raw->end(), p, p + size);
  return true;
}

template <typename T>
bool ReadTrackedScalar(std::FILE* f, T* value, std::vector<uint8_t>* raw) {
  return ReadTracked(f, value, sizeof(T), raw);
}

template <typename T>
void AppendScalarTo(std::vector<uint8_t>* buf, T value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  buf->insert(buf->end(), p, p + sizeof(T));
}

uint32_t SectionCrc(const std::vector<uint8_t>& bytes) {
  return MaskCrc32c(Crc32c(bytes.data(), bytes.size()));
}

// ---------------------------------------------------------------------------
// v1: legacy, no checksums. Kept readable forever; writes are atomic now.

Status WriteStoreV1(const ElementStore& store, const std::string& tmp) {
  WritableFile file;
  VECUBE_ASSIGN_OR_RETURN(file, WritableFile::Create(tmp, kFailpointScope));
  const CubeShape& shape = store.shape();

  VECUBE_RETURN_NOT_OK(file.Append(kMagicV1, sizeof(kMagicV1)));
  VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(shape.ndim()));
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(shape.extent(m)));
  }
  const std::vector<ElementId> ids = store.Ids();
  VECUBE_RETURN_NOT_OK(file.AppendScalar<uint64_t>(ids.size()));
  for (const ElementId& id : ids) {
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(id.dim(m).level));
      VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(id.dim(m).offset));
    }
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    VECUBE_RETURN_NOT_OK(file.AppendScalar<uint64_t>(data->size()));
    VECUBE_RETURN_NOT_OK(
        file.Append(data->raw(), data->size() * sizeof(double)));
  }
  VECUBE_RETURN_NOT_OK(file.Sync());
  return file.Close();
}

Result<ElementStore> LoadStoreV1Body(std::FILE* f, const std::string& path,
                                     uint64_t file_size) {
  uint32_t ndim = 0;
  if (!ReadScalar(f, &ndim) || ndim == 0 || ndim > kMaxDims) {
    return Status::InvalidArgument(path + ": bad dimensionality");
  }
  std::vector<uint32_t> extents(ndim);
  for (uint32_t m = 0; m < ndim; ++m) {
    if (!ReadScalar(f, &extents[m])) {
      return Status::InvalidArgument(path + ": truncated header");
    }
  }
  CubeShape shape;
  VECUBE_ASSIGN_OR_RETURN(shape, CubeShape::Make(extents));

  uint64_t count = 0;
  if (!ReadScalar(f, &count)) {
    return Status::InvalidArgument(path + ": truncated element count");
  }
  // Bound the claimed element count against the bytes actually present
  // before trusting it: each element needs at least its code block, a
  // cell count, and one cell.
  const uint64_t header_bytes = sizeof(kMagicV1) + 4 + uint64_t{4} * ndim + 8;
  const uint64_t min_element_bytes = uint64_t{8} * ndim + 8 + 8;
  if (count > (file_size - std::min(header_bytes, file_size)) /
                  min_element_bytes) {
    return Status::InvalidArgument(path + ": element count " +
                                   std::to_string(count) +
                                   " exceeds file capacity");
  }
  ElementStore store(shape);
  uint64_t consumed = header_bytes;
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<DimCode> codes(ndim);
    for (uint32_t m = 0; m < ndim; ++m) {
      if (!ReadScalar(f, &codes[m].level) ||
          !ReadScalar(f, &codes[m].offset)) {
        return Status::InvalidArgument(path + ": truncated element header");
      }
    }
    ElementId id;
    VECUBE_ASSIGN_OR_RETURN(id, ElementId::Make(std::move(codes), shape));

    uint64_t cell_count = 0;
    if (!ReadScalar(f, &cell_count)) {
      return Status::InvalidArgument(path + ": truncated cell count");
    }
    if (cell_count != id.DataVolume(shape)) {
      return Status::InvalidArgument(path + ": cell count mismatch for " +
                                     id.ToString());
    }
    consumed += uint64_t{8} * ndim + 8;
    // Bound the allocation against the bytes left in the file.
    if (cell_count > (file_size - std::min(consumed, file_size)) / 8) {
      return Status::InvalidArgument(path + ": cell data for " +
                                     id.ToString() + " exceeds file size");
    }
    // TensorBuffer elements are not zero-filled on construction and the
    // buffer is adopted without a copy; ReadBytes overwrites every cell.
    TensorBuffer cells(cell_count);
    if (!ReadBytes(f, cells.data(), cell_count * sizeof(double))) {
      return Status::InvalidArgument(path + ": truncated cell data");
    }
    consumed += cell_count * 8;
    Tensor data;
    VECUBE_ASSIGN_OR_RETURN(
        data, Tensor::FromBuffer(id.DataExtents(shape), std::move(cells)));
    VECUBE_RETURN_NOT_OK(store.Put(id, std::move(data)));
  }
  // Trailing garbage indicates corruption.
  char extra;
  if (std::fread(&extra, 1, 1, f) == 1) {
    return Status::InvalidArgument(path + ": trailing bytes after store");
  }
  return store;
}

// ---------------------------------------------------------------------------
// v2: checksummed sections, per-element payload CRCs, degradable load.

struct DirectoryEntry {
  std::vector<DimCode> codes;  // validated into `id` once the CRC clears
  ElementId id;
  uint64_t cell_count = 0;
  uint32_t data_crc = 0;
};

Status WriteStoreV2(const ElementStore& store, const std::string& tmp,
                    const SnapshotMeta& meta) {
  const CubeShape& shape = store.shape();
  const std::vector<ElementId> ids = store.Ids();

  // Pass 1: payload CRCs (needed up front — the directory precedes the
  // data section so a reader can locate every element without trusting
  // any payload bytes).
  std::vector<uint32_t> data_crcs;
  data_crcs.reserve(ids.size());
  for (const ElementId& id : ids) {
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    data_crcs.push_back(
        MaskCrc32c(Crc32c(data->raw(), data->size() * sizeof(double))));
  }

  std::vector<uint8_t> header;
  header.insert(header.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));
  AppendScalarTo<uint32_t>(&header, shape.ndim());
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    AppendScalarTo<uint32_t>(&header, shape.extent(m));
  }
  AppendScalarTo<uint64_t>(&header, ids.size());
  AppendScalarTo<uint64_t>(&header, meta.wal_seq);
  AppendScalarTo<uint32_t>(&header, meta.flags);

  std::vector<uint8_t> directory;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      AppendScalarTo<uint32_t>(&directory, ids[i].dim(m).level);
      AppendScalarTo<uint32_t>(&directory, ids[i].dim(m).offset);
    }
    AppendScalarTo<uint64_t>(&directory, ids[i].DataVolume(shape));
    AppendScalarTo<uint32_t>(&directory, data_crcs[i]);
  }

  WritableFile file;
  VECUBE_ASSIGN_OR_RETURN(file, WritableFile::Create(tmp, kFailpointScope));
  VECUBE_RETURN_NOT_OK(file.Append(header.data(), header.size()));
  VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(SectionCrc(header)));
  VECUBE_RETURN_NOT_OK(file.Append(directory.data(), directory.size()));
  VECUBE_RETURN_NOT_OK(file.AppendScalar<uint32_t>(SectionCrc(directory)));
  for (const ElementId& id : ids) {
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    VECUBE_RETURN_NOT_OK(
        file.Append(data->raw(), data->size() * sizeof(double)));
  }
  VECUBE_RETURN_NOT_OK(file.Sync());
  return file.Close();
}

Result<ElementStore> LoadStoreV2Body(std::FILE* f, const std::string& path,
                                     uint64_t file_size,
                                     SnapshotReport* report) {
  // Header section. Every byte read is tracked for the section CRC.
  std::vector<uint8_t> raw;
  raw.insert(raw.end(), kMagicV2, kMagicV2 + sizeof(kMagicV2));

  uint32_t ndim = 0;
  if (!ReadTrackedScalar(f, &ndim, &raw) || ndim == 0 || ndim > kMaxDims) {
    return Status::InvalidArgument(path + ": bad dimensionality");
  }
  std::vector<uint32_t> extents(ndim);
  for (uint32_t m = 0; m < ndim; ++m) {
    if (!ReadTrackedScalar(f, &extents[m], &raw)) {
      return Status::InvalidArgument(path + ": truncated header");
    }
  }
  uint64_t count = 0;
  SnapshotMeta meta;
  if (!ReadTrackedScalar(f, &count, &raw) ||
      !ReadTrackedScalar(f, &meta.wal_seq, &raw) ||
      !ReadTrackedScalar(f, &meta.flags, &raw)) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  uint32_t header_crc = 0;
  if (!ReadScalar(f, &header_crc)) {
    return Status::InvalidArgument(path + ": truncated header crc");
  }
  if (header_crc != SectionCrc(raw)) {
    return Status::InvalidArgument(path + ": header checksum mismatch");
  }
  CubeShape shape;
  VECUBE_ASSIGN_OR_RETURN(shape, CubeShape::Make(extents));

  const uint64_t entry_bytes = uint64_t{8} * ndim + 8 + 4;
  const uint64_t header_bytes = raw.size() + 4;
  if (count > (file_size - std::min(header_bytes, file_size)) / entry_bytes) {
    return Status::InvalidArgument(path + ": element count " +
                                   std::to_string(count) +
                                   " exceeds file capacity");
  }

  // Directory section: trusted as a unit once its CRC matches. A bad
  // directory removes the ability to locate any payload, so it is a
  // whole-file failure, unlike a bad payload.
  raw.clear();
  std::vector<DirectoryEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<DimCode> codes(ndim);
    for (uint32_t m = 0; m < ndim; ++m) {
      if (!ReadTrackedScalar(f, &codes[m].level, &raw) ||
          !ReadTrackedScalar(f, &codes[m].offset, &raw)) {
        return Status::InvalidArgument(path + ": truncated directory");
      }
    }
    DirectoryEntry entry;
    if (!ReadTrackedScalar(f, &entry.cell_count, &raw) ||
        !ReadTrackedScalar(f, &entry.data_crc, &raw)) {
      return Status::InvalidArgument(path + ": truncated directory");
    }
    // Defer id validation until the CRC clears: a corrupt directory must
    // surface as "checksum mismatch", not as a confusing id error.
    entry.codes = std::move(codes);
    entries.push_back(std::move(entry));
  }
  uint32_t directory_crc = 0;
  if (!ReadScalar(f, &directory_crc)) {
    return Status::InvalidArgument(path + ": truncated directory crc");
  }
  if (directory_crc != SectionCrc(raw)) {
    return Status::InvalidArgument(path + ": directory checksum mismatch");
  }
  for (DirectoryEntry& entry : entries) {
    ElementId validated;
    VECUBE_ASSIGN_OR_RETURN(validated,
                            ElementId::Make(std::move(entry.codes), shape));
    if (entry.cell_count != validated.DataVolume(shape)) {
      return Status::InvalidArgument(path + ": cell count mismatch for " +
                                     validated.ToString());
    }
    entry.id = std::move(validated);
  }

  if (report != nullptr) {
    report->version = 2;
    report->meta = meta;
    report->elements.clear();
    report->corrupt_elements = 0;
  }

  // Data section: each payload stands alone under its directory CRC, so
  // damage is localized — the element is quarantined and the scan moves
  // to the next payload offset.
  ElementStore store(shape);
  uint64_t data_offset = header_bytes + raw.size() + 4;
  bool truncated = false;
  for (const DirectoryEntry& entry : entries) {
    const uint64_t payload_bytes = entry.cell_count * sizeof(double);
    std::string detail;
    if (truncated || data_offset + payload_bytes > file_size) {
      truncated = true;
      detail = "payload truncated";
    } else {
      TensorBuffer cells(entry.cell_count);
      if (!ReadBytes(f, cells.data(), payload_bytes)) {
        truncated = true;
        detail = "payload truncated";
      } else if (MaskCrc32c(Crc32c(cells.data(), payload_bytes)) !=
                 entry.data_crc) {
        detail = "payload checksum mismatch";
      } else {
        Tensor data;
        VECUBE_ASSIGN_OR_RETURN(
            data,
            Tensor::FromBuffer(entry.id.DataExtents(shape),
                               std::move(cells)));
        VECUBE_RETURN_NOT_OK(store.Put(entry.id, std::move(data)));
      }
    }
    if (!detail.empty()) {
      VECUBE_RETURN_NOT_OK(store.Quarantine(entry.id));
    }
    if (report != nullptr) {
      report->elements.push_back(
          ElementDiagnostic{entry.id, !detail.empty(), detail});
      if (!detail.empty()) ++report->corrupt_elements;
    }
    data_offset += payload_bytes;
  }
  if (!truncated && data_offset != file_size) {
    return Status::InvalidArgument(path + ": trailing bytes after store");
  }
  return store;
}

}  // namespace

Status SaveStore(const ElementStore& store, const std::string& path) {
  const std::string tmp = path + ".tmp";
  VECUBE_RETURN_NOT_OK(WriteStoreV1(store, tmp));
  return AtomicRename(tmp, path, kFailpointScope);
}

Status SaveStoreV2(const ElementStore& store, const std::string& path,
                   const SnapshotMeta& meta) {
  const std::string tmp = path + ".tmp";
  VECUBE_RETURN_NOT_OK(WriteStoreV2(store, tmp, meta));
  return AtomicRename(tmp, path, kFailpointScope);
}

Result<ElementStore> LoadStore(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  uint64_t file_size;
  VECUBE_ASSIGN_OR_RETURN(file_size, FileSize(path));
  std::FILE* f = file.get();

  char magic[8];
  if (!ReadBytes(f, magic, sizeof(magic))) {
    return Status::InvalidArgument(path + " is not a vecube store file");
  }
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    return LoadStoreV1Body(f, path, file_size);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    SnapshotReport report;
    ElementStore store(CubeShape{});
    VECUBE_ASSIGN_OR_RETURN(store,
                            LoadStoreV2Body(f, path, file_size, &report));
    if (!report.clean()) {
      return Status::InvalidArgument(
          path + ": " + std::to_string(report.corrupt_elements) +
          " corrupt element(s); use LoadStoreV2 for a degraded load");
    }
    return store;
  }
  return Status::InvalidArgument(path + " is not a vecube store file");
}

Result<ElementStore> LoadStoreV2(const std::string& path,
                                 SnapshotReport* report) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  uint64_t file_size;
  VECUBE_ASSIGN_OR_RETURN(file_size, FileSize(path));
  std::FILE* f = file.get();

  char magic[8];
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument(path + " is not a v2 vecube store file");
  }
  return LoadStoreV2Body(f, path, file_size, report);
}

}  // namespace vecube
