#include "core/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace vecube {

namespace {

constexpr char kMagic[8] = {'V', 'E', 'C', 'U', 'B', 'E', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

}  // namespace

Status SaveStore(const ElementStore& store, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  std::FILE* f = file.get();
  const CubeShape& shape = store.shape();

  if (!WriteBytes(f, kMagic, sizeof(kMagic))) {
    return Status::Internal("write failed: " + path);
  }
  if (!WriteScalar<uint32_t>(f, shape.ndim())) {
    return Status::Internal("write failed: " + path);
  }
  for (uint32_t m = 0; m < shape.ndim(); ++m) {
    if (!WriteScalar<uint32_t>(f, shape.extent(m))) {
      return Status::Internal("write failed: " + path);
    }
  }
  const std::vector<ElementId> ids = store.Ids();
  if (!WriteScalar<uint64_t>(f, ids.size())) {
    return Status::Internal("write failed: " + path);
  }
  for (const ElementId& id : ids) {
    for (uint32_t m = 0; m < shape.ndim(); ++m) {
      if (!WriteScalar<uint32_t>(f, id.dim(m).level) ||
          !WriteScalar<uint32_t>(f, id.dim(m).offset)) {
        return Status::Internal("write failed: " + path);
      }
    }
    const Tensor* data;
    VECUBE_ASSIGN_OR_RETURN(data, store.Get(id));
    if (!WriteScalar<uint64_t>(f, data->size()) ||
        !WriteBytes(f, data->raw(), data->size() * sizeof(double))) {
      return Status::Internal("write failed: " + path);
    }
  }
  if (std::fflush(f) != 0) return Status::Internal("flush failed: " + path);
  return Status::OK();
}

Result<ElementStore> LoadStore(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::FILE* f = file.get();

  char magic[8];
  if (!ReadBytes(f, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a vecube store file");
  }

  uint32_t ndim = 0;
  if (!ReadScalar(f, &ndim) || ndim == 0 || ndim > 24) {
    return Status::InvalidArgument(path + ": bad dimensionality");
  }
  std::vector<uint32_t> extents(ndim);
  for (uint32_t m = 0; m < ndim; ++m) {
    if (!ReadScalar(f, &extents[m])) {
      return Status::InvalidArgument(path + ": truncated header");
    }
  }
  CubeShape shape;
  VECUBE_ASSIGN_OR_RETURN(shape, CubeShape::Make(extents));

  uint64_t count = 0;
  if (!ReadScalar(f, &count)) {
    return Status::InvalidArgument(path + ": truncated element count");
  }
  ElementStore store(shape);
  for (uint64_t i = 0; i < count; ++i) {
    std::vector<DimCode> codes(ndim);
    for (uint32_t m = 0; m < ndim; ++m) {
      if (!ReadScalar(f, &codes[m].level) ||
          !ReadScalar(f, &codes[m].offset)) {
        return Status::InvalidArgument(path + ": truncated element header");
      }
    }
    ElementId id;
    VECUBE_ASSIGN_OR_RETURN(id, ElementId::Make(std::move(codes), shape));

    uint64_t cell_count = 0;
    if (!ReadScalar(f, &cell_count)) {
      return Status::InvalidArgument(path + ": truncated cell count");
    }
    if (cell_count != id.DataVolume(shape)) {
      return Status::InvalidArgument(path + ": cell count mismatch for " +
                                     id.ToString());
    }
    std::vector<double> cells(cell_count);
    if (!ReadBytes(f, cells.data(), cell_count * sizeof(double))) {
      return Status::InvalidArgument(path + ": truncated cell data");
    }
    Tensor data;
    VECUBE_ASSIGN_OR_RETURN(
        data, Tensor::FromData(id.DataExtents(shape), std::move(cells)));
    VECUBE_RETURN_NOT_OK(store.Put(id, std::move(data)));
  }
  // Trailing garbage indicates corruption.
  char extra;
  if (std::fread(&extra, 1, 1, f) == 1) {
    return Status::InvalidArgument(path + ": trailing bytes after store");
  }
  return store;
}

}  // namespace vecube
