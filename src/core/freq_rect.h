// Frequency-plane geometry (Section 4.2), in exact integer arithmetic.
//
// Each view element occupies a dyadic rectangle of the d-dimensional
// frequency plane (Eqs. 21-23). We measure every dimension in units of
// 2^{-K_m} (one unit = 1 cell of the fully-decomposed axis), so that
// rectangle volume in "units" equals the element's data volume in cells —
// which is exactly the I(Va, Vb) of Eq. 25 that the cost model consumes.

#ifndef VECUBE_CORE_FREQ_RECT_H_
#define VECUBE_CORE_FREQ_RECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"

namespace vecube {

/// Half-open integer interval [lo, hi).
struct FreqInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  [[nodiscard]] uint64_t width() const { return hi - lo; }
  bool operator==(const FreqInterval&) const = default;
};

/// The frequency rectangle of a view element, one interval per dimension,
/// each in units of 2^{-K_m} (i.e. spanning [0, n_m)).
class FreqRect {
 public:
  /// Rectangle of `id` within a cube of `shape`.
  static FreqRect Of(const ElementId& id, const CubeShape& shape);

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(intervals_.size()); }
  [[nodiscard]] const FreqInterval& interval(uint32_t m) const { return intervals_[m]; }

  /// Volume in units == element data volume in cells.
  uint64_t Volume() const;

  /// Overlap volume in cells; 0 when disjoint (Eqs. 24-25).
  uint64_t Overlap(const FreqRect& other) const;

  [[nodiscard]] bool Intersects(const FreqRect& other) const { return Overlap(other) > 0; }

  /// True iff this rectangle contains `other` entirely; for dyadic
  /// rectangles this is equivalent to `other` being a descendant of this
  /// element in the view element graph.
  bool Contains(const FreqRect& other) const;

  std::string ToString() const;

 private:
  std::vector<FreqInterval> intervals_;
};

/// True iff `ancestor` can generate `descendant` by a (possibly empty)
/// cascade of partial/residual aggregations — per-dimension prefix test on
/// the dyadic codes. Equivalent to FreqRect containment but cheaper.
bool IsAncestorOf(const ElementId& ancestor, const ElementId& descendant);

/// Overlap volume in cells of two elements' frequency rectangles.
uint64_t OverlapCells(const ElementId& a, const ElementId& b,
                      const CubeShape& shape);

}  // namespace vecube

#endif  // VECUBE_CORE_FREQ_RECT_H_
