// Query traces: timestamped streams of view accesses with phase shifts.
//
// The dynamic reconfiguration machinery (Section 5's "observed on-line"
// mode) is exercised by traces whose underlying distribution changes over
// time. A trace is a sequence of phases, each drawing from its own
// QueryPopulation for a given number of queries; the replayer drives any
// callback (typically DynamicAssembler::Query or OlapSession::Element)
// and aggregates per-phase statistics.

#ifndef VECUBE_WORKLOAD_TRACE_H_
#define VECUBE_WORKLOAD_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/element_id.h"
#include "util/result.h"
#include "util/rng.h"
#include "workload/population.h"

namespace vecube {

/// One phase of a trace.
struct TracePhase {
  std::string name;
  QueryPopulation population;
  uint64_t num_queries = 0;
};

/// A multi-phase query trace.
class QueryTrace {
 public:
  /// Phases must be non-empty with positive lengths.
  static Result<QueryTrace> Make(std::vector<TracePhase> phases);

  [[nodiscard]] const std::vector<TracePhase>& phases() const { return phases_; }
  [[nodiscard]] uint64_t total_queries() const { return total_; }

  /// Materializes the full query sequence (deterministic per seed).
  std::vector<ElementId> Generate(Rng* rng) const;

 private:
  std::vector<TracePhase> phases_;
  uint64_t total_ = 0;
};

/// Result of replaying one phase.
struct PhaseReport {
  std::string name;
  uint64_t queries = 0;
  uint64_t total_ops = 0;
  double avg_ops_per_query = 0.0;
};

/// Replays a trace against `serve`, which answers one query and returns
/// the operation count (or an error status, which aborts the replay).
/// Returns one report per phase.
Result<std::vector<PhaseReport>> ReplayTrace(
    const QueryTrace& trace, Rng* rng,
    const std::function<Result<uint64_t>(const ElementId&)>& serve);

}  // namespace vecube

#endif  // VECUBE_WORKLOAD_TRACE_H_
