#include "workload/population.h"

#include "core/graph.h"
#include "util/logging.h"

namespace vecube {

Result<QueryPopulation> QueryPopulation::Make(std::vector<QuerySpec> queries,
                                              const CubeShape& shape) {
  if (queries.empty()) {
    return Status::InvalidArgument("population must not be empty");
  }
  double total = 0.0;
  for (const QuerySpec& q : queries) {
    ElementId checked;
    VECUBE_ASSIGN_OR_RETURN(checked, ElementId::Make(q.view.codes(), shape));
    if (q.frequency <= 0.0) {
      return Status::InvalidArgument("frequencies must be positive");
    }
    total += q.frequency;
  }
  QueryPopulation population;
  population.queries_ = std::move(queries);
  population.cdf_.reserve(population.queries_.size());
  double acc = 0.0;
  for (QuerySpec& q : population.queries_) {
    q.frequency /= total;
    acc += q.frequency;
    population.cdf_.push_back(acc);
  }
  population.cdf_.back() = 1.0;
  return population;
}

const ElementId& QueryPopulation::Sample(Rng* rng) const {
  VECUBE_CHECK(!queries_.empty());
  const double u = rng->UniformDouble();
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return queries_[lo].view;
}

namespace {

Result<QueryPopulation> ViewPopulationFromWeights(
    const CubeShape& shape, const std::vector<double>& weights) {
  const std::vector<ElementId> views =
      ViewElementGraph(shape).AggregatedViews();
  VECUBE_CHECK(weights.size() == views.size());
  std::vector<QuerySpec> queries;
  queries.reserve(views.size());
  for (size_t k = 0; k < views.size(); ++k) {
    // Guard against exact zeros from the generator; keep all views present
    // with a tiny floor so Make's positivity check passes.
    const double f = weights[k] > 0.0 ? weights[k] : 1e-12;
    queries.push_back(QuerySpec{views[k], f});
  }
  return QueryPopulation::Make(std::move(queries), shape);
}

}  // namespace

Result<QueryPopulation> RandomViewPopulation(const CubeShape& shape,
                                             Rng* rng) {
  const size_t k = size_t{1} << shape.ndim();
  return ViewPopulationFromWeights(shape, rng->Simplex(k));
}

Result<QueryPopulation> ZipfViewPopulation(const CubeShape& shape, Rng* rng,
                                           double skew) {
  const size_t k = size_t{1} << shape.ndim();
  return ViewPopulationFromWeights(shape, rng->ZipfWeights(k, skew));
}

Result<QueryPopulation> FixedPopulation(
    const std::vector<std::pair<ElementId, double>>& entries,
    const CubeShape& shape) {
  std::vector<QuerySpec> queries;
  queries.reserve(entries.size());
  for (const auto& [id, f] : entries) {
    queries.push_back(QuerySpec{id, f});
  }
  return QueryPopulation::Make(std::move(queries), shape);
}

}  // namespace vecube
