// Query populations: the {Z_k, f_k} of Section 5.2.
//
// "Let {Z_k} define a population of K views, or, in general, view
// elements. Let f_k denote the relative frequency of access of Z_k such
// that Σ f_k = 1." The experiments of Section 7.2 draw the f_k at random
// over the 2^d aggregated views.

#ifndef VECUBE_WORKLOAD_POPULATION_H_
#define VECUBE_WORKLOAD_POPULATION_H_

#include <cstdint>
#include <vector>

#include "core/element_id.h"
#include "cube/shape.h"
#include "util/result.h"
#include "util/rng.h"

namespace vecube {

/// One queried view (element) and its relative access frequency.
struct QuerySpec {
  ElementId view;
  double frequency = 0.0;
};

/// A population of queries. Frequencies are kept normalized (sum 1).
class QueryPopulation {
 public:
  QueryPopulation() = default;

  /// Validates ids against the shape and normalizes frequencies. Entries
  /// with non-positive frequency are rejected.
  static Result<QueryPopulation> Make(std::vector<QuerySpec> queries,
                                      const CubeShape& shape);

  [[nodiscard]] const std::vector<QuerySpec>& queries() const { return queries_; }
  [[nodiscard]] size_t size() const { return queries_.size(); }
  const QuerySpec& operator[](size_t k) const { return queries_[k]; }

  /// Draws one view id, weighted by frequency (for trace replay).
  const ElementId& Sample(Rng* rng) const;

 private:
  std::vector<QuerySpec> queries_;
  std::vector<double> cdf_;
};

/// Experiment 1/2 workload: "assign a random probability of access to each
/// of the aggregated views" — a uniform draw from the simplex over all 2^d
/// aggregated views.
Result<QueryPopulation> RandomViewPopulation(const CubeShape& shape, Rng* rng);

/// Zipf-skewed frequencies over the 2^d aggregated views (a heavier-tailed
/// variant used by the ablation benches and examples).
Result<QueryPopulation> ZipfViewPopulation(const CubeShape& shape, Rng* rng,
                                           double skew);

/// A population concentrated on an explicit subset of views with given
/// weights (e.g. the pedagogical example's f1 = f7 = 0.5).
Result<QueryPopulation> FixedPopulation(
    const std::vector<std::pair<ElementId, double>>& entries,
    const CubeShape& shape);

}  // namespace vecube

#endif  // VECUBE_WORKLOAD_POPULATION_H_
