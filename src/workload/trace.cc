#include "workload/trace.h"

namespace vecube {

Result<QueryTrace> QueryTrace::Make(std::vector<TracePhase> phases) {
  if (phases.empty()) {
    return Status::InvalidArgument("trace needs at least one phase");
  }
  QueryTrace trace;
  for (TracePhase& phase : phases) {
    if (phase.num_queries == 0) {
      return Status::InvalidArgument("phase '" + phase.name +
                                     "' has zero queries");
    }
    if (phase.population.size() == 0) {
      return Status::InvalidArgument("phase '" + phase.name +
                                     "' has an empty population");
    }
    trace.total_ += phase.num_queries;
  }
  trace.phases_ = std::move(phases);
  return trace;
}

std::vector<ElementId> QueryTrace::Generate(Rng* rng) const {
  std::vector<ElementId> sequence;
  sequence.reserve(total_);
  for (const TracePhase& phase : phases_) {
    for (uint64_t i = 0; i < phase.num_queries; ++i) {
      sequence.push_back(phase.population.Sample(rng));
    }
  }
  return sequence;
}

Result<std::vector<PhaseReport>> ReplayTrace(
    const QueryTrace& trace, Rng* rng,
    const std::function<Result<uint64_t>(const ElementId&)>& serve) {
  std::vector<PhaseReport> reports;
  for (const TracePhase& phase : trace.phases()) {
    PhaseReport report;
    report.name = phase.name;
    for (uint64_t i = 0; i < phase.num_queries; ++i) {
      const ElementId& view = phase.population.Sample(rng);
      uint64_t ops;
      VECUBE_ASSIGN_OR_RETURN(ops, serve(view));
      report.total_ops += ops;
      ++report.queries;
    }
    report.avg_ops_per_query =
        static_cast<double>(report.total_ops) /
        static_cast<double>(report.queries);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace vecube
