// Bit-twiddling helpers for power-of-two cube geometry.

#ifndef VECUBE_UTIL_BITS_H_
#define VECUBE_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace vecube {

/// True iff `x` is a power of two (1, 2, 4, ...). Zero is not.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x | 1));
}

/// Exact log2 of a power of two.
constexpr uint32_t ExactLog2(uint64_t x) { return FloorLog2(x); }

/// Largest power of two that divides `x` (x > 0); i.e. 2^countr_zero(x).
constexpr uint64_t LargestDyadicFactor(uint64_t x) { return x & (~x + 1); }

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return IsPowerOfTwo(x) ? x : uint64_t{1} << (FloorLog2(x) + 1);
}

}  // namespace vecube

#endif  // VECUBE_UTIL_BITS_H_
