#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace vecube {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  VECUBE_CHECK(bound > 0);
  // Lemire-style rejection: accept when the value falls in the largest
  // multiple of `bound` not exceeding 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

std::vector<double> Rng::Simplex(size_t k) {
  VECUBE_CHECK(k > 0);
  std::vector<double> w(k);
  double total = 0.0;
  for (auto& x : w) {
    // Exp(1) variate; guard the log against an exact zero uniform.
    double u = UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    x = -std::log(u);
    total += x;
  }
  for (auto& x : w) x /= total;
  return w;
}

std::vector<double> Rng::ZipfWeights(size_t k, double s) {
  VECUBE_CHECK(k > 0);
  std::vector<double> w(k);
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  for (auto& x : w) x /= total;
  // Fisher-Yates permutation so heavy ranks land on random items.
  for (size_t i = k; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformU64(i));
    std::swap(w[i - 1], w[j]);
  }
  return w;
}

}  // namespace vecube
