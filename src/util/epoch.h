// Epoch-based reclamation for read-mostly published data structures.
//
// The serving hot path (ViewCache::LookupPinned) must hand out pointers
// into shared immutable tables without taking a lock or bumping a shared
// reference count — either one turns a read-dominated workload into a
// cache-line ping-pong match between cores. The classic answer is
// epoch-based reclamation (RCU-style): readers announce a critical
// section by stamping a per-thread slot with the current global epoch;
// writers publish a replacement structure, advance the epoch, and park
// the old structure in a limbo list tagged with the pre-advance epoch.
// A limbo object is destroyed only once every announced reader epoch has
// moved past its tag, so a reader can never observe freed memory.
//
// Protocol (all proofs in DESIGN.md §10):
//
//   reader:  e = epoch; slot = e; re-read epoch until it equals e;
//            ... dereference published pointers ...; slot = 0
//   writer:  publish(new); tag = fetch_add(epoch, 1);
//            limbo.push({old, tag}); later: free entries with
//            tag < MinPinned()
//
// The reader's confirm loop closes the publication race: once the slot
// value and a subsequent read of the global epoch agree (both seq_cst),
// either the writer's scan observes the slot — and spares everything the
// reader can reach — or the reader's epoch load observed the writer's
// advance, which happens-after the new structure was published, so the
// reader can only reach the replacement.
//
// Slots are process-wide (a reader pin in one cache conservatively
// delays reclamation in another — correct, and irrelevant at the rate
// writers retire). They live in an immortal lock-free registry: a thread
// claims a free slot on first pin and returns it at thread exit; slots
// are never deallocated, so writers may scan the registry without
// synchronizing with thread shutdown.
//
// Pins nest (the slot keeps the outermost epoch, which is conservative)
// and must be released on the thread that acquired them.

#ifndef VECUBE_UTIL_EPOCH_H_
#define VECUBE_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <utility>

namespace vecube {

class EpochDomain {
 public:
  /// The process-wide domain shared by every epoch-published structure.
  static EpochDomain& Instance();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// A reader critical section. While engaged, any object retired after
  /// the pin was acquired stays alive. Default-constructed pins are
  /// empty; Acquire() returns an engaged one. Move-only, and must be
  /// destroyed on the acquiring thread.
  class Pin {
   public:
    Pin() noexcept = default;
    Pin(Pin&& other) noexcept : engaged_(std::exchange(other.engaged_, false)) {}
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        engaged_ = std::exchange(other.engaged_, false);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    [[nodiscard]] bool engaged() const { return engaged_; }

   private:
    friend class EpochDomain;
    explicit Pin(bool engaged) noexcept : engaged_(engaged) {}
    void Release() noexcept;

    bool engaged_ = false;
  };

  /// Enters a reader critical section on the calling thread.
  [[nodiscard]] static Pin Acquire();

  /// Advances the global epoch and returns the pre-advance value — the
  /// retirement tag for anything unpublished before the call. An object
  /// tagged `t` may be destroyed once MinPinned() > t.
  uint64_t Retire();

  /// Minimum epoch announced by any pinned reader; UINT64_MAX when no
  /// reader is pinned anywhere in the process.
  [[nodiscard]] uint64_t MinPinned() const;

 private:
  // One cache line per reader slot: `epoch` is hammered by its owning
  // thread and only scanned (rarely) by writers.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  ///< 0 = quiescent
    std::atomic<bool> in_use{false};
    uint32_t depth = 0;  ///< pin nesting; touched only by the owner
    Slot* next = nullptr;  ///< registry link, immutable once pushed
  };

  EpochDomain() = default;

  /// The calling thread's slot, claimed from the registry on first use
  /// and returned (quiescent) at thread exit. Never null.
  static Slot* LocalSlot();

  std::atomic<uint64_t> epoch_{1};
  std::atomic<Slot*> slots_{nullptr};

  friend class Pin;
  struct SlotLease;
};

}  // namespace vecube

#endif  // VECUBE_UTIL_EPOCH_H_
