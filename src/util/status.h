// Status: lightweight error propagation for fallible operations.
//
// The library does not throw exceptions (Google style / RocksDB idiom).
// Every operation that can fail returns a Status (or a Result<T>, see
// result.h), and callers are expected to check it.

#ifndef VECUBE_UTIL_STATUS_H_
#define VECUBE_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace vecube {

/// Coarse error taxonomy, modeled on the Arrow/RocksDB status codes that
/// are relevant to an in-memory analytical engine.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIncomplete = 8,  ///< a view-element set cannot reconstruct the target
  kDeadlineExceeded = 9,   ///< the query's deadline expired before completion
  kResourceExhausted = 10, ///< load shed: admission queue or budget is full
  kCancelled = 11,         ///< cooperative cancellation via QueryContext
  kUnavailable = 12,       ///< serving is shutting down; retry elsewhere
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic status object. An OK status carries no allocation; error
/// statuses carry a code and message on the heap. [[nodiscard]]: silently
/// dropping a Status hides failures; callers must check or explicitly
/// void-cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Incomplete(std::string msg) {
    return Status(StatusCode::kIncomplete, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return rep_ == nullptr; }
  [[nodiscard]] StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  [[nodiscard]] bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  [[nodiscard]] bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  [[nodiscard]] bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  [[nodiscard]] bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  [[nodiscard]] bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  [[nodiscard]] bool IsInternal() const { return code() == StatusCode::kInternal; }
  [[nodiscard]] bool IsIncomplete() const { return code() == StatusCode::kIncomplete; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  [[nodiscard]] bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

/// Propagates a non-OK status to the caller.
#define VECUBE_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::vecube::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace vecube

#endif  // VECUBE_UTIL_STATUS_H_
