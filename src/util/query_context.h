// QueryContext: per-query deadline + cooperative cancellation.
//
// Threaded by const reference from the public API (OlapSession,
// DynamicAssembler, RangeEngine) down through AssemblyEngine into the
// fused cascade loops, which check it at tile granularity. The contract
// is cooperative: code never preempts a running kernel, it polls Check()
// at natural yield points (plan nodes, cascade groups, slab/tile chunks,
// odometer steps) and unwinds with kDeadlineExceeded / kCancelled.
//
// A default-constructed context is unbounded and non-cancellable and
// costs nothing to check — the legacy entry points pass exactly that.
// Copies are cheap and share the cancellation token, so a monitoring
// thread can RequestCancel() a context whose copy a worker is serving.
//
// The deadline is a steady_clock time point (never wall-clock:
// system_clock jumps would turn NTP steps into spurious query failures,
// and the determinism lint bans it in the engine directories anyway).

#ifndef VECUBE_UTIL_QUERY_CONTEXT_H_
#define VECUBE_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace vecube {

class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded, non-cancellable (the implicit context of every legacy
  /// call site). Check() on it is two branch tests — no clock read.
  QueryContext() = default;

  static QueryContext Unbounded() { return QueryContext(); }

  /// Absolute deadline; also allocates a cancellation token.
  static QueryContext WithDeadline(Clock::time_point deadline) {
    QueryContext ctx;
    ctx.deadline_ = deadline;
    ctx.cancel_ = std::make_shared<std::atomic<bool>>(false);
    return ctx;
  }

  /// Deadline `timeout` from now.
  template <typename Rep, typename Period>
  static QueryContext WithTimeout(
      const std::chrono::duration<Rep, Period>& timeout) {
    return WithDeadline(Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(timeout));
  }

  /// No deadline, but cancellable via RequestCancel() on any copy.
  static QueryContext Cancellable() {
    QueryContext ctx;
    ctx.cancel_ = std::make_shared<std::atomic<bool>>(false);
    return ctx;
  }

  [[nodiscard]] bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  [[nodiscard]] Clock::time_point deadline() const { return deadline_; }

  /// Time left before the deadline; a very large value when unbounded,
  /// zero (never negative) once expired.
  [[nodiscard]] Clock::duration remaining() const {
    if (!has_deadline()) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= deadline_ ? Clock::duration::zero() : deadline_ - now;
  }

  [[nodiscard]] bool expired() const {
    return has_deadline() && Clock::now() >= deadline_;
  }

  /// Requests cooperative cancellation; visible to every copy sharing
  /// this context's token. No-op on a non-cancellable context.
  void RequestCancel() const {
    // order: relaxed — a standalone flag polled by Check(); no data is
    // published through it (the canceller and the query share nothing
    // but the intent to stop).
    if (cancel_ != nullptr) cancel_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancel_requested() const {
    // order: relaxed — see RequestCancel.
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// The cooperative poll: OK while the query may keep running,
  /// kCancelled / kDeadlineExceeded once it must unwind. Cancellation is
  /// checked first so an expired-and-cancelled query reports the
  /// caller's intent rather than the clock.
  [[nodiscard]] Status Check() const {
    if (cancel_requested()) return Status::Cancelled("query cancelled");
    if (expired()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

  /// Opt-in graceful degradation: when the remaining budget cannot cover
  /// the Procedure-3 plan cost, the serving layer may answer from
  /// resident elements approximately (with an L2 error bound) instead of
  /// failing with kDeadlineExceeded. See serve/serving.h.
  QueryContext& set_allow_degraded(bool allow) {
    allow_degraded_ = allow;
    return *this;
  }
  [[nodiscard]] bool allow_degraded() const { return allow_degraded_; }

  /// Explicit assembly-op budget override (0 = derive from remaining()
  /// wall time via the server's ops-per-millisecond estimate). Tests use
  /// this for deterministic degradation without wall-clock flakiness.
  QueryContext& set_ops_budget(uint64_t ops) {
    ops_budget_ = ops;
    return *this;
  }
  [[nodiscard]] uint64_t ops_budget() const { return ops_budget_; }

 private:
  Clock::time_point deadline_ = Clock::time_point::max();
  std::shared_ptr<std::atomic<bool>> cancel_;  // null = non-cancellable
  bool allow_degraded_ = false;
  uint64_t ops_budget_ = 0;
};

}  // namespace vecube

#endif  // VECUBE_UTIL_QUERY_CONTEXT_H_
