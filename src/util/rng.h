// Deterministic, seedable random number generation for experiments.
//
// Experiments in the paper (Section 7.2) draw random view-access
// frequencies; reproducibility of our tables requires a stable RNG that
// does not depend on the standard library's unspecified distributions.

#ifndef VECUBE_UTIL_RNG_H_
#define VECUBE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vecube {

/// xoshiro256** generator seeded via SplitMix64. Deterministic across
/// platforms and standard-library versions.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound) using rejection to avoid modulo bias.
  /// `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// A point on the K-simplex: K non-negative weights summing to 1, drawn
  /// by normalizing i.i.d. Exp(1) variates (uniform on the simplex).
  std::vector<double> Simplex(size_t k);

  /// Zipf-distributed weights over k items with exponent `s`, normalized
  /// to sum to 1, randomly permuted so rank is not tied to item index.
  std::vector<double> ZipfWeights(size_t k, double s);

 private:
  uint64_t s_[4];
};

}  // namespace vecube

#endif  // VECUBE_UTIL_RNG_H_
