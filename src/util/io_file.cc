#include "util/io_file.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/failpoint.h"

namespace vecube {

WritableFile& WritableFile::operator=(WritableFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    scope_ = std::move(other.scope_);
    offset_ = other.offset_;
    other.file_ = nullptr;
    other.offset_ = 0;
  }
  return *this;
}

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<WritableFile> WritableFile::Create(const std::string& path,
                                          std::string failpoint_scope) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  WritableFile file;
  file.file_ = f;
  file.path_ = path;
  file.scope_ = std::move(failpoint_scope);
  return file;
}

Result<WritableFile> WritableFile::OpenForAppend(const std::string& path,
                                                 std::string failpoint_scope) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for append");
  }
  WritableFile file;
  file.file_ = f;
  file.path_ = path;
  file.scope_ = std::move(failpoint_scope);
  const long pos = std::ftell(f);  // NOLINT(google-runtime-int)
  file.offset_ = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return file;
}

Status WritableFile::Append(const void* data, size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("file " + path_ + " is closed");
  }
  if (auto action = Failpoints::Hit(scope_)) {
    switch (action->kind) {
      case FailpointAction::Kind::kError:
        return Status::Internal("injected I/O error at " + scope_ + " (" +
                                path_ + ")");
      case FailpointAction::Kind::kShortWrite: {
        const size_t kept =
            std::min(static_cast<size_t>(action->short_bytes), size);
        if (kept > 0) {
          std::fwrite(data, 1, kept, file_);
          offset_ += kept;
        }
        std::fflush(file_);
        return Status::Internal("injected short write at " + scope_ + " (" +
                                std::to_string(kept) + "/" +
                                std::to_string(size) + " bytes)");
      }
      case FailpointAction::Kind::kBitFlip: {
        // Silent in-flight corruption: the write "succeeds".
        std::vector<uint8_t> corrupted(size);
        std::memcpy(corrupted.data(), data, size);
        const uint64_t bit = action->flip_bit % (uint64_t{size} * 8);
        corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        if (std::fwrite(corrupted.data(), 1, size, file_) != size) {
          return Status::Internal("write failed: " + path_);
        }
        offset_ += size;
        return Status::OK();
      }
      case FailpointAction::Kind::kDelay:
        break;  // latency injection is a no-op for durability I/O
    }
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::Internal("write failed: " + path_);
  }
  offset_ += size;
  return Status::OK();
}

Status WritableFile::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("file " + path_ + " is closed");
  }
  if (auto action = Failpoints::Hit(scope_ + ".sync")) {
    (void)action;
    std::fflush(file_);  // buffered bytes may or may not have landed
    return Status::Internal("injected sync failure at " + scope_ + " (" +
                            path_ + ")");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("flush failed: " + path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::Internal("fsync failed: " + path_);
  }
  return Status::OK();
}

Status WritableFile::TruncateTo(uint64_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("file " + path_ + " is closed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("flush failed: " + path_);
  }
  if (::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0) {
    return Status::Internal("ftruncate failed: " + path_);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed: " + path_);
  }
  offset_ = size;
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("close failed: " + path_);
  return Status::OK();
}

Status AtomicRename(const std::string& from, const std::string& to,
                    const std::string& failpoint_scope) {
  if (auto action = Failpoints::Hit(failpoint_scope + ".rename")) {
    (void)action;
    return Status::Internal("injected rename failure: " + from + " -> " + to);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("rename failed: " + from + " -> " + to);
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

void RemoveFileIfExists(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace vecube
