#include "util/status.h"

namespace vecube {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIncomplete:
      return "Incomplete";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace vecube
