#include "util/epoch.h"

#include <limits>

namespace vecube {

EpochDomain& EpochDomain::Instance() {
  // Immortal: reclamation state must outlive every static-destruction-
  // order-dependent reader, so the domain is constructed once and never
  // destroyed.
  static EpochDomain* const kDomain =
      new EpochDomain();  // vecube-lint: disable=no-naked-new
  return *kDomain;
}

// Returns the thread's slot to the registry pool when the thread exits.
struct EpochDomain::SlotLease {
  Slot* slot = nullptr;
  ~SlotLease() {
    if (slot != nullptr) {
      slot->depth = 0;
      slot->epoch.store(0, std::memory_order_release);
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

EpochDomain::Slot* EpochDomain::LocalSlot() {
  thread_local SlotLease lease;
  if (lease.slot != nullptr) return lease.slot;
  EpochDomain& domain = Instance();
  // Reuse a returned slot if one is free; the acquire pairs with the
  // release in ~SlotLease so the new owner sees a quiescent slot.
  for (Slot* s = domain.slots_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    bool expected = false;
    if (!s->in_use.load(std::memory_order_relaxed) &&
        s->in_use.compare_exchange_strong(expected, true,
                                          std::memory_order_acquire)) {
      lease.slot = s;
      return s;
    }
  }
  // Registry nodes are immortal by design: writers scan the list without
  // coordinating with thread exit, so nodes must never be deallocated.
  Slot* fresh = new Slot();  // vecube-lint: disable=no-naked-new
  fresh->in_use.store(true, std::memory_order_relaxed);
  Slot* head = domain.slots_.load(std::memory_order_relaxed);
  do {
    fresh->next = head;
  } while (!domain.slots_.compare_exchange_weak(head, fresh,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  lease.slot = fresh;
  return fresh;
}

EpochDomain::Pin EpochDomain::Acquire() {
  EpochDomain& domain = Instance();
  Slot* slot = LocalSlot();
  if (slot->depth++ == 0) {
    // Announce-and-confirm: after the loop, the slot value and a
    // subsequent read of the global epoch agree, so any retirement the
    // announcement missed is one whose replacement this reader is
    // guaranteed to observe (see header).
    uint64_t e = domain.epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot->epoch.store(e, std::memory_order_seq_cst);
      const uint64_t confirm = domain.epoch_.load(std::memory_order_seq_cst);
      if (confirm == e) break;
      e = confirm;
    }
  }
  return Pin(true);
}

void EpochDomain::Pin::Release() noexcept {
  if (!engaged_) return;
  engaged_ = false;
  Slot* slot = LocalSlot();
  if (--slot->depth == 0) {
    // Release-publishes every read made inside the critical section to
    // the writer that observes the slot go quiescent before freeing.
    slot->epoch.store(0, std::memory_order_release);
  }
}

uint64_t EpochDomain::Retire() {
  return epoch_.fetch_add(1, std::memory_order_seq_cst);
}

uint64_t EpochDomain::MinPinned() const {
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const Slot* s = slots_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    const uint64_t e = s->epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

}  // namespace vecube
