#include "util/epoch.h"

#include <limits>

namespace vecube {

EpochDomain& EpochDomain::Instance() {
  // Immortal: reclamation state must outlive every static-destruction-
  // order-dependent reader, so the domain is constructed once and never
  // destroyed.
  static EpochDomain* const kDomain =
      new EpochDomain();  // vecube-lint: disable=no-naked-new
  return *kDomain;
}

// Returns the thread's slot to the registry pool when the thread exits.
struct EpochDomain::SlotLease {
  Slot* slot = nullptr;
  ~SlotLease() {
    if (slot != nullptr) {
      slot->depth = 0;
      // order: release — a later claimant's acquire CAS on in_use must
      // observe the quiescent epoch (and zeroed depth) written here.
      slot->epoch.store(0, std::memory_order_release);
      // order: release — publishes the slot reset above; pairs with the
      // acquire CAS in LocalSlot's reuse scan.
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

EpochDomain::Slot* EpochDomain::LocalSlot() {
  thread_local SlotLease lease;
  if (lease.slot != nullptr) return lease.slot;
  EpochDomain& domain = Instance();
  // order: acquire — pairs with the release CAS that pushed each node, so
  // the scan sees fully constructed Slot objects through `next` links.
  for (Slot* s = domain.slots_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    bool expected = false;
    // order: relaxed pre-check — a stale true only skips a reusable slot
    // (we allocate a fresh one instead); the CAS below re-decides.
    if (!s->in_use.load(std::memory_order_relaxed) &&
        // order: acquire on success — pairs with the release stores in
        // ~SlotLease so the new owner sees the quiescent slot state.
        s->in_use.compare_exchange_strong(expected, true,
                                          std::memory_order_acquire)) {
      lease.slot = s;
      return s;
    }
  }
  // Registry nodes are immortal by design: writers scan the list without
  // coordinating with thread exit, so nodes must never be deallocated.
  Slot* fresh = new Slot();  // vecube-lint: disable=no-naked-new
  // order: relaxed — the slot is not reachable by any other thread until
  // the release CAS below publishes it.
  fresh->in_use.store(true, std::memory_order_relaxed);
  // order: relaxed — the head value is re-validated by the CAS; no data
  // is read through it before the CAS succeeds.
  Slot* head = domain.slots_.load(std::memory_order_relaxed);
  do {
    fresh->next = head;
    // order: release on success — publishes the fully constructed node
    // (in_use, next) to registry scanners; relaxed on failure — the
    // retried head is re-validated, nothing is dereferenced.
  } while (!domain.slots_.compare_exchange_weak(head, fresh,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  lease.slot = fresh;
  return fresh;
}

EpochDomain::Pin EpochDomain::Acquire() {
  EpochDomain& domain = Instance();
  Slot* slot = LocalSlot();
  if (slot->depth++ == 0) {
    // Announce-and-confirm: after the loop, the slot value and a
    // subsequent read of the global epoch agree, so any retirement the
    // announcement missed is one whose replacement this reader is
    // guaranteed to observe (see header).
    // order: seq_cst — the announce/confirm protocol needs a single total
    // order over {slot store, epoch loads, writer's epoch fetch_add,
    // writer's slot scan}; anything weaker re-opens the publication race
    // the confirm loop exists to close (proof in DESIGN.md §10).
    uint64_t e = domain.epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      // order: seq_cst — the announcement must be ordered before the
      // confirming epoch load below in the global total order.
      slot->epoch.store(e, std::memory_order_seq_cst);
      // order: seq_cst — confirm read; see the protocol note above.
      const uint64_t confirm = domain.epoch_.load(std::memory_order_seq_cst);
      if (confirm == e) break;
      e = confirm;
    }
  }
  return Pin(true);
}

void EpochDomain::Pin::Release() noexcept {
  if (!engaged_) return;
  engaged_ = false;
  Slot* slot = LocalSlot();
  if (--slot->depth == 0) {
    // order: release — publishes every read made inside the critical
    // section to the writer that observes the slot go quiescent (via the
    // seq_cst scan in MinPinned) before freeing limbo objects.
    slot->epoch.store(0, std::memory_order_release);
  }
}

uint64_t EpochDomain::Retire() {
  // order: seq_cst — the advance must be totally ordered against reader
  // announce/confirm pairs: a reader whose confirm missed this advance is
  // guaranteed visible to the writer's subsequent MinPinned scan.
  return epoch_.fetch_add(1, std::memory_order_seq_cst);
}

uint64_t EpochDomain::MinPinned() const {
  uint64_t min = std::numeric_limits<uint64_t>::max();
  // order: acquire — pairs with the release CAS publishing registry
  // nodes, so `next` chains and slot fields are safe to read.
  for (const Slot* s = slots_.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    // order: seq_cst — the scan must appear after the Retire() advance in
    // the total order, so any reader pinned to a pre-advance epoch is
    // observed here rather than racing past the scan (see Acquire).
    const uint64_t e = s->epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

}  // namespace vecube
