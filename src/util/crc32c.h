// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum guarding every durable byte vecube writes: snapshot
// headers, element payloads, and WAL records. CRC32C detects all
// single-bit errors, all odd numbers of bit errors, and all burst errors
// up to 32 bits — exactly the torn-write / bit-rot failure modes the
// durability layer defends against. Software slice-by-4 implementation;
// deterministic on every platform.

#ifndef VECUBE_UTIL_CRC32C_H_
#define VECUBE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace vecube {

/// CRC32C of `size` bytes starting at `data`, seeded with `seed` (pass the
/// previous return value to checksum discontiguous regions as one stream).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Masked CRC (RocksDB/LevelDB idiom): storing a CRC of data that itself
/// contains CRCs is error-prone; the mask makes a stored checksum never
/// look like a valid checksum of its surroundings.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace vecube

#endif  // VECUBE_UTIL_CRC32C_H_
