// Failpoint-instrumented file primitives for the durability layer.
//
// Every byte the snapshot writer and the WAL put on disk flows through
// WritableFile, which checks a named failpoint at each append / sync /
// rename boundary. With nothing armed this is a plain buffered stdio
// file; with a failpoint armed it reproduces the real-world failure
// modes a durable store must survive:
//
//   kError       the syscall "fails" (EIO) without touching the file —
//                combined with abandoning the writer, this is a crash
//                immediately before the write;
//   kShortWrite  only a prefix of the buffer reaches the file before the
//                failure — a torn write / crash mid-write;
//   kBitFlip     the buffer is silently corrupted in flight — bit rot or
//                a bad cable; the write "succeeds".
//
// The scope string names the instrumented path ("snapshot", "wal.append",
// ...); derived failpoints are "<scope>", "<scope>.sync" and
// "<scope>.rename".

#ifndef VECUBE_UTIL_IO_FILE_H_
#define VECUBE_UTIL_IO_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace vecube {

/// Append-only file handle with failpoint instrumentation. Create() opens
/// (truncating); Open() resumes appending at an existing file's end.
class WritableFile {
 public:
  WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;
  WritableFile(WritableFile&& other) noexcept { *this = std::move(other); }
  WritableFile& operator=(WritableFile&& other) noexcept;
  /// Closes (without syncing) if still open; partial files are left on
  /// disk — exactly the state a crash would leave, which recovery paths
  /// must tolerate anyway.
  ~WritableFile();

  static Result<WritableFile> Create(const std::string& path,
                                     std::string failpoint_scope);
  static Result<WritableFile> OpenForAppend(const std::string& path,
                                            std::string failpoint_scope);

  /// Appends `size` bytes, honoring the "<scope>" failpoint.
  Status Append(const void* data, size_t size);
  template <typename T>
  Status AppendScalar(T value) {
    return Append(&value, sizeof(T));
  }

  /// fflush + fsync, honoring "<scope>.sync".
  Status Sync();

  /// Truncates the file back to `size` bytes (undo of a failed append so
  /// the next append cannot land after torn bytes). Flushes first.
  Status TruncateTo(uint64_t size);

  Status Close();

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  /// Bytes appended through this handle plus the preexisting length for
  /// OpenForAppend — i.e. the current logical file size.
  [[nodiscard]] uint64_t offset() const { return offset_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string scope_;
  uint64_t offset_ = 0;
};

/// Atomically replaces `to` with `from` (rename), honoring the
/// "<scope>.rename" failpoint. `from` must exist.
Status AtomicRename(const std::string& from, const std::string& to,
                    const std::string& failpoint_scope);

/// Size of `path` in bytes; NotFound if it does not exist.
Result<uint64_t> FileSize(const std::string& path);

/// Best-effort removal (missing file is OK).
void RemoveFileIfExists(const std::string& path);

}  // namespace vecube

#endif  // VECUBE_UTIL_IO_FILE_H_
