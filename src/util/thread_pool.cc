#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace vecube {

namespace {

// Shared state of one ParallelFor. Held by shared_ptr so helper tasks that
// are dequeued after the loop has already finished remain safe: they claim
// an out-of-range chunk index and return without touching `fn`.
struct ForLoop {
  uint64_t n = 0;
  uint64_t chunk = 0;
  uint64_t num_chunks = 0;
  const std::function<void(uint64_t, uint64_t)>* fn = nullptr;
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

// Claims and runs chunks until none remain. `fn` is only dereferenced for
// a claimed in-range chunk, and the issuing thread cannot return from
// ParallelFor until that chunk's completion is counted, so the pointer
// stays valid for every dereference.
void RunChunks(ForLoop* loop) {
  for (;;) {
    const uint64_t index = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= loop->num_chunks) return;
    const uint64_t begin = index * loop->chunk;
    const uint64_t end = std::min(loop->n, begin + loop->chunk);
    (*loop->fn)(begin, end);
    if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        loop->num_chunks) {
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->cv.notify_all();
    }
  }
}

}  // namespace

uint32_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreadCount() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.back());
      tasks_.pop_back();
    }
    task();
  }
}

void ThreadPool::ParallelFor(uint64_t n, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const uint64_t max_chunks = (n + grain - 1) / grain;
  if (num_threads_ <= 1 || max_chunks <= 1) {
    fn(0, n);
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  // Several chunks per lane smooths imbalance without shrinking chunks
  // below the grain.
  const uint64_t target_chunks =
      std::min<uint64_t>(max_chunks, uint64_t{num_threads_} * 4);
  loop->n = n;
  loop->chunk = (n + target_chunks - 1) / target_chunks;
  loop->num_chunks = (n + loop->chunk - 1) / loop->chunk;
  loop->fn = &fn;

  const uint64_t helpers =
      std::min<uint64_t>(workers_.size(), loop->num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([loop] { RunChunks(loop.get()); });
    }
  }
  cv_.notify_all();

  RunChunks(loop.get());
  std::unique_lock<std::mutex> lock(loop->mu);
  loop->cv.wait(lock, [&loop] {
    return loop->done.load(std::memory_order_acquire) == loop->num_chunks;
  });
}

}  // namespace vecube
