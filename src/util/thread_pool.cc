#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "util/sync.h"

namespace vecube {

namespace {

// Shared state of one ParallelFor. Held by shared_ptr so helper tasks that
// are dequeued after the loop has already finished remain safe: they claim
// an out-of-range chunk index and return without touching `fn`.
struct ForLoop {
  uint64_t n = 0;
  uint64_t chunk = 0;
  uint64_t num_chunks = 0;
  const std::function<void(uint64_t, uint64_t)>* fn = nullptr;
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> done{0};
  Mutex mu;
  CondVar cv;
};

// Claims and runs chunks until none remain. `fn` is only dereferenced for
// a claimed in-range chunk, and the issuing thread cannot return from
// ParallelFor until that chunk's completion is counted, so the pointer
// stays valid for every dereference.
void RunChunks(ForLoop* loop) {
  for (;;) {
    // order: relaxed — chunk claiming only needs atomicity (each index is
    // claimed exactly once); the claimed data is partitioned by index, so
    // no claimed-chunk data crosses threads via this counter.
    const uint64_t index = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= loop->num_chunks) return;
    const uint64_t begin = index * loop->chunk;
    const uint64_t end = std::min(loop->n, begin + loop->chunk);
    (*loop->fn)(begin, end);
    // order: acq_rel — the release side publishes this chunk's writes to
    // the issuing thread, whose acquire load of `done` in ParallelFor
    // synchronizes with it before the loop returns; the acquire side
    // chains earlier chunks' publications through intermediate workers.
    if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        loop->num_chunks) {
      MutexLock lock(loop->mu);
      loop->cv.NotifyAll();
    }
  }
}

}  // namespace

uint32_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(num_threads == 0 ? DefaultThreadCount() : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.back());
      tasks_.pop_back();
    }
    task();
  }
}

void ThreadPool::ParallelFor(uint64_t n, uint64_t grain,
                             const std::function<void(uint64_t, uint64_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const uint64_t max_chunks = (n + grain - 1) / grain;
  if (num_threads_ <= 1 || max_chunks <= 1) {
    fn(0, n);
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  // Several chunks per lane smooths imbalance without shrinking chunks
  // below the grain.
  const uint64_t target_chunks =
      std::min<uint64_t>(max_chunks, uint64_t{num_threads_} * 4);
  loop->n = n;
  loop->chunk = (n + target_chunks - 1) / target_chunks;
  loop->num_chunks = (n + loop->chunk - 1) / loop->chunk;
  loop->fn = &fn;

  const uint64_t helpers =
      std::min<uint64_t>(workers_.size(), loop->num_chunks - 1);
  {
    MutexLock lock(mu_);
    for (uint64_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([loop] { RunChunks(loop.get()); });
    }
  }
  cv_.NotifyAll();

  RunChunks(loop.get());
  MutexLock lock(loop->mu);
  // Completion is a pure barrier (helpers always drain their chunks), so
  // this wait terminates by construction; the timed slices exist only to
  // keep every wait on the serving path bounded (vecube_check rule
  // no-unbounded-wait) — each timeout just re-checks the counter.
  //
  // order: acquire — pairs with the acq_rel fetch_add in RunChunks; once
  // every chunk is counted, all chunk writes are visible to this thread.
  while (loop->done.load(std::memory_order_acquire) != loop->num_chunks) {
    loop->cv.WaitFor(loop->mu, std::chrono::milliseconds(100));
  }
}

}  // namespace vecube
