// ThreadPool: a small fixed-size pool with a chunk-claiming ParallelFor.
//
// Design constraints, in order:
//  * Deterministic results. ParallelFor partitions [0, n) into disjoint
//    chunks; callers must make each chunk's work independent, so the
//    output is bit-identical to the serial loop regardless of scheduling.
//  * Deadlock-free nesting. The calling thread always participates in its
//    own loop and claims chunks until none remain, so a ParallelFor issued
//    from inside a pool task completes even when every worker is busy —
//    helper tasks are pure opportunism. This is what lets the assembly
//    engine fan out over batch targets while the Haar kernels underneath
//    fan out over row blocks on the same pool.
//  * No work stealing, no per-thread queues: one mutex-protected task
//    list. The kernels this pool serves run for microseconds to
//    milliseconds per chunk, so queue contention is noise.

#ifndef VECUBE_UTIL_THREAD_POOL_H_
#define VECUBE_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace vecube {

class ThreadPool {
 public:
  /// Hardware concurrency, at least 1.
  static uint32_t DefaultThreadCount();

  /// A pool of `num_threads` execution lanes: the calling thread plus
  /// `num_threads - 1` workers. 0 means DefaultThreadCount().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] uint32_t num_threads() const { return num_threads_; }

  /// Invokes fn(begin, end) over disjoint chunks covering [0, n), each at
  /// least `grain` items (except possibly the last). Runs inline when the
  /// pool is single-threaded or the range is below the grain. Blocks until
  /// every chunk has completed. Safe to call from inside a pool task.
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t, uint64_t)>& fn)
      VECUBE_EXCLUDES(mu_);

 private:
  void WorkerLoop() VECUBE_EXCLUDES(mu_);

  uint32_t num_threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::vector<std::function<void()>> tasks_ VECUBE_GUARDED_BY(mu_);
  bool stop_ VECUBE_GUARDED_BY(mu_) = false;
};

}  // namespace vecube

#endif  // VECUBE_UTIL_THREAD_POOL_H_
