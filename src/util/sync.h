// Annotated synchronization primitives: the only lock types allowed in
// src/ (enforced by tools/vecube_check.py rule `naked-sync-primitives`).
//
// The wrappers carry Clang thread-safety capability annotations, so with
// `-DVECUBE_THREAD_SAFETY=ON` (Clang only) the compiler proves, per
// translation unit, that:
//   * every field marked VECUBE_GUARDED_BY(mu) is touched only with `mu`
//     held (and pointer targets via VECUBE_PT_GUARDED_BY);
//   * every function marked VECUBE_REQUIRES(mu) is called only with `mu`
//     held, and VECUBE_EXCLUDES(mu) only with it released (deadlock ban);
//   * locks are released on every path (RAII types are the norm; the raw
//     Lock/Unlock pair exists for the few adopt/split-scope cases).
// On non-Clang compilers the annotations compile away and the wrappers
// are zero-cost shims over the std primitives.
//
// Escape hatch: VECUBE_NO_THREAD_SAFETY_ANALYSIS disables the analysis
// for one function. Every use must be listed (file + function + reason)
// in tools/thread_safety_allowlist.txt; vecube_check fails otherwise.
//
// Lock hierarchy and per-component contracts: DESIGN.md §12.

#ifndef VECUBE_UTIL_SYNC_H_
#define VECUBE_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VECUBE_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef VECUBE_TS_ATTR
#define VECUBE_TS_ATTR(x)  // compiles away outside Clang
#endif

#define VECUBE_CAPABILITY(x) VECUBE_TS_ATTR(capability(x))
#define VECUBE_SCOPED_CAPABILITY VECUBE_TS_ATTR(scoped_lockable)
#define VECUBE_GUARDED_BY(x) VECUBE_TS_ATTR(guarded_by(x))
#define VECUBE_PT_GUARDED_BY(x) VECUBE_TS_ATTR(pt_guarded_by(x))
#define VECUBE_REQUIRES(...) VECUBE_TS_ATTR(requires_capability(__VA_ARGS__))
#define VECUBE_REQUIRES_SHARED(...) \
  VECUBE_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define VECUBE_ACQUIRE(...) VECUBE_TS_ATTR(acquire_capability(__VA_ARGS__))
#define VECUBE_ACQUIRE_SHARED(...) \
  VECUBE_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define VECUBE_RELEASE(...) VECUBE_TS_ATTR(release_capability(__VA_ARGS__))
#define VECUBE_RELEASE_SHARED(...) \
  VECUBE_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define VECUBE_TRY_ACQUIRE(...) \
  VECUBE_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define VECUBE_EXCLUDES(...) VECUBE_TS_ATTR(locks_excluded(__VA_ARGS__))
#define VECUBE_ACQUIRED_BEFORE(...) VECUBE_TS_ATTR(acquired_before(__VA_ARGS__))
#define VECUBE_ACQUIRED_AFTER(...) VECUBE_TS_ATTR(acquired_after(__VA_ARGS__))
#define VECUBE_RETURN_CAPABILITY(x) VECUBE_TS_ATTR(lock_returned(x))
#define VECUBE_ASSERT_CAPABILITY(x) VECUBE_TS_ATTR(assert_capability(x))
#define VECUBE_NO_THREAD_SAFETY_ANALYSIS \
  VECUBE_TS_ATTR(no_thread_safety_analysis)

namespace vecube {

class CondVar;

/// Exclusive mutex. Prefer the RAII MutexLock; the raw Lock/Unlock pair
/// exists for split-scope protocols (e.g. ViewCache flight hand-off).
class VECUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VECUBE_ACQUIRE() { mu_.lock(); }
  void Unlock() VECUBE_RELEASE() { mu_.unlock(); }
  bool TryLock() VECUBE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex for read-mostly registries.
class VECUBE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() VECUBE_ACQUIRE() { mu_.lock(); }
  void Unlock() VECUBE_RELEASE() { mu_.unlock(); }
  void LockShared() VECUBE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() VECUBE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex.
class VECUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VECUBE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() VECUBE_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class VECUBE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) VECUBE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() VECUBE_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (reader side).
class VECUBE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) VECUBE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() VECUBE_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. Wait atomically releases and
/// reacquires the mutex; the analysis models the caller as holding it
/// throughout, which is sound for the guarded-field checks we rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) VECUBE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      VECUBE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vecube

#endif  // VECUBE_UTIL_SYNC_H_
