#include "util/crc32c.h"

#include <array>

namespace vecube {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes; slice-by-4.
  std::array<std::array<uint32_t, 256>, 4> t;
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][b] = crc;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    for (size_t k = 1; k < 4; ++k) {
      tables.t[k][b] =
          (tables.t[k - 1][b] >> 8) ^ tables.t[0][tables.t[k - 1][b] & 0xFFu];
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace vecube
