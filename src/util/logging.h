// CHECK/DCHECK macros with streamed context (Abseil/glog idiom, minimal).
//
//   VECUBE_CHECK(cond);                       // abort with the expression
//   VECUBE_CHECK(cond) << "ctx " << value;    // abort with expression + msg
//   VECUBE_CHECK_OK(status) << "ctx";         // abort unless status.ok()
//   VECUBE_DCHECK(cond) << "ctx";             // debug-only; in NDEBUG the
//                                             // condition is compiled but
//                                             // NEVER evaluated (no side
//                                             // effects run)
//
// CHECK aborts on violated invariants in all builds. The streamed message
// is lazily built: operands after `<<` are only evaluated when the check
// fails, so a passing check costs one branch.

#ifndef VECUBE_UTIL_LOGGING_H_
#define VECUBE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/status.h"

namespace vecube::internal {

/// Collects the streamed context of a failing check and aborts in its
/// destructor. Only ever constructed on the failure path.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* expr, const char* file,
                     int line)
      : kind_(kind), expr_(expr), file_(file), line_(line) {}
  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  /// Prints "<kind> failed: <expr> at <file>:<line>[: <message>]" to
  /// stderr and aborts.
  [[noreturn]] ~CheckFailureStream() {
    const std::string message = stream_.str();
    if (message.empty()) {
      std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind_, expr_, file_,
                   line_);
    } else {
      std::fprintf(stderr, "%s failed: %s at %s:%d: %s\n", kind_, expr_,
                   file_, line_, message.c_str());
    }
    std::fflush(stderr);
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* kind_;
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a stream expression so the ternary in VECUBE_CHECK has type
/// void on both arms. `&&` binds looser than `<<`, so every streamed
/// operand attaches to the CheckFailureStream first.
struct Voidify {
  void operator&&(const std::ostream&) const {}
};

}  // namespace vecube::internal

/// Aborts (in every build type) when `cond` is false. Additional context
/// may be streamed: VECUBE_CHECK(n > 0) << "n=" << n;
#define VECUBE_CHECK(cond)                                        \
  (cond) ? (void)0                                                \
         : ::vecube::internal::Voidify() &&                       \
               ::vecube::internal::CheckFailureStream(            \
                   "CHECK", #cond, __FILE__, __LINE__)            \
                   .stream()

/// Aborts unless `expr` (a Status, evaluated exactly once) is OK; the
/// status's ToString() opens the failure message and further context may
/// be streamed after the macro. The failure branch never loops: the
/// stream's destructor aborts.
#define VECUBE_CHECK_OK(expr)                                         \
  for (const ::vecube::Status& _vecube_check_ok_st = (expr);          \
       !_vecube_check_ok_st.ok();)                                   \
  ::vecube::internal::CheckFailureStream("CHECK_OK", #expr, __FILE__, \
                                         __LINE__)                   \
          .stream()                                                  \
      << _vecube_check_ok_st.ToString() << " "

#ifdef NDEBUG
// `while (false)` keeps the condition (and any streamed operands)
// compiled — typos still break the build — but guarantees they are never
// evaluated, so side effects inside VECUBE_DCHECK vanish in NDEBUG.
#define VECUBE_DCHECK(cond) \
  while (false) VECUBE_CHECK(cond)
#else
#define VECUBE_DCHECK(cond) VECUBE_CHECK(cond)
#endif

#endif  // VECUBE_UTIL_LOGGING_H_
