// Minimal CHECK/DCHECK macros (Arrow DCHECK idiom). CHECK aborts on
// violated invariants in all builds; DCHECK compiles out in NDEBUG.

#ifndef VECUBE_UTIL_LOGGING_H_
#define VECUBE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace vecube::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace vecube::internal

#define VECUBE_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) ::vecube::internal::CheckFailed(#cond, __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define VECUBE_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define VECUBE_DCHECK(cond) VECUBE_CHECK(cond)
#endif

#endif  // VECUBE_UTIL_LOGGING_H_
