// Result<T>: a value or an error Status (Arrow's arrow::Result idiom).

#ifndef VECUBE_UTIL_RESULT_H_
#define VECUBE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace vecube {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (asserted in debug builds). [[nodiscard]]:
/// a discarded Result hides both the error and the computed value.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` is invalid.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out, or returns `fallback` if errored.
  T ValueOr(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ present
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define VECUBE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define VECUBE_ASSIGN_OR_RETURN(lhs, expr)                                   \
  VECUBE_ASSIGN_OR_RETURN_IMPL(VECUBE_CONCAT_(_res_, __LINE__), lhs, expr)

#define VECUBE_CONCAT_INNER_(a, b) a##b
#define VECUBE_CONCAT_(a, b) VECUBE_CONCAT_INNER_(a, b)

}  // namespace vecube

#endif  // VECUBE_UTIL_RESULT_H_
