// Deterministic failpoint injection for crash-consistency testing.
//
// The durability layer (snapshot writer, WAL) instruments every syscall
// boundary with a named failpoint. Tests arm a failpoint with an action
// and a skip count; the (skip+1)-th time execution reaches that point the
// action fires — an injected EIO, a short write that leaves a torn
// record on disk, or a silent bit flip. Killing the process at a write
// is simulated by arming kError (the partial file state is exactly what
// a crash would leave) and then abandoning the in-memory objects.
//
// The registry also counts hits when tracing is enabled, so a test can
// run a clean save/append/checkpoint cycle once, enumerate every
// (failpoint, hit-index) pair that executed, and then prove crash
// recovery at each of them — no failpoint silently escapes coverage.
//
// Unarmed cost is one relaxed atomic load per instrumented call site;
// production binaries never arm anything.

#ifndef VECUBE_UTIL_FAILPOINT_H_
#define VECUBE_UTIL_FAILPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vecube {

/// What an armed failpoint does when it fires.
struct FailpointAction {
  enum class Kind : uint8_t {
    kError,       ///< fail the operation without touching the file
    kShortWrite,  ///< write only `short_bytes` of the buffer, then fail
    kBitFlip,     ///< flip `flip_bit` (mod buffer bits) and keep going
    kDelay,       ///< stall the caller for `delay_ms` (chaos/latency tests)
  };
  Kind kind = Kind::kError;
  uint64_t short_bytes = 0;  ///< kShortWrite: bytes persisted before failing
  uint64_t flip_bit = 0;     ///< kBitFlip: bit index within the buffer
  uint64_t delay_ms = 0;     ///< kDelay: stall duration in milliseconds
};

/// Process-wide failpoint registry. All methods are thread-safe.
class Failpoints {
 public:
  /// Arms `name`: the action fires on the (skip+1)-th Hit(), `hits`
  /// times in a row (default one-shot), then the failpoint disarms
  /// itself. Re-arming replaces any previous arming of the same name.
  static void Arm(const std::string& name, FailpointAction action,
                  uint64_t skip = 0, uint64_t hits = 1);
  static void Disarm(const std::string& name);
  static void DisarmAll();

  /// Called by instrumented code. Returns the action iff `name` is armed
  /// and its skip count is exhausted. Counts the hit when tracing.
  static std::optional<FailpointAction> Hit(const std::string& name);

  /// Delay-injection helper for the serving chaos tests: Hit(name), and
  /// if the armed action is kDelay, stall the calling thread for its
  /// delay_ms before returning it. Non-delay actions are returned
  /// un-slept for the call site to interpret (e.g. kError -> fail the
  /// fill). Unarmed cost is identical to Hit(): one relaxed load.
  static std::optional<FailpointAction> HitWithDelay(const std::string& name);

  /// Hit tracing: enables per-name counting so tests can enumerate every
  /// failpoint a code path executes. Counts reset when tracing starts.
  static void StartTrace();
  static void StopTrace();
  /// (name, hits) pairs observed since StartTrace(), sorted by name.
  static std::vector<std::pair<std::string, uint64_t>> TraceCounts();
};

}  // namespace vecube

#endif  // VECUBE_UTIL_FAILPOINT_H_
