#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "util/sync.h"

namespace vecube {

namespace {

struct Armed {
  FailpointAction action;
  uint64_t skip = 0;
  uint64_t hits = 1;
};

struct Registry {
  Mutex mu;
  std::map<std::string, Armed> armed VECUBE_GUARDED_BY(mu);
  std::map<std::string, uint64_t> counts VECUBE_GUARDED_BY(mu);
  bool tracing VECUBE_GUARDED_BY(mu) = false;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

// Fast path: instrumented call sites pay one acquire load when nothing is
// armed and tracing is off. g_active is a conservative hint: stores happen
// only under registry.mu, and a stale 1 merely sends Hit() to the slow
// path, where the mutex gives the authoritative answer.
std::atomic<int> g_active{0};

}  // namespace

void Failpoints::Arm(const std::string& name, FailpointAction action,
                     uint64_t skip, uint64_t hits) {
  if (hits == 0) hits = 1;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  const bool fresh =
      registry.armed.emplace(name, Armed{action, skip, hits}).second;
  if (!fresh) registry.armed[name] = Armed{action, skip, hits};
  // order: release — pairs with the acquire load in Hit(); a thread that
  // observes 1 and takes the slow path sees this arming under the mutex.
  g_active.store(1, std::memory_order_release);
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.armed.erase(name);
  if (registry.armed.empty() && !registry.tracing) {
    // order: release — keeps the store ordered after the erase above for
    // slow-path readers; a racing fast path that still sees 1 is benign
    // (it re-checks under the mutex).
    g_active.store(0, std::memory_order_release);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.armed.clear();
  // order: release — same contract as Disarm: 0 may lag, never leads.
  if (!registry.tracing) g_active.store(0, std::memory_order_release);
}

std::optional<FailpointAction> Failpoints::Hit(const std::string& name) {
  // order: acquire — pairs with the release stores in Arm/StartTrace so a
  // reader that sees 1 also sees the arming once it takes registry.mu; a
  // reader that sees a stale 0 misses at most an arming that raced this
  // call, which tests serialize against anyway.
  if (g_active.load(std::memory_order_acquire) == 0) return std::nullopt;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  if (registry.tracing) ++registry.counts[name];
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return std::nullopt;
  if (it->second.skip > 0) {
    --it->second.skip;
    return std::nullopt;
  }
  const FailpointAction action = it->second.action;
  if (--it->second.hits == 0) registry.armed.erase(it);  // fired out
  if (registry.armed.empty() && !registry.tracing) {
    // order: release — 0 may lag the erase; fast-path readers re-check
    // under the mutex before trusting it.
    g_active.store(0, std::memory_order_release);
  }
  return action;
}

std::optional<FailpointAction> Failpoints::HitWithDelay(
    const std::string& name) {
  std::optional<FailpointAction> action = Hit(name);
  if (action.has_value() && action->kind == FailpointAction::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action->delay_ms));
  }
  return action;
}

void Failpoints::StartTrace() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.tracing = true;
  registry.counts.clear();
  // order: release — pairs with the acquire load in Hit(), as in Arm().
  g_active.store(1, std::memory_order_release);
}

void Failpoints::StopTrace() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.tracing = false;
  // order: release — same lag-not-lead contract as Disarm.
  if (registry.armed.empty()) g_active.store(0, std::memory_order_release);
}

std::vector<std::pair<std::string, uint64_t>> Failpoints::TraceCounts() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  std::vector<std::pair<std::string, uint64_t>> out(registry.counts.begin(),
                                                    registry.counts.end());
  return out;
}

}  // namespace vecube
