#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

namespace vecube {

namespace {

struct Armed {
  FailpointAction action;
  uint64_t skip = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed> armed;
  std::map<std::string, uint64_t> counts;
  bool tracing = false;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

// Fast path: instrumented call sites pay one relaxed load when nothing is
// armed and tracing is off.
std::atomic<int> g_active{0};

}  // namespace

void Failpoints::Arm(const std::string& name, FailpointAction action,
                     uint64_t skip) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const bool fresh = registry.armed.emplace(name, Armed{action, skip}).second;
  if (!fresh) registry.armed[name] = Armed{action, skip};
  g_active.store(1, std::memory_order_release);
}

void Failpoints::Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.erase(name);
  if (registry.armed.empty() && !registry.tracing) {
    g_active.store(0, std::memory_order_release);
  }
}

void Failpoints::DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.armed.clear();
  if (!registry.tracing) g_active.store(0, std::memory_order_release);
}

std::optional<FailpointAction> Failpoints::Hit(const std::string& name) {
  if (g_active.load(std::memory_order_acquire) == 0) return std::nullopt;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.tracing) ++registry.counts[name];
  auto it = registry.armed.find(name);
  if (it == registry.armed.end()) return std::nullopt;
  if (it->second.skip > 0) {
    --it->second.skip;
    return std::nullopt;
  }
  const FailpointAction action = it->second.action;
  registry.armed.erase(it);  // one-shot
  if (registry.armed.empty() && !registry.tracing) {
    g_active.store(0, std::memory_order_release);
  }
  return action;
}

void Failpoints::StartTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.tracing = true;
  registry.counts.clear();
  g_active.store(1, std::memory_order_release);
}

void Failpoints::StopTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.tracing = false;
  if (registry.armed.empty()) g_active.store(0, std::memory_order_release);
}

std::vector<std::pair<std::string, uint64_t>> Failpoints::TraceCounts() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::pair<std::string, uint64_t>> out(registry.counts.begin(),
                                                    registry.counts.end());
  return out;
}

}  // namespace vecube
