// ViewCache: concurrent, benefit-weighted memoization of assembled view
// element tensors — the serving layer in front of dynamic assembly.
//
// The paper's cost/benefit model turned into a replacement policy: every
// resident entry carries the Procedure-3 assembly cost T_n it saved (the
// add/subtract operations a cache miss would spend re-assembling it) and
// an exponentially decayed hit weight (the same decayed-frequency
// estimate AccessTracker keeps for the selection loop). The eviction
// victim is the entry minimizing
//
//   score = decayed_hit_weight * (1 + T_n)
//
// i.e. we evict what is cold AND cheap to rebuild, and keep what is hot
// or expensive — exactly the benefit metric Section 5 optimizes, applied
// to cache residency instead of materialization.
//
// Concurrency: the key space is sharded by ElementId hash; each shard is
// an independently locked map, so readers on different shards never
// contend. Entries hand out shared_ptr<const Tensor>; invalidation drops
// the cache's reference but in-flight readers keep theirs, so a flush
// concurrent with a lookup is safe and the reader sees a complete,
// internally consistent tensor (never a torn one).
//
// Invalidation model (see DESIGN.md §10): every view element is a linear
// functional of the data cube, so a single point delta stales EVERY
// cached tensor — delta hooks are a wholesale flush, not a per-key
// invalidation. Reconfiguration/optimization swap the materialized set,
// changing every entry's rebuild cost, so they flush too.

#ifndef VECUBE_SERVE_VIEW_CACHE_H_
#define VECUBE_SERVE_VIEW_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/element_id.h"
#include "cube/tensor.h"

namespace vecube {

struct ViewCacheOptions {
  /// Consumed by the embedding layers (OlapSession, DynamicAssembler):
  /// when false they do not construct a cache at all. A directly
  /// constructed ViewCache is always live.
  bool enabled = false;
  /// Total resident-data budget across all shards, in bytes of tensor
  /// payload. Entries larger than capacity_bytes / shards are served but
  /// never retained.
  uint64_t capacity_bytes = uint64_t{64} << 20;
  /// Number of independently locked shards (>= 1).
  uint32_t shards = 8;
  /// Per-shard-access exponential decay of entry hit weights, in (0, 1].
  /// 1.0 = plain hit counting.
  double heat_decay = 0.98;
};

/// Aggregate serving counters, queryable from the session and dumped by
/// vecube_cli. A point-in-time snapshot across shards.
struct ServeMetrics {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t rejected_inserts = 0;  ///< entries too large to ever retain
  uint64_t evictions = 0;        ///< entries displaced by capacity pressure
  uint64_t invalidations = 0;    ///< entries dropped by invalidate/flush
  uint64_t entries = 0;          ///< currently resident
  uint64_t bytes_resident = 0;   ///< payload bytes currently resident
  /// Σ Procedure-3 cost over hits: assembly operations the cache saved.
  uint64_t assembly_ops_saved = 0;

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Sharded, thread-safe memoization of assembled element tensors. All
/// public methods are safe to call concurrently from any thread.
class ViewCache {
 public:
  explicit ViewCache(ViewCacheOptions options = {});

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// Returns the cached tensor for `id`, or null on a miss. A hit bumps
  /// the entry's decayed hit weight and credits its assembly cost to
  /// assembly_ops_saved.
  std::shared_ptr<const Tensor> Lookup(const ElementId& id);

  /// Caches `data` for `id` with its Procedure-3 assembly cost and
  /// returns a shared handle to it (also when the entry is too large to
  /// retain — the caller can still serve from the returned pointer).
  /// If `id` is already resident the existing tensor is kept (first
  /// writer wins; concurrent assemblies of one element are bit-identical
  /// by determinism) and returned. Evicts minimum-score entries in the
  /// target shard until the new entry fits.
  std::shared_ptr<const Tensor> Insert(const ElementId& id, Tensor data,
                                       uint64_t assembly_cost);

  /// Drops one entry if resident.
  void Invalidate(const ElementId& id);

  /// Wholesale flush — the delta / reconfiguration hook. Returns the
  /// number of entries dropped.
  uint64_t InvalidateAll();

  [[nodiscard]] ServeMetrics Metrics() const;

  [[nodiscard]] uint64_t capacity_bytes() const {
    return options_.capacity_bytes;
  }
  [[nodiscard]] uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

 private:
  struct Entry {
    std::shared_ptr<const Tensor> data;
    uint64_t assembly_cost = 0;
    uint64_t bytes = 0;
    double heat = 0.0;      ///< hit weight as of shard generation `touched`
    uint64_t touched = 0;   ///< shard generation of the last hit/insert
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ElementId, Entry, ElementIdHash> map;
    uint64_t bytes = 0;
    uint64_t generation = 0;  ///< one tick per lookup/insert in this shard
    // Counters, guarded by mu.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t rejected_inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t assembly_ops_saved = 0;
  };

  Shard& ShardFor(const ElementId& id);
  /// `entry`'s hit weight decayed to the shard's current generation.
  double DecayedHeat(const Shard& shard, const Entry& entry) const;
  /// Benefit score: decayed heat * (1 + assembly cost). Callers hold mu.
  double Score(const Shard& shard, const Entry& entry) const;
  /// Evicts minimum-score entries until `needed` more bytes fit in the
  /// shard budget. Callers hold mu.
  void EvictForLocked(Shard* shard, uint64_t needed);

  ViewCacheOptions options_;
  uint64_t shard_capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vecube

#endif  // VECUBE_SERVE_VIEW_CACHE_H_
