// ViewCache: concurrent, benefit-weighted memoization of assembled view
// element tensors — the serving layer in front of dynamic assembly.
//
// The paper's cost/benefit model turned into a replacement policy: every
// resident entry carries the Procedure-3 assembly cost T_n it saved (the
// add/subtract operations a cache miss would spend re-assembling it) and
// an exponentially decayed hit weight (the same decayed-frequency
// estimate AccessTracker keeps for the selection loop). The eviction
// victim is the entry minimizing
//
//   score = decayed_hit_weight * (1 + T_n)
//
// i.e. we evict what is cold AND cheap to rebuild, and keep what is hot
// or expensive — exactly the benefit metric Section 5 optimizes, applied
// to cache residency instead of materialization.
//
// Concurrency (DESIGN.md §10): the hit path is contention-free. Each
// shard publishes an immutable table of entries through an atomic
// pointer; readers pin a process-wide epoch (util/epoch.h), load the
// table, and record the hit with one relaxed fetch_add on the entry's
// own counter — no mutex, no shared_ptr refcount traffic, no shared
// mutable map. Writers (insert / evict / invalidate / flush) serialize
// on a per-shard mutex, copy-on-write the table, and retire the old
// version through the epoch limbo, so a reader holding a ReadHandle can
// never observe freed memory and never blocks a writer.
//
// Misses are single-flight: concurrent misses on one ElementId coalesce
// onto a single assembly. LookupOrBegin() returns either a hit, a leader
// ticket (the caller assembles and publishes via CompleteFill), or a
// follower ticket (WaitFill blocks until the leader finishes). The
// leader's ticket carries the shard's flush epoch from before the
// assembly started; a flush (InvalidateAll) that lands mid-assembly
// bumps the epoch, and the completed fill is then served to the waiters
// whose lookups began before the flush but is NOT retained — a stale
// pre-flush tensor can never be re-inserted and served to later queries.
//
// Invalidation model: every view element is a linear functional of the
// data cube, so a single point delta stales EVERY cached tensor — delta
// hooks are a wholesale flush, not a per-key invalidation.
// Reconfiguration/optimization swap the materialized set, changing every
// entry's rebuild cost, so they flush too.

#ifndef VECUBE_SERVE_VIEW_CACHE_H_
#define VECUBE_SERVE_VIEW_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/element_id.h"
#include "cube/tensor.h"
#include "util/epoch.h"
#include "util/query_context.h"
#include "util/status.h"
#include "util/sync.h"

namespace vecube {

struct ViewCacheOptions {
  /// Consumed by the embedding layers (OlapSession, DynamicAssembler):
  /// when false they do not construct a cache at all. A directly
  /// constructed ViewCache is always live.
  bool enabled = false;
  /// Total resident-data budget across all shards, in bytes of tensor
  /// payload. Entries larger than capacity_bytes / shards are served but
  /// never retained.
  uint64_t capacity_bytes = uint64_t{64} << 20;
  /// Number of independently locked shards (>= 1). Writers on different
  /// shards never contend; readers never contend at all.
  uint32_t shards = 8;
  /// Per-shard-write exponential decay of entry hit weights, in (0, 1].
  /// 1.0 = plain hit counting. Applied lazily: hits accumulate in a
  /// lock-free per-entry counter and are folded into the decayed weight
  /// when a writer next touches the shard (hits themselves never touch
  /// shared decay state — that is what makes the hit path contention-free).
  double heat_decay = 0.98;
};

/// Aggregate serving counters, queryable from the session and dumped by
/// vecube_cli. A point-in-time snapshot across shards. Counters are
/// exact: a hit recorded by any reader is eventually folded into `hits`
/// and never dropped, even across concurrent flushes (the fold happens
/// only after epoch reclamation proves no reader still holds the entry).
struct ServeMetrics {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Queries served by waiting on another caller's in-flight assembly of
  /// the same element (single-flight coalescing). Counted inside `hits`.
  uint64_t coalesced_hits = 0;
  uint64_t insertions = 0;
  uint64_t rejected_inserts = 0;  ///< entries too large to ever retain
  /// Completed fills dropped because a flush intervened between the
  /// miss and the insert: the answer was served but not retained.
  uint64_t stale_fills = 0;
  uint64_t evictions = 0;        ///< entries displaced by capacity pressure
  uint64_t invalidations = 0;    ///< entries dropped by invalidate/flush
  uint64_t entries = 0;          ///< currently resident
  uint64_t bytes_resident = 0;   ///< payload bytes currently resident
  /// Σ Procedure-3 cost over hits: assembly operations the cache saved.
  uint64_t assembly_ops_saved = 0;
  /// Σ Procedure-3 cost over fills: assembly operations actually spent by
  /// callers populating the cache. With single-flight coalescing this is
  /// thread-count-invariant, and
  ///   assembly_ops_saved + assembly_ops_executed == Σ per-query cost
  /// holds at every concurrency level (each query is exactly one of:
  /// hit, coalesced hit, or leader fill).
  uint64_t assembly_ops_executed = 0;

  // Robustness counters (DESIGN.md §13), recorded by the serving layers
  // via the Record* hooks below. Cacheless sessions report zeroes.
  uint64_t deadline_exceeded = 0;  ///< queries that ran out of deadline
  uint64_t shed = 0;               ///< queries refused by admission control
  uint64_t degraded = 0;           ///< queries answered approximately
  uint64_t follower_retries = 0;   ///< WaitFill retries after leader aborts

  [[nodiscard]] double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Sharded, thread-safe memoization of assembled element tensors. All
/// public methods are safe to call concurrently from any thread (but see
/// the ReadHandle thread-affinity note).
class ViewCache {
 private:
  struct Flight;
  struct Entry;
  struct Table;
  struct Shard;

 public:
  explicit ViewCache(ViewCacheOptions options = {});
  ~ViewCache();

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// A zero-refcount, epoch-pinned view of a cached tensor. While the
  /// handle lives, the tensor cannot be reclaimed (writers retire it
  /// into the epoch limbo instead of freeing it). Release promptly —
  /// a long-lived handle delays memory reclamation, though it never
  /// blocks writers. Must be destroyed on the thread that looked it up.
  class ReadHandle {
   public:
    ReadHandle() noexcept = default;
    ReadHandle(ReadHandle&&) noexcept = default;
    ReadHandle& operator=(ReadHandle&&) noexcept = default;
    ReadHandle(const ReadHandle&) = delete;
    ReadHandle& operator=(const ReadHandle&) = delete;

    explicit operator bool() const { return data_ != nullptr; }
    [[nodiscard]] const Tensor* get() const { return data_; }
    const Tensor& operator*() const { return *data_; }
    const Tensor* operator->() const { return data_; }

   private:
    friend class ViewCache;
    ReadHandle(EpochDomain::Pin pin, const Tensor* data) noexcept
        : pin_(std::move(pin)), data_(data) {}

    EpochDomain::Pin pin_;
    const Tensor* data_ = nullptr;
  };

  /// Permission to fill one element, handed out by LookupOrBegin() on a
  /// miss. Exactly one concurrent caller per ElementId is the leader
  /// (it must call CompleteFill or AbortFill); the rest are followers
  /// (they call WaitFill).
  class FillTicket {
   public:
    FillTicket() noexcept = default;
    FillTicket(FillTicket&&) noexcept = default;
    FillTicket& operator=(FillTicket&&) noexcept = default;
    FillTicket(const FillTicket&) = delete;
    FillTicket& operator=(const FillTicket&) = delete;

    [[nodiscard]] bool valid() const { return flight_ != nullptr; }
    [[nodiscard]] bool leader() const { return leader_; }

   private:
    friend class ViewCache;
    std::shared_ptr<Flight> flight_;
    ElementId id_;
    uint64_t flush_epoch_ = 0;
    bool leader_ = false;
  };

  /// Outcome of LookupOrBegin: exactly one of `hit` / `fill` is set.
  struct LookupOutcome {
    ReadHandle hit;
    FillTicket fill;
  };

  /// Contention-free hit path: returns an epoch-pinned view of the
  /// cached tensor, or an empty handle on a miss. A hit bumps the
  /// entry's lock-free hit counter (folded into decayed heat and
  /// assembly_ops_saved by the next writer / Metrics() call).
  [[nodiscard]] ReadHandle LookupPinned(const ElementId& id);

  /// Compatibility hit path: like LookupPinned but hands out a
  /// shared_ptr (one refcount bump; the handle may outlive the cache
  /// entry and be held indefinitely). Null on a miss.
  std::shared_ptr<const Tensor> Lookup(const ElementId& id);

  /// Single-flight entry point: a hit returns a pinned handle; the first
  /// concurrent miss per id returns a leader ticket (the caller must
  /// assemble and then CompleteFill/AbortFill); later misses on the same
  /// id return follower tickets for WaitFill. Only the leader's miss is
  /// counted in `misses`.
  LookupOutcome LookupOrBegin(const ElementId& id);

  /// Publishes the leader's assembly result: retains it (unless a flush
  /// intervened since LookupOrBegin — then it is a stale fill and only
  /// served, not retained), wakes all followers, and returns a shared
  /// handle for the leader's own answer.
  std::shared_ptr<const Tensor> CompleteFill(FillTicket ticket, Tensor data,
                                             uint64_t assembly_cost);

  /// Leader's failure path: wakes followers with `cause` (their WaitFill
  /// surfaces it; see FillWait). A leader-local cause (kDeadlineExceeded,
  /// kCancelled) invites followers with budget left to retry and become
  /// the next leader; any other status is the element's own failure and
  /// propagates. The default cause marks an unspecified leader failure.
  void AbortFill(FillTicket ticket,
                 Status cause = Status::Unavailable("fill aborted"));

  /// What a follower's wait resolved to. Exactly one of:
  ///  * status OK and data set — the leader completed (coalesced hit);
  ///  * status kDeadlineExceeded/kCancelled from the follower's own
  ///    context — the wait was cut short, the fill may still be running;
  ///  * the leader's abort cause — the fill failed (data null).
  struct FillWait {
    std::shared_ptr<const Tensor> data;
    Status status = Status::OK();
  };

  /// Follower wait: blocks until the leader completes or aborts, or the
  /// follower's own context expires — every wait is a bounded timed
  /// slice, never an unconditional block. On completion the query is a
  /// coalesced hit (credited with the entry's assembly cost in
  /// ops_saved).
  FillWait WaitFill(const FillTicket& ticket,
                    const QueryContext& ctx = QueryContext());

  /// Caches `data` for `id` with its Procedure-3 assembly cost and
  /// returns a shared handle to it (also when the entry is too large to
  /// retain — the caller can still serve from the returned pointer).
  /// If `id` is already resident the existing tensor is kept (first
  /// writer wins; concurrent assemblies of one element are bit-identical
  /// by determinism) and returned. Evicts minimum-score entries in the
  /// target shard until the new entry fits.
  std::shared_ptr<const Tensor> Insert(const ElementId& id, Tensor data,
                                       uint64_t assembly_cost);

  /// Drops one entry if resident.
  void Invalidate(const ElementId& id);

  /// Wholesale flush — the delta / reconfiguration hook. Returns the
  /// number of entries dropped. Bumps every shard's flush epoch so
  /// in-flight fills that began before the flush cannot re-insert their
  /// (now stale) tensors.
  uint64_t InvalidateAll();

  [[nodiscard]] ServeMetrics Metrics() const;

  /// Robustness accounting hooks for the serving layers (the cache is
  /// the one object every worker shares, so the counters live here).
  void RecordDeadlineExceeded() {
    // order: relaxed — standalone event counters; snapshot by Metrics().
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordShed() {
    // order: relaxed — see RecordDeadlineExceeded.
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordDegraded() {
    // order: relaxed — see RecordDeadlineExceeded.
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordFollowerRetry() {
    // order: relaxed — see RecordDeadlineExceeded.
    follower_retries_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t capacity_bytes() const {
    return options_.capacity_bytes;
  }
  [[nodiscard]] uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

 private:
  Shard& ShardFor(const ElementId& id);
  /// Fast-path probe shared by Lookup/LookupPinned/LookupOrBegin.
  /// `count_miss` controls whether a miss ticks the shard miss counter
  /// (LookupOrBegin counts the miss only when a leader is appointed).
  /// When `out_shared` is non-null a hit also copies the entry's owning
  /// pointer into it (the compat Lookup path; done under the pin, so the
  /// control block is alive).
  ReadHandle FindPinned(const ElementId& id, bool count_miss,
                        std::shared_ptr<const Tensor>* out_shared);
  /// Shared retain path for Insert and CompleteFill: dedup (first writer
  /// wins), oversized rejection, eviction, COW publish. Returns the
  /// tensor to serve (the retained one on dedup). Caller holds shard.mu.
  std::shared_ptr<const Tensor> InsertLocked(
      Shard* shard, const ElementId& id,
      std::shared_ptr<const Tensor> shared, uint64_t assembly_cost)
      VECUBE_REQUIRES(shard->mu);
  /// Folds an entry's pending lock-free hits into its decayed heat and
  /// the shard's persistent counters. Caller holds shard.mu.
  void FoldEntryLocked(Shard* shard, Entry* entry) const
      VECUBE_REQUIRES(shard->mu);
  /// Benefit score after folding: decayed heat * (1 + assembly cost).
  /// Caller holds shard.mu.
  [[nodiscard]] double ScoreLocked(const Shard& shard,
                                   const Entry& entry) const
      VECUBE_REQUIRES(shard.mu);
  /// Builds `next` from the shard's live table minus enough minimum-
  /// score victims that `needed` more bytes fit. Caller holds shard.mu.
  void EvictIntoLocked(Shard* shard, Table* next, uint64_t needed)
      VECUBE_REQUIRES(shard->mu);
  /// Publishes `next` as the shard's live table and retires the previous
  /// one (plus `removed` entries) into the epoch limbo. Caller holds
  /// shard.mu.
  void PublishLocked(Shard* shard, std::unique_ptr<Table> next,
                     std::vector<std::shared_ptr<Entry>> removed)
      VECUBE_REQUIRES(shard->mu);
  /// Frees limbo tables/entries whose retire epoch has been vacated by
  /// every reader, folding the final hit counts of dying entries into
  /// the shard counters. Caller holds shard.mu.
  void ReclaimLocked(Shard* shard) const VECUBE_REQUIRES(shard->mu);

  ViewCacheOptions options_;  ///< immutable after construction
  uint64_t shard_capacity_bytes_;  ///< immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> follower_retries_{0};
};

}  // namespace vecube

#endif  // VECUBE_SERVE_VIEW_CACHE_H_
