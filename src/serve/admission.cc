#include "serve/admission.h"

#include <algorithm>
#include <string>

namespace vecube {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
}

void AdmissionController::Permit::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

void AdmissionController::ReleaseSlot() {
  {
    MutexLock lock(mu_);
    --inflight_;
  }
  // All waiters wake: deadlines differ, so the nearest-deadline waiter is
  // not necessarily the one NotifyOne would pick.
  cv_.NotifyAll();
}

Result<AdmissionController::Permit> AdmissionController::Admit(
    const QueryContext& ctx) {
  MutexLock lock(mu_);
  if (shutdown_) {
    ++rejected_shutdown_;
    return Status::Unavailable("server shutting down");
  }
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    ++admitted_;
    return Permit(this);
  }
  if (queued_ >= options_.max_queue) {
    ++shed_;
    return Status::ResourceExhausted(
        "admission queue full; retry after " +
        std::to_string(options_.retry_after.count()) + "ms");
  }
  ++queued_;
  for (;;) {
    Status live = ctx.Check();
    if (!live.ok()) {
      --queued_;
      ++deadline_exceeded_;
      return live;
    }
    // Bounded slices: re-check the deadline every 100 ms at worst, so a
    // waiter can never be parked past its budget (no-unbounded-wait).
    const QueryContext::Clock::duration slice =
        std::min<QueryContext::Clock::duration>(
            std::chrono::milliseconds(100), ctx.remaining());
    cv_.WaitFor(mu_, slice);
    if (inflight_ < options_.max_inflight) {
      --queued_;
      ++inflight_;
      ++admitted_;
      return Permit(this);
    }
  }
}

void AdmissionController::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

bool AdmissionController::Drain(std::chrono::milliseconds timeout) {
  const QueryContext ctx = QueryContext::WithTimeout(timeout);
  MutexLock lock(mu_);
  while (inflight_ != 0 || queued_ != 0) {
    if (ctx.expired()) return false;
    const QueryContext::Clock::duration slice =
        std::min<QueryContext::Clock::duration>(
            std::chrono::milliseconds(100), ctx.remaining());
    cv_.WaitFor(mu_, slice);
  }
  return true;
}

AdmissionMetrics AdmissionController::Metrics() const {
  MutexLock lock(mu_);
  AdmissionMetrics metrics;
  metrics.admitted = admitted_;
  metrics.shed = shed_;
  metrics.deadline_exceeded = deadline_exceeded_;
  metrics.rejected_shutdown = rejected_shutdown_;
  metrics.inflight = inflight_;
  metrics.queued = queued_;
  return metrics;
}

}  // namespace vecube
