#include "serve/view_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vecube {

ViewCache::ViewCache(ViewCacheOptions options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.heat_decay <= 0.0 || options_.heat_decay > 1.0) {
    options_.heat_decay = 1.0;
  }
  shard_capacity_bytes_ = options_.capacity_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ViewCache::Shard& ViewCache::ShardFor(const ElementId& id) {
  return *shards_[ElementIdHash{}(id) % shards_.size()];
}

double ViewCache::DecayedHeat(const Shard& shard, const Entry& entry) const {
  if (options_.heat_decay >= 1.0 || entry.heat == 0.0) return entry.heat;
  const uint64_t gap = shard.generation - entry.touched;
  if (gap == 0) return entry.heat;
  return entry.heat *
         std::pow(options_.heat_decay, static_cast<double>(gap));
}

double ViewCache::Score(const Shard& shard, const Entry& entry) const {
  // Benefit of keeping the entry: expected near-future hits (the decayed
  // hit weight) times what each hit saves (its Procedure-3 rebuild cost).
  // The +1 keeps free-to-rebuild entries ordered by heat among
  // themselves instead of collapsing to a zero tie.
  return DecayedHeat(shard, entry) *
         (1.0 + static_cast<double>(entry.assembly_cost));
}

void ViewCache::EvictForLocked(Shard* shard, uint64_t needed) {
  while (!shard->map.empty() &&
         shard->bytes + needed > shard_capacity_bytes_) {
    auto victim = shard->map.begin();
    double victim_score = Score(*shard, victim->second);
    for (auto it = std::next(shard->map.begin()); it != shard->map.end();
         ++it) {
      const double score = Score(*shard, it->second);
      if (score < victim_score) {
        victim = it;
        victim_score = score;
      }
    }
    shard->bytes -= victim->second.bytes;
    shard->map.erase(victim);
    ++shard->evictions;
  }
}

std::shared_ptr<const Tensor> ViewCache::Lookup(const ElementId& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.generation;
  auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  entry.heat = DecayedHeat(shard, entry) + 1.0;
  entry.touched = shard.generation;
  ++shard.hits;
  shard.assembly_ops_saved += entry.assembly_cost;
  return entry.data;
}

std::shared_ptr<const Tensor> ViewCache::Insert(const ElementId& id,
                                                Tensor data,
                                                uint64_t assembly_cost) {
  const uint64_t bytes = data.size() * sizeof(double);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.generation;
  auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    // First writer wins: assembly is deterministic, so a concurrent
    // duplicate insert carries bit-identical data; keep the shared copy.
    Entry& entry = it->second;
    entry.heat = DecayedHeat(shard, entry) + 1.0;
    entry.touched = shard.generation;
    return entry.data;
  }
  auto shared = std::make_shared<const Tensor>(std::move(data));
  if (bytes > shard_capacity_bytes_) {
    ++shard.rejected_inserts;
    return shared;
  }
  EvictForLocked(&shard, bytes);
  Entry entry;
  entry.data = shared;
  entry.assembly_cost = assembly_cost;
  entry.bytes = bytes;
  entry.heat = 1.0;
  entry.touched = shard.generation;
  shard.map.emplace(id, std::move(entry));
  shard.bytes += bytes;
  ++shard.insertions;
  return shared;
}

void ViewCache::Invalidate(const ElementId& id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) return;
  shard.bytes -= it->second.bytes;
  shard.map.erase(it);
  ++shard.invalidations;
}

uint64_t ViewCache::InvalidateAll() {
  uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->map.size();
    shard->invalidations += shard->map.size();
    shard->map.clear();
    shard->bytes = 0;
  }
  return dropped;
}

ServeMetrics ViewCache::Metrics() const {
  ServeMetrics metrics;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    metrics.hits += shard->hits;
    metrics.misses += shard->misses;
    metrics.insertions += shard->insertions;
    metrics.rejected_inserts += shard->rejected_inserts;
    metrics.evictions += shard->evictions;
    metrics.invalidations += shard->invalidations;
    metrics.entries += shard->map.size();
    metrics.bytes_resident += shard->bytes;
    metrics.assembly_ops_saved += shard->assembly_ops_saved;
  }
  return metrics;
}

}  // namespace vecube
