#include "serve/view_cache.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <utility>

namespace vecube {

// A resident element. Shared between successive table versions (a COW
// publish copies the pointer, not the entry), so the lock-free hit
// counter a reader bumps is the same object no matter which table
// version the reader loaded. Everything except `pending_hits` is either
// immutable after construction or guarded by the owning shard's mu.
struct ViewCache::Entry {
  std::shared_ptr<const Tensor> data;
  uint64_t assembly_cost = 0;
  uint64_t bytes = 0;
  /// Hits recorded since the last fold, bumped relaxed by readers.
  std::atomic<uint64_t> pending_hits{0};
  /// Decayed hit weight as of write-generation `folded_at` (mu).
  double folded_heat = 0.0;
  uint64_t folded_at = 0;
};

// One immutable published version of a shard's resident set. Readers
// reach it through Shard::live under an epoch pin; writers replace it
// wholesale and retire the old version through the limbo list.
struct ViewCache::Table {
  std::unordered_map<ElementId, std::shared_ptr<Entry>, ElementIdHash> map;
  uint64_t bytes = 0;
};

// One in-flight assembly, shared by its leader and all coalesced
// followers. `m`/`cv` are local to the flight — waiting followers never
// touch the shard lock until the result is ready. Lock order: a thread
// never holds `m` and a Shard::mu at once (completion writes the result
// after dropping the shard lock), so flight locks sit outside the shard
// tier of the hierarchy (DESIGN.md §12).
struct ViewCache::Flight {
  Mutex m;
  CondVar cv;
  bool done VECUBE_GUARDED_BY(m) = false;
  bool aborted VECUBE_GUARDED_BY(m) = false;
  std::shared_ptr<const Tensor> result VECUBE_GUARDED_BY(m);
  uint64_t assembly_cost VECUBE_GUARDED_BY(m) = 0;
  /// Why the leader aborted; surfaced to followers via WaitFill.
  Status error VECUBE_GUARDED_BY(m) = Status::OK();
};

struct ViewCache::Shard {
  // A retired table version plus the entries that publish removed,
  // destroyable once every reader epoch passes `tag`. Removed entries
  // ride here explicitly (not just inside the old table) so their final
  // pending hit counts can be folded exactly at reclaim time — after
  // which no reader can still bump them.
  struct Limbo {
    uint64_t tag = 0;
    std::unique_ptr<const Table> table;
    std::vector<std::shared_ptr<Entry>> dying;
  };

  mutable Mutex mu;
  /// The published resident set. Readers: acquire-load under an epoch
  /// pin (lock-free, so not VECUBE_GUARDED_BY). Writers: replaced only
  /// via PublishLocked while holding mu.
  std::atomic<const Table*> live{nullptr};
  /// Misses are recorded on the (lock-free) read path.
  std::atomic<uint64_t> misses{0};

  uint64_t generation VECUBE_GUARDED_BY(mu) = 0;   ///< write generation
  /// Bumped by InvalidateAll; stales in-flight fills.
  uint64_t flush_epoch VECUBE_GUARDED_BY(mu) = 0;
  uint64_t folded_hits VECUBE_GUARDED_BY(mu) = 0;
  uint64_t coalesced_hits VECUBE_GUARDED_BY(mu) = 0;
  uint64_t insertions VECUBE_GUARDED_BY(mu) = 0;
  uint64_t rejected_inserts VECUBE_GUARDED_BY(mu) = 0;
  uint64_t stale_fills VECUBE_GUARDED_BY(mu) = 0;
  uint64_t evictions VECUBE_GUARDED_BY(mu) = 0;
  uint64_t invalidations VECUBE_GUARDED_BY(mu) = 0;
  uint64_t folded_ops_saved VECUBE_GUARDED_BY(mu) = 0;
  uint64_t ops_executed VECUBE_GUARDED_BY(mu) = 0;
  std::unordered_map<ElementId, std::shared_ptr<Flight>, ElementIdHash>
      flights VECUBE_GUARDED_BY(mu);
  std::deque<Limbo> limbo VECUBE_GUARDED_BY(mu);  ///< retire-tag ascending
};

ViewCache::ViewCache(ViewCacheOptions options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.heat_decay <= 0.0 || options_.heat_decay > 1.0) {
    options_.heat_decay = 1.0;
  }
  shard_capacity_bytes_ = options_.capacity_bytes / options_.shards;
  shards_.reserve(options_.shards);
  for (uint32_t s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    auto table = std::make_unique<Table>();
    // order: relaxed — construction; no other thread can see the cache.
    shard->live.store(table.release(), std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

ViewCache::~ViewCache() {
  // Precondition (as for any destructor): no concurrent calls. The limbo
  // lists clean themselves up; the published tables are reclaimed here.
  for (auto& shard : shards_) {
    // order: relaxed — destruction precondition is no concurrent calls.
    std::unique_ptr<const Table> live(
        shard->live.exchange(nullptr, std::memory_order_relaxed));
  }
}

ViewCache::Shard& ViewCache::ShardFor(const ElementId& id) {
  return *shards_[ElementIdHash{}(id) % shards_.size()];
}

ViewCache::ReadHandle ViewCache::FindPinned(
    const ElementId& id, bool count_miss,
    std::shared_ptr<const Tensor>* out_shared) {
  Shard& shard = ShardFor(id);
  EpochDomain::Pin pin = EpochDomain::Acquire();
  // order: acquire — pairs with the seq_cst publish in PublishLocked so
  // the table's contents (map nodes, entries, tensors) are visible; the
  // pin taken above keeps the loaded version out of reclamation.
  const Table* table = shard.live.load(std::memory_order_acquire);
  auto it = table->map.find(id);
  if (it == table->map.end()) {
    // order: relaxed — statistics counter; read under shard.mu only by
    // Metrics(), which tolerates a racing increment either side.
    if (count_miss) shard.misses.fetch_add(1, std::memory_order_relaxed);
    return ReadHandle();
  }
  Entry* entry = it->second.get();
  // order: relaxed — pure event count; folded under shard.mu (or at
  // reclaim, after the epoch proves no reader can still bump it), so no
  // other data is published through this counter.
  entry->pending_hits.fetch_add(1, std::memory_order_relaxed);
  if (out_shared != nullptr) *out_shared = entry->data;
  return ReadHandle(std::move(pin), entry->data.get());
}

ViewCache::ReadHandle ViewCache::LookupPinned(const ElementId& id) {
  return FindPinned(id, /*count_miss=*/true, nullptr);
}

std::shared_ptr<const Tensor> ViewCache::Lookup(const ElementId& id) {
  // The shared_ptr copy happens under the probe's pin (the entry and its
  // control block are alive), after which the handle itself can drop.
  std::shared_ptr<const Tensor> shared;
  FindPinned(id, /*count_miss=*/true, &shared);
  return shared;
}

ViewCache::LookupOutcome ViewCache::LookupOrBegin(const ElementId& id) {
  LookupOutcome out;
  out.hit = FindPinned(id, /*count_miss=*/false, nullptr);
  if (out.hit) return out;

  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  // Re-probe under the lock: a fill may have landed since the lock-free
  // probe. The table cannot be retired while mu is held, and the pin is
  // taken before mu is released, so the handle stays valid afterwards.
  // order: acquire — same publish pairing as FindPinned (mu alone would
  // suffice, since publishers store under mu; acquire keeps it uniform).
  const Table* table = shard.live.load(std::memory_order_acquire);
  auto it = table->map.find(id);
  if (it != table->map.end()) {
    EpochDomain::Pin pin = EpochDomain::Acquire();
    Entry* entry = it->second.get();
    // order: relaxed — same event-count contract as in FindPinned.
    entry->pending_hits.fetch_add(1, std::memory_order_relaxed);
    out.hit = ReadHandle(std::move(pin), entry->data.get());
    return out;
  }
  auto fit = shard.flights.find(id);
  if (fit != shard.flights.end()) {
    out.fill.flight_ = fit->second;
    out.fill.id_ = id;
    out.fill.leader_ = false;
    return out;
  }
  auto flight = std::make_shared<Flight>();
  shard.flights.emplace(id, flight);
  // order: relaxed — statistics counter, as in FindPinned.
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  out.fill.flight_ = std::move(flight);
  out.fill.id_ = id;
  out.fill.flush_epoch_ = shard.flush_epoch;
  out.fill.leader_ = true;
  return out;
}

std::shared_ptr<const Tensor> ViewCache::CompleteFill(
    FillTicket ticket, Tensor data, uint64_t assembly_cost) {
  if (!ticket.valid() || !ticket.leader()) return nullptr;
  auto shared = std::make_shared<const Tensor>(std::move(data));
  Shard& shard = ShardFor(ticket.id_);
  std::shared_ptr<const Tensor> served = shared;
  {
    MutexLock lock(shard.mu);
    shard.ops_executed += assembly_cost;
    auto fit = shard.flights.find(ticket.id_);
    if (fit != shard.flights.end() && fit->second == ticket.flight_) {
      shard.flights.erase(fit);
    }
    if (ticket.flush_epoch_ != shard.flush_epoch) {
      // A flush landed between the miss and this fill: the tensor still
      // answers the queries already waiting on it (they began before the
      // flush, so it linearizes before), but must not outlive the flush
      // inside the cache.
      ++shard.stale_fills;
    } else {
      served = InsertLocked(&shard, ticket.id_, shared, assembly_cost);
    }
  }
  {
    MutexLock flight_lock(ticket.flight_->m);
    ticket.flight_->result = served;
    ticket.flight_->assembly_cost = assembly_cost;
    ticket.flight_->done = true;
  }
  ticket.flight_->cv.NotifyAll();
  return served;
}

void ViewCache::AbortFill(FillTicket ticket, Status cause) {
  if (!ticket.valid() || !ticket.leader()) return;
  Shard& shard = ShardFor(ticket.id_);
  {
    MutexLock lock(shard.mu);
    auto fit = shard.flights.find(ticket.id_);
    if (fit != shard.flights.end() && fit->second == ticket.flight_) {
      shard.flights.erase(fit);
    }
  }
  {
    MutexLock flight_lock(ticket.flight_->m);
    ticket.flight_->aborted = true;
    ticket.flight_->error =
        cause.ok() ? Status::Unavailable("fill aborted") : std::move(cause);
    ticket.flight_->done = true;
  }
  ticket.flight_->cv.NotifyAll();
}

ViewCache::FillWait ViewCache::WaitFill(const FillTicket& ticket,
                                        const QueryContext& ctx) {
  if (!ticket.valid() || ticket.leader()) {
    return FillWait{nullptr,
                    Status::InvalidArgument("not a follower ticket")};
  }
  Flight& flight = *ticket.flight_;
  std::shared_ptr<const Tensor> result;
  uint64_t cost = 0;
  {
    MutexLock flight_lock(flight.m);
    while (!flight.done) {
      Status live = ctx.Check();
      if (!live.ok()) {
        // The fill may still be in progress; this follower just cannot
        // afford to keep waiting for it.
        return FillWait{nullptr, std::move(live)};
      }
      // Bounded slices: re-check the context every 100 ms (or sooner
      // when the deadline is nearer), so a stuck leader can never park
      // a follower forever.
      const QueryContext::Clock::duration slice = std::min<
          QueryContext::Clock::duration>(std::chrono::milliseconds(100),
                                         ctx.remaining());
      flight.cv.WaitFor(flight.m, slice);
    }
    if (flight.aborted) return FillWait{nullptr, flight.error};
    result = flight.result;
    cost = flight.assembly_cost;
  }
  // The coalesced query is a hit in every accounting sense: it spent no
  // assembly ops and saved its full rebuild cost.
  Shard& shard = ShardFor(ticket.id_);
  MutexLock lock(shard.mu);
  ++shard.folded_hits;
  ++shard.coalesced_hits;
  shard.folded_ops_saved += cost;
  return FillWait{std::move(result), Status::OK()};
}

std::shared_ptr<const Tensor> ViewCache::Insert(const ElementId& id,
                                                Tensor data,
                                                uint64_t assembly_cost) {
  auto shared = std::make_shared<const Tensor>(std::move(data));
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  // The caller assembled this tensor whether or not it gets retained.
  shard.ops_executed += assembly_cost;
  return InsertLocked(&shard, id, std::move(shared), assembly_cost);
}

std::shared_ptr<const Tensor> ViewCache::InsertLocked(
    Shard* shard, const ElementId& id, std::shared_ptr<const Tensor> shared,
    uint64_t assembly_cost) {
  ++shard->generation;
  // order: relaxed — we hold shard->mu, the only context that stores
  // `live`; the load cannot race a publish.
  const Table* live = shard->live.load(std::memory_order_relaxed);
  auto it = live->map.find(id);
  if (it != live->map.end()) {
    // First writer wins: assembly is deterministic, so a concurrent
    // duplicate insert carries bit-identical data; keep the shared copy
    // (and count the duplicate as a touch).
    Entry* entry = it->second.get();
    FoldEntryLocked(shard, entry);
    entry->folded_heat += 1.0;
    return entry->data;
  }
  const uint64_t bytes = shared->size() * sizeof(double);
  if (bytes > shard_capacity_bytes_) {
    ++shard->rejected_inserts;
    return shared;
  }
  auto next = std::make_unique<Table>();
  next->map = live->map;
  next->bytes = live->bytes;
  EvictIntoLocked(shard, next.get(), bytes);
  // EvictIntoLocked detached the victims from `next`; recover them by
  // set difference so they can ride the limbo list to exact reclaim.
  std::vector<std::shared_ptr<Entry>> removed;
  if (next->map.size() != live->map.size()) {
    removed.reserve(live->map.size() - next->map.size());
    for (const auto& [live_id, live_entry] : live->map) {
      if (next->map.find(live_id) == next->map.end()) {
        removed.push_back(live_entry);
      }
    }
  }
  auto entry = std::make_shared<Entry>();
  entry->data = std::move(shared);
  entry->assembly_cost = assembly_cost;
  entry->bytes = bytes;
  entry->folded_heat = 1.0;
  entry->folded_at = shard->generation;
  std::shared_ptr<const Tensor> retained = entry->data;
  next->map.emplace(id, std::move(entry));
  next->bytes += bytes;
  ++shard->insertions;
  PublishLocked(shard, std::move(next), std::move(removed));
  return retained;
}

void ViewCache::FoldEntryLocked(Shard* shard, Entry* entry) const {
  // order: relaxed — drains the event counter; counts are self-contained
  // (no payload is published through them) and the fold is serialized by
  // shard->mu.
  const uint64_t pending =
      entry->pending_hits.exchange(0, std::memory_order_relaxed);
  if (options_.heat_decay < 1.0 && entry->folded_heat != 0.0) {
    const uint64_t gap = shard->generation - entry->folded_at;
    if (gap != 0) {
      entry->folded_heat *=
          std::pow(options_.heat_decay, static_cast<double>(gap));
    }
  }
  entry->folded_heat += static_cast<double>(pending);
  entry->folded_at = shard->generation;
  shard->folded_hits += pending;
  shard->folded_ops_saved += pending * entry->assembly_cost;
}

double ViewCache::ScoreLocked(const Shard& shard, const Entry& entry) const {
  // Benefit of keeping the entry: expected near-future hits (the decayed
  // hit weight) times what each hit saves (its Procedure-3 rebuild
  // cost). The +1 keeps free-to-rebuild entries ordered by heat among
  // themselves instead of collapsing to a zero tie.
  (void)shard;
  return entry.folded_heat *
         (1.0 + static_cast<double>(entry.assembly_cost));
}

void ViewCache::EvictIntoLocked(Shard* shard, Table* next, uint64_t needed) {
  if (next->bytes + needed <= shard_capacity_bytes_) return;
  // Fold every entry once so scores compare decayed heat plus all hits
  // recorded so far. Hits landing on a victim after this fold stay in
  // its pending counter and are folded exactly at reclaim time.
  for (auto& [id, entry] : next->map) FoldEntryLocked(shard, entry.get());
  while (!next->map.empty() &&
         next->bytes + needed > shard_capacity_bytes_) {
    auto victim = next->map.begin();
    double victim_score = ScoreLocked(*shard, *victim->second);
    for (auto it = std::next(next->map.begin()); it != next->map.end();
         ++it) {
      const double score = ScoreLocked(*shard, *it->second);
      if (score < victim_score) {
        victim = it;
        victim_score = score;
      }
    }
    next->bytes -= victim->second->bytes;
    next->map.erase(victim);
    ++shard->evictions;
  }
}

void ViewCache::PublishLocked(Shard* shard, std::unique_ptr<Table> next,
                              std::vector<std::shared_ptr<Entry>> removed) {
  // order: relaxed — mu-serialized read of our own last publish.
  std::unique_ptr<const Table> old(
      shard->live.load(std::memory_order_relaxed));
  // order: seq_cst — must precede the Retire() advance in the single
  // total order, so a reader whose pin confirms an epoch past our retire
  // tag is guaranteed to load this replacement, never `old` (see
  // epoch.h's announce-and-confirm proof).
  shard->live.store(next.release(), std::memory_order_seq_cst);
  const uint64_t tag = EpochDomain::Instance().Retire();
  shard->limbo.push_back(
      Shard::Limbo{tag, std::move(old), std::move(removed)});
  ReclaimLocked(shard);
}

void ViewCache::ReclaimLocked(Shard* shard) const {
  if (shard->limbo.empty()) return;
  const uint64_t min_pinned = EpochDomain::Instance().MinPinned();
  while (!shard->limbo.empty() && shard->limbo.front().tag < min_pinned) {
    Shard::Limbo& rec = shard->limbo.front();
    // No reader can reach these entries any more: fold their final hit
    // counts so ServeMetrics::hits stays exact across removals.
    for (const std::shared_ptr<Entry>& entry : rec.dying) {
      // order: relaxed — MinPinned() proved no reader still holds the
      // entry, so this drain cannot race a bump; counts are standalone.
      const uint64_t pending =
          entry->pending_hits.exchange(0, std::memory_order_relaxed);
      shard->folded_hits += pending;
      shard->folded_ops_saved += pending * entry->assembly_cost;
    }
    shard->limbo.pop_front();
  }
}

void ViewCache::Invalidate(const ElementId& id) {
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  // order: relaxed — mu-serialized against every publish.
  const Table* live = shard.live.load(std::memory_order_relaxed);
  auto it = live->map.find(id);
  if (it == live->map.end()) return;
  ++shard.generation;
  auto next = std::make_unique<Table>();
  next->map = live->map;
  next->bytes = live->bytes - it->second->bytes;
  std::vector<std::shared_ptr<Entry>> removed;
  removed.push_back(it->second);
  next->map.erase(id);
  ++shard.invalidations;
  PublishLocked(&shard, std::move(next), std::move(removed));
}

uint64_t ViewCache::InvalidateAll() {
  uint64_t dropped = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    // Stale any in-flight fill and orphan its flight: post-flush misses
    // on the same ids must start fresh assemblies against the new data.
    ++shard->flush_epoch;
    shard->flights.clear();
    // order: relaxed — mu-serialized against every publish.
    const Table* live = shard->live.load(std::memory_order_relaxed);
    if (live->map.empty()) continue;
    ++shard->generation;
    const uint64_t count = live->map.size();
    dropped += count;
    shard->invalidations += count;
    std::vector<std::shared_ptr<Entry>> removed;
    removed.reserve(count);
    for (const auto& [id, entry] : live->map) removed.push_back(entry);
    PublishLocked(shard.get(), std::make_unique<Table>(),
                  std::move(removed));
  }
  return dropped;
}

ServeMetrics ViewCache::Metrics() const {
  ServeMetrics metrics;
  // order: relaxed — point-in-time statistics snapshot (see below).
  metrics.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  metrics.shed = shed_.load(std::memory_order_relaxed);
  metrics.degraded = degraded_.load(std::memory_order_relaxed);
  metrics.follower_retries =
      follower_retries_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    // order: relaxed — point-in-time statistics snapshot; a racing
    // increment lands in this read or the next, never lost.
    metrics.misses += shard->misses.load(std::memory_order_relaxed);
    metrics.hits += shard->folded_hits;
    metrics.coalesced_hits += shard->coalesced_hits;
    metrics.insertions += shard->insertions;
    metrics.rejected_inserts += shard->rejected_inserts;
    metrics.stale_fills += shard->stale_fills;
    metrics.evictions += shard->evictions;
    metrics.invalidations += shard->invalidations;
    metrics.assembly_ops_saved += shard->folded_ops_saved;
    metrics.assembly_ops_executed += shard->ops_executed;
    // order: relaxed — mu-serialized against every publish.
    const Table* live = shard->live.load(std::memory_order_relaxed);
    metrics.entries += live->map.size();
    metrics.bytes_resident += live->bytes;
    // Unfolded hits: still pending on live entries, or on dying entries
    // not yet reclaimed. Counting both keeps the aggregate exact
    // whenever the cache is quiescent (and a consistent snapshot
    // otherwise).
    for (const auto& [id, entry] : live->map) {
      // order: relaxed — snapshot of an event counter; hits landing
      // during the walk appear in the next snapshot.
      const uint64_t pending =
          entry->pending_hits.load(std::memory_order_relaxed);
      metrics.hits += pending;
      metrics.assembly_ops_saved += pending * entry->assembly_cost;
    }
    for (const Shard::Limbo& rec : shard->limbo) {
      for (const std::shared_ptr<Entry>& entry : rec.dying) {
        // order: relaxed — same snapshot contract as the live-map walk.
        const uint64_t pending =
            entry->pending_hits.load(std::memory_order_relaxed);
        metrics.hits += pending;
        metrics.assembly_ops_saved += pending * entry->assembly_cost;
      }
    }
  }
  return metrics;
}

}  // namespace vecube
