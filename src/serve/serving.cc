#include "serve/serving.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/failpoint.h"
#include "util/sync.h"

namespace vecube {

namespace {

/// True for abort causes local to the leader (its deadline, its
/// cancellation, or an unspecified abort) — the element itself may be
/// fine, so a follower with budget left should retry. Element-local
/// failures (Incomplete, Internal, ...) propagate instead.
bool LeaderLocalAbort(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled() ||
         status.IsUnavailable();
}

}  // namespace

ElementServer::ElementServer(AssemblyEngine* engine,
                             const ElementStore* store, ViewCache* cache,
                             ServeQueryOptions options)
    : engine_(engine),
      store_(store),
      cache_(cache),
      options_(std::move(options)) {
  if (options_.ops_per_ms == 0) options_.ops_per_ms = 1;
}

uint64_t ElementServer::OpsBudget(const QueryContext& ctx) const {
  if (ctx.ops_budget() != 0) return ctx.ops_budget();
  if (!ctx.has_deadline()) return kInfiniteCost;
  const QueryContext::Clock::duration remaining = ctx.remaining();
  if (remaining >= std::chrono::hours(1)) return kInfiniteCost;
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(remaining)
          .count());
  return micros * options_.ops_per_ms / 1000;
}

Status ElementServer::Fail(Status status) {
  if (cache_ != nullptr &&
      (status.IsDeadlineExceeded() || status.IsCancelled())) {
    cache_->RecordDeadlineExceeded();
  }
  return status;
}

void ElementServer::Backoff(const QueryContext& ctx) const {
  const QueryContext::Clock::duration pause =
      std::min<QueryContext::Clock::duration>(options_.follower_backoff,
                                              ctx.remaining());
  if (pause <= QueryContext::Clock::duration::zero()) return;
  // A private, never-notified CondVar: a bounded sleep that stays inside
  // the annotated sync primitives (and under the deadline).
  Mutex m;
  CondVar cv;
  MutexLock lock(m);
  cv.WaitFor(m, pause);
}

Result<QueryAnswer> ElementServer::Serve(const ElementId& id,
                                         const QueryContext& ctx) {
  if (Status live = ctx.Check(); !live.ok()) return Fail(std::move(live));
  if (cache_ == nullptr) return FillDirect(id, ctx);

  uint32_t retries = 0;
  for (;;) {
    ViewCache::LookupOutcome outcome = cache_->LookupOrBegin(id);
    if (outcome.hit) {
      QueryAnswer answer;
      answer.data = *outcome.hit;
      return answer;
    }
    if (outcome.fill.leader()) {
      return FillAsLeader(id, std::move(outcome.fill), ctx);
    }
    ViewCache::FillWait wait = cache_->WaitFill(outcome.fill, ctx);
    if (wait.status.ok()) {
      QueryAnswer answer;
      answer.data = *wait.data;
      return answer;
    }
    if (Status live = ctx.Check(); !live.ok()) {
      // Our own budget ran out while waiting (distinct from the
      // leader's — the leader may still complete for others).
      return Fail(std::move(live));
    }
    if (!LeaderLocalAbort(wait.status)) {
      // The element itself failed (Incomplete, injected fill error,
      // verify failure): retrying would fail identically.
      return wait.status;
    }
    if (retries >= options_.max_follower_retries) {
      // Give up before this turns into a retry livelock. With
      // degradation allowed there is still a bounded answer to give.
      if (AllowDegraded(ctx)) return Degrade(id, OpsBudget(ctx), ctx);
      return Fail(std::move(wait.status));
    }
    ++retries;
    cache_->RecordFollowerRetry();
    Backoff(ctx);
  }
}

Result<QueryAnswer> ElementServer::FillAsLeader(const ElementId& id,
                                                ViewCache::FillTicket ticket,
                                                const QueryContext& ctx) {
  // Chaos hook: stall the leader (kDelay — followers keep waiting or
  // time out) or fail the fill outright (kError).
  if (std::optional<FailpointAction> fp =
          Failpoints::HitWithDelay("serve.fill");
      fp.has_value() && fp->kind == FailpointAction::Kind::kError) {
    Status injected =
        Status::Internal("injected fill failure (failpoint serve.fill)");
    cache_->AbortFill(std::move(ticket), injected);
    return injected;
  }
  const uint64_t cost = engine_->PlanCost(id);
  if (cost == kInfiniteCost) {
    Status incomplete = Status::Incomplete(
        "stored element set cannot reconstruct " + id.ToString());
    cache_->AbortFill(std::move(ticket), incomplete);
    return incomplete;
  }
  const uint64_t budget = OpsBudget(ctx);
  if (cost > budget) {
    // Not starting an assembly that cannot finish in time. The abort
    // cause is leader-local: followers with looser budgets retry and
    // one of them becomes the next leader.
    Status cause = Status::DeadlineExceeded(
        "plan cost " + std::to_string(cost) + " exceeds op budget " +
        std::to_string(budget) + " for " + id.ToString());
    cache_->AbortFill(std::move(ticket), cause);
    if (AllowDegraded(ctx)) return Degrade(id, budget, ctx);
    return Fail(std::move(cause));
  }
  OpCounter ops;
  Result<Tensor> assembled = engine_->Assemble(id, &ops, &ctx);
  if (!assembled.ok()) {
    cache_->AbortFill(std::move(ticket), assembled.status());
    return Fail(assembled.status());
  }
  if (options_.verify_fill) {
    if (Status verified = options_.verify_fill(id, ops.adds);
        !verified.ok()) {
      cache_->AbortFill(std::move(ticket), verified);
      return verified;
    }
  }
  std::shared_ptr<const Tensor> served = cache_->CompleteFill(
      std::move(ticket), std::move(assembled).value(), cost);
  QueryAnswer answer;
  answer.data = *served;
  answer.ops = ops.adds;
  return answer;
}

Result<QueryAnswer> ElementServer::FillDirect(const ElementId& id,
                                              const QueryContext& ctx) {
  const uint64_t cost = engine_->PlanCost(id);
  if (cost == kInfiniteCost) {
    return Status::Incomplete("stored element set cannot reconstruct " +
                              id.ToString());
  }
  const uint64_t budget = OpsBudget(ctx);
  if (cost > budget) {
    if (AllowDegraded(ctx)) return Degrade(id, budget, ctx);
    return Fail(Status::DeadlineExceeded(
        "plan cost " + std::to_string(cost) + " exceeds op budget " +
        std::to_string(budget) + " for " + id.ToString()));
  }
  OpCounter ops;
  QueryAnswer answer;
  VECUBE_ASSIGN_OR_RETURN(answer.data, engine_->Assemble(id, &ops, &ctx));
  if (options_.verify_fill) {
    VECUBE_RETURN_NOT_OK(options_.verify_fill(id, ops.adds));
  }
  answer.ops = ops.adds;
  return answer;
}

Result<QueryAnswer> ElementServer::Degrade(const ElementId& id,
                                           uint64_t budget,
                                           const QueryContext& ctx) {
  if (approx_ == nullptr) {
    approx_ = std::make_unique<ApproxAssembler>(engine_, store_);
  }
  Result<DegradedAnswer> degraded = approx_->AssembleWithin(id, budget, &ctx);
  if (!degraded.ok()) return Fail(degraded.status());
  // A budget generous enough after all yields an exact answer; only a
  // truly approximate one counts as degraded.
  if (cache_ != nullptr && degraded->degraded) cache_->RecordDegraded();
  QueryAnswer answer;
  answer.data = std::move(degraded->data);
  answer.degraded = degraded->degraded;
  answer.l2_bound = degraded->l2_bound;
  answer.ops = degraded->ops;
  return answer;
}

}  // namespace vecube
