// ElementServer: the bounded-latency query front end (DESIGN.md §13).
//
// One ElementServer per serving worker, all sharing one ViewCache (and
// its single-flight miss coalescing) with one AssemblyEngine each. It
// layers the robustness contract over Element() queries:
//
//   * deadline propagation — the QueryContext is threaded through the
//     cache waits, the planner, and the fused cascade loops, so an
//     expired or cancelled query unwinds instead of running to
//     completion;
//   * budget gating — before assembling, the Procedure-3 plan cost is
//     compared against the query's op budget (explicit, or derived from
//     the remaining wall time via `ops_per_ms`); plans that cannot
//     finish in time are not started;
//   * graceful degradation — when the budget falls short and the query
//     opted in, the answer comes from ApproxAssembler: an approximate
//     tensor plus a sound L2 error bound. Degraded answers are NEVER
//     cached (the fill is aborted first) and never served to other
//     queries;
//   * bounded follower retries — when a fill leader aborts for a
//     leader-local reason (its own deadline/cancellation, or an
//     unspecified abort), followers retry a bounded number of times
//     with a short backoff; an element-local failure (Incomplete,
//     injected fill error) propagates immediately. Either way repeated
//     leader failures surface an error instead of a retry livelock.
//
// Every query resolves to exactly one of: an exact answer, a degraded
// answer (with its bound), or a non-OK Status — and every wait on the
// way is a bounded timed slice.

#ifndef VECUBE_SERVE_SERVING_H_
#define VECUBE_SERVE_SERVING_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/approximate.h"
#include "core/assembly.h"
#include "core/element_id.h"
#include "core/store.h"
#include "cube/tensor.h"
#include "serve/view_cache.h"
#include "util/query_context.h"
#include "util/result.h"

namespace vecube {

/// A served answer. Exact unless `degraded`; a degraded answer always
/// carries its L2 error bound (||exact − data||₂ ≤ l2_bound).
struct QueryAnswer {
  Tensor data;
  bool degraded = false;
  double l2_bound = 0.0;
  /// Assembly ops this query actually spent (0 for cache hits and
  /// coalesced waits).
  uint64_t ops = 0;
};

struct ServeQueryOptions {
  /// Server-wide degradation default; a query can also opt in per-call
  /// via QueryContext::set_allow_degraded.
  bool allow_degraded = false;
  /// Assembly throughput estimate used to convert remaining wall time
  /// into an op budget when the context carries no explicit one.
  uint64_t ops_per_ms = 256 * 1024;
  /// Follower retries after leader-local aborts before giving up.
  uint32_t max_follower_retries = 3;
  /// Pause between follower retries (clamped to the query's remaining
  /// deadline) so a rapidly re-aborting leader is not hammered.
  std::chrono::milliseconds follower_backoff{1};
  /// Optional hook run on a leader's assembled tensor before it is
  /// published (OlapSession wires its op-count invariant check here).
  /// A non-OK return aborts the fill with that status.
  std::function<Status(const ElementId&, uint64_t measured_ops)> verify_fill;
};

/// Per-worker facade. Not thread-safe itself (one per worker by
/// construction); all cross-worker state lives in the shared ViewCache.
class ElementServer {
 public:
  /// Borrows everything; the caller keeps the engine, store, and cache
  /// alive. `cache` may be null: queries are then served directly (no
  /// coalescing, no robustness counters) but still budget-gated.
  ElementServer(AssemblyEngine* engine, const ElementStore* store,
                ViewCache* cache, ServeQueryOptions options = {});

  /// Serves one element query under `ctx`. See the file comment for the
  /// outcome contract.
  Result<QueryAnswer> Serve(const ElementId& id,
                            const QueryContext& ctx = QueryContext());

  /// The op budget `ctx` implies (explicit override, else remaining
  /// time × ops_per_ms, else effectively unlimited).
  [[nodiscard]] uint64_t OpsBudget(const QueryContext& ctx) const;

  /// Drops the degradation helper's precomputed norms; call after the
  /// store's data changes (it rebuilds lazily on the next degraded
  /// query).
  void InvalidateApprox() { approx_.reset(); }

 private:
  [[nodiscard]] bool AllowDegraded(const QueryContext& ctx) const {
    return options_.allow_degraded || ctx.allow_degraded();
  }
  /// Records terminal deadline/cancellation failures and passes the
  /// status through.
  Status Fail(Status status);
  Result<QueryAnswer> FillAsLeader(const ElementId& id,
                                   ViewCache::FillTicket ticket,
                                   const QueryContext& ctx);
  Result<QueryAnswer> FillDirect(const ElementId& id,
                                 const QueryContext& ctx);
  Result<QueryAnswer> Degrade(const ElementId& id, uint64_t budget,
                              const QueryContext& ctx);
  void Backoff(const QueryContext& ctx) const;

  AssemblyEngine* engine_;
  const ElementStore* store_;
  ViewCache* cache_;  // null = direct serving
  ServeQueryOptions options_;
  std::unique_ptr<ApproxAssembler> approx_;  // built on first degraded use
};

}  // namespace vecube

#endif  // VECUBE_SERVE_SERVING_H_
