// AdmissionController: bounded-queue load shedding for the serving stack
// (DESIGN.md §13).
//
// Every query acquires a Permit before touching the assembly engine. At
// most `max_inflight` permits are outstanding; the next `max_queue`
// arrivals wait (in bounded timed slices, honoring their own deadlines);
// anything beyond that is shed immediately with kResourceExhausted and a
// retry-after hint — the server stays responsive by refusing work it
// cannot finish in time, instead of queueing unboundedly and missing
// every deadline at once.
//
// Shutdown is graceful: new arrivals are refused with kUnavailable, but
// already-queued waiters keep their place and are admitted as slots
// free, so an operator-initiated drain (vecube_cli serve on SIGINT)
// finishes the work it already accepted.

#ifndef VECUBE_SERVE_ADMISSION_H_
#define VECUBE_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <utility>

#include "util/query_context.h"
#include "util/result.h"
#include "util/status.h"
#include "util/sync.h"

namespace vecube {

struct AdmissionOptions {
  /// Queries allowed to execute concurrently.
  uint32_t max_inflight = 4;
  /// Queries allowed to wait for a slot; arrivals beyond this are shed.
  uint32_t max_queue = 16;
  /// Hint embedded in the kResourceExhausted message of a shed query.
  std::chrono::milliseconds retry_after{50};
};

struct AdmissionMetrics {
  uint64_t admitted = 0;           ///< permits granted
  uint64_t shed = 0;               ///< refused: queue full
  uint64_t deadline_exceeded = 0;  ///< gave up waiting for a slot
  uint64_t rejected_shutdown = 0;  ///< refused: controller shut down
  uint64_t inflight = 0;           ///< point-in-time outstanding permits
  uint64_t queued = 0;             ///< point-in-time waiters
};

/// Thread-safe. One controller fronts one serving endpoint; workers call
/// Admit() per query and hold the Permit for the query's duration.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII slot: releases on destruction, waking one queued waiter.
  class Permit {
   public:
    Permit() noexcept = default;
    Permit(Permit&& other) noexcept
        : controller_(std::exchange(other.controller_, nullptr)) {}
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = std::exchange(other.controller_, nullptr);
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    [[nodiscard]] bool valid() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller) noexcept
        : controller_(controller) {}

    AdmissionController* controller_ = nullptr;
  };

  /// Grants a slot, queues for one (bounded timed waits, never past the
  /// context's deadline), or refuses:
  ///  * kResourceExhausted — queue full; the message carries the
  ///    retry-after hint. The caller should answer the client
  ///    immediately (load shedding).
  ///  * kDeadlineExceeded / kCancelled — the context gave out while
  ///    queued; no slot was consumed.
  ///  * kUnavailable — controller shut down.
  Result<Permit> Admit(const QueryContext& ctx = QueryContext());

  /// Stops admitting new queries (kUnavailable). Queued waiters keep
  /// their place and drain normally.
  void Shutdown();

  /// Blocks (in bounded slices) until no permits are outstanding and the
  /// queue is empty, or `timeout` elapses. Returns true when drained.
  /// Call after Shutdown() for a clean stop.
  bool Drain(std::chrono::milliseconds timeout);

  [[nodiscard]] AdmissionMetrics Metrics() const;

 private:
  void ReleaseSlot();

  AdmissionOptions options_;  ///< immutable after construction
  mutable Mutex mu_;
  CondVar cv_;
  bool shutdown_ VECUBE_GUARDED_BY(mu_) = false;
  uint32_t inflight_ VECUBE_GUARDED_BY(mu_) = 0;
  uint32_t queued_ VECUBE_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ VECUBE_GUARDED_BY(mu_) = 0;
  uint64_t shed_ VECUBE_GUARDED_BY(mu_) = 0;
  uint64_t deadline_exceeded_ VECUBE_GUARDED_BY(mu_) = 0;
  uint64_t rejected_shutdown_ VECUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace vecube

#endif  // VECUBE_SERVE_ADMISSION_H_
