// CubeBuilder: maps a Relation onto a dense MOLAP data cube (Section 2).
//
// "the d-dimensional data cube [is] generated from relation R by mapping
// the m-th functional attribute of R to dimension i_m ... Each cell in A
// contains an aggregation of the measure attribute of all records in R
// that map to that cell." The aggregation operator developed by the paper
// is SUM; COUNT is SUM over a unit measure and AVG is the ratio of two
// SUM cubes, both of which the builder supports directly.

#ifndef VECUBE_CUBE_CUBE_BUILDER_H_
#define VECUBE_CUBE_CUBE_BUILDER_H_

#include <cstdint>
#include <vector>

#include "cube/relation.h"
#include "cube/shape.h"
#include "cube/tensor.h"
#include "util/result.h"

namespace vecube {

/// How raw key values are mapped to cube indices along each dimension.
enum class KeyMapping {
  /// Key values are already indices in [0, extent).
  kDirect,
  /// Key values are dictionary-encoded in first-seen order.
  kDictionary,
};

/// Options controlling cube construction.
struct CubeBuildOptions {
  KeyMapping mapping = KeyMapping::kDirect;
  /// Which measure column to aggregate (SUM).
  uint32_t measure_column = 0;
  /// If true, aggregate a constant 1 per record instead of the measure,
  /// producing a COUNT cube.
  bool count_instead_of_sum = false;
};

/// Result of building: the cube plus the dictionaries (empty for kDirect),
/// so queries can translate attribute values to coordinates.
struct BuiltCube {
  CubeShape shape;
  Tensor cube;
  std::vector<Dictionary> dictionaries;
};

class CubeBuilder {
 public:
  /// Builds a SUM (or COUNT) data cube of the given shape from `relation`.
  /// With kDirect mapping, any key outside [0, extent) is an error; with
  /// kDictionary mapping, overflowing a dimension's extent is an error.
  static Result<BuiltCube> Build(const Relation& relation,
                                 const CubeShape& shape,
                                 const CubeBuildOptions& options = {});
};

}  // namespace vecube

#endif  // VECUBE_CUBE_CUBE_BUILDER_H_
