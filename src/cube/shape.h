// CubeShape: the dimensional geometry of a MOLAP data cube.
//
// The paper (Section 2) assumes every dimension extent is a power of two,
// n_m = 2^{k_m}; the Haar partial-aggregation cascade (Section 3) requires
// it. CubeShape validates and caches the log-extents.

#ifndef VECUBE_CUBE_SHAPE_H_
#define VECUBE_CUBE_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace vecube {

/// Immutable description of a d-dimensional cube: extents (each a power of
/// two), row-major strides, and per-dimension log2 extents.
class CubeShape {
 public:
  CubeShape() = default;

  /// Validates that `extents` is non-empty and every extent is a power of
  /// two >= 1, and that the total volume fits in 64 bits comfortably.
  static Result<CubeShape> Make(std::vector<uint32_t> extents);

  /// Convenience for tests/examples: d dimensions, all of extent n.
  static Result<CubeShape> MakeSquare(uint32_t d, uint32_t n);

  /// Real attribute domains are rarely powers of two; this rounds each
  /// raw extent up to the next power of two. The padding cells stay zero,
  /// which is exact for SUM/COUNT aggregation (the operator the paper's
  /// decomposition is built for) — padded cells contribute nothing to any
  /// view element.
  static Result<CubeShape> MakePadded(const std::vector<uint32_t>& raw_extents);

  [[nodiscard]] uint32_t ndim() const { return static_cast<uint32_t>(extents_.size()); }
  [[nodiscard]] const std::vector<uint32_t>& extents() const { return extents_; }
  [[nodiscard]] uint32_t extent(uint32_t dim) const { return extents_[dim]; }
  /// log2 of the extent of `dim`; also the cascade depth D_m of Section 4.1.
  [[nodiscard]] uint32_t log_extent(uint32_t dim) const { return log_extents_[dim]; }
  [[nodiscard]] const std::vector<uint32_t>& log_extents() const { return log_extents_; }

  /// Number of cells, Vol(A) of Eq. 11.
  [[nodiscard]] uint64_t volume() const { return volume_; }

  /// Row-major stride of `dim` (last dimension is contiguous).
  [[nodiscard]] uint64_t stride(uint32_t dim) const { return strides_[dim]; }
  [[nodiscard]] const std::vector<uint64_t>& strides() const { return strides_; }

  /// Flat offset of a coordinate vector (unchecked in release builds).
  uint64_t FlatIndex(const std::vector<uint32_t>& coords) const;

  /// Inverse of FlatIndex.
  std::vector<uint32_t> Coords(uint64_t flat) const;

  /// "[4, 4, 16]"
  std::string ToString() const;

  bool operator==(const CubeShape& other) const {
    return extents_ == other.extents_;
  }
  bool operator!=(const CubeShape& other) const { return !(*this == other); }

 private:
  std::vector<uint32_t> extents_;
  std::vector<uint32_t> log_extents_;
  std::vector<uint64_t> strides_;
  uint64_t volume_ = 0;
};

}  // namespace vecube

#endif  // VECUBE_CUBE_SHAPE_H_
